"""Unit tests for the flaw-kind triggers and crash actions in isolation."""

import pytest

from repro.dialects import flaws
from repro.dialects.bugs import make_trigger
from repro.engine.context import ExecutionContext
from repro.engine.errors import (
    AssertionFailure,
    DivideByZeroCrash,
    GlobalBufferOverflow,
    HeapBufferOverflow,
    NullPointerDereference,
    SegmentationViolation,
    StackOverflow,
    UseAfterFree,
)
from repro.engine.functions import build_base_registry
from repro.engine.values import (
    NULL,
    STAR_MARKER,
    SQLArray,
    SQLBytes,
    SQLDate,
    SQLDecimal,
    SQLGeometry,
    SQLInteger,
    SQLJson,
    SQLRow,
    SQLString,
)


@pytest.fixture()
def ctx():
    return ExecutionContext(build_base_registry())


def S(x):
    return SQLString(x)


class TestTriggers:
    def test_empty_string(self, ctx):
        trigger = make_trigger(("empty", 0))
        assert trigger(ctx, [S("")])
        assert not trigger(ctx, [S("x")])
        assert not trigger(ctx, [SQLInteger(0)])

    def test_null_arg_index(self, ctx):
        trigger = make_trigger(("null", 1))
        assert trigger(ctx, [S("a"), NULL])
        assert not trigger(ctx, [NULL, S("a")])
        assert not trigger(ctx, [S("a")])  # index out of range

    def test_star(self, ctx):
        trigger = make_trigger(("star",))
        assert trigger(ctx, [S("a"), STAR_MARKER])
        assert not trigger(ctx, [S("*")])

    def test_wide_number(self, ctx):
        trigger = make_trigger(("wide", 5, 0))
        assert trigger(ctx, [SQLInteger(123456)])
        assert trigger(ctx, [SQLDecimal.from_text("1.23456")])
        assert not trigger(ctx, [SQLInteger(1234)])
        assert not trigger(ctx, [S("123456")])

    def test_digit_run(self, ctx):
        trigger = make_trigger(("digitrun", 5, 0))
        assert trigger(ctx, [S("x99999y")])
        assert not trigger(ctx, [S("x9999y")])

    def test_char_doubling(self, ctx):
        trigger = make_trigger(("double", "{", 4, 0))
        assert trigger(ctx, [S('{{{{"a": 0}')])
        assert not trigger(ctx, [S('{"a": 0}')])

    def test_cast_decimal(self, ctx):
        trigger = make_trigger(("castdec", 10, 0))
        assert trigger(ctx, [SQLDecimal.from_text("1." + "5" * 12)])
        assert not trigger(ctx, [SQLDecimal.from_text("1.5")])

    def test_cast_unsigned(self, ctx):
        trigger = make_trigger(("castuns", 0))
        assert trigger(ctx, [SQLInteger(2**63 + 5)])
        assert not trigger(ctx, [SQLInteger(5)])

    def test_binary_and_nested_types(self, ctx):
        assert make_trigger(("castbin", 0))(ctx, [SQLBytes(b"x")])
        assert make_trigger(("nbytes", 0))(ctx, [SQLBytes(b"x")])
        assert make_trigger(("ngeom", 0))(ctx, [SQLGeometry(object())])
        assert make_trigger(("njson", 0))(ctx, [SQLJson([1])])
        assert make_trigger(("narr", 0))(ctx, [SQLArray((SQLInteger(1),))])
        assert make_trigger(("ndate", 0))(ctx, [SQLDate(2020, 1, 2)])
        assert not make_trigger(("nbytes", 0))(ctx, [S("x")])

    def test_union_array_and_nested_array(self, ctx):
        flat = SQLArray((SQLInteger(1),))
        nested = SQLArray((flat,))
        assert make_trigger(("unionarr", 0))(ctx, [flat])
        assert make_trigger(("arrarr", 0))(ctx, [nested])
        assert not make_trigger(("arrarr", 0))(ctx, [flat])

    def test_foreign_text(self, ctx):
        trigger = make_trigger(("foreign", ("$", "/"), 0))
        assert trigger(ctx, [S("$[0]")])
        assert trigger(ctx, [S("/a/b")])
        assert not trigger(ctx, [S("a$b")])

    def test_long_and_deep(self, ctx):
        assert make_trigger(("long", 10, 0))(ctx, [S("x" * 10)])
        assert not make_trigger(("long", 10, 0))(ctx, [S("x" * 9)])
        assert make_trigger(("deep", "[", 4, 0))(ctx, [S("[[[[")])

    def test_row_zero_neg_big(self, ctx):
        assert make_trigger(("row",))(ctx, [SQLRow((SQLInteger(1),))])
        assert make_trigger(("zdiv", 0))(ctx, [SQLInteger(0)])
        assert not make_trigger(("zdiv", 0))(ctx, [S("0")])
        assert make_trigger(("neg", 0))(ctx, [SQLInteger(-1)])
        assert make_trigger(("big", 100, 0))(ctx, [SQLInteger(100)])
        assert not make_trigger(("big", 100, 0))(ctx, [SQLInteger(99)])

    def test_unknown_spec_rejected(self):
        with pytest.raises(ValueError):
            make_trigger(("frobnicate",))


class TestCrashActions:
    @pytest.mark.parametrize("code,exc", [
        ("NPD", NullPointerDereference),
        ("SEGV", SegmentationViolation),
        ("UAF", UseAfterFree),
        ("GBOF", GlobalBufferOverflow),
        ("SO", StackOverflow),
        ("AF", AssertionFailure),
        ("DBZ", DivideByZeroCrash),
    ])
    def test_each_action_raises_its_class(self, ctx, code, exc):
        action = flaws.CRASH_ACTIONS[code]
        with pytest.raises(exc):
            action(ctx, "victim_fn", [S("x" * 40)])

    def test_hbof_emerges_from_miscalculated_buffer(self, ctx):
        with pytest.raises(HeapBufferOverflow):
            flaws.CRASH_ACTIONS["HBOF"](ctx, "victim_fn", [S("y" * 64)])

    def test_crash_carries_function_name(self, ctx):
        with pytest.raises(NullPointerDereference) as excinfo:
            flaws.crash_npd(ctx, "some_fn", [])
        assert excinfo.value.function == "some_fn"

    def test_stack_overflow_bounded_by_simulated_stack(self, ctx):
        # the "infinite recursion" loop terminates via the CallStack bound
        with pytest.raises(StackOverflow):
            flaws.crash_so(ctx, "rec_fn", [S("[[[")])
        assert ctx.stack.depth == ctx.stack.max_depth


class TestInstallFlaw:
    def test_flawed_path_gated_by_trigger(self, ctx):
        registry = build_base_registry()
        flaws.install_flaw(registry, "upper", flaws.trig_empty_string(0), "NPD")
        definition = registry.lookup("upper")
        assert definition.impl(ctx, [S("ok")]).value == "OK"
        with pytest.raises(NullPointerDereference):
            definition.impl(ctx, [S("")])

    def test_aggregate_flaw_probes_first_row(self, ctx):
        registry = build_base_registry()
        flaws.install_flaw(registry, "sum", flaws.trig_nested_bytes(0), "NPD")
        definition = registry.lookup("sum")
        assert definition.impl(ctx, [[SQLInteger(1), SQLInteger(2)]]).value == 3
        with pytest.raises(NullPointerDereference):
            definition.impl(ctx, [[SQLBytes(b"x")]])
