"""Unit tests for the casting machinery."""

import decimal

import pytest

from repro.engine.casting import (
    TypeLimits,
    cast_value,
    parse_date_text,
    parse_datetime_text,
    parse_inet_text,
    parse_time_text,
)
from repro.engine.context import ExecutionContext
from repro.engine.errors import TypeError_, ValueError_
from repro.engine.functions import build_base_registry
from repro.engine.values import (
    NULL,
    SQLBoolean,
    SQLBytes,
    SQLDate,
    SQLDecimal,
    SQLDouble,
    SQLInteger,
    SQLJson,
    SQLString,
)
from repro.sqlast import TypeName


@pytest.fixture(scope="module")
def ctx():
    return ExecutionContext(build_base_registry())


def cast(ctx, value, name, params=()):
    return cast_value(ctx, value, TypeName(name, list(params)))


class TestNullAndIdentity:
    def test_null_casts_to_null(self, ctx):
        for target in ("INT", "VARCHAR", "JSON", "DATE", "BINARY"):
            assert cast(ctx, NULL, target).is_null

    def test_unknown_type_rejected(self, ctx):
        with pytest.raises(TypeError_):
            cast(ctx, SQLInteger(1), "FROBNICATOR")


class TestIntegerCasts:
    def test_decimal_truncates_toward_zero(self, ctx):
        assert cast(ctx, SQLDecimal.from_text("-1.9"), "INT").value == -1

    def test_string_prefix_parse(self, ctx):
        assert cast(ctx, SQLString("12abc"), "INT").value == 12

    def test_string_no_digits_is_zero(self, ctx):
        assert cast(ctx, SQLString("abc"), "INT").value == 0

    def test_negative_string(self, ctx):
        assert cast(ctx, SQLString("-7"), "INT").value == -7

    def test_date_becomes_yyyymmdd(self, ctx):
        assert cast(ctx, SQLDate(2020, 5, 6), "INT").value == 20200506

    def test_out_of_range_rejected(self, ctx):
        with pytest.raises(ValueError_):
            cast(ctx, SQLDecimal.from_text("1" + "0" * 30), "INT")

    def test_unsigned_reinterprets_negative(self, ctx):
        result = cast(ctx, SQLInteger(-1), "UNSIGNED")
        assert result.value == 2**64 - 1


class TestDecimalCasts:
    def test_quantizes_to_scale(self, ctx):
        result = cast(ctx, SQLDecimal.from_text("1.2345"), "DECIMAL", (10, 2))
        assert result.render() == "1.23"

    def test_overflow_rejected(self, ctx):
        with pytest.raises(ValueError_):
            cast(ctx, SQLDecimal.from_text("12345"), "DECIMAL", (4, 2))

    def test_precision_above_dialect_limit_rejected(self, ctx):
        with pytest.raises(ValueError_):
            cast(ctx, SQLInteger(1), "DECIMAL", (200, 0))

    def test_scale_above_precision_rejected(self, ctx):
        with pytest.raises(ValueError_):
            cast(ctx, SQLInteger(1), "DECIMAL", (5, 9))

    def test_clickhouse_decimal256_param_is_scale(self, ctx):
        limits = TypeLimits(decimal_max_digits=76, decimal_max_scale=76)
        wide_ctx = ExecutionContext(build_base_registry(), limits=limits)
        result = cast(wide_ctx, SQLString("110"), "Decimal256", (45,))
        assert result.integer_digits == 3
        assert result.fraction_digits == 45

    def test_string_garbage_becomes_zero(self, ctx):
        assert cast(ctx, SQLString("xyz"), "DECIMAL", (5, 1)).render() == "0.0"


class TestStringCasts:
    def test_truncates_to_declared_length(self, ctx):
        assert cast(ctx, SQLString("hello"), "VARCHAR", (3,)).value == "hel"

    def test_renders_numbers(self, ctx):
        assert cast(ctx, SQLDecimal.from_text("1.50"), "CHAR").value == "1.50"


class TestBooleanCasts:
    @pytest.mark.parametrize("text,expected", [
        ("true", True), ("T", True), ("on", True), ("1", True),
        ("false", False), ("off", False), ("", False), ("0", False),
    ])
    def test_boolean_words(self, ctx, text, expected):
        assert cast(ctx, SQLString(text), "BOOLEAN").value is expected

    def test_invalid_boolean_rejected(self, ctx):
        with pytest.raises(ValueError_):
            cast(ctx, SQLString("maybe"), "BOOLEAN")

    def test_numeric_boolean(self, ctx):
        assert cast(ctx, SQLInteger(7), "BOOLEAN").value is True


class TestTemporalCasts:
    def test_date_from_string(self, ctx):
        result = cast(ctx, SQLString("2020-05-06"), "DATE")
        assert (result.year, result.month, result.day) == (2020, 5, 6)

    def test_date_with_slashes(self, ctx):
        assert parse_date_text("2020/05/06").month == 5

    def test_invalid_date_rejected(self, ctx):
        with pytest.raises(ValueError_):
            cast(ctx, SQLString("2020-02-30"), "DATE")

    def test_integer_yyyymmdd(self, ctx):
        assert cast(ctx, SQLInteger(20200506), "DATE").day == 6

    def test_time_parse(self):
        t = parse_time_text("12:30:45.5")
        assert (t.hour, t.minute, t.second) == (12, 30, 45)
        assert t.microsecond == 500000

    def test_time_out_of_range(self):
        with pytest.raises(ValueError_):
            parse_time_text("25:00:00")

    def test_datetime_parse(self):
        dt = parse_datetime_text("2020-05-06 12:30:45")
        assert dt.date.year == 2020
        assert dt.time.hour == 12

    def test_datetime_t_separator(self):
        assert parse_datetime_text("2020-05-06T01:02:03").time.minute == 2


class TestDocumentCasts:
    def test_json_from_string(self, ctx):
        result = cast(ctx, SQLString('{"a": [1, 2]}'), "JSON")
        assert result.document == {"a": [1, 2]}

    def test_json_invalid_rejected(self, ctx):
        with pytest.raises(ValueError_):
            cast(ctx, SQLString("{oops"), "JSON")

    def test_json_depth_limit_enforced(self, ctx):
        deep = "[" * 200 + "]" * 200
        with pytest.raises(ValueError_):
            cast(ctx, SQLString(deep), "JSON")

    def test_xml_from_string(self, ctx):
        result = cast(ctx, SQLString("<a><b>x</b></a>"), "XML")
        assert result.render() == "<a><b>x</b></a>"

    def test_bytes_from_string(self, ctx):
        assert cast(ctx, SQLString("ab"), "BINARY").value == b"ab"

    def test_geometry_from_wkt(self, ctx):
        result = cast(ctx, SQLString("POINT(1 2)"), "GEOMETRY")
        assert result.render() == "POINT(1 2)"


class TestInetParsing:
    def test_ipv4(self):
        assert parse_inet_text("127.0.0.1").packed == bytes([127, 0, 0, 1])

    def test_ipv4_octet_range(self):
        with pytest.raises(ValueError_):
            parse_inet_text("256.0.0.1")

    def test_ipv6_full(self):
        addr = parse_inet_text("2001:db8:0:0:0:0:0:1")
        assert addr.is_v6
        assert addr.packed[:2] == b"\x20\x01"

    def test_ipv6_compressed(self):
        assert parse_inet_text("::1").packed == b"\x00" * 15 + b"\x01"

    def test_ipv6_invalid(self):
        with pytest.raises(ValueError_):
            parse_inet_text("::1::2")

    def test_ipv6_render_roundtrip(self):
        addr = parse_inet_text("::1")
        assert parse_inet_text(addr.render()).packed == addr.packed


class TestCastOverrides:
    def test_dialect_override_takes_precedence(self):
        ctx = ExecutionContext(build_base_registry())

        def flawed(ctx_, value, tn):
            return SQLString("hijacked")

        ctx.cast_overrides["integer"] = flawed
        assert cast(ctx, SQLString("5"), "INT").value == "hijacked"

    def test_override_returning_none_falls_through(self):
        ctx = ExecutionContext(build_base_registry())
        ctx.cast_overrides["integer"] = lambda c, v, t: None
        assert cast(ctx, SQLString("5"), "INT").value == 5
