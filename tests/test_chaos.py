"""The storage chaos harness and everything it guards.

Covers the fault-injection layer itself (:mod:`repro.robustness.chaos`),
the classified sqlite I/O boundary (:mod:`repro.service.storage`), the
journal's degrade-and-resync path, the bug repository's
quarantine-and-rebuild, the :class:`~repro.service.audit.ServiceAuditor`
invariant checks and repairs, the server's degraded read-only mode over
real HTTP, priority preemption, and per-tenant resource budgets.

The crash-point kill-and-restart matrix lives in ``tests/test_service.py``
(it extends that file's durability suite); this file owns everything
below the service loop.
"""

import errno
import json
import os
import sqlite3
import threading
import time

import pytest

from repro.core import CampaignConfig
from repro.robustness.chaos import (
    SimulatedCrash,
    StorageFaultInjector,
    StorageFaultPlan,
    make_storage_injector,
)
from repro.robustness.governor import ResourceBudgets
from repro.service import BugService
from repro.service.audit import ServiceAuditor, rebuild_journal
from repro.service.bugrepo import BugRepository
from repro.service.jobs import (
    Job,
    JobStore,
    TenantBudget,
    signature_digest,
)
from repro.service.journal import JobJournal
from repro.service.scheduler import SchedulerPool, run_scheduled
from repro.service.storage import (
    CorruptionDetected,
    SqliteStorage,
    StorageUnavailable,
    crash_points,
    open_database,
)

from .test_service import _request, _wait


# ---------------------------------------------------------------------------
# fault plan parsing
# ---------------------------------------------------------------------------
class TestStorageFaultPlan:
    def test_presets_and_aliases(self):
        on = StorageFaultPlan.parse("default")
        assert on.locked_rate == 0.05
        assert on.enospc_rate == 0.0 and on.corrupt_rate == 0.0
        assert on.any_enabled
        assert StorageFaultPlan.parse("on") == on

        off = StorageFaultPlan.parse("off")
        assert not off.any_enabled
        assert StorageFaultPlan.parse("") == off

        plan = StorageFaultPlan.parse("busy=0.1,disk_full=0.01,corruption=0.002")
        assert plan.locked_rate == 0.1
        assert plan.enospc_rate == 0.01
        assert plan.corrupt_rate == 0.002

    def test_rejects_bad_specs(self):
        with pytest.raises(ValueError):
            StorageFaultPlan.parse("frobnicate=0.1")
        with pytest.raises(ValueError):
            StorageFaultPlan.parse("locked=1.5")
        with pytest.raises(ValueError):
            StorageFaultPlan(locked_rate=0.6, enospc_rate=0.6)
        with pytest.raises(ValueError):
            StorageFaultPlan(corrupt_rate=-0.1)

    def test_make_storage_injector_coercions(self):
        assert make_storage_injector(None) is None
        assert make_storage_injector("off") is None
        assert make_storage_injector(StorageFaultPlan()) is None
        built = make_storage_injector("locked=0.2", seed=7)
        assert isinstance(built, StorageFaultInjector)
        assert built.seed == 7 and built.plan.locked_rate == 0.2
        assert make_storage_injector(built) is built
        with pytest.raises(TypeError):
            make_storage_injector(object())


# ---------------------------------------------------------------------------
# the injector itself
# ---------------------------------------------------------------------------
class TestStorageFaultInjector:
    def test_same_seed_same_schedule(self):
        plan = StorageFaultPlan(locked_rate=0.3, enospc_rate=0.1)

        def schedule(seed):
            injector = StorageFaultInjector(plan, seed=seed)
            outcomes = []
            for _ in range(200):
                try:
                    injector.on_op("journal.update")
                    outcomes.append("ok")
                except sqlite3.OperationalError:
                    outcomes.append("locked")
                except OSError:
                    outcomes.append("enospc")
            return outcomes

        assert schedule(11) == schedule(11)
        assert schedule(11) != schedule(12)

    def test_crash_point_disarms_after_firing(self):
        injector = StorageFaultInjector()
        injector.arm_crash("journal.insert.pre_commit")
        injector.on_crash_point("journal.update.pre_commit")  # wrong point
        with pytest.raises(SimulatedCrash) as crashed:
            injector.on_crash_point("journal.insert.pre_commit")
        assert crashed.value.point == "journal.insert.pre_commit"
        # one death per arming: the restarted incarnation sails through
        injector.on_crash_point("journal.insert.pre_commit")
        assert injector.counters["crash"] == 1

    def test_crash_point_nth_hit(self):
        injector = StorageFaultInjector()
        injector.arm_crash("bugrepo.ingest.post_commit:3")
        injector.on_crash_point("bugrepo.ingest.post_commit")
        injector.on_crash_point("bugrepo.ingest.post_commit")
        with pytest.raises(SimulatedCrash):
            injector.on_crash_point("bugrepo.ingest.post_commit")
        with pytest.raises(ValueError):
            injector.arm_crash("")
        with pytest.raises(ValueError):
            injector.arm_crash("x.y.z:0")

    def test_enospc_prefix_scoping(self):
        injector = StorageFaultInjector()
        injector.arm_enospc("journal")
        with pytest.raises(OSError) as failed:
            injector.on_op("journal.update")
        assert failed.value.errno == errno.ENOSPC
        injector.on_op("bugrepo.ingest")      # other database unaffected
        injector.on_op("journal.load", write=False)  # reads unaffected
        injector.disarm_enospc()
        injector.on_op("journal.update")

    def test_corruption_latch_hits_reads_too(self):
        injector = StorageFaultInjector()
        injector.arm_corruption("bugrepo")
        with pytest.raises(sqlite3.DatabaseError):
            injector.on_op("bugrepo.browse", write=False)
        assert injector.is_corrupted("bugrepo")
        injector.clear_corruption("bugrepo")
        injector.on_op("bugrepo.browse", write=False)

    def test_from_env(self):
        assert StorageFaultInjector.from_env({}) is None
        injector = StorageFaultInjector.from_env({
            "REPRO_CHAOS": "locked=0.2",
            "REPRO_CHAOS_SEED": "42",
            "REPRO_CHAOS_CRASH": "journal.update.pre_commit:2",
            "REPRO_CHAOS_EXIT": "0",
        })
        assert injector is not None
        assert injector.seed == 42
        assert injector.plan.locked_rate == 0.2
        assert injector.crash_point == "journal.update.pre_commit"
        assert injector.crash_hit == 2
        assert not injector.process_exit
        # crash-only arming works without a rate spec, and the exit mode
        # defaults to a real process death for subprocess harnesses
        crash_only = StorageFaultInjector.from_env(
            {"REPRO_CHAOS_CRASH": "bugrepo.ingest.pre_commit"}
        )
        assert crash_only is not None and crash_only.process_exit

    def test_snapshot_shape(self):
        injector = StorageFaultInjector(seed=5)
        injector.arm_corruption("journal")
        snap = injector.snapshot()
        assert snap["seed"] == 5
        assert snap["corrupted"] == ["journal"]
        assert snap["crash_point"] is None
        assert isinstance(snap["counters"], dict)


# ---------------------------------------------------------------------------
# the sqlite write boundary
# ---------------------------------------------------------------------------
def _make_storage(tmp_path, chaos=None, **kwargs):
    storage = SqliteStorage(
        "journal", str(tmp_path / "boundary.sqlite"), chaos=chaos,
        locked_backoff=0.0, **kwargs,
    )
    with storage.write("setup") as db:
        db.execute("CREATE TABLE IF NOT EXISTS t (x INTEGER)")
    return storage


def _rows(storage):
    with storage.read("load") as db:
        return [row["x"] for row in db.execute("SELECT x FROM t ORDER BY x")]


class TestSqliteStorageBoundary:
    def test_crash_points_enumeration(self):
        points = crash_points()
        assert len(points) == 10
        assert "journal.insert.pre_commit" in points
        assert "bugrepo.triage.post_commit" in points
        assert all(p.endswith(("pre_commit", "post_commit")) for p in points)

    def test_pre_commit_crash_tears_the_transaction(self, tmp_path):
        chaos = StorageFaultInjector()
        storage = _make_storage(tmp_path, chaos)
        chaos.arm_crash("journal.update.pre_commit")
        with pytest.raises(SimulatedCrash):
            with storage.write("update") as db:
                db.execute("INSERT INTO t VALUES (1)")
        # torn-transaction semantics: the write vanished atomically and
        # the file is still healthy
        assert _rows(storage) == []
        assert storage.integrity_failure() is None

    def test_post_commit_crash_keeps_the_write(self, tmp_path):
        chaos = StorageFaultInjector()
        storage = _make_storage(tmp_path, chaos)
        chaos.arm_crash("journal.update.post_commit")
        with pytest.raises(SimulatedCrash):
            with storage.write("update") as db:
                db.execute("INSERT INTO t VALUES (2)")
        assert _rows(storage) == [2]

    def test_enospc_degrades_until_probe(self, tmp_path):
        chaos = StorageFaultInjector()
        storage = _make_storage(tmp_path, chaos)
        chaos.arm_enospc("journal")
        with pytest.raises(StorageUnavailable):
            with storage.write("update") as db:
                db.execute("INSERT INTO t VALUES (3)")
        health = storage.health.snapshot()
        assert health["state"] == "degraded" and not health["needs_rebuild"]
        assert not storage.probe()       # the disk is still "full"
        assert _rows(storage) == []       # reads keep working while degraded
        chaos.disarm_enospc()
        assert storage.probe()
        assert storage.health.ok
        assert storage.health.snapshot()["recoveries"] == 1

    def test_corruption_latches_until_quarantine(self, tmp_path):
        chaos = StorageFaultInjector()
        storage = _make_storage(tmp_path, chaos)
        with storage.write("update") as db:
            db.execute("INSERT INTO t VALUES (4)")
        chaos.arm_corruption("journal")
        with pytest.raises(CorruptionDetected):
            with storage.write("update") as db:
                db.execute("INSERT INTO t VALUES (5)")
        assert storage.health.snapshot()["needs_rebuild"]
        # a probe must never un-degrade a corrupt file
        assert not storage.probe()
        assert storage.integrity_failure() == "injected corruption latch"
        quarantined = storage.quarantine()
        assert quarantined == storage.path + ".corrupt-1"
        assert os.path.exists(quarantined)
        assert not os.path.exists(storage.path)
        assert not chaos.is_corrupted("journal")

    def test_transient_locked_is_absorbed(self, tmp_path):
        chaos = StorageFaultInjector(
            StorageFaultPlan(locked_rate=0.3), seed=9
        )
        storage = _make_storage(tmp_path, chaos)
        for value in range(30):
            with storage.write("update") as db:
                db.execute("INSERT INTO t VALUES (?)", (value,))
        assert _rows(storage) == list(range(30))
        assert chaos.counters.get("locked", 0) > 0
        assert storage.health.ok

    def test_persistent_lock_contention_exhausts(self, tmp_path):
        chaos = StorageFaultInjector(StorageFaultPlan(locked_rate=1.0))
        storage = _make_storage(tmp_path)
        storage.chaos = chaos  # arm after setup so the schema lands
        with pytest.raises(StorageUnavailable):
            with storage.write("update") as db:
                db.execute("INSERT INTO t VALUES (6)")
        health = storage.health.snapshot()
        assert health["state"] == "degraded"
        assert "contention" in health["reason"]

    def test_programming_errors_surface_raw(self, tmp_path):
        storage = _make_storage(tmp_path)
        with pytest.raises(sqlite3.OperationalError):
            with storage.write("update") as db:
                db.execute("INSERT INTO no_such_table VALUES (1)")


class TestOpenDatabaseContention:
    def test_locked_open_retries_until_the_writer_finishes(self, tmp_path):
        path = str(tmp_path / "contended.sqlite")
        # a plain (rollback-journal) database, so open_database's WAL
        # pragma needs the exclusive lock the holder thread is sitting on
        holder = sqlite3.connect(path)
        holder.execute("CREATE TABLE t (x)")
        holder.commit()
        holder.execute("BEGIN EXCLUSIVE")
        outcome = {}

        def opener():
            try:
                db = open_database(
                    path, timeout=0.05,
                    locked_attempts=20, locked_backoff=0.02,
                )
                (outcome["count"],) = db.execute(
                    "SELECT COUNT(*) FROM t"
                ).fetchone()
                db.close()
            except BaseException as exc:  # noqa: BLE001 - reported below
                outcome["error"] = exc

        thread = threading.Thread(target=opener)
        thread.start()
        time.sleep(0.3)
        holder.commit()  # release the exclusive lock mid-retry
        thread.join(timeout=30)
        holder.close()
        assert not thread.is_alive()
        assert outcome.get("error") is None, outcome
        assert outcome["count"] == 0

    def test_locked_open_exhausts_bounded_attempts(self, tmp_path):
        path = str(tmp_path / "stuck.sqlite")
        holder = sqlite3.connect(path)
        holder.execute("CREATE TABLE t (x)")
        holder.commit()
        holder.execute("BEGIN EXCLUSIVE")
        try:
            with pytest.raises(sqlite3.OperationalError) as failed:
                open_database(
                    path, timeout=0.01,
                    locked_attempts=2, locked_backoff=0.01,
                )
            assert "locked" in str(failed.value).lower()
        finally:
            holder.rollback()
            holder.close()


# ---------------------------------------------------------------------------
# journal degrade + resync
# ---------------------------------------------------------------------------
class TestJournalDegradedSpell:
    def test_lost_writes_resync_from_memory(self, tmp_path):
        chaos = StorageFaultInjector()
        journal = JobJournal(str(tmp_path / "jobs.sqlite"), chaos=chaos)
        store = JobStore(journal=journal)
        first = store.submit("replay", params={"dialect": "virtuoso"})
        assert len(journal.load_rows()) == 1

        chaos.arm_enospc("journal")
        second = store.submit("replay", params={"dialect": "virtuoso"})
        # the write was swallowed: memory is the source of truth, the
        # drop is counted, and the service did not crash
        assert second.state == "queued"
        health = journal.storage.health.snapshot()
        assert health["state"] == "degraded"
        assert health["lost_writes"] >= 1
        assert len(journal.load_rows()) == 1  # reads still answer

        chaos.disarm_enospc()
        assert journal.probe()
        journal.resync(
            [job.row_snapshot() for job in store.list()], at=time.time()
        )
        rows = journal.load_rows()
        assert [row["job_id"] for row in rows] == [
            first.job_id, second.job_id,
        ]
        details = [t["detail"] for t in journal.transitions(second.job_id)]
        assert "resynced after degraded storage spell" in details
        journal.close()

    def test_constructor_detects_corruption(self, tmp_path):
        path = str(tmp_path / "jobs.sqlite")
        JobJournal(path).close()
        chaos = StorageFaultInjector()
        chaos.arm_corruption("journal")
        with pytest.raises(CorruptionDetected):
            JobJournal(path, chaos=chaos)


# ---------------------------------------------------------------------------
# bug repository quarantine-and-rebuild
# ---------------------------------------------------------------------------
def _finding(statement="SELECT ABS(-1)", function="abs"):
    return {
        "dialect": "virtuoso",
        "function": function,
        "sql": statement,
        "kind": "crash",
        "label": "NPD",
        "pattern": "p1",
    }


class TestBugrepoQuarantineRebuild:
    def test_rebuild_salvages_records(self, tmp_path):
        chaos = StorageFaultInjector()
        path = str(tmp_path / "bugs.sqlite")
        repo = BugRepository(path, minimize=False, chaos=chaos)
        repo.record_finding(_finding(), campaign_id="job-0001")
        repo.record_finding(_finding("SELECT LEN('x')", "len"))
        assert repo.count() == 2

        chaos.arm_corruption("bugrepo")
        with pytest.raises(CorruptionDetected):
            repo.count()
        assert repo.integrity_failure() == "injected corruption latch"

        quarantined, salvaged = repo.quarantine_and_rebuild()
        assert quarantined == path + ".corrupt-1"
        assert salvaged == 2
        assert repo.count() == 2
        assert repo.storage.health.ok
        # the dedup identity survived the rebuild
        _, created = repo.record_finding(_finding())
        assert not created

    def test_constructor_corruption_raises(self, tmp_path):
        path = str(tmp_path / "bugs.sqlite")
        BugRepository(path, minimize=False)
        chaos = StorageFaultInjector()
        chaos.arm_corruption("bugrepo")
        with pytest.raises(CorruptionDetected):
            BugRepository(path, minimize=False, chaos=chaos)


# ---------------------------------------------------------------------------
# the invariant auditor
# ---------------------------------------------------------------------------
def _seed_journal(tmp_path, mutate=None):
    """A journal holding one legally-transitioned job; *mutate* edits the
    final row/transition shape before close."""
    path = str(tmp_path / "jobs.sqlite")
    journal = JobJournal(path)
    job = Job("job-0001", "replay", params={"dialect": "virtuoso"}, seq=1)
    journal.insert(job.to_row())
    if mutate is not None:
        mutate(journal, job)
    journal.close()
    return path


class TestServiceAuditor:
    def test_clean_store_passes(self, tmp_path):
        data = tmp_path / "data"
        journal = JobJournal(str(data / "jobs.sqlite"))
        store = JobStore(journal=journal)
        store.submit("replay", params={"dialect": "virtuoso"})
        journal.close()
        BugRepository(str(data / "bugs.sqlite"), minimize=False)
        report = ServiceAuditor(data_dir=str(data)).run()
        assert report.ok
        assert report.findings == []
        assert set(report.checks) >= {
            "journal.integrity", "bugrepo.integrity",
            "journal.transitions", "journal.leases",
            "checkpoints.resume", "bugrepo.dedup",
        }

    def test_illegal_transition_fails_loudly(self, tmp_path):
        def mutate(journal, job):
            row = dict(job.to_row(), state="done")
            journal.update(row, transition="completed", at=time.time())

        _seed_journal(tmp_path, mutate)
        report = ServiceAuditor(data_dir=str(tmp_path)).run(repair=True)
        assert not report.ok  # no automatic repair for a lying journal
        details = [f.detail for f in report.errors]
        assert any("illegal transition" in d for d in details)

    def test_stale_lease_repair_requeues(self, tmp_path):
        def mutate(journal, job):
            row = dict(
                job.to_row(), state="running", started_at=time.time(),
                lease_owner="worker-0", lease_seq=1,
                lease_expires=time.time() - 60.0,
            )
            journal.update(row, transition="claimed by worker-0", at=time.time())

        _seed_journal(tmp_path, mutate)
        auditor = ServiceAuditor(data_dir=str(tmp_path))
        report = auditor.run(repair=True)
        assert report.ok
        lease = [f for f in report.findings if f.check == "journal.leases"]
        assert len(lease) == 1 and lease[0].repaired

        reopened = JobJournal(str(tmp_path / "jobs.sqlite"))
        (row,) = reopened.load_rows()
        assert row["state"] == "queued"
        assert row["retries"] == 1
        details = [t["detail"] for t in reopened.transitions("job-0001")]
        assert "reclaimed by audit" in details
        reopened.close()
        # the repaired journal now audits clean
        assert ServiceAuditor(data_dir=str(tmp_path)).run().ok

    def test_stale_lease_with_exhausted_retries_fails_terminally(self, tmp_path):
        def mutate(journal, job):
            row = dict(
                job.to_row(), state="running", started_at=time.time(),
                retries=2, max_retries=2,
                lease_owner="worker-0", lease_seq=1,
                lease_expires=time.time() - 60.0,
            )
            journal.update(row, transition="claimed by worker-0", at=time.time())

        _seed_journal(tmp_path, mutate)
        report = ServiceAuditor(data_dir=str(tmp_path)).run(repair=True)
        assert report.ok
        reopened = JobJournal(str(tmp_path / "jobs.sqlite"))
        (row,) = reopened.load_rows()
        assert row["state"] == "failed"
        assert "retries exhausted" in row["error"]
        reopened.close()

    def test_unloadable_resume_pointer_is_stripped(self, tmp_path):
        missing = str(tmp_path / "nowhere.ckpt")

        def mutate(journal, job):
            job.params["resume"] = missing
            journal.update(job.to_row())

        _seed_journal(tmp_path, mutate)
        report = ServiceAuditor(data_dir=str(tmp_path)).run(repair=True)
        assert report.ok
        resume = [f for f in report.findings if f.check == "checkpoints.resume"]
        assert len(resume) == 1 and resume[0].repaired
        reopened = JobJournal(str(tmp_path / "jobs.sqlite"))
        (row,) = reopened.load_rows()
        assert "resume" not in json.loads(row["params"])
        reopened.close()

    def test_orphan_sidecars_reported_and_swept(self, tmp_path):
        ckpt = tmp_path / "checkpoints"
        ckpt.mkdir()
        live = ckpt / "job-0001.ckpt"
        live.write_text("{}")
        (ckpt / "job-0001.ckpt.shard0").write_text("{}")
        orphan = ckpt / "job-9999.ckpt"
        orphan.write_text("{}")

        def mutate(journal, job):
            row = dict(job.to_row(), checkpoint_path=str(live))
            journal.update(row)

        _seed_journal(tmp_path, mutate)
        report = ServiceAuditor(data_dir=str(tmp_path)).run()
        orphans = [
            f for f in report.findings if f.check == "checkpoints.orphans"
        ]
        assert [f.subject for f in orphans] == [str(orphan)]
        assert orphans[0].severity == "warning"
        assert report.ok  # warnings never fail the audit
        assert orphan.exists()  # report-only without repair

        swept = ServiceAuditor(data_dir=str(tmp_path)).run(repair=True)
        assert swept.repaired_count == 1
        assert not orphan.exists()
        # the live job's sidecar and its shard companion survive
        assert live.exists() and (ckpt / "job-0001.ckpt.shard0").exists()

    def test_duplicate_dedup_keys_merge(self, tmp_path):
        # a salvage-rebuild is where duplicates sneak in; fabricate that
        # state with a bugs table missing its UNIQUE constraint
        path = str(tmp_path / "bugs.sqlite")
        db = sqlite3.connect(path)
        db.execute(
            "CREATE TABLE bugs ("
            " id INTEGER PRIMARY KEY AUTOINCREMENT,"
            " dialect TEXT NOT NULL, function TEXT NOT NULL,"
            " statement TEXT NOT NULL, kinds TEXT NOT NULL,"
            " labels TEXT NOT NULL, pattern TEXT NOT NULL DEFAULT '',"
            " peer TEXT NOT NULL DEFAULT '', message TEXT NOT NULL DEFAULT '',"
            " raw_sql TEXT NOT NULL DEFAULT '',"
            " triage TEXT NOT NULL DEFAULT 'new',"
            " last_status TEXT NOT NULL DEFAULT 'fires',"
            " occurrences INTEGER NOT NULL DEFAULT 1,"
            " campaigns TEXT NOT NULL DEFAULT '[]',"
            " created_at REAL NOT NULL, updated_at REAL NOT NULL)"
        )
        now = time.time()
        for kinds, campaigns, occurrences in (
            ('["crash"]', '["job-0001"]', 2),
            ('["divergence"]', '["job-0002"]', 3),
        ):
            db.execute(
                "INSERT INTO bugs (dialect, function, statement, kinds,"
                " labels, campaigns, occurrences, created_at, updated_at)"
                " VALUES ('virtuoso', 'abs', 'SELECT ABS(-1)', ?,"
                " '[\"NPD\"]', ?, ?, ?, ?)",
                (kinds, campaigns, occurrences, now, now),
            )
        db.commit()
        db.close()

        report = ServiceAuditor(data_dir=str(tmp_path)).run(repair=True)
        dedup = [f for f in report.findings if f.check == "bugrepo.dedup"]
        assert len(dedup) == 1 and dedup[0].repaired
        assert report.ok
        repo = BugRepository(path, minimize=False)
        records = repo.list()
        assert len(records) == 1
        merged = records[0]
        assert sorted(merged.kinds) == ["crash", "divergence"]
        assert sorted(merged.campaigns) == ["job-0001", "job-0002"]
        assert merged.occurrences == 5
        assert ServiceAuditor(data_dir=str(tmp_path)).run().ok

    def test_rebuild_journal_salvages_rows(self, tmp_path):
        path = str(tmp_path / "jobs.sqlite")
        journal = JobJournal(path)
        store = JobStore(journal=journal)
        store.submit("replay", params={"dialect": "virtuoso"})
        store.submit("replay", params={"dialect": "duckdb"})
        journal.close()

        quarantined, salvaged = rebuild_journal(path)
        assert quarantined == path + ".corrupt-1"
        assert salvaged == 2
        rebuilt = JobJournal(path)
        rows = rebuilt.load_rows()
        assert [row["job_id"] for row in rows] == ["job-0001", "job-0002"]
        details = [t["detail"] for t in rebuilt.transitions("job-0001")]
        assert details[0].startswith("resynced")
        rebuilt.close()
        # the salvaged journal passes the transition-chain check
        assert ServiceAuditor(data_dir=str(tmp_path)).run().ok

    def test_audit_cli(self, tmp_path, capsys):
        from repro.cli import main

        data = tmp_path / "data"
        journal = JobJournal(str(data / "jobs.sqlite"))
        store = JobStore(journal=journal)
        store.submit("replay", params={"dialect": "virtuoso"})
        journal.close()
        assert main(["audit", "--data-dir", str(data)]) == 0
        out = capsys.readouterr().out
        assert "audit passed" in out
        assert main(["audit", "--data-dir", str(tmp_path / "absent")]) == 1


# ---------------------------------------------------------------------------
# degraded read-only mode over real HTTP
# ---------------------------------------------------------------------------
class TestDegradedService:
    def test_enospc_turns_mutations_503_and_recovers(self, tmp_path):
        chaos = StorageFaultInjector()
        svc = BugService(str(tmp_path / "data"), chaos=chaos).start()
        try:
            replay = {"kind": "replay", "dialect": "virtuoso"}
            status, first = _request(svc, "POST", "/jobs", replay)
            assert status == 200
            _wait(svc, first["id"])  # quiesce: no in-flight journal writes

            chaos.arm_enospc("journal")
            # the first submission after the disk "fills" still passes
            # the gate (health was ok); its journal write is swallowed
            # and counted, and the job keeps running from memory
            status, lost = _request(svc, "POST", "/jobs", replay)
            assert status == 200

            # now the journal is degraded: mutations are refused...
            status, refused = _request(svc, "POST", "/jobs", replay)
            assert status == 503
            assert "degraded" in refused["error"]
            status, cancel = _request(
                svc, "POST", f"/jobs/{lost['id']}/cancel", {}
            )
            assert status == 503

            # ...while reads keep answering
            status, listing = _request(svc, "GET", "/jobs")
            assert status == 200
            assert len(listing["jobs"]) == 2
            status, health = _request(svc, "GET", "/health")
            assert status == 200
            assert health["status"] == "degraded"
            journal_health = health["storage"]["journal"]
            assert journal_health["state"] == "degraded"
            assert journal_health["lost_writes"] >= 1

            # the disk frees up: the next mutation probes, resyncs the
            # journal from memory, and goes through
            chaos.disarm_enospc()
            status, after = _request(svc, "POST", "/jobs", replay)
            assert status == 200
            status, health = _request(svc, "GET", "/health")
            assert health["status"] == "ok"
            assert health["storage"]["journal"]["state"] == "ok"
            lost_id = lost["id"]
        finally:
            svc.stop()
        # the lost job was resynced into the journal from memory
        journal = JobJournal(str(tmp_path / "data" / "jobs.sqlite"))
        rows = {row["job_id"]: row for row in journal.load_rows()}
        assert lost_id in rows
        details = [
            t["detail"] for t in journal.transitions(lost_id)
        ]
        assert any(d.startswith("resynced") for d in details)
        journal.close()

    def test_corrupt_bugrepo_quarantined_at_boot(self, tmp_path):
        data = tmp_path / "data"
        repo = BugRepository(str(data / "bugs.sqlite"), minimize=False)
        repo.record_finding(_finding())
        chaos = StorageFaultInjector()
        chaos.arm_corruption("bugrepo")
        svc = BugService(str(data), chaos=chaos).start()
        try:
            status, health = _request(svc, "GET", "/health")
            assert status == 200
            assert health["rebuilds"]["bugrepo"]["salvaged"] == 1
            assert health["storage"]["bugrepo"]["state"] == "ok"
            assert health["status"] == "ok"
            assert health["audit"]["ok"]
            status, listing = _request(svc, "GET", "/bugs")
            assert status == 200 and len(listing["bugs"]) == 1
        finally:
            svc.stop()
        assert os.path.exists(str(data / "bugs.sqlite.corrupt-1"))

    def test_live_corruption_degrades_triage(self, tmp_path):
        data = tmp_path / "data"
        chaos = StorageFaultInjector()
        svc = BugService(str(data), chaos=chaos, minimize=False).start()
        try:
            chaos.arm_corruption("bugrepo")
            status, refused = _request(
                svc, "POST", "/bugs/1/triage", {"status": "confirmed"}
            )
            assert status == 503
            # reads of the other subsystem still answer
            status, _ = _request(svc, "GET", "/jobs")
            assert status == 200
        finally:
            chaos.clear_corruption("bugrepo")
            svc.stop()


# ---------------------------------------------------------------------------
# priority preemption
# ---------------------------------------------------------------------------
def _wait_for(predicate, deadline=60.0, message="condition"):
    end = time.monotonic() + deadline
    while time.monotonic() < end:
        if predicate():
            return
        time.sleep(0.02)
    raise AssertionError(f"timed out waiting for {message}")


def _pool_fixture(tmp_path, **store_kwargs):
    journal = JobJournal(str(tmp_path / "jobs.sqlite"))
    store = JobStore(
        journal=journal,
        checkpoint_dir=str(tmp_path / "ckpt"),
        backoff_base=0.0,
        **store_kwargs,
    )
    repo = BugRepository(str(tmp_path / "bugs.sqlite"), minimize=False)
    pool = SchedulerPool(store, repo, workers=1).start()
    return journal, store, pool


class TestPreemption:
    LOW = CampaignConfig(dialect="virtuoso", budget=4000, checkpoint_every=200)
    HIGH = CampaignConfig(dialect="virtuoso", budget=500)

    def test_higher_priority_preempts_and_resume_is_identical(self, tmp_path):
        journal, store, pool = _pool_fixture(tmp_path)
        try:
            low = store.submit("campaign", config=self.LOW, priority=0)
            _wait_for(
                lambda: low.progress.get("position", 0) >= 400,
                message="the low-priority campaign to pass two checkpoints",
            )
            high = store.submit("campaign", config=self.HIGH, priority=5)
            _wait_for(
                lambda: high.state == "done",
                message="the high-priority campaign to finish first",
            )
            _wait_for(
                lambda: low.state == "done",
                message="the preempted campaign to resume and finish",
            )
        finally:
            pool.stop(drain=False)
        assert store.preemption_count >= 1
        assert high.finished_at < low.finished_at
        # no retry burned: preemption is a graceful requeue, not a failure
        assert low.retries == 0
        details = [t["detail"] for t in journal.transitions(low.job_id)]
        journal.close()
        assert "preempted by higher-priority job" in details
        # the checkpoint-resumed run is signature-identical to an
        # uninterrupted control
        control = run_scheduled(self.LOW)
        assert low.summary["signature_digest"] == signature_digest(control)
        assert high.summary["signature_digest"] == signature_digest(
            run_scheduled(self.HIGH)
        )

    def test_non_preemptible_jobs_run_to_completion(self, tmp_path):
        shielded = CampaignConfig(
            dialect="virtuoso", budget=3000, preemptible=False
        )
        journal, store, pool = _pool_fixture(tmp_path)
        try:
            low = store.submit("campaign", config=shielded, priority=0)
            _wait_for(
                lambda: low.state == "running"
                and low.progress.get("position", 0) >= 200,
                message="the shielded campaign to get going",
            )
            high = store.submit(
                "campaign", config=self.HIGH, priority=5
            )
            _wait_for(
                lambda: low.state == "done" and high.state == "done",
                message="both campaigns to finish",
            )
        finally:
            pool.stop(drain=False)
            journal.close()
        assert store.preemption_count == 0
        assert low.finished_at < high.finished_at
        assert low.retries == 0

    def test_equal_priority_never_preempts(self, tmp_path):
        journal, store, pool = _pool_fixture(tmp_path)
        try:
            first = store.submit("campaign", config=self.LOW, priority=3)
            _wait_for(
                lambda: first.state == "running"
                and first.progress.get("position", 0) >= 200,
                message="the first campaign to get going",
            )
            second = store.submit("campaign", config=self.HIGH, priority=3)
            _wait_for(
                lambda: first.state == "done" and second.state == "done",
                message="both campaigns to finish",
            )
        finally:
            pool.stop(drain=False)
            journal.close()
        assert store.preemption_count == 0
        assert first.finished_at < second.finished_at

    def test_store_level_disable(self, tmp_path):
        journal, store, pool = _pool_fixture(tmp_path, preemption=False)
        try:
            low = store.submit("campaign", config=self.LOW, priority=0)
            _wait_for(
                lambda: low.state == "running"
                and low.progress.get("position", 0) >= 200,
                message="the low campaign to get going",
            )
            high = store.submit("campaign", config=self.HIGH, priority=5)
            _wait_for(
                lambda: low.state == "done" and high.state == "done",
                message="both campaigns to finish",
            )
        finally:
            pool.stop(drain=False)
            journal.close()
        assert store.preemption_count == 0
        assert low.finished_at < high.finished_at


# ---------------------------------------------------------------------------
# per-tenant budgets
# ---------------------------------------------------------------------------
class TestTenantBudgets:
    def test_parse(self):
        budget = TenantBudget.parse("statements=10000,rows=5000")
        assert budget.statements == 10000
        assert budget.budgets is not None and budget.budgets.rows == 5000
        assert TenantBudget.parse("off") == TenantBudget()
        assert not TenantBudget.parse("").enabled
        with pytest.raises(ValueError):
            TenantBudget.parse("statements=0")
        with pytest.raises(ValueError):
            TenantBudget.parse("statements=1.5")
        with pytest.raises(ValueError):
            TenantBudget.parse("statements=10,statements=20")
        with pytest.raises(ValueError):
            TenantBudget(statements=-5)

    def test_statement_allowance_exhausts_terminally(self, tmp_path):
        journal, store, pool = _pool_fixture(
            tmp_path, tenant_budget=TenantBudget.parse("statements=1000")
        )
        config = CampaignConfig(dialect="virtuoso", budget=600)
        try:
            first = store.submit(
                "campaign", config=config, submitter="alice"
            )
            _wait_for(lambda: first.state == "done", message="alice's first run")
            assert store.tenant_usage() == {"alice": 600}

            second = store.submit(
                "campaign", config=config, submitter="alice"
            )
            _wait_for(
                lambda: second.state == "failed",
                message="alice's over-budget run to fail",
            )
            # terminal on the first attempt: no retries burned against a
            # budget that cannot un-exhaust itself
            assert second.retries == 0
            assert second.error.startswith("resource_exhausted")
            assert "400 of 1000" in second.error

            # budgets are per-submitter: bob is unaffected
            third = store.submit("campaign", config=config, submitter="bob")
            _wait_for(lambda: third.state == "done", message="bob's run")
        finally:
            pool.stop(drain=False)
        details = [t["detail"] for t in journal.transitions(second.job_id)]
        journal.close()
        assert "failed" in details

    def test_tenant_ceilings_override_submitted_budgets(self):
        store = JobStore(
            tenant_budget=TenantBudget(
                budgets=ResourceBudgets.parse("rows=5000")
            )
        )
        submitted = CampaignConfig(
            dialect="virtuoso", budget=100, budgets="rows=999999"
        )
        caged = store.apply_tenant_budgets(submitted)
        assert caged.budgets.rows == 5000
        # without a tenant ceiling the submitted spec stands
        assert JobStore().apply_tenant_budgets(submitted).budgets.rows == 999999

    def test_denial_message_and_charging(self):
        store = JobStore(tenant_budget=TenantBudget(statements=500))
        job = Job(
            "job-0001", "campaign",
            config=CampaignConfig(dialect="virtuoso", budget=600),
        )
        denial = store.tenant_denial(job)
        assert denial is not None and "resource_exhausted" in denial
        small = Job(
            "job-0002", "campaign",
            config=CampaignConfig(dialect="virtuoso", budget=400),
            submitter="alice",
        )
        assert store.tenant_denial(small) is None
        store.charge_tenant("alice", 400)
        assert store.tenant_denial(small) is not None
        # replay jobs carry no config and are never budget-gated
        replay = Job("job-0003", "replay")
        assert store.tenant_denial(replay) is None
