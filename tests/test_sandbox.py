"""Tests for the execution sandbox: resource governor, subprocess workers,
crash-loop containment, and their campaign/parallel integration."""

import pytest

from repro.core.campaign import Campaign, run_campaign
from repro.core.collect import SeedCollector
from repro.core.config import CampaignConfig
from repro.core.runner import Runner
from repro.dialects import dialect_by_name
from repro.engine.errors import ResourceError, ResourceExhausted, SQLError
from repro.robustness import (
    ContainmentState,
    ResourceBudgets,
    SandboxConfig,
    SandboxedConnection,
    make_sandbox_config,
)
from repro.robustness.sandbox import WorkerCrashed, WorkerHung


def first_seed(dialect_name="mariadb"):
    """The first seed-phase statement of a campaign (deterministic)."""
    seed = SeedCollector(dialect_by_name(dialect_name)).collect()[0]
    return f"SELECT {seed.sql};", seed.family


# ---------------------------------------------------------------------------
# resource governor
# ---------------------------------------------------------------------------
class TestResourceBudgets:
    def test_parse_round_trip(self):
        budgets = ResourceBudgets.parse("depth=64,rows=5000,bytes=1048576")
        assert budgets.depth == 64
        assert budgets.rows == 5000
        assert budgets.bytes == 1048576
        assert ResourceBudgets.parse(budgets.to_spec()) == budgets

    def test_parse_rejects_bad_specs(self):
        with pytest.raises(ValueError, match="unknown budget"):
            ResourceBudgets.parse("stack=64")
        with pytest.raises(ValueError, match="duplicate budget"):
            ResourceBudgets.parse("depth=64,depth=32")
        with pytest.raises(ValueError, match="must be an integer"):
            ResourceBudgets.parse("rows=nan")
        with pytest.raises(ValueError, match="positive integer"):
            ResourceBudgets.parse("rows=0")

    def test_disabled_by_default(self):
        assert not ResourceBudgets().enabled
        assert ResourceBudgets.parse("off") == ResourceBudgets()


class TestResourceGovernor:
    def test_depth_budget_contains_stack_overflow_bug(self):
        # MARIADB-AGGR-004 (MEDIAN) is an injected stack-overflow crash;
        # a depth budget converts the blow-up into resource_exhausted
        runner = Runner(dialect_by_name("mariadb"), budgets="depth=64")
        outcome = runner.run("SELECT MEDIAN(999999999999999);")
        assert outcome.kind == "resource_exhausted"
        assert runner.fault_counters.get("governor.depth") == 1
        # the server survives — no restart was needed
        assert runner.run("SELECT 1;").kind == "ok"

    def test_rows_budget_trips_on_cross_join(self):
        runner = Runner(dialect_by_name("postgresql"), budgets="rows=100")
        sql = (
            "SELECT 1 FROM (SELECT 1 UNION ALL SELECT 2 UNION ALL SELECT 3 "
            "UNION ALL SELECT 4 UNION ALL SELECT 5) a, "
            "(SELECT 1 UNION ALL SELECT 2 UNION ALL SELECT 3 "
            "UNION ALL SELECT 4 UNION ALL SELECT 5) b, "
            "(SELECT 1 UNION ALL SELECT 2 UNION ALL SELECT 3 "
            "UNION ALL SELECT 4 UNION ALL SELECT 5) c;"
        )
        outcome = runner.run(sql)
        assert outcome.kind == "resource_exhausted"
        assert runner.fault_counters.get("governor.rows") == 1

    def test_budgets_off_is_byte_identical(self):
        base = run_campaign("duckdb", budget=500)
        explicit = run_campaign("duckdb", budget=500, budgets=None,
                                sandbox=False)
        assert explicit.signature() == base.signature()
        assert not explicit.sandbox_active


# ---------------------------------------------------------------------------
# the subprocess worker
# ---------------------------------------------------------------------------
class TestSandboxedConnection:
    def test_execute_mirrors_connection_contract(self):
        sandbox = SandboxedConnection("mariadb")
        try:
            result = sandbox.execute("SELECT UPPER('a');")
            assert result.rows
            with pytest.raises(SQLError):
                sandbox.execute("SELECT NO_SUCH_FN(1);")
            with pytest.raises(ResourceError):
                sandbox.execute("SELECT REPEAT('a', 9999999999);")
        finally:
            sandbox.close()

    def test_crash_and_restart_round_trip(self):
        from repro.engine.connection import ServerCrashed

        sandbox = SandboxedConnection("mariadb")
        try:
            with pytest.raises(ServerCrashed) as excinfo:
                sandbox.execute("SELECT REVERSE('');")
            assert excinfo.value.crash.code == "NPD"
            assert excinfo.value.crash.backtrace  # survives the wire
            sandbox.restart_server()
            assert sandbox.execute("SELECT 1;").rows
        finally:
            sandbox.close()

    def test_triggered_functions_relayed_to_sink(self):
        sandbox = SandboxedConnection("mariadb")
        sink = set()
        sandbox.triggered_sink = sink
        try:
            sandbox.execute("SELECT UPPER('a');")
            assert "upper" in sink
        finally:
            sandbox.close()

    def test_worker_kill_surfaces_as_crash_then_recovers(self):
        sandbox = SandboxedConnection("mariadb")
        try:
            assert sandbox.execute("SELECT 1;").rows
            sandbox.kill_worker()
            with pytest.raises(WorkerCrashed):
                sandbox.execute("SELECT 1;")
            assert sandbox.worker_deaths == 1
            assert sandbox.respawns == 1
            # the respawned worker serves a fresh server
            assert sandbox.execute("SELECT 1;").rows
        finally:
            sandbox.close()

    def test_blown_wall_deadline_sigkills_the_worker(self):
        config = SandboxConfig(wall_deadline_seconds=1e-05)
        sandbox = SandboxedConnection("mariadb", config=config)
        try:
            with pytest.raises(WorkerHung):
                sandbox.execute("SELECT 1;")
            assert sandbox.kills == 1
            assert sandbox.respawns == 1
        finally:
            sandbox.close()

    def test_oversized_reply_becomes_resource_error(self):
        config = SandboxConfig(max_message_bytes=4096)
        sandbox = SandboxedConnection("mariadb", config=config)
        try:
            with pytest.raises(ResourceError, match="channel cap"):
                sandbox.execute("SELECT REPEAT('a', 100000);")
            # the worker survived: only the reply was refused
            assert sandbox.worker_deaths == 0
            assert sandbox.execute("SELECT 1;").rows
        finally:
            sandbox.close()

    def test_budgets_apply_inside_the_worker(self):
        sandbox = SandboxedConnection(
            "mariadb", budgets=ResourceBudgets.parse("depth=64")
        )
        try:
            with pytest.raises(ResourceExhausted) as excinfo:
                sandbox.execute("SELECT MEDIAN(999999999999999);")
            assert excinfo.value.budget == "depth"
        finally:
            sandbox.close()

    def test_make_sandbox_config_coercion(self):
        assert make_sandbox_config(None) is None
        assert make_sandbox_config(False) is None
        assert make_sandbox_config(True) == SandboxConfig()
        config = SandboxConfig(breaker_threshold=5)
        assert make_sandbox_config(config) is config
        with pytest.raises(TypeError):
            make_sandbox_config("yes")


class TestRunnerSandboxOutcomes:
    def test_worker_death_is_harness_crash_outcome(self):
        runner = Runner(dialect_by_name("mariadb"), sandbox=True)
        try:
            assert runner.run("SELECT 1;").kind == "ok"
            runner.sandbox.kill_worker()
            outcome = runner.run("SELECT 2;")
            assert outcome.kind == "harness_crash"
            assert runner.fault_counters.get("sandbox.worker_deaths") == 1
            assert runner.fault_counters.get("sandbox.respawns") == 1
            # campaign keeps going on the respawned worker
            assert runner.run("SELECT 3;").kind == "ok"
        finally:
            runner.close()

    def test_sandbox_excludes_faults_and_coverage(self):
        dialect = dialect_by_name("mariadb")
        with pytest.raises(ValueError, match="mutually exclusive"):
            Runner(dialect, sandbox=True, faults="default")
        with pytest.raises(ValueError, match="coverage"):
            Runner(dialect_by_name("mariadb"), sandbox=True,
                   enable_coverage=True)


# ---------------------------------------------------------------------------
# crash-loop containment
# ---------------------------------------------------------------------------
class TestContainmentState:
    def test_breaker_opens_after_threshold_consecutive_kills(self):
        state = ContainmentState(breaker_threshold=3)
        for i in range(3):
            assert state.should_skip(f"SELECT {i};", "string") is None
            state.observe("harness_crash", f"SELECT {i};", "string", "boom")
        assert state.open_breakers == ["string"]
        assert "circuit breaker open" in state.should_skip(
            "SELECT fresh;", "string"
        )
        # other families are unaffected
        assert state.should_skip("SELECT 9;", "numeric") is None

    def test_success_resets_a_closed_breaker(self):
        state = ContainmentState(breaker_threshold=3)
        state.observe("harness_crash", "SELECT a;", "string", "boom")
        state.observe("harness_crash", "SELECT b;", "string", "boom")
        state.observe("ok", "SELECT c;", "string")
        state.observe("harness_crash", "SELECT d;", "string", "boom")
        assert state.open_breakers == []

    def test_quarantined_statement_with_open_breaker_skips_once(self):
        state = ContainmentState(breaker_threshold=1)
        state.observe("harness_crash", "SELECT kill;", "string", "boom")
        assert state.open_breakers == ["string"]
        # the statement is both quarantined and in an open-breaker family:
        # one skip decision, one reason (quarantine wins)
        reason = state.should_skip("SELECT kill;", "string")
        assert reason.startswith("quarantined:")
        state.note_skip()
        assert state.skipped == 1

    def test_export_restore_round_trip(self):
        state = ContainmentState(breaker_threshold=2, quarantine=("SELECT q;",))
        state.observe("harness_crash", "SELECT a;", "string", "boom")
        state.observe("harness_crash", "SELECT b;", "string", "boom")
        state.note_skip()
        restored = ContainmentState()
        restored.restore_state(state.export_state())
        assert restored.quarantine == state.quarantine
        assert restored.skipped == 1
        assert restored.open_breakers == ["string"]
        # restored breakers stay open
        assert restored.should_skip("SELECT x;", "string") is not None

    def test_merge_unions_quarantine_and_or_opens_breakers(self):
        parent = ContainmentState(breaker_threshold=2)
        shard_a = ContainmentState(breaker_threshold=2)
        shard_a.observe("harness_crash", "SELECT a;", "string", "boom")
        shard_a.observe("harness_crash", "SELECT b;", "string", "boom")
        shard_a.note_skip()
        shard_b = ContainmentState(breaker_threshold=2)
        shard_b.observe("harness_crash", "SELECT c;", "json", "boom")
        parent.merge([shard_a.export_state(), shard_b.export_state()])
        assert set(parent.quarantine) == {"SELECT a;", "SELECT b;", "SELECT c;"}
        assert parent.skipped == 1
        assert parent.open_breakers == ["string"]


# ---------------------------------------------------------------------------
# campaign integration
# ---------------------------------------------------------------------------
class TestSandboxCampaign:
    def test_sandboxed_campaign_matches_in_process_results(self):
        plain = run_campaign("postgresql", budget=300)
        boxed = run_campaign("postgresql", budget=300, sandbox=True)
        assert dict(boxed.outcomes) == dict(plain.outcomes)
        assert [b.sql for b in boxed.bugs] == [b.sql for b in plain.bugs]
        assert boxed.triggered_functions == plain.triggered_functions
        assert boxed.sandbox_active and not plain.sandbox_active

    def test_quarantined_statement_is_skipped_not_executed(self):
        sql0, _family = first_seed("mariadb")
        config = SandboxConfig(quarantine=(sql0,))
        result = run_campaign("mariadb", budget=300, sandbox=config)
        assert result.outcomes.get("skipped", 0) >= 1
        assert result.skipped_statements == result.outcomes["skipped"]
        assert result.quarantined_statements >= 1
        # a skipped statement spends its stream slot: the budget caps
        # processed positions so serial and sharded runs stay in lockstep
        assert result.queries_executed == 300 - result.skipped_statements
        assert sum(result.outcomes.values()) == 300

    def test_quarantine_plus_open_breaker_skips_exactly_once(self):
        # a statement that is BOTH quarantined and in an open-breaker
        # family must produce exactly one skipped outcome — adding the
        # quarantine on top of the breaker changes nothing in the stream
        sql0, family = first_seed("mariadb")

        def campaign(quarantine):
            c = Campaign(
                dialect_by_name("mariadb"),
                config=CampaignConfig(
                    dialect="mariadb", budget=300,
                    sandbox=SandboxConfig(breaker_threshold=1,
                                          quarantine=quarantine),
                ),
            )
            c.containment.observe(
                "harness_crash", "SELECT never_generated;", family, "boom"
            )
            assert c.containment.open_breakers == [family]
            return c.run()

        breaker_only = campaign(())
        both = campaign((sql0,))
        assert breaker_only.outcomes["skipped"] >= 1
        assert dict(both.outcomes) == dict(breaker_only.outcomes)
        assert both.skipped_statements == breaker_only.skipped_statements
        assert both.open_breakers == [family]

    def test_containment_survives_checkpoint_resume(self, tmp_path):
        sql0, _family = first_seed("duckdb")
        path = str(tmp_path / "sandbox.ckpt")
        kwargs = dict(budget=400, seed=3,
                      sandbox=SandboxConfig(quarantine=(sql0,)))
        full = run_campaign("duckdb", checkpoint=path, checkpoint_every=150,
                            **kwargs)
        resumed = run_campaign("duckdb", resume=path, **kwargs)
        assert resumed.signature() == full.signature()
        assert resumed.skipped_statements == full.skipped_statements >= 1

    def test_campaign_rejects_sandbox_with_faults(self):
        with pytest.raises(ValueError, match="mutually exclusive"):
            run_campaign("mariadb", budget=100, sandbox=True, faults="default")


class TestParallelSandboxCampaign:
    def test_jobs4_sandbox_matches_serial_signature(self):
        from repro.perf import run_parallel_campaign

        serial = run_campaign("postgresql", budget=300, sandbox=True)
        parallel = run_parallel_campaign("postgresql", jobs=4, budget=300,
                                         sandbox=True)
        assert parallel.signature() == serial.signature()

    def test_jobs4_quarantine_skips_exactly_once(self):
        from repro.perf import run_parallel_campaign

        sql0, _family = first_seed("mariadb")
        config = SandboxConfig(quarantine=(sql0,))
        serial = run_campaign("mariadb", budget=300, sandbox=config)
        parallel = run_parallel_campaign("mariadb", jobs=4, budget=300,
                                         sandbox=config)
        # the quarantined statement is skipped once across ALL shards —
        # exactly as often as the serial stream skips it
        assert parallel.skipped_statements == serial.skipped_statements >= 1
        assert parallel.signature() == serial.signature()

    def test_parallel_rejects_sandbox_with_faults(self):
        from repro.perf import run_parallel_campaign

        with pytest.raises(ValueError, match="mutually exclusive"):
            run_parallel_campaign("mariadb", jobs=2, budget=100,
                                  sandbox=True, faults="default")
