"""Unit tests for the SQL lexer."""

import pytest

from repro.sqlast.lexer import LexError, tokenize
from repro.sqlast.tokens import TokenKind


def kinds(sql):
    return [t.kind for t in tokenize(sql)][:-1]  # drop EOF


def texts(sql):
    return [t.text for t in tokenize(sql)][:-1]


class TestBasicTokens:
    def test_empty_input_yields_only_eof(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].kind is TokenKind.EOF

    def test_identifier(self):
        assert kinds("hello") == [TokenKind.IDENT]

    def test_identifier_with_underscore_and_digits(self):
        assert texts("foo_bar42") == ["foo_bar42"]

    def test_integer(self):
        assert kinds("42") == [TokenKind.INTEGER]

    def test_decimal_with_point(self):
        assert kinds("4.2") == [TokenKind.DECIMAL]

    def test_decimal_leading_point(self):
        assert kinds(".5") == [TokenKind.DECIMAL]

    def test_exponent_literal_is_decimal(self):
        assert kinds("1e10") == [TokenKind.DECIMAL]

    def test_exponent_with_sign(self):
        assert texts("1.5e-3") == ["1.5e-3"]

    def test_e_suffix_without_digits_is_not_exponent(self):
        # "1e" must lex as number then identifier, not explode
        assert kinds("1e ") == [TokenKind.INTEGER, TokenKind.IDENT]

    def test_hex_literal(self):
        tokens = tokenize("0x1F")
        assert tokens[0].kind is TokenKind.INTEGER
        assert tokens[0].text == "0x1F"

    def test_very_long_integer_is_preserved_verbatim(self):
        digits = "9" * 200
        assert texts(digits) == [digits]


class TestStrings:
    def test_simple_string(self):
        tokens = tokenize("'abc'")
        assert tokens[0].kind is TokenKind.STRING
        assert tokens[0].text == "abc"

    def test_empty_string(self):
        assert tokenize("''")[0].text == ""

    def test_doubled_quote_escape(self):
        assert tokenize("'it''s'")[0].text == "it's"

    def test_backslash_escapes(self):
        assert tokenize(r"'a\nb'")[0].text == "a\nb"

    def test_backslash_unknown_escape_is_literal(self):
        assert tokenize(r"'a\qb'")[0].text == "a\\qb"

    def test_unterminated_string_raises(self):
        with pytest.raises(LexError):
            tokenize("'abc")

    def test_dollar_quoted_string(self):
        tokens = tokenize("$$hello$$")
        assert tokens[0].kind is TokenKind.STRING
        assert tokens[0].text == "hello"

    def test_tagged_dollar_quote(self):
        assert tokenize("$tag$a$b$tag$")[0].text == "a$b"

    def test_hex_string_literal(self):
        tokens = tokenize("x'414243'")
        assert tokens[0].kind is TokenKind.STRING

    def test_quoted_identifier_double_quotes(self):
        tokens = tokenize('"my col"')
        assert tokens[0].kind is TokenKind.IDENT
        assert tokens[0].text == "my col"
        assert tokens[0].quoted

    def test_backtick_identifier(self):
        assert tokenize("`weird name`")[0].text == "weird name"


class TestCommentsAndWhitespace:
    def test_line_comment_skipped(self):
        assert texts("1 -- comment\n2") == ["1", "2"]

    def test_line_comment_at_eof(self):
        assert texts("1 -- trailing") == ["1"]

    def test_block_comment(self):
        assert texts("1 /* x */ 2") == ["1", "2"]

    def test_nested_block_comment(self):
        assert texts("1 /* a /* b */ c */ 2") == ["1", "2"]

    def test_unterminated_block_comment_raises(self):
        with pytest.raises(LexError):
            tokenize("1 /* oops")

    def test_all_whitespace_kinds(self):
        assert texts("1\t2\r\n3\f4") == ["1", "2", "3", "4"]


class TestOperators:
    def test_multichar_operators_greedy(self):
        assert texts("a::int") == ["a", "::", "int"]

    def test_comparison_operators(self):
        assert texts("a <= b >= c <> d != e") == [
            "a", "<=", "b", ">=", "c", "<>", "d", "!=", "e"
        ]

    def test_concat_operator(self):
        assert texts("a || b") == ["a", "||", "b"]

    def test_json_arrow_operators(self):
        assert texts("a -> b ->> c") == ["a", "->", "b", "->>", "c"]

    def test_null_safe_equals(self):
        assert texts("a <=> b") == ["a", "<=>", "b"]

    def test_keyword_helpers(self):
        token = tokenize("SELECT")[0]
        assert token.is_keyword("select")
        assert token.is_keyword("SELECT")
        assert not token.is_keyword("FROM")

    def test_quoted_identifier_is_not_keyword(self):
        token = tokenize('"SELECT"')[0]
        assert not token.is_keyword("SELECT")

    def test_positions_recorded(self):
        tokens = tokenize("ab  cd")
        assert tokens[0].pos == 0
        assert tokens[1].pos == 4
