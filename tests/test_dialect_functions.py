"""Behavioural tests for dialect-specific functions and inventories —
the reference (non-flawed) paths of each simulated DBMS."""

import pytest

from repro.dialects import dialect_by_name


def connect(name):
    return dialect_by_name(name).create_server().connect()


def one(conn, expr):
    return conn.execute(f"SELECT {expr};").rows[0][0].render()


class TestMySQLSpecific:
    @pytest.fixture(scope="class")
    def conn(self):
        return connect("mysql")

    def test_name_const_returns_value(self, conn):
        assert one(conn, "NAME_CONST('n', 42)") == "42"

    def test_name_const_rejects_null_name(self, conn):
        from repro.engine.errors import ValueError_

        with pytest.raises(ValueError_):
            conn.execute("SELECT NAME_CONST(NULL, 1);")

    def test_lock_lifecycle(self, conn):
        assert one(conn, "GET_LOCK('l1', 0)") == "1"
        assert one(conn, "IS_USED_LOCK('l1')") == "1"
        assert one(conn, "RELEASE_LOCK('l1')") == "1"
        assert one(conn, "RELEASE_LOCK('l1')") == "0"
        assert one(conn, "IS_USED_LOCK('l1')") == "NULL"

    def test_format_bytes(self, conn):
        assert one(conn, "FORMAT_BYTES(1048576)") == "1.00 MiB"
        assert one(conn, "FORMAT_BYTES(10)") == "10.00 bytes"

    def test_mysql_aliases(self, conn):
        assert one(conn, "UCASE('ab')") == "AB"
        assert one(conn, "LCASE('AB')") == "ab"
        assert one(conn, "LOCALTIME()") == "2024-06-15 12:30:45"

    def test_mysql_has_no_sequences(self, conn):
        from repro.engine.errors import NameError_

        with pytest.raises(NameError_):
            conn.execute("SELECT NEXTVAL('s');")


class TestClickHouseSpecific:
    @pytest.fixture(scope="class")
    def conn(self):
        return connect("clickhouse")

    def test_to_int_family(self, conn):
        assert one(conn, "toInt32('42')") == "42"
        assert one(conn, "toInt64OrNull('abc')") == "NULL"

    def test_to_string(self, conn):
        assert one(conn, "toString(1.5)") == "1.5"

    def test_temporal_camelcase(self, conn):
        assert one(conn, "toYear('2020-05-06')") == "2020"
        assert one(conn, "toDayOfWeek('2020-05-06')") == "4"

    def test_array_combinators(self, conn):
        assert one(conn, "arraySlice([1, 2, 3, 4], 2, 3)") == "[2, 3]"
        assert one(conn, "arraySum([1, 2])") == "3"

    def test_json_extract_family(self, conn):
        assert one(conn, "JSONLength('[1, 2]')") == "2"
        assert one(conn, "isValidJSON('{}')") == "true"

    def test_decimal256_cast_semantics(self, conn):
        # Decimal256(S): the single parameter is the scale, precision 76
        assert one(conn, "'1.5'::Decimal256(3)") == "1.500"

    def test_todecimalstring_normal_path(self, conn):
        assert one(conn, "toDecimalString(64.32, 5)") == "64.32000"

    def test_ipv4_conversions(self, conn):
        assert one(conn, "IPv4NumToString(2130706433)") == "127.0.0.1"


class TestVirtuosoSpecific:
    @pytest.fixture(scope="class")
    def conn(self):
        return connect("virtuoso")

    def test_contains_normal(self, conn):
        assert one(conn, "CONTAINS('hello world', 'world')") == "1"
        assert one(conn, "CONTAINS('hello', 'xyz')") == "0"

    def test_registry_round_trip(self, conn):
        assert one(conn, "REGISTRY_SET('k', 'v')") == "1"
        assert one(conn, "REGISTRY_GET('k')") == "v"

    def test_iri_interning(self, conn):
        first = one(conn, "IRI_TO_ID('http://example.org/a')")
        again = one(conn, "IRI_TO_ID('http://example.org/a')")
        assert first == again
        assert one(conn, f"ID_TO_IRI({first})") == "http://example.org/a"

    def test_id_to_iri_unknown_is_null(self, conn):
        assert one(conn, "ID_TO_IRI(424242)") == "NULL"

    def test_blob_round_trip(self, conn):
        assert one(conn, "BLOB_TO_STRING(STRING_TO_BLOB('ab'))") == "ab"

    def test_log_enable_returns_previous(self, conn):
        assert one(conn, "LOG_ENABLE(2)") == "1"
        assert one(conn, "LOG_ENABLE(3)") == "2"

    def test_log_enable_range_checked(self, conn):
        from repro.engine.errors import ValueError_

        with pytest.raises(ValueError_):
            conn.execute("SELECT LOG_ENABLE(7);")

    def test_exec_syntax_checks(self, conn):
        from repro.engine.errors import ValueError_

        assert one(conn, "EXEC('SELECT 1')") == "0"
        with pytest.raises(ValueError_):
            conn.execute("SELECT EXEC('SELEKT;;;');")

    def test_trx_status(self, conn):
        assert one(conn, "TRX_STATUS(3)") == "IDLE"

    def test_checkpoint_interval(self, conn):
        assert one(conn, "CHECKPOINT_INTERVAL(30)") == "60"
        assert one(conn, "CHECKPOINT_INTERVAL(45)") == "30"


class TestMonetDBRestrictions:
    @pytest.fixture(scope="class")
    def conn(self):
        return connect("monetdb")

    def test_no_xml_functions(self, conn):
        from repro.engine.errors import NameError_

        with pytest.raises(NameError_):
            conn.execute("SELECT EXTRACTVALUE('<a/>', '/a');")

    def test_no_dynamic_columns(self, conn):
        from repro.engine.errors import NameError_

        with pytest.raises(NameError_):
            conn.execute("SELECT COLUMN_CREATE('x', 1);")

    def test_core_analytics_work(self, conn):
        assert one(conn, "ROUND(1.256, 2)") == "1.26"
        assert one(conn, "MEDIAN(4)") == "4.0"

    def test_kept_spatial_subset(self, conn):
        assert one(conn, "ST_X(POINT(3, 4))") == "3.0"
        from repro.engine.errors import NameError_

        with pytest.raises(NameError_):
            conn.execute("SELECT ST_CENTROID(POINT(1, 2));")

    def test_str_to_date_kept_for_format_seeds(self, conn):
        assert one(conn, "STR_TO_DATE('2020-05-06', '%Y-%m-%d')") == "2020-05-06"


class TestPostgresSpecific:
    @pytest.fixture(scope="class")
    def conn(self):
        return connect("postgresql")

    def test_jsonb_aliases(self, conn):
        assert one(conn, "JSONB_BUILD_ARRAY(1, 2)") == "[1, 2]"
        assert one(conn, "JSONB_PRETTY('[1]')").startswith("[")

    def test_date_part(self, conn):
        assert one(conn, "DATE_PART('year', '2020-05-06')") == "2020"

    def test_wide_numerics_allowed(self, conn):
        # PostgreSQL's numeric is effectively unbounded
        wide = "9" * 90
        assert one(conn, f"CAST({wide} AS DECIMAL(100, 0))") == wide

    def test_json_depth_guard_is_the_cve_fix(self, conn):
        from repro.engine.errors import ValueError_

        deep = "[" * 100 + "]" * 100
        with pytest.raises(ValueError_):
            conn.execute(f"SELECT CAST('{deep}' AS JSON);")

    def test_no_mysql_isms(self, conn):
        from repro.engine.errors import NameError_

        with pytest.raises(NameError_):
            conn.execute("SELECT INET6_ATON('::1');")


class TestDuckDBSpecific:
    @pytest.fixture(scope="class")
    def conn(self):
        return connect("duckdb")

    def test_list_aliases(self, conn):
        assert one(conn, "LIST_LENGTH([1, 2])") == "2"
        assert one(conn, "LIST_SORT([2, 1])") == "[1, 2]"

    def test_map_surface(self, conn):
        assert one(conn, "MAP_KEYS(MAP {1: 'a'})") == "[1]"

    def test_no_benchmark_function(self, conn):
        from repro.engine.errors import NameError_

        with pytest.raises(NameError_):
            conn.execute("SELECT BENCHMARK(1, 1);")
