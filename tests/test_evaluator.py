"""Unit tests for the expression evaluator (operators, NULL logic, LIKE)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.context import ExecutionContext
from repro.engine.errors import (
    DivisionByZeroError_,
    NameError_,
    TypeError_,
    ValueError_,
)
from repro.engine.evaluator import Evaluator, RowScope, compare_values, like_match
from repro.engine.functions import build_base_registry
from repro.engine.values import (
    NULL,
    SQLDate,
    SQLInteger,
    SQLRow,
    SQLString,
)
from repro.sqlast import parse_expression


@pytest.fixture()
def ctx():
    return ExecutionContext(build_base_registry())


def ev(ctx, sql, scope=None):
    return Evaluator(ctx, scope=scope).eval(parse_expression(sql))


class TestArithmetic:
    def test_integer_addition(self, ctx):
        assert ev(ctx, "1 + 2").value == 3

    def test_precedence(self, ctx):
        assert ev(ctx, "2 + 3 * 4").value == 14

    def test_integer_division_exact(self, ctx):
        assert ev(ctx, "10 / 2").value == 5

    def test_integer_division_fractional(self, ctx):
        assert ev(ctx, "10 / 4").render() == "2.5"

    def test_div_keyword(self, ctx):
        assert ev(ctx, "7 DIV 2").value == 3

    def test_mod(self, ctx):
        assert ev(ctx, "7 % 3").value == 1

    def test_mod_negative_truncates_like_c(self, ctx):
        assert ev(ctx, "-7 % 3").value == -1

    def test_division_by_zero_is_handled_error(self, ctx):
        with pytest.raises(DivisionByZeroError_):
            ev(ctx, "1 / 0")

    def test_bigint_overflow_rejected(self, ctx):
        with pytest.raises(ValueError_):
            ev(ctx, "9223372036854775807 + 1")

    def test_decimal_promotion(self, ctx):
        assert ev(ctx, "1 + 0.5").render() == "1.5"

    def test_string_promotes_to_double(self, ctx):
        assert ev(ctx, "'2' * 3").value == 6.0

    def test_unary_negation(self, ctx):
        assert ev(ctx, "-(1 + 2)").value == -3

    def test_bitwise_ops(self, ctx):
        assert ev(ctx, "6 & 3").value == 2
        assert ev(ctx, "6 | 1").value == 7
        assert ev(ctx, "1 << 4").value == 16

    def test_wide_integer_literal_becomes_decimal(self, ctx):
        value = ev(ctx, "9" * 30)
        assert value.type_name == "decimal"

    def test_exponent_literal_is_double(self, ctx):
        assert ev(ctx, "1e3").type_name == "double"


class TestNullLogic:
    def test_null_propagates_through_arithmetic(self, ctx):
        assert ev(ctx, "1 + NULL").is_null

    def test_three_valued_and(self, ctx):
        assert ev(ctx, "FALSE AND NULL").render() == "false"
        assert ev(ctx, "TRUE AND NULL").is_null

    def test_three_valued_or(self, ctx):
        assert ev(ctx, "TRUE OR NULL").render() == "true"
        assert ev(ctx, "FALSE OR NULL").is_null

    def test_comparison_with_null_is_null(self, ctx):
        assert ev(ctx, "1 = NULL").is_null

    def test_null_safe_equals(self, ctx):
        assert ev(ctx, "NULL <=> NULL").render() == "true"
        assert ev(ctx, "1 <=> NULL").render() == "false"

    def test_is_null_operator(self, ctx):
        assert ev(ctx, "NULL IS NULL").render() == "true"
        assert ev(ctx, "1 IS NOT NULL").render() == "true"

    def test_in_with_null_member(self, ctx):
        assert ev(ctx, "3 IN (1, 2, NULL)").is_null
        assert ev(ctx, "1 IN (1, NULL)").render() == "true"


class TestComparisons:
    def test_string_number_coercion(self, ctx):
        assert ev(ctx, "'10' = 10").render() == "true"

    def test_between(self, ctx):
        assert ev(ctx, "5 BETWEEN 1 AND 10").render() == "true"
        assert ev(ctx, "5 NOT BETWEEN 1 AND 10").render() == "false"

    def test_case_searched(self, ctx):
        assert ev(ctx, "CASE WHEN 1 > 2 THEN 'a' ELSE 'b' END").value == "b"

    def test_case_with_operand(self, ctx):
        assert ev(ctx, "CASE 2 WHEN 1 THEN 'a' WHEN 2 THEN 'b' END").value == "b"

    def test_case_no_match_no_else_is_null(self, ctx):
        assert ev(ctx, "CASE 9 WHEN 1 THEN 'a' END").is_null

    def test_row_comparison_elementwise(self, ctx):
        a = SQLRow((SQLInteger(1), SQLInteger(2)))
        b = SQLRow((SQLInteger(1), SQLInteger(3)))
        assert compare_values(ctx, a, b) < 0

    def test_row_comparison_can_be_disabled(self, ctx):
        ctx.set_config("row_comparison", "off")
        a = SQLRow((SQLInteger(1),))
        with pytest.raises(TypeError_):
            compare_values(ctx, a, a)

    def test_date_vs_string(self, ctx):
        assert compare_values(ctx, SQLDate(2020, 1, 2), SQLString("2020-01-02")) == 0

    def test_incomparable_types_raise(self, ctx):
        from repro.engine.values import SQLArray

        with pytest.raises(TypeError_):
            compare_values(ctx, SQLArray(()), SQLInteger(1))


class TestScopesAndColumns:
    def test_column_lookup(self, ctx):
        scope = RowScope({"c0": SQLInteger(7)})
        assert ev(ctx, "c0 + 1", scope).value == 8

    def test_qualified_lookup(self, ctx):
        scope = RowScope({"t.c0": SQLInteger(7)})
        assert ev(ctx, "t.c0", scope).value == 7

    def test_parent_scope(self, ctx):
        outer = RowScope({"x": SQLInteger(1)})
        inner = RowScope({"y": SQLInteger(2)}, parent=outer)
        assert ev(ctx, "x + y", inner).value == 3

    def test_unknown_column(self, ctx):
        with pytest.raises(NameError_):
            ev(ctx, "nope", RowScope({}))

    def test_no_scope_at_all(self, ctx):
        with pytest.raises(NameError_):
            ev(ctx, "c0")


class TestTemporalArithmetic:
    def test_date_plus_interval_day(self, ctx):
        result = ev(ctx, "DATE('2020-01-30') + INTERVAL 3 DAY")
        assert result.render() == "2020-02-02"

    def test_date_plus_interval_month_clamps(self, ctx):
        result = ev(ctx, "DATE('2020-01-31') + INTERVAL 1 MONTH")
        assert result.render() == "2020-02-29"

    def test_date_minus_date_is_days(self, ctx):
        assert ev(ctx, "DATE('2020-01-10') - DATE('2020-01-01')").value == 9

    def test_interval_year(self, ctx):
        result = ev(ctx, "DATE('2020-02-29') + INTERVAL 1 YEAR")
        assert result.render() == "2021-02-28"


class TestConstructors:
    def test_row(self, ctx):
        assert ev(ctx, "ROW(1, 'a')").render() == "(1, 'a')"

    def test_array_index_one_based(self, ctx):
        assert ev(ctx, "[10, 20, 30][2]").value == 20

    def test_array_index_out_of_bounds_is_null(self, ctx):
        assert ev(ctx, "[10][5]").is_null

    def test_map_index(self, ctx):
        assert ev(ctx, "MAP {1: 'a'}[1]").value == "a"

    def test_string_subscript(self, ctx):
        assert ev(ctx, "'hello'[1]").value == "h"

    def test_like_operator(self, ctx):
        assert ev(ctx, "'hello' LIKE 'h%o'").render() == "true"
        assert ev(ctx, "'hello' NOT LIKE 'x%'").render() == "true"


class TestLikeMatch:
    @pytest.mark.parametrize("pattern,text,expected", [
        ("abc", "abc", True),
        ("abc", "abd", False),
        ("a%", "abc", True),
        ("%c", "abc", True),
        ("%b%", "abc", True),
        ("a_c", "abc", True),
        ("a_c", "ac", False),
        ("%", "", True),
        ("", "", True),
        ("", "x", False),
        ("%%", "anything", True),
        (r"100\%", "100%", True),
        (r"100\%", "1000", False),
        ("a%b%c", "axxbyyc", True),
    ])
    def test_cases(self, pattern, text, expected):
        assert like_match(pattern, text) is expected

    @given(st.text(alphabet="ab%_", max_size=12), st.text(alphabet="ab", max_size=12))
    @settings(max_examples=300)
    def test_matches_regex_oracle(self, pattern, text):
        """like_match agrees with a regex translation of the pattern."""
        import re

        regex = "^"
        for ch in pattern:
            if ch == "%":
                regex += ".*"
            elif ch == "_":
                regex += "."
            else:
                regex += re.escape(ch)
        regex += "$"
        assert like_match(pattern, text) == bool(re.match(regex, text, re.S))


class TestFunctionDispatch:
    def test_unknown_function(self, ctx):
        with pytest.raises(NameError_):
            ev(ctx, "NO_SUCH_FUNCTION(1)")

    def test_arity_checked(self, ctx):
        with pytest.raises(TypeError_):
            ev(ctx, "LENGTH()")

    def test_functions_are_recorded(self, ctx):
        ev(ctx, "LENGTH('abc')")
        assert "length" in ctx.triggered_functions

    def test_aggregate_over_scalar_context(self, ctx):
        assert ev(ctx, "AVG(4)").render() == "4"

    def test_count_star_scalar_context(self, ctx):
        assert ev(ctx, "COUNT(*)").value == 1

    def test_python_domain_errors_become_sql_errors(self, ctx):
        # COT near a pole produces a math domain issue internally
        result_or_error = None
        try:
            ev(ctx, "COT(0)")
        except (ValueError_, DivisionByZeroError_) as exc:
            result_or_error = exc
        assert result_or_error is not None
