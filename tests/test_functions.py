"""Behavioural tests for the reference built-in function implementations."""

import pytest

from repro.dialects.base import Dialect
from repro.engine.errors import SQLError, TypeError_, ValueError_


@pytest.fixture(scope="module")
def conn():
    return Dialect().create_server().connect()


def one(conn, expr):
    return conn.execute(f"SELECT {expr};").rows[0][0].render()


class TestStringFunctions:
    @pytest.mark.parametrize("expr,expected", [
        ("LENGTH('héllo')", "6"),            # bytes
        ("CHAR_LENGTH('héllo')", "5"),       # characters
        ("UPPER('abc')", "ABC"),
        ("LOWER('ABC')", "abc"),
        ("CONCAT('a', 1, 'b')", "a1b"),
        ("CONCAT_WS('-', 'a', NULL, 'b')", "a-b"),
        ("SUBSTRING('hello', 2, 3)", "ell"),
        ("SUBSTRING('hello', -3)", "llo"),
        ("SUBSTRING('hello', 0)", "hello"),
        ("LEFT('hello', 2)", "he"),
        ("RIGHT('hello', 2)", "lo"),
        ("RIGHT('hello', 0)", ""),
        ("REPEAT('ab', 3)", "ababab"),
        ("REPEAT('ab', -1)", ""),
        ("REPLACE('aaa', 'a', 'bb')", "bbbbbb"),
        ("REPLACE('abc', '', 'x')", "abc"),
        ("REVERSE('abc')", "cba"),
        ("TRIM('  x  ')", "x"),
        ("LTRIM('  x')", "x"),
        ("RTRIM('x  ')", "x"),
        ("LPAD('5', 3, '0')", "005"),
        ("LPAD('abcdef', 3, '0')", "abc"),
        ("RPAD('5', 3, '0')", "500"),
        ("INSTR('hello', 'll')", "3"),
        ("INSTR('hello', 'z')", "0"),
        ("LOCATE('l', 'hello', 4)", "4"),
        ("ASCII('A')", "65"),
        ("ASCII('')", "0"),
        ("CHR(65)", "A"),
        ("SPACE(3)", "   "),
        ("STRCMP('a', 'b')", "-1"),
        ("HEX('AB')", "4142"),
        ("HEX(255)", "FF"),
        ("ELT(2, 'a', 'b', 'c')", "b"),
        ("ELT(9, 'a')", "NULL"),
        ("FIELD('b', 'a', 'b')", "2"),
        ("INSERT('hello', 2, 2, 'XY')", "hXYlo"),
        ("QUOTE('it''s')", "'it''s'"),
        ("TRANSLATE('abc', 'ab', 'xy')", "xyc"),
        ("INITCAP('hello world')", "Hello World"),
        ("SPLIT_PART('a,b,c', ',', 2)", "b"),
        ("STARTS_WITH('hello', 'he')", "true"),
        ("ENDS_WITH('hello', 'lo')", "true"),
        ("SOUNDEX('Robert')", "R163"),
        ("BIT_LENGTH('a')", "8"),
        ("MD5('abc')", "900150983cd24fb0d6963f7d28e17f72"),
        ("TO_BASE64('abc')", "YWJj"),
    ])
    def test_reference_behaviour(self, conn, expr, expected):
        assert one(conn, expr) == expected

    def test_null_propagation(self, conn):
        assert one(conn, "UPPER(NULL)") == "NULL"
        assert one(conn, "REPEAT(NULL, 3)") == "NULL"

    def test_star_rejected(self, conn):
        with pytest.raises(TypeError_):
            conn.execute("SELECT UPPER(*);")

    def test_repeat_resource_guard(self, conn):
        from repro.engine.errors import ResourceError

        with pytest.raises(ResourceError):
            conn.execute("SELECT REPEAT('a', 9999999999);")

    def test_format_german_locale(self, conn):
        assert one(conn, "FORMAT(1234.5, 2, 'de_DE')") == "1.234,50"

    def test_format_clamps_decimals(self, conn):
        # the *fixed* behaviour: >38 digits clamps instead of overflowing
        assert len(one(conn, "FORMAT(0, 50)")) < 60


class TestMathFunctions:
    @pytest.mark.parametrize("expr,expected", [
        ("ABS(-5)", "5"),
        ("SIGN(-2.5)", "-1"),
        ("CEIL(1.2)", "2"),
        ("FLOOR(-1.2)", "-2"),
        ("ROUND(1.256, 2)", "1.26"),
        ("ROUND(15, -1)", "20"),
        ("TRUNCATE(1.999, 1)", "1.9"),
        ("SQRT(16)", "4.0"),
        ("MOD(10, 3)", "1"),
        ("GCD(12, 18)", "6"),
        ("LCM(4, 6)", "12"),
        ("FACTORIAL(5)", "120"),
        ("BIT_COUNT(7)", "3"),
        ("GREATEST(1, 5, 3)", "5"),
        ("LEAST(1, 5, 3)", "1"),
        ("LOG2(8)", "3.0"),
        ("POWER(2, 10)", "1024.0"),
    ])
    def test_reference_behaviour(self, conn, expr, expected):
        assert one(conn, expr) == expected

    def test_sqrt_negative_is_null(self, conn):
        assert one(conn, "SQRT(-1)") == "NULL"

    def test_ln_nonpositive_is_null(self, conn):
        assert one(conn, "LN(0)") == "NULL"

    def test_factorial_range_checked(self, conn):
        with pytest.raises(ValueError_):
            conn.execute("SELECT FACTORIAL(25);")

    def test_rand_seeded_deterministic(self, conn):
        assert one(conn, "RAND(42)") == one(conn, "RAND(42)")

    def test_mod_by_zero_handled(self, conn):
        from repro.engine.errors import DivisionByZeroError_

        with pytest.raises(DivisionByZeroError_):
            conn.execute("SELECT MOD(1, 0);")


class TestDateFunctions:
    @pytest.mark.parametrize("expr,expected", [
        ("YEAR('2020-05-06')", "2020"),
        ("MONTH('2020-05-06')", "5"),
        ("DAY('2020-05-06')", "6"),
        ("DAYOFWEEK('2020-05-06')", "4"),      # Wednesday
        ("WEEKDAY('2020-05-06')", "2"),
        ("DAYNAME('2020-05-06')", "Wednesday"),
        ("MONTHNAME('2020-05-06')", "May"),
        ("DAYOFYEAR('2020-02-01')", "32"),
        ("QUARTER('2020-05-06')", "2"),
        ("HOUR('12:30:45')", "12"),
        ("MINUTE('12:30:45')", "30"),
        ("SECOND('12:30:45')", "45"),
        ("DATEDIFF('2020-05-06', '2020-05-01')", "5"),
        ("LAST_DAY('2020-02-10')", "2020-02-29"),
        ("MAKEDATE(2020, 32)", "2020-02-01"),
        ("MAKETIME(10, 30, 0)", "10:30:00"),
        ("IS_LEAP_YEAR(2024)", "true"),
        ("EXTRACT('year', '2020-05-06')", "2020"),
        ("DATE_FORMAT('2020-05-06', '%Y/%m')", "2020/05"),
        ("FROM_UNIXTIME(0)", "1970-01-01 00:00:00"),
        ("DATE_ADD('2020-01-30', INTERVAL 3 DAY)", "2020-02-02"),
    ])
    def test_reference_behaviour(self, conn, expr, expected):
        assert one(conn, expr) == expected

    def test_invalid_date_rejected(self, conn):
        with pytest.raises(ValueError_):
            conn.execute("SELECT YEAR('2020-13-01');")

    def test_now_is_deterministic(self, conn):
        assert one(conn, "NOW()") == "2024-06-15 12:30:45"


class TestJsonFunctions:
    @pytest.mark.parametrize("expr,expected", [
        ("JSON_VALID('{\"a\": 1}')", "true"),
        ("JSON_VALID('{oops')", "false"),
        ("JSON_LENGTH('[1, 2, 3]')", "3"),
        ("JSON_LENGTH('{\"a\": 1}', '$.a')", "1"),
        ("JSON_DEPTH('[[1]]')", "3"),
        ("JSON_TYPE('[1]')", "ARRAY"),
        ("JSON_TYPE('1.5')", "DOUBLE"),
        ("JSON_EXTRACT('{\"a\": [1, 2]}', '$.a[1]')", "2"),
        ("JSON_KEYS('{\"a\": 1, \"b\": 2}')", '["a", "b"]'),
        ("JSON_QUOTE('a\"b')", '"a\\"b"'),
        ("JSON_UNQUOTE('\"abc\"')", "abc"),
        ("JSON_CONTAINS('[1, 2]', '1')", "true"),
        ("JSON_CONTAINS('[1, 2]', '9')", "false"),
        ("JSON_MERGE('[1]', '[2]')", "[1, 2]"),
        ("JSON_ARRAY(1, 'a', NULL)", '[1, "a", null]'),
        ("JSON_OBJECT('a', 1)", '{"a": 1}'),
        ("JSON_SET('{\"a\": 1}', '$.a', 2)", '{"a": 2}'),
        ("JSON_REMOVE('{\"a\": 1, \"b\": 2}', '$.a')", '{"b": 2}'),
        ("COLUMN_JSON(COLUMN_CREATE('x', 1))", '{"x": 1}'),
        ("COLUMN_GET(COLUMN_CREATE('x', 7), 'x')", "7"),
    ])
    def test_reference_behaviour(self, conn, expr, expected):
        assert one(conn, expr) == expected

    def test_invalid_json_rejected(self, conn):
        with pytest.raises(ValueError_):
            conn.execute("SELECT JSON_LENGTH('{oops');")

    def test_invalid_path_rejected(self, conn):
        with pytest.raises(ValueError_):
            conn.execute("SELECT JSON_EXTRACT('[1]', 'nope');")


class TestXmlFunctions:
    @pytest.mark.parametrize("expr,expected", [
        ("EXTRACTVALUE('<a><b>x</b></a>', '/a/b')", "x"),
        ("EXTRACTVALUE('<a><b>1</b><b>2</b></a>', '/a/b[2]')", "2"),
        ("UPDATEXML('<a><c></c></a>', '/a/c', '<b></b>')", "<a><b></b></a>"),
        ("XML_VALID('<a/>')", "true"),
        ("XML_VALID('<a>')", "false"),
        ("XMLELEMENT('x', 'body')", "<x>body</x>"),
    ])
    def test_reference_behaviour(self, conn, expr, expected):
        assert one(conn, expr) == expected


class TestArrayMapFunctions:
    @pytest.mark.parametrize("expr,expected", [
        ("ARRAY_LENGTH([1, 2, 3])", "3"),
        ("ARRAY_APPEND([1], 2)", "[1, 2]"),
        ("ARRAY_PREPEND(0, [1])", "[0, 1]"),
        ("ARRAY_CONCAT([1], [2, 3])", "[1, 2, 3]"),
        ("ARRAY_CONTAINS([1, 2], 2)", "true"),
        ("ARRAY_POSITION([5, 6], 6)", "2"),
        ("ARRAY_SLICE([1, 2, 3, 4], 2, 3)", "[2, 3]"),
        ("ARRAY_REVERSE([1, 2])", "[2, 1]"),
        ("ARRAY_DISTINCT([1, 1, 2])", "[1, 2]"),
        ("ARRAY_SORT([3, 1, 2])", "[1, 2, 3]"),
        ("ELEMENT_AT([10, 20], 2)", "20"),
        ("ELEMENT_AT([10, 20], -1)", "20"),
        ("ARRAY_SUM([1, 2, 3])", "6"),
        ("ARRAY_MIN([3, 1])", "1"),
        ("ARRAY_MAX([3, 1])", "3"),
        ("ARRAY_FLATTEN([[1], [2, 3]])", "[1, 2, 3]"),
        ("RANGE(1, 4)", "[1, 2, 3]"),
        ("MAP_KEYS(MAP {1: 'a'})", "[1]"),
        ("MAP_VALUES(MAP {1: 'a'})", "['a']"),
        ("MAP_SIZE(MAP {1: 'a', 2: 'b'})", "2"),
        ("MAP_CONTAINS(MAP {1: 'a'}, 1)", "true"),
        ("MAP_FROM_ARRAYS([1], ['x'])", "{1: 'x'}"),
    ])
    def test_reference_behaviour(self, conn, expr, expected):
        assert one(conn, expr) == expected

    def test_element_at_out_of_bounds_errors(self, conn):
        with pytest.raises(ValueError_):
            conn.execute("SELECT ELEMENT_AT([1], 5);")

    def test_map_from_mismatched_arrays(self, conn):
        with pytest.raises(ValueError_):
            conn.execute("SELECT MAP_FROM_ARRAYS([1, 2], ['a']);")


class TestSpatialInetFunctions:
    @pytest.mark.parametrize("expr,expected", [
        ("ST_ASTEXT(ST_GEOMFROMTEXT('POINT(1 2)'))", "POINT(1 2)"),
        ("ST_X(POINT(1, 2))", "1.0"),
        ("ST_Y(POINT(1, 2))", "2.0"),
        ("ST_LENGTH(ST_GEOMFROMTEXT('LINESTRING(0 0, 3 4)'))", "5.0"),
        ("ST_AREA(ST_GEOMFROMTEXT('POLYGON((0 0, 4 0, 4 4, 0 4, 0 0))'))", "16.0"),
        ("ST_ISCLOSED(ST_GEOMFROMTEXT('LINESTRING(0 0, 1 1, 0 0)'))", "true"),
        ("ST_NPOINTS(ST_GEOMFROMTEXT('LINESTRING(0 0, 1 1)'))", "2"),
        ("ST_DISTANCE(POINT(0, 0), POINT(3, 4))", "5.0"),
        ("ST_GEOMETRYTYPE(POINT(1, 2))", "POINT"),
        ("INET_ATON('0.0.1.0')", "256"),
        ("INET_NTOA(2130706433)", "127.0.0.1"),
        ("IS_IPV4('1.2.3.4')", "true"),
        ("IS_IPV6('::1')", "true"),
        ("IS_IPV6('1.2.3.4')", "false"),
        ("INET6_NTOA(INET6_ATON('127.0.0.1'))", "127.0.0.1"),
    ])
    def test_reference_behaviour(self, conn, expr, expected):
        assert one(conn, expr) == expected

    def test_boundary_of_open_linestring(self, conn):
        result = one(conn, "ST_ASTEXT(BOUNDARY(ST_GEOMFROMTEXT('LINESTRING(0 0, 1 1)')))")
        assert result == "MULTIPOINT(0 0, 1 1)"

    def test_boundary_requires_geometry(self, conn):
        with pytest.raises(SQLError):
            conn.execute("SELECT BOUNDARY(123);")


class TestConditionSystemFunctions:
    @pytest.mark.parametrize("expr,expected", [
        ("COALESCE(NULL, NULL, 3)", "3"),
        ("COALESCE(NULL)", "NULL"),
        ("IFNULL(NULL, 'x')", "x"),
        ("IFNULL(1, 'x')", "1"),
        ("NULLIF(1, 1)", "NULL"),
        ("NULLIF(1, 2)", "1"),
        ("IF(1 > 0, 'yes', 'no')", "yes"),
        ("ISNULL(NULL)", "1"),
        ("INTERVAL(3, 1, 2, 5)", "2"),
        ("CHOOSE(2, 'a', 'b')", "b"),
        ("TYPEOF(1.5)", "decimal"),
        ("TO_CHAR(123.45)", "123.45"),
        ("TO_NUMBER('12.5')", "12.5"),
        ("TODECIMALSTRING(64.32, 5)", "64.32000"),
        ("CRC32('abc')", "891568578"),
        ("SLEEP(0)", "0"),
        ("BENCHMARK(10, 1)", "0"),
    ])
    def test_reference_behaviour(self, conn, expr, expected):
        assert one(conn, expr) == expected

    def test_interval_rejects_rows(self, conn):
        """The MDEV-14596 class: the reference build *checks* ROW args."""
        with pytest.raises(TypeError_):
            conn.execute("SELECT INTERVAL(ROW(1, 1), ROW(1, 2));")

    def test_sequences(self, conn):
        assert one(conn, "NEXTVAL('seq_t')") == "1"
        assert one(conn, "NEXTVAL('seq_t')") == "2"
        assert one(conn, "CURRVAL('seq_t')") == "2"
        assert one(conn, "SETVAL('seq_t', 10)") == "10"
        assert one(conn, "NEXTVAL('seq_t')") == "11"

    def test_currval_before_use_errors(self, conn):
        with pytest.raises(ValueError_):
            conn.execute("SELECT CURRVAL('untouched');")

    def test_version_reflects_config(self):
        conn = Dialect().create_server().connect()
        assert one(conn, "VERSION()") == "generic-1.0"
