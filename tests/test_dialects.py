"""Tests for the seven simulated dialects and the 132 injected bugs.

The parametrized PoC test is the repository's ground-truth check: every
injected bug's proof-of-concept statement must crash its dialect with
exactly the declared crash class in exactly the declared function, and the
registry's aggregates must match the paper's Table 4.
"""

import pytest

from repro.dialects import (
    all_bugs,
    all_dialect_classes,
    bugs_for,
    dialect_by_name,
    dialect_names,
    find_bug,
    table4_totals,
)
from repro.engine.connection import ServerCrashed

DIALECTS = {cls.name: cls() for cls in all_dialect_classes()}
ALL_BUGS = all_bugs()


class TestInventories:
    def test_seven_dialects(self):
        assert len(dialect_names()) == 7
        assert dialect_names() == [
            "postgresql", "mysql", "mariadb", "clickhouse", "monetdb",
            "duckdb", "virtuoso",
        ]

    def test_dialect_by_name(self):
        assert dialect_by_name("mysql").name == "mysql"

    def test_unknown_dialect(self):
        with pytest.raises(KeyError):
            dialect_by_name("oracle")

    def test_versions_match_paper_setup(self):
        versions = {cls.name: cls.version for cls in all_dialect_classes()}
        assert versions["postgresql"] == "16.1"
        assert versions["mysql"] == "8.3.0"
        assert versions["mariadb"] == "11.3.2"
        assert versions["clickhouse"] == "23.6.2.18"
        assert versions["monetdb"] == "11.47.11"
        assert versions["duckdb"] == "0.10.1"
        assert versions["virtuoso"] == "7.2.12"

    def test_clickhouse_has_largest_inventory(self):
        sizes = {name: len(d.registry) for name, d in DIALECTS.items()}
        assert sizes["clickhouse"] == max(sizes.values())
        assert sizes["monetdb"] == min(sizes.values())

    def test_inventory_ordering_matches_table5(self):
        """ClickHouse > PostgreSQL > MySQL > MariaDB > MonetDB, the same
        ordering as SOFT's triggered-function counts in Table 5."""
        sizes = {name: len(d.registry) for name, d in DIALECTS.items()}
        assert (
            sizes["clickhouse"] > sizes["postgresql"] > sizes["mysql"]
            >= sizes["mariadb"] > sizes["monetdb"]
        )

    def test_mysql_has_no_arrays(self):
        assert not DIALECTS["mysql"].registry.contains("array_length")

    def test_clickhouse_has_no_xml(self):
        assert not DIALECTS["clickhouse"].registry.contains("updatexml")

    def test_virtuoso_has_contains(self):
        assert DIALECTS["virtuoso"].registry.contains("contains")

    def test_documentation_entries(self):
        docs = DIALECTS["postgresql"].documentation()
        assert all(entry.name and entry.family for entry in docs)

    def test_test_suite_is_nonempty(self):
        for dialect in DIALECTS.values():
            assert len(dialect.test_suite()) > 100


class TestBugRegistry:
    def test_total_is_132(self):
        assert len(ALL_BUGS) == 132

    def test_per_dbms_counts_match_table4(self):
        totals = table4_totals()
        assert totals["dbms:postgresql"] == 1
        assert totals["dbms:mysql"] == 16
        assert totals["dbms:mariadb"] == 24
        assert totals["dbms:clickhouse"] == 6
        assert totals["dbms:monetdb"] == 19
        assert totals["dbms:duckdb"] == 21
        assert totals["dbms:virtuoso"] == 45

    def test_crash_class_totals_match_table4(self):
        totals = table4_totals()
        assert totals["crash:NPD"] == 61
        assert totals["crash:SEGV"] == 29
        assert totals["crash:UAF"] == 3
        assert totals["crash:GBOF"] == 4
        assert totals["crash:AF"] == 14
        assert totals["crash:DBZ"] == 2
        # Table 4's rows sum to 13 HBOF / 6 SO while §7.3's prose says
        # 12 / 7; we follow the per-row table (see EXPERIMENTS.md)
        assert totals["crash:HBOF"] == 13
        assert totals["crash:SO"] == 6

    def test_pattern_family_totals_match_paper(self):
        totals = table4_totals()
        assert totals["patfam:P1"] == 56
        assert totals["patfam:P2"] == 28
        assert totals["patfam:P3"] == 48

    def test_97_fixed(self):
        assert table4_totals()["fixed"] == 97

    def test_keys_unique(self):
        keys = [bug.key for bug in ALL_BUGS]
        assert len(keys) == len(set(keys))

    def test_find_bug(self):
        bug = find_bug("virtuoso", "contains", "SEGV")
        assert bug is not None
        assert bug.pattern == "P1.2"

    def test_every_bug_function_exists_in_dialect(self):
        for bug in ALL_BUGS:
            registry = DIALECTS[bug.dbms].registry
            assert registry.contains(bug.function), bug.bug_id

    def test_fixed_statuses_per_dialect(self):
        fixed = {name: sum(b.fixed for b in bugs_for(name)) for name in DIALECTS}
        assert fixed["postgresql"] == 1
        assert fixed["mysql"] == 1       # vendor releases lag (§7.3)
        assert fixed["mariadb"] == 4
        assert fixed["clickhouse"] == 6
        assert fixed["monetdb"] == 19
        assert fixed["duckdb"] == 21
        assert fixed["virtuoso"] == 45


@pytest.mark.parametrize("bug", ALL_BUGS, ids=lambda b: b.bug_id)
class TestProofOfConcepts:
    def test_poc_triggers_declared_crash(self, bug):
        server = DIALECTS[bug.dbms].create_server()
        connection = server.connect()
        with pytest.raises(ServerCrashed) as excinfo:
            connection.execute(bug.poc)
        crash = excinfo.value.crash
        assert crash.code == bug.crash
        assert crash.function == bug.function
        assert not server.alive


class TestCrashBehaviour:
    def test_server_dead_after_crash(self):
        dialect = DIALECTS["virtuoso"]
        server = dialect.create_server()
        conn = server.connect()
        with pytest.raises(ServerCrashed):
            conn.execute("SELECT CONTAINS('x', 'x', *);")
        from repro.engine.connection import ConnectionClosed

        with pytest.raises(ConnectionClosed):
            conn.execute("SELECT 1;")

    def test_restart_revives_server(self):
        dialect = DIALECTS["virtuoso"]
        server = dialect.create_server()
        conn = server.connect()
        with pytest.raises(ServerCrashed):
            conn.execute("SELECT CONTAINS('x', 'x', *);")
        server.restart()
        assert server.connect().execute("SELECT 1;").rendered() == [["1"]]

    def test_restart_loses_catalog(self):
        """A restart is a fresh process: tables are gone, like a container
        restart without a persistent volume."""
        dialect = DIALECTS["duckdb"]
        server = dialect.create_server()
        conn = server.connect()
        conn.execute("CREATE TABLE keepme (a INT);")
        with pytest.raises(ServerCrashed):
            conn.execute("SELECT MAP_KEYS(NULL);")
        server.restart()
        from repro.engine.errors import NameError_

        with pytest.raises(NameError_):
            server.connect().execute("SELECT 1 FROM keepme;")

    def test_ordinary_arguments_do_not_crash(self):
        """Every flawed function behaves correctly off the boundary."""
        probes = {
            "virtuoso": "SELECT CONTAINS('hello', 'ell');",
            "mariadb": "SELECT REVERSE('abc');",
            "duckdb": "SELECT ARRAY_LENGTH([1, 2]);",
            "mysql": "SELECT AVG(1.5);",
            "monetdb": "SELECT LTRIM('  x');",
            "clickhouse": "SELECT FROM_DAYS(738000);",
            "postgresql": "SELECT JSONB_OBJECT_AGG('a', 1);",
        }
        for name, sql in probes.items():
            result = DIALECTS[name].create_server().connect().execute(sql)
            assert result.rows

    def test_crash_stage_recorded(self):
        server = DIALECTS["mariadb"].create_server()
        conn = server.connect()
        with pytest.raises(ServerCrashed) as excinfo:
            conn.execute("SELECT REVERSE('');")
        assert excinfo.value.crash.stage in ("execute", "optimize")

    def test_paper_headline_cases(self):
        """The six §7.4 case studies crash their dialects."""
        cases = [
            ("mysql", "SELECT AVG(1.29999999999999999999999999999999999999999999);"),
            ("virtuoso", "SELECT CONTAINS('x', 'x', *);"),
            ("postgresql", "SELECT JSONB_OBJECT_AGG('a', '$[0]');"),
            ("duckdb", "SELECT ARRAY_SORT((SELECT [1] UNION SELECT [2]));"),
            ("mariadb", "SELECT JSON_LENGTH(REPEAT('[1,', 100), '$[2][1]');"),
            ("mariadb", "SELECT ST_ASTEXT(INET6_ATON('255.255.255.255'));"),
        ]
        for name, sql in cases:
            conn = DIALECTS[name].create_server().connect()
            with pytest.raises(ServerCrashed):
                conn.execute(sql)

    def test_clickhouse_todecimalstring_listing1(self):
        """Listing 1 — the bug the ClickHouse CTO ordered fixed."""
        conn = DIALECTS["clickhouse"].create_server().connect()
        with pytest.raises(ServerCrashed) as excinfo:
            conn.execute("SELECT toDecimalString('110'::Decimal256(45), *);")
        assert excinfo.value.crash.code == "NPD"
