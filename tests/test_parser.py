"""Unit tests for the SQL parser (expressions, statements, round-trips)."""

import pytest

from repro.sqlast import (
    ArrayExpr,
    BetweenExpr,
    BinaryOp,
    CaseExpr,
    Cast,
    ColumnRef,
    CreateTable,
    DropTable,
    ExistsExpr,
    FuncCall,
    InExpr,
    Insert,
    IntegerLit,
    IntervalExpr,
    IsNullExpr,
    LikeExpr,
    MapExpr,
    NullLit,
    ParseError,
    RowExpr,
    Select,
    SetOp,
    SetStmt,
    Star,
    StringLit,
    SubqueryExpr,
    UnaryOp,
    parse_expression,
    parse_statement,
    parse_statements,
    to_sql,
)


class TestLiterals:
    def test_integer(self):
        assert isinstance(parse_expression("42"), IntegerLit)

    def test_string(self):
        expr = parse_expression("'abc'")
        assert isinstance(expr, StringLit)
        assert expr.value == "abc"

    def test_null_keyword(self):
        assert isinstance(parse_expression("NULL"), NullLit)

    def test_null_case_insensitive(self):
        assert isinstance(parse_expression("null"), NullLit)

    def test_star(self):
        assert isinstance(parse_expression("*"), Star)

    def test_negative_number_is_unary(self):
        expr = parse_expression("-5")
        assert isinstance(expr, UnaryOp)
        assert expr.op == "-"


class TestFunctionCalls:
    def test_no_args(self):
        expr = parse_expression("NOW()")
        assert isinstance(expr, FuncCall)
        assert expr.args == []

    def test_multiple_args(self):
        expr = parse_expression("SUBSTR('abc', 1, 2)")
        assert len(expr.args) == 3

    def test_star_argument(self):
        expr = parse_expression("COUNT(*)")
        assert isinstance(expr.args[0], Star)

    def test_star_in_later_position(self):
        expr = parse_expression("CONTAINS('x', 'x', *)")
        assert isinstance(expr.args[2], Star)

    def test_distinct_modifier(self):
        expr = parse_expression("COUNT(DISTINCT a)")
        assert expr.distinct

    def test_nested_calls(self):
        expr = parse_expression("A(B(C(1)))")
        assert expr.name == "A"
        assert expr.args[0].name == "B"

    def test_case_preserved_in_name(self):
        assert parse_expression("toDecimalString(1, 2)").name == "toDecimalString"


class TestCasts:
    def test_cast_as(self):
        expr = parse_expression("CAST(1 AS DECIMAL(10, 2))")
        assert isinstance(expr, Cast)
        assert expr.type_name.name == "DECIMAL"
        assert expr.type_name.params == [10, 2]

    def test_double_colon_cast(self):
        expr = parse_expression("'110'::Decimal256(45)")
        assert isinstance(expr, Cast)
        assert expr.style == "colons"
        assert expr.type_name.params == [45]

    def test_convert_two_arg(self):
        expr = parse_expression("CONVERT(NULL, UNSIGNED)")
        assert isinstance(expr, Cast)
        assert expr.style == "convert"

    def test_chained_postfix_cast(self):
        expr = parse_expression("REPEAT('[', 10)::json")
        assert isinstance(expr, Cast)
        assert isinstance(expr.operand, FuncCall)


class TestOperators:
    def test_precedence_mul_over_add(self):
        expr = parse_expression("1 + 2 * 3")
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_parentheses_override(self):
        expr = parse_expression("(1 + 2) * 3")
        assert expr.op == "*"

    def test_and_or_precedence(self):
        expr = parse_expression("1 OR 2 AND 3")
        assert expr.op == "OR"

    def test_comparison(self):
        expr = parse_expression("a <= b")
        assert isinstance(expr, BinaryOp)

    def test_concat_pipes(self):
        assert parse_expression("'a' || 'b'").op == "||"

    def test_not(self):
        expr = parse_expression("NOT a")
        assert isinstance(expr, UnaryOp)

    def test_div_and_mod_words(self):
        assert parse_expression("7 DIV 2").op == "DIV"
        assert parse_expression("7 MOD 2").op == "MOD"


class TestPredicates:
    def test_in_list(self):
        expr = parse_expression("a IN (1, 2, 3)")
        assert isinstance(expr, InExpr)
        assert len(expr.items) == 3

    def test_not_in(self):
        assert parse_expression("a NOT IN (1)").negated

    def test_between(self):
        expr = parse_expression("a BETWEEN 1 AND 10")
        assert isinstance(expr, BetweenExpr)

    def test_like(self):
        expr = parse_expression("a LIKE '%x%'")
        assert isinstance(expr, LikeExpr)

    def test_not_like(self):
        assert parse_expression("a NOT LIKE 'x'").negated

    def test_is_null(self):
        assert isinstance(parse_expression("a IS NULL"), IsNullExpr)

    def test_is_not_null(self):
        assert parse_expression("a IS NOT NULL").negated

    def test_between_with_arithmetic_bounds(self):
        expr = parse_expression("a BETWEEN 1 + 1 AND 10 - 1")
        assert isinstance(expr, BetweenExpr)


class TestCompoundExpressions:
    def test_case_searched(self):
        expr = parse_expression("CASE WHEN a = 1 THEN 'x' ELSE 'y' END")
        assert isinstance(expr, CaseExpr)
        assert expr.operand is None

    def test_case_with_operand(self):
        expr = parse_expression("CASE a WHEN 1 THEN 'x' END")
        assert expr.operand is not None

    def test_row_constructor(self):
        expr = parse_expression("ROW(1, 2)")
        assert isinstance(expr, RowExpr)
        assert expr.explicit

    def test_bare_tuple(self):
        expr = parse_expression("(1, 2)")
        assert isinstance(expr, RowExpr)
        assert not expr.explicit

    def test_bracket_array(self):
        expr = parse_expression("[1, 2, 3]")
        assert isinstance(expr, ArrayExpr)

    def test_empty_array(self):
        assert parse_expression("[ ]").items == []

    def test_map_literal(self):
        expr = parse_expression("MAP {1: 'a', 2: 'b'}")
        assert isinstance(expr, MapExpr)
        assert len(expr.keys) == 2

    def test_interval_expression(self):
        expr = parse_expression("INTERVAL 3 DAY")
        assert isinstance(expr, IntervalExpr)
        assert expr.unit == "DAY"

    def test_interval_function_call_form(self):
        # INTERVAL(...) with parens is MariaDB's comparison function
        expr = parse_expression("INTERVAL(ROW(1, 1), ROW(1, 2))")
        assert isinstance(expr, FuncCall)

    def test_subscript(self):
        expr = parse_expression("arr[1]")
        assert to_sql(expr) == "arr[1]"

    def test_exists(self):
        expr = parse_expression("EXISTS (SELECT 1)")
        assert isinstance(expr, ExistsExpr)

    def test_scalar_subquery(self):
        expr = parse_expression("(SELECT 1 UNION SELECT 2)")
        assert isinstance(expr, SubqueryExpr)

    def test_extract_from_normalised(self):
        expr = parse_expression("EXTRACT(YEAR FROM '2020-01-01')")
        assert isinstance(expr, FuncCall)

    def test_qualified_column(self):
        expr = parse_expression("t1.c0")
        assert isinstance(expr, ColumnRef)
        assert expr.parts == ["t1", "c0"]


class TestSelect:
    def test_minimal(self):
        stmt = parse_statement("SELECT 1")
        assert isinstance(stmt, Select)
        assert len(stmt.items) == 1

    def test_alias(self):
        stmt = parse_statement("SELECT 1 AS one")
        assert stmt.items[0].alias == "one"

    def test_implicit_alias(self):
        stmt = parse_statement("SELECT 1 one")
        assert stmt.items[0].alias == "one"

    def test_from_where(self):
        stmt = parse_statement("SELECT a FROM t WHERE a > 1")
        assert stmt.where is not None

    def test_group_by_having(self):
        stmt = parse_statement(
            "SELECT a, COUNT(*) FROM t GROUP BY a HAVING COUNT(*) > 1"
        )
        assert len(stmt.group_by) == 1
        assert stmt.having is not None

    def test_order_by_desc(self):
        stmt = parse_statement("SELECT a FROM t ORDER BY a DESC")
        assert stmt.order_by[0].descending

    def test_limit_offset(self):
        stmt = parse_statement("SELECT a FROM t LIMIT 10 OFFSET 5")
        assert stmt.limit is not None
        assert stmt.offset is not None

    def test_mysql_limit_comma(self):
        stmt = parse_statement("SELECT a FROM t LIMIT 5, 10")
        assert stmt.limit is not None
        assert stmt.offset is not None

    def test_distinct(self):
        assert parse_statement("SELECT DISTINCT a FROM t").distinct

    def test_union(self):
        stmt = parse_statement("SELECT 1 UNION SELECT 2")
        assert isinstance(stmt, SetOp)
        assert stmt.op == "UNION"

    def test_union_all(self):
        assert parse_statement("SELECT 1 UNION ALL SELECT 2").all

    def test_except_intersect(self):
        assert parse_statement("SELECT 1 EXCEPT SELECT 2").op == "EXCEPT"
        assert parse_statement("SELECT 1 INTERSECT SELECT 2").op == "INTERSECT"

    def test_derived_table(self):
        stmt = parse_statement("SELECT * FROM (SELECT 1) sq")
        assert stmt.from_[0].alias == "sq"

    def test_join_with_on(self):
        stmt = parse_statement("SELECT a FROM t1 LEFT JOIN t2 ON t1.a = t2.b")
        join = stmt.from_[0]
        assert join.kind == "LEFT"
        assert join.on is not None

    def test_cross_join(self):
        stmt = parse_statement("SELECT 1 FROM t1 CROSS JOIN t2")
        assert stmt.from_[0].kind == "CROSS"

    def test_values_statement(self):
        stmt = parse_statement("VALUES (1, 'a'), (2, 'b')")
        assert isinstance(stmt, Select)
        assert len(stmt.items) == 2


class TestDDLAndDML:
    def test_create_table(self):
        stmt = parse_statement(
            "CREATE TABLE t (a INT PRIMARY KEY, b VARCHAR(10) NOT NULL)"
        )
        assert isinstance(stmt, CreateTable)
        assert stmt.columns[0].constraints == ["PRIMARY KEY"]
        assert stmt.columns[1].type_name.params == [10]

    def test_create_table_if_not_exists(self):
        stmt = parse_statement("CREATE TABLE IF NOT EXISTS t (a INT)")
        assert stmt.if_not_exists

    def test_create_with_double_precision(self):
        stmt = parse_statement("CREATE TABLE t (a DOUBLE PRECISION)")
        assert stmt.columns[0].type_name.name == "DOUBLE PRECISION"

    def test_insert(self):
        stmt = parse_statement("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')")
        assert isinstance(stmt, Insert)
        assert stmt.columns == ["a", "b"]
        assert len(stmt.rows) == 2

    def test_insert_without_columns(self):
        stmt = parse_statement("INSERT INTO t VALUES (1)")
        assert stmt.columns == []

    def test_drop_table(self):
        stmt = parse_statement("DROP TABLE IF EXISTS t")
        assert isinstance(stmt, DropTable)
        assert stmt.if_exists

    def test_set_statement(self):
        stmt = parse_statement("SET sql_mode = 'strict'")
        assert isinstance(stmt, SetStmt)
        assert stmt.name == "sql_mode"

    def test_multiple_statements(self):
        stmts = parse_statements("SELECT 1; SELECT 2; SELECT 3;")
        assert len(stmts) == 3


class TestErrors:
    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_statement("SELECT 1 extra garbage ,")

    def test_unbalanced_paren(self):
        with pytest.raises(ParseError):
            parse_expression("F(1")

    def test_missing_then(self):
        with pytest.raises(ParseError):
            parse_expression("CASE WHEN 1 END")

    def test_empty_input(self):
        with pytest.raises(ParseError):
            parse_expression("")

    def test_unknown_statement(self):
        with pytest.raises(ParseError):
            parse_statement("GRANT ALL TO nobody")


ROUND_TRIP_CASES = [
    "SELECT toDecimalString('110'::Decimal256(45), *)",
    "SELECT FORMAT('0', 50, 'de_DE')",
    "SELECT REPEAT('[', 1000)::json",
    "SELECT INTERVAL(ROW(1, 1), ROW(1, 2))",
    "SELECT JSONB_OBJECT_AGG(DISTINCT 'a', 'abc')",
    "SELECT JSON_LENGTH(REPEAT('[1,', 100), '$[2][1]')",
    "SELECT ST_ASTEXT(BOUNDARY(INET6_ATON('255.255.255.255')))",
    "SELECT a, COUNT(*) FROM t WHERE a > 0 GROUP BY a HAVING COUNT(*) > 1",
    "SELECT CASE WHEN a = 1 THEN 'one' ELSE 'other' END FROM t",
    "SELECT MAP {1: 'a'}[1]",
    "SELECT (SELECT 1 UNION SELECT 2.5)",
    "SELECT CONTAINS('x', 'x', *)",
    "SELECT COLUMN_JSON(COLUMN_CREATE('x', 1))",
]


@pytest.mark.parametrize("sql", ROUND_TRIP_CASES)
def test_round_trip_stability(sql):
    """print(parse(x)) must reparse to the same rendering (fixpoint)."""
    once = to_sql(parse_statement(sql))
    twice = to_sql(parse_statement(once))
    assert once == twice
