"""Oracle pipeline: protocol, state round-trips, fan-out, and discovery.

Covers the pluggable-oracle refactor: CrashOracle state versioning (v2
round-trip, v1 fallback, loud failures on unknown versions/keys), pipeline
fan-out ordering, the differential/conformance oracles finding every seeded
logic flaw, and zero differential false positives on flaw-free dialects.
"""

import pytest

from repro.core.campaign import Campaign, run_campaign
from repro.core.oracles import (
    CaseInfo,
    CrashOracle,
    DifferentialOracle,
    DivergenceFinding,
    ErrorConformanceOracle,
    Oracle,
    OraclePipeline,
    OracleStateError,
    build_pipeline,
    parse_oracle_names,
)
from repro.core.runner import Outcome
from repro.dialects import dialect_by_name
from repro.dialects.bugs import logic_flaws_for
from repro.engine.errors import SegmentationViolation
from repro.engine.executor import Result
from repro.engine.fingerprint import (
    divergence_class,
    fingerprint_result,
)
from repro.engine.values import SQLInteger, SQLString

ALL_ORACLES = "crash,differential,conformance"


def _crash_outcome(function="repeat", sql="SELECT REPEAT('a', 9);"):
    return Outcome(
        "crash", sql,
        message="boom",
        crash=SegmentationViolation("boom", function=function, stage="execute"),
    )


# ---------------------------------------------------------------------------
# oracle spec parsing
# ---------------------------------------------------------------------------
class TestOracleSpec:
    def test_default_is_crash_only(self):
        assert parse_oracle_names(None) == ("crash",)
        assert parse_oracle_names("") == ("crash",)

    def test_parses_and_dedups(self):
        assert parse_oracle_names("crash, differential,crash") == (
            "crash", "differential",
        )
        assert parse_oracle_names(["Conformance"]) == ("conformance",)

    def test_rejects_unknown_names(self):
        with pytest.raises(ValueError, match="unknown oracle"):
            parse_oracle_names("crash,qpg")

    def test_build_pipeline_installs_flaws_only_when_needed(self):
        crash_only = dialect_by_name("mysql")
        build_pipeline(crash_only, "crash")
        assert not crash_only._logic_flaws_installed
        wanted = dialect_by_name("mysql")
        pipeline = build_pipeline(wanted, ALL_ORACLES)
        assert wanted._logic_flaws_installed
        assert pipeline.names == ("crash", "differential", "conformance")
        assert pipeline.needs_fingerprints


# ---------------------------------------------------------------------------
# crash-oracle state round-trips
# ---------------------------------------------------------------------------
class TestCrashOracleState:
    def _populated(self):
        oracle = CrashOracle("duckdb")
        oracle.observe(_crash_outcome(), CaseInfo("P1.2", "repeat", "string"), 7)
        oracle.observe(
            Outcome("resource_kill", "SELECT REPEAT('a', 99999);",
                    message="memory limit: 99999 bytes"),
            CaseInfo("P1.2", "repeat", "string"), 9,
        )
        oracle.observe(
            Outcome("flaky", "SELECT LEFT('x', 1);", message="did not reproduce"),
            CaseInfo("P1.1", "left", "string"), 11,
        )
        return oracle

    def test_v2_round_trip_preserves_everything(self):
        oracle = self._populated()
        restored = CrashOracle("duckdb")
        restored.restore_state(oracle.export_state())
        assert [b.to_dict() for b in restored.bugs] == [
            b.to_dict() for b in oracle.bugs
        ]
        assert restored.false_positives == oracle.false_positives
        assert restored.flaky_signals == oracle.flaky_signals
        assert restored._fp_seen == oracle._fp_seen
        assert restored._fp_records == oracle._fp_records
        # dedup still works after restore: same kill reason is dropped
        assert not restored.observe_resource_kill(
            "SELECT REPEAT('b', 12345);", "memory limit: 12345 bytes"
        )

    def test_v1_fallback_restores_bare_lists(self):
        oracle = self._populated()
        v2 = oracle.export_state()
        v1 = {
            "dbms": v2["dbms"],
            "bugs": v2["bugs"],
            "false_positives": [r[1] for r in v2["false_positives"]],
            "flaky_signals": [r[1] for r in v2["flaky_signals"]],
            "fp_seen": v2["fp_seen"],
        }
        restored = CrashOracle("duckdb")
        restored.restore_state(v1)
        assert restored.false_positives == oracle.false_positives
        assert restored.flaky_signals == oracle.flaky_signals
        assert restored._fp_seen == oracle._fp_seen

    def test_unknown_version_is_a_hard_error(self):
        state = self._populated().export_state()
        state["version"] = 99
        with pytest.raises(OracleStateError, match="version"):
            CrashOracle("duckdb").restore_state(state)

    def test_unknown_keys_are_a_hard_error(self):
        state = self._populated().export_state()
        state["new_field_from_the_future"] = True
        with pytest.raises(OracleStateError, match="unknown keys"):
            CrashOracle("duckdb").restore_state(state)

    def test_merge_replays_global_stream_order(self):
        # two shards see the same crash identity; the merged oracle must
        # keep the occurrence with the smaller global index, like a serial
        # run would
        early, late = CrashOracle("duckdb"), CrashOracle("duckdb")
        late.observe(_crash_outcome(sql="SELECT REPEAT('a', 2);"),
                     CaseInfo("P1.2"), 500)
        early.observe(_crash_outcome(sql="SELECT REPEAT('a', 1);"),
                      CaseInfo("P1.2"), 3)
        merged = CrashOracle("duckdb")
        merged.merge([late.export_state(), early.export_state()])
        assert len(merged.bugs) == 1
        assert merged.bugs[0].query_index == 4  # index 3, 1-based


# ---------------------------------------------------------------------------
# pipeline fan-out and state
# ---------------------------------------------------------------------------
class _RecordingOracle(Oracle):
    needs_fingerprints = False

    def __init__(self, name, journal):
        self.name = name
        self.journal = journal

    def observe(self, outcome, case, index):
        self.journal.append((self.name, index))
        return None

    def findings(self):
        return []

    def export_state(self):
        return {"version": 1, "name": self.name}

    def restore_state(self, state):
        pass


class TestOraclePipeline:
    def test_fans_out_in_registration_order(self):
        journal = []
        pipeline = OraclePipeline(
            [_RecordingOracle("a", journal), _RecordingOracle("b", journal)]
        )
        pipeline.observe(Outcome("ok", "SELECT 1;"), CaseInfo("seed"), 0)
        pipeline.observe(Outcome("ok", "SELECT 2;"), CaseInfo("seed"), 1)
        assert journal == [("a", 0), ("b", 0), ("a", 1), ("b", 1)]

    def test_rejects_empty_and_duplicate_names(self):
        with pytest.raises(ValueError):
            OraclePipeline([])
        with pytest.raises(ValueError, match="duplicate"):
            OraclePipeline([_RecordingOracle("a", []), _RecordingOracle("a", [])])

    def test_restore_rejects_different_oracle_set(self):
        dialect = dialect_by_name("duckdb")
        full = build_pipeline(dialect, ALL_ORACLES)
        crash_only = build_pipeline(dialect_by_name("duckdb"), "crash")
        with pytest.raises(OracleStateError, match="--oracles"):
            crash_only.restore_state(full.export_state())

    def test_legacy_bare_crash_state_loads_into_crash_only_pipeline(self):
        oracle = CrashOracle("duckdb")
        oracle.observe(_crash_outcome(), CaseInfo("P1.2", "repeat"), 7)
        legacy = oracle.export_state()
        pipeline = build_pipeline(dialect_by_name("duckdb"), "crash")
        pipeline.restore_state(legacy)
        assert len(pipeline.get("crash").bugs) == 1
        full = build_pipeline(dialect_by_name("duckdb"), ALL_ORACLES)
        with pytest.raises(OracleStateError, match="legacy"):
            full.restore_state(legacy)


# ---------------------------------------------------------------------------
# result-set fingerprints
# ---------------------------------------------------------------------------
class TestFingerprint:
    def _result(self, *cells):
        def value(cell):
            return SQLString(cell) if isinstance(cell, str) else SQLInteger(cell)

        return Result(columns=["c"], rows=[[value(c)] for c in cells])

    def test_round_trip_and_determinism(self):
        fp = fingerprint_result(self._result(1, 2))
        again = fingerprint_result(self._result(1, 2))
        assert fp == again
        assert type(fp).from_dict(fp.to_dict()) == fp

    def test_row_order_does_not_matter(self):
        assert fingerprint_result(self._result(1, 2)) == \
            fingerprint_result(self._result(2, 1))

    def test_divergence_classes(self):
        one = fingerprint_result(self._result(1))
        assert divergence_class(one, fingerprint_result(self._result(1, 2))) \
            == "cardinality"
        assert divergence_class(one, fingerprint_result(self._result("1"))) \
            == "type"
        assert divergence_class(one, fingerprint_result(self._result(2))) \
            == "value"
        assert divergence_class(one, fingerprint_result(self._result(1))) is None


# ---------------------------------------------------------------------------
# logic-flaw discovery (the new oracles' acceptance bar)
# ---------------------------------------------------------------------------
class TestLogicFlawDiscovery:
    @pytest.mark.parametrize("dbms", ["mysql", "duckdb"])
    def test_all_seeded_flaws_found(self, dbms):
        result = run_campaign(dbms, budget=2_000, seed=3, oracles=ALL_ORACLES)
        found = {f.attribution.flaw_id for f in result.findings
                 if f.attribution is not None}
        # function-level flaws only: predicate-level kinds (tlp/norec) need
        # the predicate statement family and their own metamorphic oracles
        expected = {flaw.flaw_id for flaw in logic_flaws_for(dbms)
                    if flaw.kind in ("wrong", "strict")}
        assert expected, "dialect should seed logic flaws"
        assert expected <= found

    def test_flaw_free_dialect_has_zero_findings(self):
        result = run_campaign(
            "postgresql", budget=2_000, seed=3, oracles=ALL_ORACLES
        )
        assert result.findings == []

    def test_crash_only_default_reports_no_findings_field_content(self):
        result = run_campaign("duckdb", budget=1_000, seed=3)
        assert result.findings == []

    def test_divergence_finding_round_trips(self):
        result = run_campaign("duckdb", budget=2_000, seed=3,
                              oracles=ALL_ORACLES)
        divergences = [f for f in result.findings
                       if isinstance(f, DivergenceFinding)]
        assert divergences
        finding = divergences[0]
        again = DivergenceFinding.from_dict(finding.to_dict())
        assert again.signature_tuple() == finding.signature_tuple()
        assert again.attribution is not None

    def test_checkpoint_resume_reproduces_findings(self, tmp_path):
        path = str(tmp_path / "cp.json")
        kwargs = dict(budget=2_000, seed=3, oracles=ALL_ORACLES)
        full = run_campaign("duckdb", checkpoint=path, checkpoint_every=500,
                            **kwargs)
        resumed = run_campaign("duckdb", resume=path, **kwargs)
        assert resumed.signature() == full.signature()
        assert [f.signature_tuple() for f in resumed.findings] == \
            [f.signature_tuple() for f in full.findings]


# ---------------------------------------------------------------------------
# oracle-level guards
# ---------------------------------------------------------------------------
class TestOracleGuards:
    def test_differential_skips_impure_and_unregistered(self):
        dialect = dialect_by_name("duckdb")
        dialect.install_logic_flaws()
        oracle = DifferentialOracle(dialect)
        assert oracle._called_functions("SELECT NO_SUCH_FN(1);") == []
        fns = oracle._called_functions("SELECT FLOOR(1.5);")
        assert fns == ["floor"]

    def test_conformance_documented_map_is_deterministic(self):
        first = ErrorConformanceOracle._documented_statements(
            dialect_by_name("mysql")
        )
        second = ErrorConformanceOracle._documented_statements(
            dialect_by_name("mysql")
        )
        assert first == second
        assert len(first) > 100
