"""Tests for the baseline tool re-implementations (§7.5)."""

import itertools
import random

import pytest

from repro.baselines import SQLancerPQS, SQLsmith, Squirrel, run_tool
from repro.dialects import dialect_by_name
from repro.sqlast import parse_statements


def sample_queries(tool, dialect_name, n=200, seed=0):
    dialect = dialect_by_name(dialect_name)
    rng = random.Random(seed)
    tool.prepare(dialect, rng)
    return list(itertools.islice(tool.queries(dialect, rng), n))


class TestSupportMatrix:
    def test_squirrel_supports_paper_dialects(self):
        tool = Squirrel()
        assert tool.supports(dialect_by_name("postgresql"))
        assert tool.supports(dialect_by_name("mysql"))
        assert tool.supports(dialect_by_name("mariadb"))
        assert not tool.supports(dialect_by_name("clickhouse"))

    def test_sqlancer_supports_paper_dialects(self):
        tool = SQLancerPQS()
        assert tool.supports(dialect_by_name("clickhouse"))
        assert not tool.supports(dialect_by_name("monetdb"))

    def test_sqlsmith_supports_paper_dialects(self):
        tool = SQLsmith()
        assert tool.supports(dialect_by_name("postgresql"))
        assert tool.supports(dialect_by_name("monetdb"))
        assert not tool.supports(dialect_by_name("mysql"))

    def test_unsupported_run_is_empty(self):
        result = run_tool(SQLsmith(), "mysql", budget=100)
        assert result.queries_executed == 0


class TestGeneratedQueries:
    @pytest.mark.parametrize("tool_cls,dialect", [
        (SQLsmith, "postgresql"),
        (SQLsmith, "monetdb"),
        (SQLancerPQS, "mysql"),
        (SQLancerPQS, "clickhouse"),
        (Squirrel, "mariadb"),
    ])
    def test_queries_are_parseable(self, tool_cls, dialect):
        for sql in sample_queries(tool_cls(), dialect, n=150):
            parse_statements(sql)  # must not raise

    def test_sqlsmith_pg_vocabulary_is_catalog_sized(self):
        tool = SQLsmith()
        tool.prepare(dialect_by_name("postgresql"), random.Random(0))
        assert len(tool._vocabulary) > 200

    def test_sqlsmith_monetdb_vocabulary_is_small(self):
        tool = SQLsmith()
        tool.prepare(dialect_by_name("monetdb"), random.Random(0))
        assert len(tool._vocabulary) < 40

    def test_sqlancer_vocabulary_ordering_matches_table5(self):
        """SQLancer's modelled-function counts: PG >> MySQL > MariaDB."""
        sizes = {}
        for name in ("postgresql", "mysql", "mariadb", "clickhouse"):
            tool = SQLancerPQS()
            tool.prepare(dialect_by_name(name), random.Random(0))
            sizes[name] = len(tool._vocabulary)
        assert sizes["postgresql"] > sizes["mysql"] > sizes["mariadb"]

    def test_squirrel_mutates_seeds(self):
        queries = sample_queries(Squirrel(), "mysql", n=60)
        selects = [q for q in queries if q.startswith("SELECT")]
        assert len(set(selects)) > 10  # mutation produces variety


class TestToolRuns:
    @pytest.mark.parametrize("tool_cls,dialect", [
        (SQLsmith, "postgresql"),
        (SQLsmith, "monetdb"),
        (SQLancerPQS, "mysql"),
        (SQLancerPQS, "mariadb"),
        (SQLancerPQS, "clickhouse"),
        (Squirrel, "postgresql"),
        (Squirrel, "mysql"),
        (Squirrel, "mariadb"),
    ])
    def test_baselines_find_no_function_bugs(self, tool_cls, dialect):
        """The paper's §7.5 result: 0 SQL function bugs in the comparison
        window for every baseline tool."""
        result = run_tool(tool_cls(), dialect, budget=1500, seed=3)
        assert result.queries_executed == 1500
        assert [b for b in result.bugs if b.injected is not None] == []

    def test_tools_trigger_some_functions(self):
        result = run_tool(SQLancerPQS(), "mysql", budget=1500)
        assert 5 < len(result.triggered_functions) < 60

    def test_sqlsmith_triggers_more_on_postgres_than_monetdb(self):
        pg = run_tool(SQLsmith(), "postgresql", budget=2500)
        mdb = run_tool(SQLsmith(), "monetdb", budget=2500)
        assert len(pg.triggered_functions) > len(mdb.triggered_functions)

    def test_coverage_measured_identically(self):
        result = run_tool(Squirrel(), "mariadb", budget=800, enable_coverage=True)
        assert result.branch_coverage > 0
