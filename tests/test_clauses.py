"""Tests for the clause-position boundary generator (§8 integration)."""

import pytest

from repro.core.clauses import ClauseBoundaryGenerator
from repro.core.runner import Runner
from repro.dialects import dialect_by_name
from repro.sqlast import parse_statement


@pytest.fixture(scope="module")
def generator():
    return ClauseBoundaryGenerator(table="t", columns=["c0", "c2"])


class TestGeneration:
    def test_every_statement_parses(self, generator):
        count = 0
        for sql in generator.generate():
            parse_statement(sql)
            count += 1
        assert count > 500

    def test_respects_case_cap(self):
        generator = ClauseBoundaryGenerator("t", ["c0"], max_cases=25)
        assert len(list(generator.generate())) == 25

    def test_covers_every_clause_kind(self, generator):
        statements = list(generator.generate())
        text = "\n".join(statements)
        for fragment in ("WHERE", "ORDER BY", "LIMIT", "GROUP BY",
                         "INSERT INTO", "UPDATE", "DELETE FROM", "BETWEEN",
                         "IN ("):
            assert fragment in text

    def test_boundary_values_present(self, generator):
        text = "\n".join(generator.generate())
        assert "''" in text
        assert "NULL" in text
        assert "99999" in text

    def test_star_excluded_from_comparisons(self, generator):
        for sql in generator.generate():
            assert "= *" not in sql and "(*" not in sql.replace("COUNT(*", "")

    def test_round_robin_interleaves_kinds(self, generator):
        first_dozen = list(generator.generate())[:11]
        kinds = {sql.split()[0] for sql in first_dozen}
        assert {"SELECT", "INSERT", "UPDATE", "DELETE"} <= kinds


class TestExecution:
    def test_clause_boundaries_do_not_crash_reference_engines(self):
        """Clause-position boundary values exercise data-sensitive paths;
        none of the simulated engines has a clause bug, so every statement
        either succeeds or fails cleanly."""
        runner = Runner(dialect_by_name("monetdb"))
        runner.run("DROP TABLE IF EXISTS t;")
        runner.run("CREATE TABLE t (c0 INT, c2 DECIMAL(10, 2));")
        runner.run("INSERT INTO t VALUES (1, 0.5), (2, -1.5);")
        generator = ClauseBoundaryGenerator("t", ["c0", "c2"], max_cases=400)
        crashes = 0
        for sql in generator.generate():
            outcome = runner.run(sql)
            if outcome.kind == "crash":
                crashes += 1
        assert crashes == 0

    def test_statements_actually_filter(self):
        runner = Runner(dialect_by_name("monetdb"))
        runner.run("CREATE TABLE t (c0 INT, c2 DECIMAL(10, 2));")
        runner.run("INSERT INTO t VALUES (0, 0);")
        outcome = runner.run("SELECT c0 FROM t WHERE c0 = 0;")
        assert outcome.kind == "ok"
