"""Integration tests for the statement executor (the SELECT pipeline)."""

import pytest

from repro.dialects.base import Dialect
from repro.engine.connection import Connection, Server
from repro.engine.errors import NameError_, SQLError, TypeError_, ValueError_


@pytest.fixture()
def conn():
    return Dialect().create_server().connect()


def rows(conn, sql):
    return conn.execute(sql).rendered()


@pytest.fixture()
def populated(conn):
    conn.execute("CREATE TABLE t (a INT, b VARCHAR(10), c DECIMAL(10, 2))")
    conn.execute(
        "INSERT INTO t VALUES (1, 'x', 1.50), (2, 'y', -2.25), (3, NULL, 0)"
    )
    return conn


class TestScalarSelect:
    def test_select_literal(self, conn):
        assert rows(conn, "SELECT 1") == [["1"]]

    def test_multiple_items(self, conn):
        assert rows(conn, "SELECT 1, 'a', NULL") == [["1", "a", "NULL"]]

    def test_column_names(self, conn):
        result = conn.execute("SELECT 1 AS one, 2")
        assert result.columns == ["one", "col2"]


class TestFromWhere:
    def test_scan(self, populated):
        assert len(rows(populated, "SELECT a FROM t")) == 3

    def test_where_filters(self, populated):
        assert rows(populated, "SELECT a FROM t WHERE a > 1") == [["2"], ["3"]]

    def test_where_null_excluded(self, populated):
        # b = NULL row: comparison yields NULL, row filtered out
        assert len(rows(populated, "SELECT a FROM t WHERE b = b")) == 2

    def test_star_expansion(self, populated):
        result = populated.execute("SELECT * FROM t WHERE a = 1")
        assert result.rendered() == [["1", "x", "1.50"]]

    def test_table_alias(self, populated):
        assert rows(populated, "SELECT u.a FROM t u WHERE u.a = 2") == [["2"]]

    def test_unknown_table(self, conn):
        with pytest.raises(NameError_):
            conn.execute("SELECT 1 FROM missing")

    def test_unknown_column(self, populated):
        with pytest.raises(NameError_):
            populated.execute("SELECT zzz FROM t")


class TestAggregation:
    def test_count_star(self, populated):
        assert rows(populated, "SELECT COUNT(*) FROM t") == [["3"]]

    def test_count_skips_nulls(self, populated):
        assert rows(populated, "SELECT COUNT(b) FROM t") == [["2"]]

    def test_sum_avg(self, populated):
        result = rows(populated, "SELECT SUM(a), AVG(a) FROM t")
        assert result == [["6", "2"]]

    def test_group_by(self, populated):
        result = rows(
            populated,
            "SELECT a > 1, COUNT(*) FROM t GROUP BY a > 1 ORDER BY 2",
        )
        assert sorted(result) == [["false", "1"], ["true", "2"]]

    def test_having(self, populated):
        result = rows(
            populated,
            "SELECT a > 0, COUNT(*) FROM t GROUP BY a > 0 HAVING COUNT(*) > 2",
        )
        assert result == [["true", "3"]]

    def test_aggregate_without_rows(self, conn):
        conn.execute("CREATE TABLE e (x INT)")
        assert rows(conn, "SELECT COUNT(*), SUM(x) FROM e") == [["0", "NULL"]]

    def test_distinct_aggregate(self, conn):
        conn.execute("CREATE TABLE d (x INT)")
        conn.execute("INSERT INTO d VALUES (1), (1), (2)")
        assert rows(conn, "SELECT COUNT(DISTINCT x) FROM d") == [["2"]]

    def test_group_concat_with_separator(self, conn):
        conn.execute("CREATE TABLE g (x VARCHAR(5))")
        conn.execute("INSERT INTO g VALUES ('a'), ('b')")
        assert rows(conn, "SELECT GROUP_CONCAT(x, '-') FROM g") == [["a-b"]]


class TestOrderLimit:
    def test_order_asc(self, populated):
        assert rows(populated, "SELECT a FROM t ORDER BY a") == [["1"], ["2"], ["3"]]

    def test_order_desc(self, populated):
        assert rows(populated, "SELECT a FROM t ORDER BY a DESC")[0] == ["3"]

    def test_order_by_position(self, populated):
        assert rows(populated, "SELECT a FROM t ORDER BY 1 DESC")[0] == ["3"]

    def test_order_by_source_column_not_in_output(self, populated):
        # the a=3 row has b = NULL, and CONCAT propagates NULL
        result = rows(populated, "SELECT CONCAT(b, a) FROM t ORDER BY a DESC LIMIT 1")
        assert result == [["NULL"]]

    def test_nulls_first_ascending(self, populated):
        assert rows(populated, "SELECT b FROM t ORDER BY b")[0] == ["NULL"]

    def test_limit_offset(self, populated):
        assert rows(populated, "SELECT a FROM t ORDER BY a LIMIT 1 OFFSET 1") == [["2"]]

    def test_negative_limit_rejected(self, populated):
        with pytest.raises(ValueError_):
            populated.execute("SELECT a FROM t LIMIT -1")

    def test_distinct_rows(self, conn):
        conn.execute("CREATE TABLE d (x INT)")
        conn.execute("INSERT INTO d VALUES (1), (1), (2)")
        assert len(rows(conn, "SELECT DISTINCT x FROM d")) == 2


class TestJoins:
    @pytest.fixture()
    def two_tables(self, conn):
        conn.execute("CREATE TABLE l (id INT, v VARCHAR(5))")
        conn.execute("CREATE TABLE r (id INT, w VARCHAR(5))")
        conn.execute("INSERT INTO l VALUES (1, 'a'), (2, 'b')")
        conn.execute("INSERT INTO r VALUES (1, 'X'), (3, 'Z')")
        return conn

    def test_inner_join(self, two_tables):
        result = rows(
            two_tables, "SELECT l.v, r.w FROM l JOIN r ON l.id = r.id"
        )
        assert result == [["a", "X"]]

    def test_left_join_pads_nulls(self, two_tables):
        result = rows(
            two_tables,
            "SELECT l.v, r.w FROM l LEFT JOIN r ON l.id = r.id ORDER BY l.v",
        )
        assert result == [["a", "X"], ["b", "NULL"]]

    def test_cross_join_cardinality(self, two_tables):
        assert len(rows(two_tables, "SELECT 1 FROM l CROSS JOIN r")) == 4

    def test_comma_join(self, two_tables):
        assert len(rows(two_tables, "SELECT 1 FROM l, r")) == 4


class TestSetOperations:
    def test_union_dedups(self, conn):
        assert rows(conn, "SELECT 1 UNION SELECT 1") == [["1"]]

    def test_union_all_keeps(self, conn):
        assert len(rows(conn, "SELECT 1 UNION ALL SELECT 1")) == 2

    def test_except(self, conn):
        result = rows(conn, "SELECT 1 UNION SELECT 2 EXCEPT SELECT 2")
        assert result == [["1"]]

    def test_intersect(self, conn):
        result = rows(conn, "SELECT 1 UNION SELECT 2 INTERSECT SELECT 2")
        assert result == [["2"]]

    def test_union_column_count_mismatch(self, conn):
        with pytest.raises(TypeError_):
            conn.execute("SELECT 1, 2 UNION SELECT 1")

    def test_union_coerces_types(self, conn):
        # implicit cast surface: the integer branch coerces to the string
        # type of the first branch (Pattern 2.2's mechanism)
        result = rows(conn, "SELECT 'a' UNION SELECT 1 ORDER BY 1")
        assert sorted(result) == [["1"], ["a"]]


class TestSubqueries:
    def test_scalar_subquery(self, conn):
        assert rows(conn, "SELECT (SELECT 5)") == [["5"]]

    def test_empty_subquery_is_null(self, conn):
        conn.execute("CREATE TABLE e (x INT)")
        assert rows(conn, "SELECT (SELECT x FROM e)") == [["NULL"]]

    def test_in_subquery(self, populated):
        result = rows(
            populated, "SELECT a FROM t WHERE a IN (SELECT a FROM t WHERE a > 2)"
        )
        assert result == [["3"]]

    def test_exists(self, populated):
        assert rows(populated, "SELECT EXISTS (SELECT 1 FROM t)") == [["true"]]

    def test_derived_table(self, populated):
        result = rows(
            populated, "SELECT q.a FROM (SELECT a FROM t WHERE a = 2) q"
        )
        assert result == [["2"]]


class TestDML:
    def test_insert_casts_to_column_type(self, conn):
        conn.execute("CREATE TABLE c (x DECIMAL(6, 2))")
        conn.execute("INSERT INTO c VALUES ('3.14159')")
        assert rows(conn, "SELECT x FROM c") == [["3.14"]]

    def test_insert_column_subset(self, conn):
        conn.execute("CREATE TABLE s (a INT, b INT)")
        conn.execute("INSERT INTO s (b) VALUES (5)")
        assert rows(conn, "SELECT a, b FROM s") == [["NULL", "5"]]

    def test_not_null_enforced(self, conn):
        conn.execute("CREATE TABLE nn (a INT NOT NULL)")
        with pytest.raises(ValueError_):
            conn.execute("INSERT INTO nn VALUES (NULL)")

    def test_wrong_value_count(self, conn):
        conn.execute("CREATE TABLE w (a INT, b INT)")
        with pytest.raises(ValueError_):
            conn.execute("INSERT INTO w VALUES (1)")

    def test_drop_table(self, conn):
        conn.execute("CREATE TABLE dd (a INT)")
        conn.execute("DROP TABLE dd")
        with pytest.raises(NameError_):
            conn.execute("SELECT 1 FROM dd")

    def test_create_duplicate_rejected(self, conn):
        conn.execute("CREATE TABLE dup (a INT)")
        with pytest.raises(NameError_):
            conn.execute("CREATE TABLE dup (a INT)")

    def test_create_if_not_exists(self, conn):
        conn.execute("CREATE TABLE ine (a INT)")
        conn.execute("CREATE TABLE IF NOT EXISTS ine (a INT)")  # no raise

    def test_set_statement_updates_config(self, conn):
        conn.execute("SET myvar = 'hello'")
        assert conn.server.ctx.get_config("myvar") == "hello"


class TestResourceLimits:
    def test_giant_join_rejected(self, conn):
        from repro.engine.errors import ResourceError

        conn.execute("CREATE TABLE big (x INT)")
        values = ", ".join(f"({i})" for i in range(400))
        conn.execute(f"INSERT INTO big VALUES {values}")
        with pytest.raises(ResourceError):
            conn.execute("SELECT 1 FROM big a, big b, big c")
