"""The persistent bug repository: dedup identity, triage, replay flips.

Dedup identity is ``(dialect, function, canonical minimized statement)``
— deliberately *not* including the oracle that found it, so the same
flaw surfaced by the crash oracle in one campaign and by the
differential oracle in another collapses onto one record (the record
accumulates kinds/labels instead).  Distinct dialects never collapse.

Replay re-executes stored triggers against the seeded ground truth in
:mod:`repro.dialects.bugs`: injected crash PoCs must still fire, logic
flaws fire once the target dialect's flaws are installed, and a record
whose trigger stops reproducing is reported as a status flip.
"""

import pytest

from repro.core import run_campaign
from repro.dialects import dialect_by_name
from repro.dialects.bugs import bugs_for, logic_flaws_for
from repro.engine.connection import ServerCrashed
from repro.service import BugRepository
from repro.service.bugrepo import TRIAGE_STATES, canonical_statement


@pytest.fixture
def repo(tmp_path):
    return BugRepository(str(tmp_path / "bugs.sqlite"))


def _crash(sql, dialect="virtuoso", function="ascii", label="NPD"):
    return {
        "kind": "crash", "label": label, "dialect": dialect,
        "function": function, "sql": sql, "pattern": "P1.2",
    }


def _divergence(sql, dialect="virtuoso", function="ascii", peer="duckdb"):
    return {
        "kind": "divergence", "label": "WRONG", "dialect": dialect,
        "function": function, "sql": sql, "pattern": "P1.2", "peer": peer,
    }


class TestCanonicalization:
    def test_whitespace_and_terminator_are_not_identity(self):
        assert (
            canonical_statement("SELECT  ASCII('') ;")
            == canonical_statement("SELECT ASCII('');")
        )

    def test_ingest_minimizes_the_trigger(self, repo):
        # two fat CHR crashes shrink to the same minimal reproducer
        repo.record_finding(
            _crash("SELECT CHR(99999999999999999999999995);", function="chr")
        )
        record_id, created = repo.record_finding(
            _crash("SELECT CHR(2000000);", function="chr")
        )
        assert not created
        assert repo.count() == 1
        record = repo.get(record_id)
        assert record.statement == "SELECT CHR(1000000)"
        assert record.occurrences == 2


class TestDedupIdentity:
    def test_cross_oracle_findings_collapse(self, repo):
        # the same flaw found by the crash oracle and by the differential
        # oracle is ONE defect: kinds/labels accumulate on one record
        id_a, created_a = repo.record_finding(
            _crash("SELECT ASCII('');"), minimize=False, campaign_id="c1"
        )
        id_b, created_b = repo.record_finding(
            _divergence("SELECT  ASCII('') ;"), minimize=False, campaign_id="c2"
        )
        assert created_a and not created_b
        assert id_a == id_b
        assert repo.count() == 1
        record = repo.get(id_a)
        assert record.kinds == ["crash", "divergence"]
        assert record.labels == ["NPD", "WRONG"]
        assert record.campaigns == ["c1", "c2"]

    def test_distinct_dialects_do_not_collapse(self, repo):
        repo.record_finding(
            _crash("SELECT ASCII('');", dialect="virtuoso"), minimize=False
        )
        repo.record_finding(
            _crash("SELECT ASCII('');", dialect="duckdb"), minimize=False
        )
        assert repo.count() == 2
        assert {r.dialect for r in repo.list()} == {"virtuoso", "duckdb"}

    def test_repeated_campaigns_only_bump_occurrences(self, repo):
        result = run_campaign("virtuoso", budget=500)
        assert result.bugs  # the test premise: this budget finds bugs
        first = repo.record_result(result, campaign_id="c1")
        second = repo.record_result(result, campaign_id="c2")
        assert first["new_records"] == len(result.bugs)
        assert second["new_records"] == 0
        assert second["duplicates"] == len(result.bugs)
        assert repo.count() == len(result.bugs)

    def test_list_filters(self, repo):
        repo.record_finding(_crash("SELECT ASCII('');"), minimize=False)
        repo.record_finding(
            _crash("SELECT 1;", dialect="duckdb", function="abs"),
            minimize=False,
        )
        assert len(repo.list(dialect="virtuoso")) == 1
        assert len(repo.list(triage="confirmed")) == 0


class TestTriage:
    def test_triage_transitions(self, repo):
        record_id, _ = repo.record_finding(
            _crash("SELECT ASCII('');"), minimize=False
        )
        assert repo.get(record_id).triage == "new"
        assert repo.set_triage(record_id, "confirmed").triage == "confirmed"

    def test_unknown_status_rejected(self, repo):
        record_id, _ = repo.record_finding(
            _crash("SELECT ASCII('');"), minimize=False
        )
        with pytest.raises(ValueError, match="triage"):
            repo.set_triage(record_id, "bogus")
        for state in TRIAGE_STATES:
            repo.set_triage(record_id, state)

    def test_missing_record_rejected(self, repo):
        with pytest.raises(KeyError):
            repo.set_triage(999, "confirmed")


class TestReplay:
    """Replay outcomes against the seeded ground truth."""

    def test_live_injected_bug_still_fires(self, repo):
        # ground truth: pick a seeded PoC that crashes a fresh server
        def crashes(poc):
            try:
                dialect_by_name("virtuoso").create_server().connect().execute(poc)
            except ServerCrashed:
                return True
            except Exception:
                return False
            return False

        bug = next(b for b in bugs_for("virtuoso") if crashes(b.poc))
        repo.record_finding(
            _crash(bug.poc, function=bug.function, label=bug.crash),
            minimize=False,
        )
        report = repo.replay(dialect="virtuoso")
        assert report.replayed == 1
        assert report.still_firing == 1
        assert not report.flips  # fires -> fires is not a flip
        (outcome,) = report.outcomes
        assert outcome.observed == f"crash:{bug.crash}"

    def test_lost_reproducer_flips_to_quiet(self, repo):
        record_id, _ = repo.record_finding(
            _crash("SELECT 1;", function="abs"), minimize=False
        )
        report = repo.replay(dialect="virtuoso")
        (outcome,) = report.outcomes
        assert outcome.observed == "ok"
        assert not outcome.fires
        assert outcome.flipped
        assert repo.get(record_id).last_status == "quiet"
        # replaying again is stable: quiet -> quiet, no second flip
        assert not repo.replay(dialect="virtuoso").flips

    def test_strict_logic_flaw_fires_as_error(self, repo):
        flaw = next(
            f for f in logic_flaws_for("duckdb") if f.kind == "strict"
        )
        repo.record_finding(
            {
                "kind": "conformance", "label": "STRICT",
                "dialect": "duckdb", "function": flaw.function,
                "sql": flaw.poc, "pattern": flaw.pattern,
            },
            minimize=False,
        )
        report = repo.replay(dialect="duckdb")
        (outcome,) = report.outcomes
        # replay installs the dialect's logic flaws — the seeded
        # over-strict path rejects the PoC, so the record still fires
        assert outcome.observed == "error"
        assert outcome.fires and not outcome.flipped

    def test_retargeted_replay_is_report_only(self, repo):
        record_id, _ = repo.record_finding(
            _crash("SELECT ASCII('');"), minimize=False
        )
        report = repo.replay(dialect="virtuoso", target="duckdb")
        (outcome,) = report.outcomes
        assert outcome.dialect == "duckdb"
        # ASCII('') only crashes virtuoso: quiet elsewhere, yet the
        # record keeps its own-dialect status untouched
        assert not outcome.fires
        assert not outcome.flipped
        assert repo.get(record_id).last_status == "fires"

    def test_unknown_target_rejected(self, repo):
        with pytest.raises(ValueError, match="target"):
            repo.replay(target="oracle23ai")

    def test_replay_history_is_recorded(self, repo):
        record_id, _ = repo.record_finding(
            _crash("SELECT ASCII('');"), minimize=False
        )
        repo.replay(dialect="virtuoso")
        repo.replay(dialect="virtuoso", target="duckdb")
        history = repo.replay_history(record_id)
        assert [h["dialect"] for h in history] == ["virtuoso", "duckdb"]


class TestEndToEndIngest:
    def test_campaign_with_all_oracles_dedups_per_statement(self, repo):
        result = run_campaign(
            "duckdb", budget=2000, oracles="crash,differential,conformance"
        )
        assert result.bugs and result.findings  # premise for the budget
        repo.record_result(result, campaign_id="e2e")
        # the FLOOR divergence is reported once per peer dialect; the
        # repository folds all peers onto one record per statement
        divergent = [r for r in repo.list() if "divergence" in r.kinds]
        assert divergent
        statements = [r.statement for r in divergent]
        assert len(statements) == len(set(statements))
        assert repo.count() < len(result.bugs) + len(result.findings)
