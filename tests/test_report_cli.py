"""Tests for bug reporting, Table 4 aggregation, feedback summary, CLI."""

import pytest

from repro.cli import main
from repro.core.campaign import run_campaign
from repro.core.oracles import DiscoveredBug
from repro.core.report import (
    feedback_summary,
    format_table4,
    render_bug_report,
    table4_rows,
)
from repro.dialects import find_bug


def make_discovery(dbms="mariadb", function="reverse", crash="NPD",
                   pattern="P1.2", sql="SELECT REVERSE('');"):
    return DiscoveredBug(
        dbms=dbms,
        function=function,
        crash_code=crash,
        pattern=pattern,
        sql=sql,
        stage="execute",
        backtrace=["do_select_1", "item_func_val_2"],
        message="dereference of NULL pointer",
        query_index=42,
        injected=find_bug(dbms, function, crash),
    )


class TestBugReport:
    def test_report_contains_essentials(self):
        report = render_bug_report(make_discovery())
        assert "null pointer dereference in REVERSE" in report
        assert "mariadb 11.3.2" in report
        assert "SELECT REVERSE('');" in report
        assert "pattern P1.2" in report
        assert "Backtrace" in report

    def test_report_shows_vendor_status(self):
        report = render_bug_report(make_discovery())
        assert "confirmed" in report  # MariaDB REVERSE bug is not fixed

    def test_report_for_unattributed_crash(self):
        discovery = make_discovery(function="mystery")
        report = render_bug_report(discovery)
        assert "MYSTERY" in report
        assert "Vendor status" not in report


class TestTable4Aggregation:
    @pytest.fixture(scope="class")
    def results(self):
        # small deterministic campaigns over two dialects
        return [
            run_campaign("duckdb", budget=6000),
            run_campaign("monetdb", budget=6000),
        ]

    def test_rows_group_by_dbms_and_family(self, results):
        rows = table4_rows(results)
        assert rows
        keys = {(r.dbms, r.family) for r in rows}
        assert len(keys) == len(rows)

    def test_counts_are_consistent(self, results):
        rows = table4_rows(results)
        total = sum(r.count for r in rows)
        attributed = sum(
            1 for result in results for b in result.bugs if b.injected
        )
        assert total == attributed

    def test_format_renders_totals(self, results):
        text = format_table4(table4_rows(results))
        assert "Total" in text
        assert "Bugs" in text
        assert "Confirmed" in text

    def test_status_text_variants(self, results):
        rows = table4_rows(results)
        statuses = {r.status_text() for r in rows}
        assert any("Confirmed & Fixed" in s for s in statuses)


class TestFeedback:
    def test_summary_counts(self):
        result = run_campaign("clickhouse", budget=25000)
        summary = feedback_summary([result])
        assert summary["confirmed"] == len([b for b in result.bugs if b.injected])
        assert summary["fixed"] <= summary["confirmed"]

    def test_cto_highlight_present_when_todecimalstring_found(self):
        result = run_campaign("clickhouse", budget=40000)
        summary = feedback_summary([result])
        found_ids = {b.injected.bug_id for b in result.bugs if b.injected}
        if "CLICKHOUSE-STRI-001" in found_ids:
            assert any("CTO" in h for h in summary["highlights"])


class TestCLI:
    def test_dialects_command(self, capsys):
        assert main(["dialects"]) == 0
        out = capsys.readouterr().out
        assert "postgresql" in out
        assert "virtuoso" in out

    def test_study_command(self, capsys):
        assert main(["study"]) == 0
        out = capsys.readouterr().out
        assert "Studied bugs: 318" in out
        assert "87.4%" in out

    def test_poc_command(self, capsys):
        assert main(["poc", "postgresql"]) == 0
        out = capsys.readouterr().out
        assert "JSONB_OBJECT_AGG" in out

    def test_fuzz_command(self, capsys):
        assert main(["fuzz", "monetdb", "--budget", "2500"]) == 0
        out = capsys.readouterr().out
        assert "monetdb: 2500 queries" in out

    def test_fuzz_with_reports(self, capsys):
        assert main(["fuzz", "duckdb", "--budget", "4000", "--reports"]) == 0
        out = capsys.readouterr().out
        assert "Proof of concept" in out

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])
