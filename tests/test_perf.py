"""Tests for ``repro.perf``: the statement parse/plan cache and the sharded
parallel campaign executor.

The contract under test is strict: caching and sharding are *transparent*
optimizations — a cached plan must produce byte-identical outcomes to a
cold parse, and a ``jobs=N`` campaign must report the same
``CampaignResult.signature()`` as the serial run, faults on or off.
"""

import itertools

import pytest

from repro.core.campaign import Campaign, run_campaign
from repro.core.config import CampaignConfig
from repro.core.collect import SeedCollector
from repro.core.patterns import GeneratedCase, PatternEngine
from repro.core.runner import Runner
from repro.dialects import all_dialect_classes, bugs_for, dialect_by_name
from repro.engine.connection import ConnectionClosed
from repro.perf import StatementCache
from repro.perf.parallel import ParallelCampaign, run_parallel_campaign
from repro.robustness.watchdog import StatementTimeout

FAULT_SPEC = "hang=0.01,slow=0.02,drop=0.01,flaky=0.01,restart_fail=0.1"


# ---------------------------------------------------------------------------
# statement cache: mechanics
# ---------------------------------------------------------------------------
class TestStatementCache:
    def _connection(self):
        return dialect_by_name("duckdb").create_server().connect()

    def test_exact_tier_hit_on_repeated_statement(self):
        conn = self._connection()
        cache = conn.server.stmt_cache
        first = conn.execute("SELECT ABS(-5);").rendered()
        assert cache.hits == 0
        second = conn.execute("SELECT ABS(-5);").rendered()
        assert second == first
        assert cache.hits == 1

    def test_template_tier_hit_on_same_shape(self):
        conn = self._connection()
        cache = conn.server.stmt_cache
        assert conn.execute("SELECT ABS(-5);").scalar().render() == "5"
        # same token shape, different literal: parse is reused, the literal
        # slot is rebound, and the value must be the rebound one
        assert conn.execute("SELECT ABS(-7);").scalar().render() == "7"
        assert cache.hits == 1
        assert conn.execute("SELECT ABS(-123);").scalar().render() == "123"
        assert cache.hits == 2

    def test_string_literals_rebind(self):
        conn = self._connection()
        assert conn.execute("SELECT UPPER('abc');").scalar().render() == "ABC"
        assert conn.execute("SELECT UPPER('xyz');").scalar().render() == "XYZ"
        assert conn.server.stmt_cache.hits == 1

    def test_literal_kind_is_part_of_the_shape(self):
        conn = self._connection()
        cache = conn.server.stmt_cache
        conn.execute("SELECT LENGTH('abc');")
        # integer argument is a *different* shape than a string argument —
        # it must not hit the string template
        conn.execute("SELECT LENGTH(123);")
        assert cache.hits == 0

    def test_ddl_invalidates(self):
        conn = self._connection()
        cache = conn.server.stmt_cache
        conn.execute("SELECT ABS(-5);")
        assert len(cache) > 0
        conn.execute("CREATE TABLE t (a INT)")
        assert len(cache) == 0
        assert cache.invalidations == 1

    def test_set_statement_invalidates(self):
        conn = self._connection()
        cache = conn.server.stmt_cache
        conn.execute("SELECT ABS(-5);")
        assert len(cache) > 0
        conn.execute("SET fold_functions = '1'")
        assert len(cache) == 0

    def test_restart_invalidates(self):
        conn = self._connection()
        server = conn.server
        server.connect().execute("SELECT ABS(-5);")
        assert len(server.stmt_cache) > 0
        server.restart()
        assert len(server.stmt_cache) == 0
        # counters survive the restart — they describe the workload
        assert server.stmt_cache.misses > 0

    def test_multi_statement_sql_bypasses_cache(self):
        conn = self._connection()
        cache = conn.server.stmt_cache
        conn.execute("SELECT 1; SELECT 2;")
        conn.execute("SELECT 1; SELECT 2;")
        assert cache.hits == 0

    def test_bypass_knob(self):
        runner = Runner(dialect_by_name("duckdb"), statement_cache=False)
        assert runner.server.stmt_cache is None
        runner.run("SELECT ABS(-5);")
        runner.run("SELECT ABS(-5);")
        assert runner.cache_hits == 0
        assert runner.cache_misses == 0

    def test_lru_eviction(self):
        cache = StatementCache(capacity=2, template_capacity=2)
        from repro.engine.connection import Server

        server = Server(dialect_by_name("duckdb"))
        server.stmt_cache = cache
        conn = server.connect()
        conn.execute("SELECT ABS(-1);")
        conn.execute("SELECT UPPER('a');")
        conn.execute("SELECT LENGTH('bb');")  # evicts the ABS entries
        assert len(cache._exact) <= 2
        assert len(cache._templates) <= 2


# ---------------------------------------------------------------------------
# statement cache: differential correctness (the property the design hinges on)
# ---------------------------------------------------------------------------
def _outcome_key(outcome):
    return (outcome.kind, outcome.message, outcome.result_type)


class TestCacheDifferential:
    @pytest.mark.parametrize(
        "dialect_name",
        [cls().name for cls in all_dialect_classes()],
    )
    def test_cached_and_uncached_outcomes_identical(self, dialect_name):
        """Identical (kind, message, result_type) streams over a sample of
        pattern-generated statements — including the dialect's injected-bug
        PoCs, which crash the server and exercise the restart-invalidation
        path mid-stream."""
        dialect = dialect_by_name(dialect_name)
        seeds = SeedCollector(dialect).collect()
        engine = PatternEngine(seeds)
        statements = [f"SELECT {s.sql};" for s in seeds[:20]]
        statements += [
            case.sql for case in itertools.islice(engine.generate_all(), 150)
        ]
        # splice crashing PoCs into the middle so later statements run
        # against a restarted server on both sides
        pocs = [bug.poc for bug in bugs_for(dialect_name)[:4]]
        statements[60:60] = pocs
        cached = Runner(dialect_by_name(dialect_name))
        uncached = Runner(dialect_by_name(dialect_name), statement_cache=False)
        for sql in statements:
            a = cached.run(sql)
            b = uncached.run(sql)
            assert _outcome_key(a) == _outcome_key(b), sql
        assert uncached.cache_misses == 0

    def test_cache_actually_hits_on_pattern_streams(self):
        dialect = dialect_by_name("duckdb")
        seeds = SeedCollector(dialect).collect()
        engine = PatternEngine(seeds)
        runner = Runner(dialect)
        for case in itertools.islice(engine.generate_all(), 400):
            runner.run(case.sql)
        assert runner.cache_hits > 0

    def test_campaign_signature_cached_equals_uncached(self):
        cached = run_campaign("duckdb", budget=1_000, seed=3)
        uncached = run_campaign("duckdb", budget=1_000, seed=3, statement_cache=False)
        assert cached.signature() == uncached.signature()
        assert cached.cache_hits > 0
        assert uncached.cache_hits == 0


# ---------------------------------------------------------------------------
# parallel campaigns: determinism
# ---------------------------------------------------------------------------
class TestParallelDeterminism:
    def test_jobs_4_signature_equals_serial(self):
        serial = Campaign(
            dialect_by_name("duckdb"),
            config=CampaignConfig(dialect="duckdb", budget=2_000, seed=3),
        ).run()
        parallel = ParallelCampaign(
            config=CampaignConfig(dialect="duckdb", jobs=4, budget=2_000, seed=3)
        ).run()
        assert parallel.signature() == serial.signature()

    def test_jobs_4_signature_equals_serial_with_faults(self):
        serial = run_campaign(
            "duckdb", budget=2_000, seed=3, faults=FAULT_SPEC, fault_seed=5
        )
        parallel = run_parallel_campaign(
            "duckdb", jobs=4, budget=2_000, seed=3,
            faults=FAULT_SPEC, fault_seed=5,
        )
        assert parallel.signature() == serial.signature()

    def test_jobs_1_runs_inline_and_matches(self):
        serial = run_campaign("duckdb", budget=1_000, seed=3)
        inline = run_parallel_campaign("duckdb", jobs=1, budget=1_000, seed=3)
        assert inline.signature() == serial.signature()

    def test_rejects_bad_jobs(self):
        with pytest.raises(ValueError):
            ParallelCampaign(config=CampaignConfig(dialect="duckdb", jobs=0))

    def test_merged_throughput_counters_populated(self):
        result = run_parallel_campaign("duckdb", jobs=2, budget=1_000, seed=3)
        assert result.wall_seconds > 0
        assert result.statements_per_second > 0
        assert result.cache_hits + result.cache_misses >= result.queries_executed


# ---------------------------------------------------------------------------
# parallel campaigns: shard checkpoint/resume
# ---------------------------------------------------------------------------
class TestParallelResume:
    def test_interrupted_shards_resume_to_identical_signature(self, tmp_path):
        path = str(tmp_path / "campaign.ckpt")
        config = CampaignConfig(
            dialect="duckdb", jobs=2, budget=1_200, seed=3,
            checkpoint_path=path, checkpoint_every=100,
        )
        interrupted = ParallelCampaign(config=config)
        interrupted._stop_after = 150  # simulate a mid-campaign kill
        partial = interrupted.run()
        assert partial.queries_executed < 1_200

        resumed = ParallelCampaign(config=config).run(resume=True)
        fresh = ParallelCampaign(
            config=config.replace(checkpoint_path=None)
        ).run()
        assert resumed.signature() == fresh.signature()

    def test_resume_rejects_mismatched_configuration(self, tmp_path):
        from repro.robustness.checkpoint import CheckpointError

        path = str(tmp_path / "campaign.ckpt")
        config = CampaignConfig(
            dialect="duckdb", jobs=2, budget=600, seed=3,
            checkpoint_path=path, checkpoint_every=100,
        )
        ParallelCampaign(config=config).run()
        with pytest.raises(CheckpointError):
            ParallelCampaign(
                config=config.replace(seed=4)  # different seed
            ).run(resume=True)


# ---------------------------------------------------------------------------
# satellite: _handle_timeout routes ConnectionClosed through RetryPolicy
# ---------------------------------------------------------------------------
class TestTimeoutRetryBackoff:
    def _runner_with_script(self, script):
        """A runner whose _execute raises/returns per the scripted steps."""
        runner = Runner(dialect_by_name("duckdb"))
        real_execute = runner._execute
        calls = []

        def fake_execute(sql, quiet=False):
            calls.append(quiet)
            step = script[min(len(calls), len(script)) - 1]
            if step is None:
                return real_execute(sql, quiet=quiet)
            raise step

        runner._execute = fake_execute
        return runner, calls

    def test_connection_lost_during_quiet_retry_is_retried(self):
        # timeout → quiet retry loses the connection → reconnect+backoff →
        # retry succeeds.  Before the fix this gave up after one attempt.
        runner, calls = self._runner_with_script(
            [StatementTimeout(30.0, 31.0), ConnectionClosed("reset"), None]
        )
        outcome = runner.run("SELECT 1;")
        assert outcome.kind == "ok"
        assert runner.fault_counters.get("reconnects") == 1
        assert len(calls) == 3

    def test_persistent_connection_loss_exhausts_policy(self):
        runner, calls = self._runner_with_script(
            [StatementTimeout(30.0, 31.0), ConnectionClosed("reset")]
        )
        outcome = runner.run("SELECT 1;")
        assert outcome.kind == "error"
        assert "attempts" in outcome.message
        # one timeout attempt + max_attempts-bounded reconnect attempts
        assert runner.fault_counters["reconnects"] >= 2


# ---------------------------------------------------------------------------
# lazy case generation
# ---------------------------------------------------------------------------
class TestLazyCases:
    def test_deferred_case_builds_sql_once(self):
        built = []

        def build():
            built.append(1)
            return "SELECT 1;"

        case = GeneratedCase.deferred(build, "P1.2", "abs", "math")
        assert built == []  # nothing rendered yet
        assert case.sql == "SELECT 1;"
        assert case.sql == "SELECT 1;"
        assert built == [1]  # memoized

    def test_eager_constructor_still_works(self):
        case = GeneratedCase("SELECT 2;", "P1.3", "abs", "math")
        assert case.sql == "SELECT 2;"
        assert case.pattern == "P1.3"


# ---------------------------------------------------------------------------
# parallel campaigns: oracle pipelines merge shard-by-shard
# ---------------------------------------------------------------------------
class TestParallelOracles:
    ALL = "crash,differential,conformance"

    def test_all_oracles_signature_equals_serial(self):
        serial = run_campaign("duckdb", budget=2_000, seed=3, oracles=self.ALL)
        parallel = run_parallel_campaign(
            "duckdb", jobs=4, budget=2_000, seed=3, oracles=self.ALL
        )
        assert serial.findings  # the logic oracles saw the seeded flaws
        assert parallel.signature() == serial.signature()
        assert [f.signature_tuple() for f in parallel.findings] == \
            [f.signature_tuple() for f in serial.findings]

    def test_all_oracles_signature_equals_serial_with_faults(self):
        serial = run_campaign(
            "duckdb", budget=2_000, seed=3, oracles=self.ALL,
            faults=FAULT_SPEC, fault_seed=5,
        )
        parallel = run_parallel_campaign(
            "duckdb", jobs=4, budget=2_000, seed=3, oracles=self.ALL,
            faults=FAULT_SPEC, fault_seed=5,
        )
        assert parallel.signature() == serial.signature()

    def test_resume_refuses_different_oracle_set(self, tmp_path):
        from repro.robustness.checkpoint import CheckpointError

        path = str(tmp_path / "campaign.ckpt")
        config = CampaignConfig(
            dialect="duckdb", jobs=2, budget=1_200, seed=3, oracles=self.ALL,
            checkpoint_path=path, checkpoint_every=100,
        )
        interrupted = ParallelCampaign(config=config)
        interrupted._stop_after = 150
        interrupted.run()
        with pytest.raises(CheckpointError):
            ParallelCampaign(
                config=config.replace(oracles=("crash",))  # crash-only now
            ).run(resume=True)
