"""Tests for SOFT's core: collection, boundary pool, the ten patterns."""

import random

import pytest

from repro.core.collect import Seed, SeedCollector
from repro.core.literals import boundary_literals, boundary_repeat_counts
from repro.core.patterns import MAX_FUNCTION_CALLS, PatternEngine
from repro.dialects import dialect_by_name
from repro.sqlast import (
    FuncCall,
    NullLit,
    Star,
    StringLit,
    parse_expression,
    parse_statement,
    to_sql,
)
from repro.sqlast.visitor import count_function_calls, find_function_calls


@pytest.fixture(scope="module")
def mariadb():
    return dialect_by_name("mariadb")


@pytest.fixture(scope="module")
def seeds(mariadb):
    return SeedCollector(mariadb).collect()


def make_seed(sql, family="string"):
    expr = parse_expression(sql)
    return Seed(expr.name.lower(), family, expr, source="test")


def engine_for(*seed_sqls):
    seeds = [make_seed(s) for s in seed_sqls]
    return PatternEngine(seeds, rng=random.Random(0)), seeds


class TestCollection:
    def test_collects_most_functions(self, mariadb, seeds):
        collected = {s.function for s in seeds}
        known = set(mariadb.registry.names())
        # every function gets at least a synthetic seed
        assert known <= collected | {"count"} or len(known - collected) < 5

    def test_seed_expressions_parse_back(self, seeds):
        for seed in seeds[:50]:
            assert isinstance(parse_statement(f"SELECT {seed.sql};"), object)

    def test_paren_scan_lifts_known_calls(self, mariadb):
        collector = SeedCollector(mariadb)
        calls = collector.scan_query(
            "SELECT UPPER(c0), nope(1) FROM t WHERE LENGTH(c1) > 2;",
            {"upper", "length"},
        )
        assert sorted(c.name.lower() for c in calls) == ["length", "upper"]

    def test_paren_scan_survives_garbage(self, mariadb):
        collector = SeedCollector(mariadb)
        assert collector.scan_query("SELECT 'unterminated", {"upper"}) == []

    def test_paren_scan_nested_expression(self, mariadb):
        collector = SeedCollector(mariadb)
        calls = collector.scan_query(
            "SELECT CONCAT(UPPER('a'), 'b');", {"concat", "upper"}
        )
        names = sorted(c.name.lower() for c in calls)
        assert names == ["concat", "upper"]

    def test_max_seeds_per_function(self, mariadb):
        collector = SeedCollector(mariadb, max_seeds_per_function=1)
        seeds = collector.collect()
        from collections import Counter

        counts = Counter(s.function for s in seeds)
        assert max(counts.values()) == 1

    def test_synthetic_seed_for_undocumented_function(self, mariadb):
        collector = SeedCollector(mariadb)
        seed = collector._synthetic_seed("upper")
        assert seed is not None
        assert seed.source == "documentation"


class TestBoundaryPool:
    def test_contains_paper_families(self):
        pool = boundary_literals()
        rendered = [to_sql(e) for e in pool]
        assert "''" in rendered
        assert "NULL" in rendered
        assert "*" in rendered
        assert "99999" in rendered
        assert "-(99999)" in rendered or any("-" in r and "99999" in r for r in rendered)
        assert "0.99999" in rendered

    def test_enumerates_digit_lengths(self):
        pool = boundary_literals()
        lengths = set()
        for expr in pool:
            text = to_sql(expr)
            if set(text) == {"9"}:
                lengths.add(len(text))
        assert len(lengths) >= 8  # many digit lengths, per §6

    def test_repeat_counts_include_oom_bound(self):
        assert 9999999999 in boundary_repeat_counts()


class TestPatternShapes:
    def test_p1_2_substitutes_pool(self):
        engine, seeds = engine_for("F('abc', 1)")
        cases = list(engine.p1_2(seeds[0]))
        sqls = [c.sql for c in cases]
        assert "SELECT F(NULL, 1);" in sqls
        assert "SELECT F('abc', NULL);" in sqls
        assert "SELECT F(*, 1);" in sqls
        assert any("99999" in s for s in sqls)
        assert all(c.pattern == "P1.2" for c in cases)

    def test_p1_3_injects_digit_runs(self):
        engine, seeds = engine_for("F('hello')")
        sqls = [c.sql for c in engine.p1_3(seeds[0])]
        assert any("99999" in s for s in sqls)
        # the run replaces one character at sampled positions (start/mid/end)
        assert any("99999ello" in s for s in sqls)
        assert any("he99999lo" in s for s in sqls)

    def test_p1_3_widens_numbers(self):
        engine, seeds = engine_for("F(1.5)")
        sqls = [c.sql for c in engine.p1_3(seeds[0])]
        assert any(s.count("9") >= 20 for s in sqls)

    def test_p1_4_duplicates_characters(self):
        engine, seeds = engine_for("F('{\"k\": 0}')")
        sqls = [c.sql for c in engine.p1_4(seeds[0])]
        assert any("{{{{" in s for s in sqls)

    def test_p1_4_malformed_array_becomes_string(self):
        engine, seeds = engine_for("F([1, 2])")
        sqls = [c.sql for c in engine.p1_4(seeds[0])]
        assert any("'[[1, 2]'" in s for s in sqls)

    def test_p2_1_casts_args(self):
        engine, seeds = engine_for("F('abc')")
        sqls = [c.sql for c in engine.p2_1(seeds[0])]
        assert any("CAST('abc' AS BINARY)" in s for s in sqls)
        assert any("AS DECIMAL(30, 28)" in s for s in sqls)
        assert any("AS UNSIGNED" in s for s in sqls)

    def test_p2_2_builds_unions(self):
        engine, seeds = engine_for("F(1)")
        sqls = [c.sql for c in engine.p2_2(seeds[0])]
        assert any("UNION SELECT NULL" in s for s in sqls)
        assert any("UNION ALL SELECT 1" in s for s in sqls)

    def test_p2_3_transplants_donor_args(self):
        engine, _ = engine_for("F('abc')", "G('$[0]', 1)")
        seed = engine.seeds[0]
        sqls = [c.sql for c in engine.p2_3(seed)]
        assert any("F('$[0]')" in s for s in sqls)

    def test_p3_1_builds_repeats(self):
        engine, seeds = engine_for("F('[1,]')")
        sqls = [c.sql for c in engine.p3_1(seeds[0])]
        assert any("REPEAT('[', 999)" in s for s in sqls)
        assert any("REPEAT('[1,', 99999)" in s for s in sqls)

    def test_p3_1_handles_numeric_literal(self):
        engine, seeds = engine_for("F(0)")
        sqls = [c.sql for c in engine.p3_1(seeds[0])]
        assert any("REPEAT('0'" in s for s in sqls)

    def test_p3_2_wraps_argument(self):
        engine, _ = engine_for("F('abc')", "G('x', 2)")
        seed = engine.seeds[0]
        sqls = [c.sql for c in engine.p3_2(seed)]
        assert any("F(G('abc', 2))" in s for s in sqls)

    def test_p3_3_substitutes_whole_call(self):
        engine, _ = engine_for("F('abc')", "G('x', 2)")
        seed = engine.seeds[0]
        sqls = [c.sql for c in engine.p3_3(seed)]
        assert any("F(G('x', 2))" in s for s in sqls)

    def test_nesting_cap_respected(self):
        """Finding 3: seeds already holding two calls are not nested further."""
        engine, _ = engine_for("F(G('x'))", "H('y')")
        seed = engine.seeds[0]
        assert list(engine.p3_2(seed)) == []
        assert list(engine.p3_3(seed)) == []
        assert list(engine.p3_1(seed)) == []

    def test_generated_cases_never_exceed_two_calls_from_nesting(self):
        engine, _ = engine_for("F('abc')", "G('x')", "H('y')")
        for case in engine.generate_for_seed(engine.seeds[0]):
            stmt = parse_statement(case.sql)
            if case.pattern in ("P3.1", "P3.2", "P3.3"):
                assert count_function_calls(stmt) <= MAX_FUNCTION_CALLS

    def test_all_generated_cases_parse(self):
        engine, _ = engine_for("F('abc', 1)", "G('$[0]')", "H(2, 'b')")
        count = 0
        for case in engine.generate_for_seed(engine.seeds[0]):
            parse_statement(case.sql)  # must not raise
            count += 1
        assert count > 100

    def test_interleaving_reaches_every_pattern_early(self):
        engine, _ = engine_for("F('abc', 1)", "G('$[0]')")
        first = [c.pattern for c in list(engine.generate_for_seed(engine.seeds[0]))[:18]]
        assert len(set(first)) == 9  # all nine streams sampled

    def test_seed_clone_isolation(self):
        """Pattern application must never mutate the seed expression."""
        engine, seeds = engine_for("F('abc')")
        before = seeds[0].sql
        for _ in engine.generate_for_seed(seeds[0]):
            pass
        assert seeds[0].sql == before


class TestPartnerOrdering:
    def test_exotic_producers_come_first(self):
        seeds = [
            make_seed("A('x')", family="string"),
            make_seed("B('y')", family="string"),
            make_seed("PROD('z')", family="inet"),
        ]
        engine = PatternEngine(seeds, return_types={"prod": "bytes"})
        partners = engine.partners_for(seeds[0])
        assert partners[0].function == "prod"

    def test_partners_exclude_self_and_dedupe(self):
        seeds = [make_seed("A('x')"), make_seed("A('y')"), make_seed("B('z')")]
        engine = PatternEngine(seeds)
        partners = engine.partners_for(seeds[0])
        names = [p.function for p in partners]
        assert "a" not in names
        assert names.count("b") == 1

    def test_donors_prefer_symbol_prefixes(self):
        engine, _ = engine_for("F('abc')", "G('$[0]')", "H('/a/b')", "I('zz')")
        heads = [to_sql(d)[1] for d in engine._donors if to_sql(d).startswith("'")]
        # symbols appear before alphanumerics
        symbol_positions = [i for i, h in enumerate(heads) if h in "$/"]
        alnum_positions = [i for i, h in enumerate(heads) if h.isalnum()]
        assert symbol_positions and max(symbol_positions) < min(alnum_positions)
