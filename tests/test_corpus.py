"""Tests for the 318-bug study corpus: every published statistic must be
*recomputed* from the raw records."""

import pytest

from repro.corpus import (
    DBMS_COUNTS,
    EXPRESSION_COUNT_DISTRIBUTION,
    FUNCTION_TYPE_HISTOGRAM,
    PREREQUISITE_COUNTS,
    ROOT_CAUSE_COUNTS,
    STAGE_COUNTS,
    SYNTHESIZED,
    boundary_share,
    build_corpus,
    classify_stage,
    count_by_dbms,
    expression_count_distribution,
    extract_function_calls,
    function_type_histogram,
    load_corpus,
    prerequisite_distribution,
    root_cause_distribution,
    stage_distribution,
    summarize,
)
from repro.corpus.data import LITERAL_SUBCLASS_COUNTS
from repro.corpus.study import literal_subclass_distribution, share_with_at_most_two


@pytest.fixture(scope="module")
def corpus():
    return load_corpus()


class TestCorpusShape:
    def test_synthesized_flag_is_public(self):
        assert SYNTHESIZED is True

    def test_total_318(self, corpus):
        assert len(corpus) == 318

    def test_deterministic(self):
        assert [b.bug_id for b in build_corpus()] == [b.bug_id for b in build_corpus()]

    def test_unique_ids(self, corpus):
        ids = [b.bug_id for b in corpus]
        assert len(ids) == len(set(ids))

    def test_ids_use_tracker_prefixes(self, corpus):
        prefixes = {b.bug_id.split("-")[0] for b in corpus}
        assert prefixes == {"PG", "MYSQL", "MDEV"}

    def test_every_poc_parses(self, corpus):
        for bug in corpus:
            for statement in bug.poc:
                assert extract_function_calls(statement) is not None

    def test_bug_inducing_statement_is_select(self, corpus):
        for bug in corpus:
            assert bug.bug_inducing_statement.startswith("SELECT")


class TestTable1:
    def test_per_dbms_counts(self, corpus):
        assert count_by_dbms(corpus) == DBMS_COUNTS


class TestFinding1:
    def test_stage_distribution_recomputed_from_backtraces(self, corpus):
        assert stage_distribution(corpus) == STAGE_COUNTS

    def test_backtrace_count(self, corpus):
        assert sum(1 for b in corpus if b.has_backtrace) == 230

    def test_execution_share_is_70_percent(self, corpus):
        stages = stage_distribution(corpus)
        assert stages["execute"] / sum(stages.values()) == pytest.approx(0.70, abs=0.005)

    def test_classifier_on_known_symbols(self):
        assert classify_stage(["do_select_3", "item_func_val_1"]) == "execute"
        assert classify_stage(["optimize_cond_2"]) == "optimize"
        assert classify_stage(["sql_yyparse_0"]) == "parse"
        assert classify_stage(["mystery_symbol"]) is None


class TestFigure1:
    def test_histogram_recomputed_from_pocs(self, corpus):
        rows = {r.family: (r.occurrences, r.unique_functions)
                for r in function_type_histogram(corpus)}
        assert rows == FUNCTION_TYPE_HISTOGRAM

    def test_string_functions_dominate(self, corpus):
        rows = function_type_histogram(corpus)
        assert rows[0].family == "string"
        assert rows[0].occurrences == 117
        assert rows[0].unique_functions == 57
        assert rows[1].family == "aggregate"
        assert rows[1].occurrences == 91

    def test_total_occurrences_508(self, corpus):
        assert sum(r.occurrences for r in function_type_histogram(corpus)) == 508


class TestTable2:
    def test_expression_counts_recomputed(self, corpus):
        assert expression_count_distribution(corpus) == EXPRESSION_COUNT_DISTRIBUTION

    def test_finding3_share(self, corpus):
        # 278/318 ≈ 87.4% contain at most two function expressions
        assert share_with_at_most_two(corpus) == pytest.approx(278 / 318)


class TestFinding4:
    def test_prerequisites_recomputed_from_poc_shapes(self, corpus):
        assert prerequisite_distribution(corpus) == PREREQUISITE_COUNTS

    def test_empty_table_pocs_have_complex_definitions(self, corpus):
        for bug in corpus:
            if prerequisite_distribution([bug]).get("empty_table"):
                create = bug.poc[0]
                assert "NOT NULL" in create or "DECIMAL(65" in create


class TestRootCauses:
    def test_distribution(self, corpus):
        assert root_cause_distribution(corpus) == ROOT_CAUSE_COUNTS

    def test_headline_874_percent(self, corpus):
        assert boundary_share(corpus) == pytest.approx(278 / 318)

    def test_literal_subclasses(self, corpus):
        assert literal_subclass_distribution(corpus) == LITERAL_SUBCLASS_COUNTS

    def test_nested_bugs_really_contain_nested_calls(self, corpus):
        for bug in corpus:
            if bug.root_cause == "boundary_nested":
                calls = extract_function_calls(bug.bug_inducing_statement)
                assert len(calls) >= 2, bug.bug_id


class TestSummary:
    def test_one_call_summary(self):
        summary = summarize()
        assert summary.total == 318
        assert summary.boundary_share == pytest.approx(0.874, abs=0.001)
        assert summary.with_backtrace == 230
