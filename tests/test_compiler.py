"""Differential tests for the plan→closure compiler and shard transport.

The compiler (``repro.perf.compiler``) is a *transparent* optimization:
every statement must produce byte-identical observable behaviour whether
it runs through a compiled closure or the tree-walking interpreter —
same result values (checked via result-set fingerprints), same outcome
classification, same error messages, and the same campaign signature
serial or sharded.  The transport (``repro.perf.transport``) must
reconstruct statement streams byte-for-byte and round-trip shard report
value trees exactly.
"""

import itertools

import pytest

from repro.core.campaign import Campaign, CampaignConfig, run_campaign
from repro.core.collect import SeedCollector
from repro.core.patterns import PatternEngine
from repro.core.runner import Runner
from repro.dialects import all_dialect_classes, bugs_for, dialect_by_name
from repro.perf.parallel import ParallelCampaign
from repro.perf.stmtcache import StatementCache
from repro.perf.transport import (
    StatementDecoder,
    StatementEncoder,
    TransportError,
    decode_value,
    encode_value,
    pack_statements,
    split_literals,
    transport_stats,
    unpack_statements,
)

FAULT_SPEC = "hang=0.01,slow=0.02,drop=0.01,flaky=0.01,restart_fail=0.1"
ALL_ORACLES = ("crash", "differential", "conformance")


def _outcome_key(outcome):
    return (outcome.kind, outcome.message, outcome.result_type)


def _pattern_sample(dialect, per_pattern=5, pattern_target=10):
    """Statements covering every boundary pattern the generator emits.

    Bucket ``seed`` plus the generated P-patterns (P1.2 .. P3.3) — ten
    shapes total — with *per_pattern* statements each.
    """
    seeds = SeedCollector(dialect).collect()
    buckets = {"seed": [f"SELECT {s.sql};" for s in seeds[:per_pattern]]}
    engine = PatternEngine(seeds)
    for case in itertools.islice(engine.generate_all(), 8000):
        bucket = buckets.setdefault(case.pattern, [])
        if len(bucket) < per_pattern:
            bucket.append(case.sql)
    assert len(buckets) >= pattern_target, sorted(buckets)
    return buckets


# ---------------------------------------------------------------------------
# compiled vs interpreted: per-statement differential
# ---------------------------------------------------------------------------
class TestCompiledDifferential:
    @pytest.mark.parametrize(
        "dialect_name",
        [cls().name for cls in all_dialect_classes()],
    )
    def test_compiled_and_interpreted_outcomes_identical(self, dialect_name):
        """Every boundary pattern, every dialect: identical classification
        *and* identical result values (fingerprints), run twice so the
        second pass exercises the warm compiled fast path.  Crashing PoCs
        are spliced in so both sides also restart mid-stream."""
        dialect = dialect_by_name(dialect_name)
        buckets = _pattern_sample(dialect)
        statements = [sql for bucket in buckets.values() for sql in bucket]
        statements[10:10] = [bug.poc for bug in bugs_for(dialect_name)[:3]]
        compiled = Runner(dialect_by_name(dialect_name))
        interpreted = Runner(dialect_by_name(dialect_name), compile_plans=False)
        compiled.capture_fingerprints = True
        interpreted.capture_fingerprints = True
        for sql in statements * 2:
            a = compiled.run(sql)
            b = interpreted.run(sql)
            assert _outcome_key(a) == _outcome_key(b), sql
            assert a.fingerprint == b.fingerprint, sql
        assert interpreted.compiled_executions == 0

    def test_warm_repeats_actually_run_compiled(self):
        runner = Runner(dialect_by_name("duckdb"))
        for _ in range(3):
            runner.run("SELECT ABS(-5);")
            runner.run("SELECT UPPER('abc');")
        assert runner.compiled_executions > 0
        assert runner.compile_fallbacks == 0

    def test_compile_flag_disables_without_counting_fallbacks(self):
        runner = Runner(dialect_by_name("duckdb"), compile_plans=False)
        for _ in range(3):
            runner.run("SELECT ABS(-5);")
        assert runner.compiled_executions == 0
        assert runner.compile_fallbacks == 0

    def test_sandboxed_execution_falls_back_with_counter(self):
        """Sandboxed workers always interpret; the health surface reports
        the suppressed compilations as interpreter fallbacks."""
        result = run_campaign("duckdb", budget=60, seed=3, sandbox=True)
        assert result.compiled_executions == 0
        assert result.compile_fallbacks > 0


# ---------------------------------------------------------------------------
# compiled vs interpreted: campaign signatures
# ---------------------------------------------------------------------------
class TestCompiledSignatureParity:
    def _serial_signature(self, **kw):
        cfg = CampaignConfig(budget=600, seed=7, **kw)
        return Campaign(dialect_by_name("duckdb"), config=cfg).run().signature()

    def _parallel(self, jobs, **kw):
        cfg = CampaignConfig(dialect="duckdb", budget=600, seed=7, jobs=jobs, **kw)
        return ParallelCampaign(config=cfg).run()

    def test_serial_compile_on_equals_off(self):
        on = Campaign(
            dialect_by_name("duckdb"), config=CampaignConfig(budget=600, seed=7)
        ).run()
        off = Campaign(
            dialect_by_name("duckdb"),
            config=CampaignConfig(budget=600, seed=7, compile=False),
        ).run()
        assert on.signature() == off.signature()
        assert on.compiled_executions > 0
        assert off.compiled_executions == 0

    def test_jobs4_signature_equals_serial_compiled_and_not(self):
        serial = self._serial_signature()
        assert self._parallel(4).signature() == serial
        off = self._parallel(4, compile=False)
        assert off.signature() == serial
        assert off.compiled_executions == 0

    def test_jobs4_signature_equals_serial_with_faults(self):
        serial = self._serial_signature(faults=FAULT_SPEC, fault_seed=11)
        parallel = self._parallel(4, faults=FAULT_SPEC, fault_seed=11)
        assert parallel.signature() == serial

    def test_jobs4_signature_equals_serial_all_oracles(self):
        serial = self._serial_signature(oracles=ALL_ORACLES)
        parallel = self._parallel(4, oracles=ALL_ORACLES)
        assert parallel.signature() == serial

    def test_parallel_merges_compile_counters(self):
        result = self._parallel(2)
        assert result.compiled_executions > 0
        assert result.compile_fallbacks == 0


# ---------------------------------------------------------------------------
# warm-corpus handoff
# ---------------------------------------------------------------------------
class TestWarmCorpus:
    def test_export_and_warm_reproduce_the_hit_path(self):
        dialect = dialect_by_name("duckdb")
        source = Runner(dialect)
        for sql in ("SELECT ABS(-5);", "SELECT UPPER('abc');"):
            source.run(sql)
        corpus = source.server.stmt_cache.export_warm_sql(dialect.name)
        assert "SELECT ABS(-5);" in corpus

        target = Runner(dialect_by_name("duckdb"))
        cache = target.server.stmt_cache
        for sql in corpus:
            cache.warm(dialect.name, sql, target.server.ctx)
        before = cache.hits
        out = target.run("SELECT ABS(-5);")
        assert out.kind == "ok"
        assert cache.hits == before + 1

    def test_parallel_run_records_transport_stats(self):
        campaign = ParallelCampaign(
            config=CampaignConfig(dialect="duckdb", budget=400, seed=3, jobs=2)
        )
        campaign.run()
        stats = campaign.last_transport
        assert stats is not None
        assert stats.statements > 0
        # the dictionary transport must beat pickling the same stream
        assert stats.warm_bytes < stats.pickle_bytes


# ---------------------------------------------------------------------------
# the shard transport
# ---------------------------------------------------------------------------
class TestTransport:
    def test_value_codec_round_trips(self):
        values = [
            None, True, False, 0, 1, -1, 63, 64, -64, 2**70, -(2**70),
            3.14, float("inf"), "", "abc", "qu'ote", b"", b"\x00\xff",
            [1, [2, "x"], None], {"a": 1, "b": [True, {"c": 0.5}]},
        ]
        for value in values:
            assert decode_value(encode_value(value)) == value
        assert decode_value(encode_value((1, 2))) == [1, 2]

    def test_value_codec_rejects_garbage(self):
        with pytest.raises(TransportError):
            decode_value(b"Z")
        with pytest.raises(TransportError):
            decode_value(encode_value([1, 2]) + b"x")
        with pytest.raises(TransportError):
            encode_value(object())

    def test_split_literals_is_byte_exact(self):
        for sql in (
            "SELECT ABS(-9223372036854775808);",
            "SELECT CONCAT('x''y', 'z');",
            "SELECT ROUND(1.5e308, 2);",
            "SELECT LENGTH(X'deadbeef');",
            "SELECT 1;",
        ):
            segments, literals = split_literals(sql)
            rebuilt = segments[0]
            for literal, segment in zip(literals, segments[1:]):
                rebuilt += literal + segment
            assert rebuilt == sql

    def test_statement_pack_round_trips_including_raw_escape(self):
        statements = [
            "SELECT ABS(-5);",
            "SELECT ABS(-7);",             # same template, new literal
            "SELECT CONCAT('a', 'b');",
            "SELECT 'unterminated",        # lex failure -> raw escape
            "",
        ]
        assert unpack_statements(pack_statements(statements)) == statements

    def test_stateful_batches_share_the_dictionary(self):
        statements = ["SELECT ABS(-5);", "SELECT UPPER('abc');"]
        encoder, decoder = StatementEncoder(), StatementDecoder()
        first = encoder.encode_batch(statements)
        second = encoder.encode_batch(statements)
        assert decoder.decode_batch(first) == statements
        assert decoder.decode_batch(second) == statements
        # warm batch ships references only — strictly smaller
        assert len(second) < len(first)

    def test_generated_stream_reduction_vs_pickle(self):
        """The acceptance bar: steady-state transport cost per statement
        is >=5x below pickling the same stream."""
        dialect = dialect_by_name("duckdb")
        engine = PatternEngine(SeedCollector(dialect).collect())
        stream = [
            case.sql for case in itertools.islice(engine.generate_all(), 800)
        ]
        stats = transport_stats(stream)
        assert stats.warm_reduction >= 5.0, stats
        assert stats.cold_reduction > 1.0, stats
