"""Unit and property tests for the from-scratch JSON implementation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.errors import StackOverflow, ValueError_
from repro.engine.memory import CallStack
from repro.engine.json_impl import (
    eval_json_path,
    json_depth,
    json_parse,
    json_serialize,
    parse_json_path,
)


class TestParser:
    def test_scalars(self):
        assert json_parse("null") is None
        assert json_parse("true") is True
        assert json_parse("false") is False
        assert json_parse("42") == 42
        assert json_parse("-1.5") == -1.5
        assert json_parse('"hi"') == "hi"

    def test_exponent_number(self):
        assert json_parse("1e3") == 1000.0

    def test_array(self):
        assert json_parse("[1, 2, [3]]") == [1, 2, [3]]

    def test_empty_containers(self):
        assert json_parse("[]") == []
        assert json_parse("{}") == {}

    def test_object(self):
        assert json_parse('{"a": 1, "b": [true]}') == {"a": 1, "b": [True]}

    def test_string_escapes(self):
        assert json_parse(r'"a\nb\t\"c\\"') == 'a\nb\t"c\\'

    def test_unicode_escape(self):
        assert json_parse(r'"A"') == "A"

    def test_whitespace_tolerated(self):
        assert json_parse('  { "a" : [ 1 , 2 ] }  ') == {"a": [1, 2]}

    @pytest.mark.parametrize("bad", [
        "", "{", "[1,", '{"a"}', "{'a': 1}", "[1 2]", "tru", '"unterminated',
        "01x", "{1: 2}", '{"a": }', "[,]",
    ])
    def test_invalid_inputs_rejected(self, bad):
        with pytest.raises(ValueError_):
            json_parse(bad)

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ValueError_):
            json_parse("[1] [2]")

    def test_depth_limit_raises_clean_error(self):
        deep = "[" * 200 + "]" * 200
        with pytest.raises(ValueError_):
            json_parse(deep, max_depth=128)

    def test_without_depth_guard_consumes_stack(self):
        """The CVE-2015-5289 configuration: no depth check, recursion eats
        the simulated thread stack until it overflows."""
        stack = CallStack(max_depth=64)
        deep = "[" * 100 + "]" * 100
        with pytest.raises(StackOverflow):
            json_parse(deep, stack=stack, max_depth=None)

    def test_fixed_configuration_survives(self):
        stack = CallStack(max_depth=256)
        deep = "[" * 100 + "]" * 100
        with pytest.raises(ValueError_):
            json_parse(deep, stack=stack, max_depth=64)


class TestSerialize:
    def test_scalars(self):
        assert json_serialize(None) == "null"
        assert json_serialize(True) == "true"
        assert json_serialize(12) == "12"

    def test_string_escaping(self):
        assert json_serialize('a"b\n') == '"a\\"b\\n"'

    def test_control_character(self):
        assert json_serialize("\x01") == '"\\u0001"'

    def test_nested(self):
        assert json_serialize({"a": [1, None]}) == '{"a": [1, null]}'

    json_values = st.recursive(
        st.none() | st.booleans() | st.integers(-10**6, 10**6)
        | st.text(max_size=20),
        lambda children: st.lists(children, max_size=4)
        | st.dictionaries(st.text(max_size=8), children, max_size=4),
        max_leaves=20,
    )

    @given(json_values)
    @settings(max_examples=150)
    def test_round_trip(self, document):
        assert json_parse(json_serialize(document)) == document


class TestJsonPath:
    def test_root_only(self):
        assert parse_json_path("$") == []

    def test_members_and_indexes(self):
        assert parse_json_path("$.a[0].b") == ["a", 0, "b"]

    def test_quoted_member(self):
        assert parse_json_path('$."weird key"') == ["weird key"]

    def test_wildcards(self):
        assert parse_json_path("$[*].x") == [None, "x"]
        assert parse_json_path("$.*") == [None]

    @pytest.mark.parametrize("bad", ["a.b", "$[", "$.", "$[x]", "$x"])
    def test_invalid_paths(self, bad):
        with pytest.raises(ValueError_):
            parse_json_path(bad)

    def test_eval_member(self):
        doc = {"a": {"b": 5}}
        assert eval_json_path(doc, ["a", "b"]) == [5]

    def test_eval_index(self):
        assert eval_json_path([10, 20], [1]) == [20]

    def test_eval_negative_index(self):
        assert eval_json_path([10, 20], [-1]) == [20]

    def test_eval_missing_is_empty(self):
        assert eval_json_path({"a": 1}, ["b"]) == []
        assert eval_json_path([1], [5]) == []

    def test_eval_wildcard_fans_out(self):
        doc = [{"x": 1}, {"x": 2}]
        assert eval_json_path(doc, [None, "x"]) == [1, 2]


class TestDepth:
    def test_scalar_depth_one(self):
        assert json_depth(1) == 1
        assert json_depth("x") == 1

    def test_empty_container_depth_one(self):
        assert json_depth([]) == 1
        assert json_depth({}) == 1

    def test_nested(self):
        assert json_depth([[1]]) == 3
        assert json_depth({"a": {"b": 1}}) == 3
