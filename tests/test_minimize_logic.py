"""Tests for the PoC minimiser and the §8 logic-bug oracles."""

import pytest

from repro.core.logic import (
    LogicOracle,
    check_norec,
    check_tlp,
    default_predicates,
)
from repro.core.minimize import Minimizer, minimize_poc
from repro.dialects import all_bugs, dialect_by_name
from repro.dialects.base import Dialect


class TestMinimizer:
    def test_rejects_non_crashing_input(self):
        with pytest.raises(ValueError):
            minimize_poc(dialect_by_name("mariadb"), "SELECT 1;")

    def test_drops_noise_select_items(self):
        result = minimize_poc(
            dialect_by_name("mariadb"),
            "SELECT UPPER('noise'), REVERSE(''), 42;",
        )
        assert result.minimized == "SELECT REVERSE('');"

    def test_preserves_crash_identity(self):
        dialect = dialect_by_name("mariadb")
        minimizer = Minimizer(dialect)
        result = minimizer.minimize("SELECT JSON_LENGTH(REPEAT('[1,', 100), '$[2][1]');")
        identity = minimizer.crash_identity(result.minimized)
        assert identity is not None
        assert identity.function == "json_length"
        assert identity.crash_code == "GBOF"

    def test_drops_unneeded_tail_argument(self):
        result = minimize_poc(
            dialect_by_name("mariadb"),
            "SELECT JSON_LENGTH(REPEAT('[1,', 100), '$[2][1]');",
        )
        # the JSON path is dropped, and the REPEAT count shrinks to the
        # smallest value past the 200-character trigger (67 * 3 = 201)
        assert result.minimized == "SELECT JSON_LENGTH(REPEAT('[1,', 67));"

    def test_shrinks_wide_decimal(self):
        result = minimize_poc(
            dialect_by_name("mysql"),
            "SELECT AVG(1.29999999999999999999999999999999999999999999);",
        )
        # the MySQL AVG bug triggers at 20 total digits; the minimiser
        # should land close to that boundary
        digits = sum(c.isdigit() for c in result.minimized)
        assert digits <= 22

    def test_shrinks_repeat_count_to_threshold(self):
        result = minimize_poc(
            dialect_by_name("virtuoso"), "SELECT CONCAT(REPEAT('x', 1500));"
        )
        assert "1200" in result.minimized  # the injected threshold

    def test_simplifies_unrelated_subtree(self):
        result = minimize_poc(
            dialect_by_name("duckdb"),
            "SELECT LEFT(CONCAT('abc', 'def'), 99999);",
        )
        assert "CONCAT" not in result.minimized
        assert "LEFT(" in result.minimized

    def test_unwraps_casts_when_possible(self):
        # the DuckDB map bug needs the cast; the MariaDB reverse bug doesn't
        result = minimize_poc(
            dialect_by_name("mariadb"),
            "SELECT REVERSE(CAST('' AS CHAR(4)));",
        )
        assert "CAST" not in result.minimized

    def test_minimized_never_longer(self):
        dialect = dialect_by_name("duckdb")
        for bug in all_bugs():
            if bug.dbms != "duckdb":
                continue
            result = minimize_poc(dialect, bug.poc, max_attempts=300)
            assert len(result.minimized) <= len(bug.poc) + 1

    def test_reduction_metric(self):
        result = minimize_poc(
            dialect_by_name("mariadb"),
            "SELECT UPPER('noise'), REVERSE('');",
        )
        assert 0 < result.reduction < 1
        assert result.attempts >= result.successes


class FaultyWhereDialect(Dialect):
    """Reference engine with the classic 'UNKNOWN is TRUE' planner defect."""

    name = "faulty-where"

    def make_config(self):
        config = super().make_config()
        config["faulty_where_null_as_true"] = "1"
        return config


class TestLogicOracles:
    def test_reference_engine_is_clean(self):
        result = LogicOracle(Dialect(), seed=1).run(rounds=30)
        assert result.checks > 0
        assert result.ok, [str(v) for v in result.violations]

    def test_faulty_engine_caught_by_both_oracles(self):
        result = LogicOracle(FaultyWhereDialect(), seed=1).run(rounds=30)
        oracles = {v.oracle for v in result.violations}
        assert "norec" in oracles
        assert "tlp" in oracles

    def test_norec_direct(self):
        connection = FaultyWhereDialect().create_server().connect()
        for statement in LogicOracle.TABLE_SETUP:
            connection.execute(statement)
        violation = check_norec(connection, "logic_t", "c0 > 0")
        assert violation is not None
        assert violation.oracle == "norec"

    def test_tlp_direct_on_reference(self):
        connection = Dialect().create_server().connect()
        for statement in LogicOracle.TABLE_SETUP:
            connection.execute(statement)
        assert check_tlp(connection, "logic_t", "c0 > 0") is None

    def test_tlp_counts_partition_sizes(self):
        connection = FaultyWhereDialect().create_server().connect()
        for statement in LogicOracle.TABLE_SETUP:
            connection.execute(statement)
        violation = check_tlp(connection, "logic_t", "c0 > 0")
        assert violation is not None
        assert violation.observed > violation.expected

    def test_predicates_include_null_producers(self):
        import random

        predicates = default_predicates(random.Random(0), count=50)
        assert any("IS NULL" in p for p in predicates)
        assert any("NULL" in p and "IN" in p for p in predicates)

    def test_bad_predicates_counted_as_errors_not_violations(self):
        result = LogicOracle(Dialect()).run(
            predicates=["NO_SUCH_FN(c0) = 1", "c0 > 0"]
        )
        assert result.errors >= 2  # both oracles reject the bad predicate
        assert result.ok

    def test_seven_dialects_have_no_logic_bugs(self):
        """The injected bugs are crash bugs; the logic oracles stay silent
        on every simulated DBMS (predicates avoiding the crash triggers)."""
        from repro.dialects import all_dialect_classes

        safe = ["c0 > 0", "c2 < 1", "c1 IS NULL", "c0 BETWEEN -1 AND 2"]
        for cls in all_dialect_classes():
            result = LogicOracle(cls()).run(predicates=safe)
            assert result.ok, (cls.name, [str(v) for v in result.violations])
