"""Metamorphic oracles (TLP + NoREC) over the seeded table workload.

Covers the metamorphic-oracle layer end to end: fingerprint multiset
semantics under the TLP three-way union (NULL rows, duplicate rows,
mixed-type columns), the partition/optimization laws holding on clean
engines and breaking on the seeded predicate flaws, oracle state
round-trips and shard merge, campaign-level recall with attribution,
the zero-false-positive guard on clean dialects, predicate-family
config validation, minimizer probes, and bug-repository replay of
tlp/norec records.
"""

import random
from decimal import Decimal

import pytest

from repro.core.campaign import Campaign, CampaignConfig, run_campaign
from repro.core.collect import SeedCollector
from repro.core.minimize import MetamorphicProbe
from repro.core.oracles import (
    CaseInfo,
    MetamorphicFinding,
    NoRECOracle,
    OraclePipeline,
    OracleStateError,
    TLPOracle,
    build_pipeline,
    parse_oracle_names,
)
from repro.core.oracles.metamorphic import (
    split_predicate,
    tlp_partition_statement,
)
from repro.core.patterns import PatternEngine
from repro.core.runner import Outcome, Runner
from repro.core.tables import (
    BASE_QUERY,
    PREDICATE_PREFIX,
    TABLE_ROWS,
    TABLE_SETUP,
    predicate_statement,
)
from repro.dialects import dialect_by_name
from repro.dialects.bugs import find_predicate_flaw
from repro.engine.errors import SQLError
from repro.engine.executor import Result
from repro.engine.fingerprint import divergence_class, fingerprint_result
from repro.engine.values import NULL, SQLDecimal, SQLInteger, SQLString
from repro.service import BugRepository

METAMORPHIC = "crash,tlp,norec"

# a predicate that is NULL on the rows where i is NULL — exercises all
# three TLP partitions on the seeded fuzz_t contents
NULL_SENSITIVE = "SELECT k, i, s, d FROM fuzz_t WHERE (i) > 0 AND NOT (0 = 1);"


def _table_server(dialect, suppress=False):
    server = dialect.create_server()
    server.stmt_cache = None
    if suppress:
        server.ctx.set_config("optimizer_passes", "none")
    conn = server.connect()
    for ddl in TABLE_SETUP:
        conn.execute(ddl)
    return server, conn


def _fp(arm, sql):
    server, conn = arm
    server.ctx.clear_sequence_state()
    return fingerprint_result(conn.execute(sql))


# ---------------------------------------------------------------------------
# fingerprint multiset semantics under the TLP union
# ---------------------------------------------------------------------------
class TestTLPUnionFingerprint:
    def _union_sql(self, predicate):
        return tlp_partition_statement(BASE_QUERY[:-1], predicate)

    def test_partitions_reunite_on_seeded_table(self):
        # fuzz_t holds NULL rows and mixed-type columns; the three-way
        # union must reproduce the base multiset exactly
        arm = _table_server(dialect_by_name("duckdb"))
        base = _fp(arm, BASE_QUERY)
        assert base.row_count == TABLE_ROWS
        union = _fp(arm, self._union_sql("(i) > 0 AND NOT (0 = 1)"))
        assert union == base
        assert divergence_class(base, union) is None

    def test_duplicate_rows_survive_the_union(self):
        # multiset, not set: duplicated rows must be kept by UNION ALL
        # and counted by the fingerprint
        arm = _table_server(dialect_by_name("duckdb"))
        arm[1].execute(
            "INSERT INTO fuzz_t VALUES (2, 1, 'a', 1.5);"
        )  # exact duplicate of an existing row
        base = _fp(arm, BASE_QUERY)
        assert base.row_count == TABLE_ROWS + 1
        union = _fp(arm, self._union_sql("(s) = 'a' AND NOT (0 = 1)"))
        assert union == base

    def _rows_fp(self, rows, columns=("i", "s")):
        return fingerprint_result(Result(columns=list(columns), rows=rows))

    def test_union_is_order_insensitive(self):
        rows = [
            [SQLInteger(1), SQLString("x")],
            [NULL, NULL],
            [SQLInteger(1), SQLString("x")],  # duplicate row
            [SQLInteger(-1), SQLString("")],
        ]
        whole = self._rows_fp(rows)
        # any interleaving of the three partitions hashes identically
        assert self._rows_fp([rows[3], rows[1], rows[0], rows[2]]) == whole
        assert self._rows_fp([rows[2], rows[0], rows[1], rows[3]]) == whole

    def test_dropped_row_is_a_cardinality_divergence(self):
        rows = [[SQLInteger(1)], [NULL], [SQLInteger(1)]]
        whole = self._rows_fp(rows, columns=("i",))
        short = self._rows_fp(rows[:-1], columns=("i",))
        assert divergence_class(whole, short) == "cardinality"

    def test_duplicated_null_row_changes_the_multiset(self):
        rows = [[SQLInteger(1)], [NULL]]
        doubled = rows + [[NULL]]
        assert divergence_class(
            self._rows_fp(rows, columns=("i",)),
            self._rows_fp(doubled, columns=("i",)),
        ) == "cardinality"

    def test_mixed_type_swap_is_a_type_divergence(self):
        ints = self._rows_fp([[SQLInteger(1), SQLDecimal(Decimal("1.5"))]])
        strs = self._rows_fp([[SQLInteger(1), SQLString("1.5")]])
        assert divergence_class(ints, strs) == "type"


# ---------------------------------------------------------------------------
# the laws themselves: hold when clean, break on the seeded flaws
# ---------------------------------------------------------------------------
class TestMetamorphicLaws:
    def test_split_predicate_round_trips(self):
        head, predicate = split_predicate(NULL_SENSITIVE)
        assert head == "SELECT k, i, s, d FROM fuzz_t"
        assert "(i > 0)" in predicate
        assert split_predicate("SELECT 1;") is None

    @pytest.mark.parametrize("kind", ["tlp", "norec"])
    def test_laws_hold_on_clean_dialect(self, kind):
        probe = MetamorphicProbe(dialect_by_name("duckdb"), kind)
        assert probe.identity(NULL_SENSITIVE) is None

    def test_tlp_flaw_breaks_only_the_partition_law(self):
        dialect = dialect_by_name("duckdb")
        dialect.install_logic_flaws(predicate_kinds=("tlp",))
        assert MetamorphicProbe(dialect, "tlp").identity(NULL_SENSITIVE) \
            == "cardinality"
        # disjoint visibility: the IS NULL defect is invisible to NoREC
        # because campaign statements contain no IS NULL and both arms
        # share the executor
        assert MetamorphicProbe(dialect, "norec").identity(NULL_SENSITIVE) \
            is None

    def test_norec_flaw_breaks_only_the_optimization_identity(self):
        dialect = dialect_by_name("duckdb")
        dialect.install_logic_flaws(predicate_kinds=("norec",))
        sql = "SELECT k, i, s, d FROM fuzz_t WHERE (i) > 0 AND NOT (NULL = 1);"
        assert MetamorphicProbe(dialect, "norec").identity(sql) \
            == "cardinality"
        # the fold flaw rewrites *consistently*, so the flawed predicate
        # still partitions exactly — TLP stays quiet
        assert MetamorphicProbe(dialect, "tlp").identity(sql) is None

    def test_nan_comparisons_do_not_kill_the_engine(self):
        # surfaced by the predicate family: comparing a NaN double
        # against a column signalled decimal.InvalidOperation straight
        # through every containment layer; NaN now orders like
        # PostgreSQL (after every number, equal to itself)
        arm = _table_server(dialect_by_name("duckdb"))
        row = arm[1].execute(
            "SELECT CAST('nan' AS DOUBLE) > 1e308, "
            "CAST('nan' AS DOUBLE) = CAST('nan' AS DOUBLE), "
            "1 > CAST('nan' AS DOUBLE);"
        ).rows[0]
        assert [v.value for v in row] == [True, True, False]
        probe = MetamorphicProbe(dialect_by_name("duckdb"), "tlp")
        sql = ("SELECT k, i, s, d FROM fuzz_t "
               "WHERE (CAST('nan' AS DOUBLE)) > d AND NOT (0 = 1);")
        assert probe.identity(sql) is None

    def test_probe_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            MetamorphicProbe(dialect_by_name("duckdb"), "qpg")


# ---------------------------------------------------------------------------
# oracle protocol: observe gates, state round-trips, shard merge
# ---------------------------------------------------------------------------
def _flawed_oracle(kind, dbms="duckdb"):
    dialect = dialect_by_name(dbms)
    dialect.install_logic_flaws(predicate_kinds=(kind,))
    return (TLPOracle if kind == "tlp" else NoRECOracle)(dialect)


def _observe(oracle, sql, index=7):
    return oracle.observe(
        Outcome("ok", sql), CaseInfo("P1.1", "abs", "numeric"), index
    )


class TestMetamorphicOracleProtocol:
    def test_finding_on_flawed_dialect(self):
        oracle = _flawed_oracle("tlp")
        finding = _observe(oracle, NULL_SENSITIVE)
        assert isinstance(finding, MetamorphicFinding)
        assert finding.oracle == "tlp"
        assert finding.divergence == "cardinality"
        assert finding.bug_type_label == "WRONGCARD"
        assert finding.flaw is not None
        again = MetamorphicFinding.from_dict(finding.to_dict())
        assert again.signature_tuple() == finding.signature_tuple()
        assert again.flaw is not None

    def test_observe_gates(self):
        oracle = _flawed_oracle("tlp")
        # non-predicate statements and non-ok outcomes are not checked
        assert _observe(oracle, "SELECT ABS(-1);") is None
        assert oracle.observe(
            Outcome("error", NULL_SENSITIVE, message="boom"),
            CaseInfo("P1.1"), 0,
        ) is None
        assert oracle.checked == 0
        # impure calls are skipped, not compared: replaying the statement
        # on another arm would draw fresh randomness
        impure = PREDICATE_PREFIX + "(RANDOM()) > 0.5 AND NOT (0 = 1);"
        assert _observe(oracle, impure) is None
        assert oracle.skipped == 1 and oracle.compared == 0

    def test_one_finding_per_broken_law(self):
        # the law is an engine property: a second statement breaking the
        # same law the same way must not create a second finding
        oracle = _flawed_oracle("tlp")
        assert _observe(oracle, NULL_SENSITIVE, 7) is not None
        other = PREDICATE_PREFIX + "(d) < 1.5 AND NOT (0 = 1);"
        assert _observe(oracle, other, 9) is None
        assert len(oracle.findings()) == 1

    @pytest.mark.parametrize("kind", ["tlp", "norec"])
    def test_state_round_trip(self, kind):
        sql = (
            NULL_SENSITIVE if kind == "tlp"
            else PREDICATE_PREFIX + "(i) > 0 AND NOT (NULL = 1);"
        )
        oracle = _flawed_oracle(kind)
        assert _observe(oracle, sql) is not None
        clean = dialect_by_name("duckdb")
        restored = (TLPOracle if kind == "tlp" else NoRECOracle)(clean)
        restored.restore_state(oracle.export_state())
        assert [f.to_dict() for f in restored.findings()] == \
            [f.to_dict() for f in oracle.findings()]
        assert (restored.checked, restored.compared, restored.skipped) == \
            (oracle.checked, oracle.compared, oracle.skipped)

    def test_state_rejects_unknown_versions_and_keys(self):
        oracle = _flawed_oracle("tlp")
        state = oracle.export_state()
        bad_version = dict(state, version=99)
        with pytest.raises(OracleStateError, match="version"):
            TLPOracle(dialect_by_name("duckdb")).restore_state(bad_version)
        bad_keys = dict(state, from_the_future=True)
        with pytest.raises(OracleStateError, match="unknown keys"):
            TLPOracle(dialect_by_name("duckdb")).restore_state(bad_keys)

    def test_merge_replays_global_stream_order(self):
        # two shards surface the same broken law at different indices;
        # the merge must keep the earlier occurrence, like a serial run
        early, late = _flawed_oracle("tlp"), _flawed_oracle("tlp")
        assert _observe(late, NULL_SENSITIVE, 500) is not None
        assert _observe(early, NULL_SENSITIVE, 3) is not None
        merged = _flawed_oracle("tlp")
        merged.merge([late.export_state(), early.export_state()])
        (finding,) = merged.findings()
        assert finding.query_index == 4  # index 3, 1-based

    def test_parse_and_build_pipeline(self):
        assert parse_oracle_names("tlp,norec") == ("tlp", "norec")
        dialect = dialect_by_name("duckdb")
        pipeline = build_pipeline(dialect, METAMORPHIC)
        assert pipeline.names == ("crash", "tlp", "norec")
        # the metamorphic oracles run their own arms — they never need
        # the campaign runner to capture fingerprints
        assert not pipeline.needs_fingerprints
        # requesting the metamorphic oracles installs the predicate flaws
        assert dialect._predicate_flaws_installed == {"tlp", "norec"}


# ---------------------------------------------------------------------------
# campaign-level recall and the zero-false-positive guard
# ---------------------------------------------------------------------------
class TestMetamorphicCampaign:
    def test_combined_campaign_finds_both_flaws_attributed(self):
        config = CampaignConfig(
            dialect="duckdb", budget=1_500, seed=3,
            oracles=("crash", "tlp", "norec"),
            statement_family="predicate",
        )
        result = Campaign(dialect_by_name("duckdb"), config=config).run()
        found = {f.attribution.flaw_id for f in result.findings
                 if getattr(f, "attribution", None) is not None}
        expected = {
            find_predicate_flaw("duckdb", "tlp").flaw_id,
            find_predicate_flaw("duckdb", "norec").flaw_id,
        }
        assert expected <= found
        assert all(f.attribution is not None for f in result.findings)

    def test_clean_predicate_stream_has_zero_findings(self):
        # build_pipeline would install the seeded flaws, so drive the
        # oracles by hand over a flaw-free predicate campaign: every
        # comparison must come back quiet
        dialect = dialect_by_name("duckdb")
        pipeline = OraclePipeline(
            [TLPOracle(dialect), NoRECOracle(dialect)]
        )
        seeds = SeedCollector(dialect).collect()
        engine = PatternEngine(
            seeds, rng=random.Random(3), statement_family="predicate"
        )
        runner = Runner(dialect, bootstrap_sql=TABLE_SETUP)
        compared = 0
        for index, case in enumerate(engine.generate_all()):
            if index >= 400:
                break
            outcome = runner.run(case.sql)
            info = CaseInfo(case.pattern, case.seed_function, case.seed_family)
            assert pipeline.observe(outcome, info, index) == []
        for oracle in pipeline.oracles:
            assert oracle.findings() == []
            compared += oracle.compared
        assert compared > 0  # the guard must not skip everything

    def test_checkpoint_resume_reproduces_findings(self, tmp_path):
        path = str(tmp_path / "cp.json")
        config = CampaignConfig(
            dialect="duckdb", budget=1_500, seed=3,
            oracles=("crash", "tlp", "norec"),
            statement_family="predicate",
            checkpoint_path=path, checkpoint_every=400,
        )
        full = run_campaign(config=config)
        assert full.findings  # premise: this budget finds the flaws
        resumed = run_campaign(config=config, resume=path)
        assert resumed.signature() == full.signature()
        assert [f.signature_tuple() for f in resumed.findings] == \
            [f.signature_tuple() for f in full.findings]

    def test_expression_family_ignores_metamorphic_oracles(self):
        # the metamorphic oracles only understand the table workload; on
        # the default expression stream they observe nothing and the
        # campaign reports no findings
        result = run_campaign("duckdb", budget=300, seed=3,
                              oracles=METAMORPHIC)
        assert result.findings == []

    def test_predicate_repeats_count_compile_fallbacks(self):
        # a byte-identical repeat serves the optimized tree from the
        # exact cache tier and asks for a closure; the compiler declines
        # FROM/WHERE shapes, and every declined execution is counted
        runner = Runner(
            dialect_by_name("duckdb"), bootstrap_sql=TABLE_SETUP
        )
        sql = NULL_SENSITIVE
        for _ in range(3):
            assert runner.run(sql).kind == "ok"
        assert runner.compile_fallbacks == 2
        assert runner.compiled_executions == 0

    def test_config_validates_statement_family(self):
        with pytest.raises(ValueError, match="statement_family"):
            CampaignConfig(dialect="duckdb", statement_family="join")
        with pytest.raises(ValueError, match="sandbox"):
            CampaignConfig(
                dialect="duckdb", statement_family="predicate", sandbox=True
            )


# ---------------------------------------------------------------------------
# bug-repository replay of metamorphic records (repro bugs replay)
# ---------------------------------------------------------------------------
class TestMetamorphicReplay:
    @pytest.mark.parametrize("kind", ["tlp", "norec"])
    def test_replay_fires_against_seeded_ground_truth(self, tmp_path, kind):
        repo = BugRepository(str(tmp_path / "bugs.sqlite"))
        flaw = find_predicate_flaw("duckdb", kind)
        repo.record_finding(
            {
                "kind": kind, "label": "WRONGCARD", "dialect": "duckdb",
                "function": flaw.function, "sql": flaw.poc,
                "pattern": flaw.pattern,
            },
            minimize=False,
        )
        report = repo.replay(dialect="duckdb")
        (outcome,) = report.outcomes
        assert outcome.observed == f"{kind}:cardinality"
        assert outcome.fires and not outcome.flipped
