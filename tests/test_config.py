"""The CampaignConfig object API and the legacy-kwarg deprecation shim.

Covers: frozen-ness, __post_init__ normalization (oracle names, budget
specs, sandbox coercion), validation errors that speak config *field*
names (flag spellings are the CLI's job), to_dict/from_dict round-trips,
DeprecationWarning on legacy keyword arguments (and silence on config=),
and bug-set/signature parity between the two calling conventions.
"""

import dataclasses
import warnings

import pytest

from repro.core import Campaign, CampaignConfig, run_campaign
from repro.core.config import fault_spec, resolve_config
from repro.dialects import dialect_by_name
from repro.perf.parallel import ParallelCampaign, run_parallel_campaign
from repro.robustness import FaultPlan
from repro.robustness.governor import ResourceBudgets
from repro.robustness.sandbox import SandboxConfig


class TestConstruction:
    def test_frozen(self):
        config = CampaignConfig(dialect="duckdb")
        with pytest.raises(dataclasses.FrozenInstanceError):
            config.budget = 99

    def test_oracle_names_normalize_to_tuple(self):
        config = CampaignConfig(dialect="duckdb", oracles="crash,differential")
        assert config.oracles == ("crash", "differential")

    def test_budget_spec_parses(self):
        config = CampaignConfig(dialect="duckdb", budgets="depth=32,rows=100")
        assert isinstance(config.budgets, ResourceBudgets)
        assert config.budgets.depth == 32 and config.budgets.rows == 100

    def test_sandbox_true_coerces_to_config(self):
        config = CampaignConfig(dialect="duckdb", sandbox=True)
        assert isinstance(config.sandbox, SandboxConfig)
        assert CampaignConfig(dialect="duckdb", sandbox=False).sandbox is None

    def test_replace_revalidates(self):
        config = CampaignConfig(dialect="duckdb", budget=100)
        assert config.replace(budget=200).budget == 200
        with pytest.raises(ValueError):
            config.replace(jobs=0)

    def test_parallel_property(self):
        assert not CampaignConfig(dialect="duckdb").parallel
        assert CampaignConfig(dialect="duckdb", jobs=4).parallel


class TestValidation:
    """Errors speak library field names; flag spellings live in the CLI."""

    def test_sandbox_faults_exclusion_names_fields(self):
        with pytest.raises(ValueError, match="mutually exclusive") as exc:
            CampaignConfig(dialect="duckdb", sandbox=True, faults="default")
        message = str(exc.value)
        assert "'sandbox'" in message and "'faults'" in message
        assert "--" not in message  # no CLI flag spellings in the library

    def test_sandbox_coverage_exclusion_names_fields(self):
        with pytest.raises(ValueError, match="coverage") as exc:
            CampaignConfig(dialect="duckdb", sandbox=True, enable_coverage=True)
        message = str(exc.value)
        assert "'enable_coverage'" in message
        assert "--" not in message

    def test_jobs_must_be_positive(self):
        with pytest.raises(ValueError, match="jobs"):
            CampaignConfig(dialect="duckdb", jobs=0)

    def test_cli_flagifies_field_names(self):
        from repro.cli import _flagify

        translated = _flagify(
            "the 'sandbox' and 'faults' options are mutually exclusive: why"
        )
        assert translated.startswith("--sandbox and --faults are mutually")


class TestRoundTrip:
    def test_to_dict_from_dict(self):
        config = CampaignConfig(
            dialect="virtuoso", budget=500, seed=7,
            oracles="crash,conformance", budgets="depth=32",
            sandbox=True, jobs=1,
        )
        clone = CampaignConfig.from_dict(config.to_dict())
        assert clone == config

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises((TypeError, ValueError), match="frobnicate"):
            CampaignConfig.from_dict({"dialect": "duckdb", "frobnicate": 1})

    def test_fault_plan_round_trips_as_spec(self):
        plan = FaultPlan(hang_rate=0.01, drop_rate=0.02)
        config = CampaignConfig(dialect="duckdb", faults=plan)
        clone = CampaignConfig.from_dict(config.to_dict())
        assert fault_spec(clone.faults) == fault_spec(plan)

    def test_submitter_and_priority_round_trip(self):
        config = CampaignConfig(dialect="duckdb", submitter="ci", priority=3)
        wire = config.to_dict()
        assert wire["submitter"] == "ci" and wire["priority"] == 3
        clone = CampaignConfig.from_dict(wire)
        assert clone.submitter == "ci" and clone.priority == 3

    def test_submitter_and_priority_are_validated(self):
        with pytest.raises(TypeError, match="submitter"):
            CampaignConfig(dialect="duckdb", submitter=7)
        with pytest.raises(TypeError, match="priority"):
            CampaignConfig(dialect="duckdb", priority="high")


class TestDeprecationShim:
    def test_campaign_legacy_kwargs_warn(self):
        with pytest.warns(DeprecationWarning, match="CampaignConfig"):
            Campaign(dialect_by_name("duckdb"), budget=50)

    def test_campaign_config_object_is_silent(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            Campaign(
                dialect_by_name("duckdb"),
                config=CampaignConfig(dialect="duckdb", budget=50),
            )

    def test_parallel_campaign_legacy_kwargs_warn(self):
        with pytest.warns(DeprecationWarning, match="CampaignConfig"):
            ParallelCampaign(dialect="duckdb", jobs=2, budget=50)

    def test_both_conventions_at_once_is_an_error(self):
        config = CampaignConfig(dialect="duckdb", budget=50)
        with pytest.raises(TypeError, match="config"):
            Campaign(dialect_by_name("duckdb"), budget=50, config=config)

    def test_run_campaign_legacy_kwargs_stay_silent(self):
        # the module-level helpers are the compatibility surface: no
        # warning, so the seed scripts and CI keep running untouched
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            run_campaign("duckdb", budget=50)


class TestParity:
    def test_legacy_and_config_campaigns_agree(self):
        legacy = run_campaign("duckdb", budget=600, seed=3)
        config = run_campaign(
            config=CampaignConfig(dialect="duckdb", budget=600, seed=3)
        )
        assert legacy.signature() == config.signature()

    def test_serial_and_sharded_config_campaigns_agree(self):
        serial = run_campaign(
            config=CampaignConfig(dialect="duckdb", budget=600)
        )
        sharded = run_parallel_campaign(
            config=CampaignConfig(dialect="duckdb", budget=600, jobs=4)
        )
        assert serial.signature() == sharded.signature()
