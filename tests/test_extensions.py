"""Tests for the extension surface: UPDATE/DELETE, corpus serialisation,
and the analysis comparison harness."""

import pytest

from repro.corpus import load_corpus
from repro.corpus.serialize import export_corpus, import_corpus
from repro.dialects.base import Dialect
from repro.engine.errors import NameError_, ValueError_
from repro.sqlast import Delete, ParseError, Update, parse_statement, to_sql


@pytest.fixture()
def conn():
    connection = Dialect().create_server().connect()
    connection.execute("CREATE TABLE t (a INT, b VARCHAR(16), c DECIMAL(8, 2))")
    connection.execute(
        "INSERT INTO t VALUES (1, 'x', 1.0), (2, 'y', 2.0), (3, NULL, 3.0)"
    )
    return connection


class TestUpdateStatement:
    def test_parse_shapes(self):
        stmt = parse_statement("UPDATE t SET a = 1, b = UPPER(b) WHERE a > 0")
        assert isinstance(stmt, Update)
        assert [c for c, _ in stmt.assignments] == ["a", "b"]
        assert stmt.where is not None

    def test_round_trip(self):
        sql = "UPDATE t SET x = (1 + 2) WHERE y IS NULL"
        assert to_sql(parse_statement(sql)) == sql

    def test_update_all_rows(self, conn):
        conn.execute("UPDATE t SET a = a * 10")
        assert conn.execute("SELECT SUM(a) FROM t").scalar().render() == "60"

    def test_update_with_where(self, conn):
        conn.execute("UPDATE t SET b = 'Z' WHERE a = 2")
        rows = conn.execute("SELECT b FROM t ORDER BY a").rendered()
        assert rows == [["x"], ["Z"], ["NULL"]]

    def test_update_casts_to_column_type(self, conn):
        conn.execute("UPDATE t SET c = '9.999' WHERE a = 1")
        assert conn.execute(
            "SELECT c FROM t WHERE a = 1"
        ).scalar().render() == "10.00"

    def test_update_uses_old_row_values(self, conn):
        conn.execute("UPDATE t SET a = a + 1, c = a WHERE a = 1")
        row = conn.execute("SELECT a, c FROM t WHERE a = 2 AND c = 2.00")
        # both t(2) original and updated row may match; just assert update ran
        assert conn.server.ctx.stats["last_result_rows"] == 1

    def test_update_unknown_column(self, conn):
        with pytest.raises(NameError_):
            conn.execute("UPDATE t SET zzz = 1")

    def test_update_not_null_enforced(self, conn):
        conn.execute("CREATE TABLE nn (x INT NOT NULL)")
        conn.execute("INSERT INTO nn VALUES (1)")
        with pytest.raises(ValueError_):
            conn.execute("UPDATE nn SET x = NULL")

    def test_update_missing_assignment_rejected(self):
        with pytest.raises(ParseError):
            parse_statement("UPDATE t SET")


class TestDeleteStatement:
    def test_parse_shapes(self):
        stmt = parse_statement("DELETE FROM t WHERE a = 1")
        assert isinstance(stmt, Delete)
        assert stmt.table == "t"

    def test_round_trip(self):
        sql = "DELETE FROM t WHERE (a > 1)"
        assert to_sql(parse_statement(sql)) == sql

    def test_delete_with_where(self, conn):
        conn.execute("DELETE FROM t WHERE a < 3")
        assert conn.execute("SELECT COUNT(*) FROM t").scalar().render() == "1"

    def test_delete_all(self, conn):
        conn.execute("DELETE FROM t")
        assert conn.execute("SELECT COUNT(*) FROM t").scalar().render() == "0"

    def test_delete_null_predicate_keeps_row(self, conn):
        # b = NULL row: predicate is UNKNOWN, row must survive
        conn.execute("DELETE FROM t WHERE b = b")
        assert conn.execute("SELECT COUNT(*) FROM t").scalar().render() == "1"

    def test_delete_unknown_table(self, conn):
        with pytest.raises(NameError_):
            conn.execute("DELETE FROM missing")

    def test_delete_with_function_predicate(self, conn):
        conn.execute("DELETE FROM t WHERE LENGTH(COALESCE(b, '')) = 0")
        assert conn.execute("SELECT COUNT(*) FROM t").scalar().render() == "2"


class TestCorpusSerialization:
    def test_round_trip_exact(self, tmp_path):
        path = tmp_path / "corpus.json"
        count = export_corpus(path)
        assert count == 318
        loaded = import_corpus(path)
        assert loaded == load_corpus()

    def test_statistics_survive_round_trip(self, tmp_path):
        from repro.corpus import summarize

        path = tmp_path / "corpus.json"
        export_corpus(path)
        summary = summarize(import_corpus(path))
        assert summary.total == 318
        assert summary.boundary_share == pytest.approx(278 / 318)

    def test_schema_version_checked(self, tmp_path):
        import json

        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema_version": 99, "records": []}))
        with pytest.raises(ValueError):
            import_corpus(path)

    def test_count_mismatch_rejected(self, tmp_path):
        import json

        path = tmp_path / "bad.json"
        path.write_text(json.dumps(
            {"schema_version": 1, "record_count": 5, "records": []}
        ))
        with pytest.raises(ValueError):
            import_corpus(path)


class TestComparisonHarness:
    @pytest.fixture(scope="class")
    def table(self):
        from repro.analysis import run_comparison

        return run_comparison(budget=600, enable_coverage=False)

    def test_all_cells_present(self, table):
        assert len(table.cells) == 20  # 4 tools x 5 dialects

    def test_unsupported_cells_marked(self, table):
        cell = table.cell("sqlsmith", "mysql")
        assert cell is not None and not cell.supported

    def test_soft_supported_everywhere(self, table):
        for dialect in ("postgresql", "mysql", "mariadb", "clickhouse", "monetdb"):
            assert table.cell("soft", dialect).supported

    def test_soft_triggers_most_functions(self, table):
        for dialect in ("postgresql", "mysql", "mariadb", "clickhouse", "monetdb"):
            soft = table.cell("soft", dialect).triggered_functions
            for tool in ("squirrel", "sqlancer", "sqlsmith"):
                cell = table.cell(tool, dialect)
                if cell.supported:
                    assert soft > cell.triggered_functions

    def test_increment_positive(self, table):
        for baseline in ("squirrel", "sqlancer", "sqlsmith"):
            assert table.increment_over(baseline, "triggered_functions") > 0

    def test_format_renders(self, table):
        text = table.format("triggered_functions", "title")
        assert "title" in text and "Total" in text
