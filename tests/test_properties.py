"""Property-based tests on cross-cutting invariants (hypothesis)."""

import string

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.dialects.base import Dialect
from repro.engine import SQLError
from repro.engine.context import ExecutionContext
from repro.engine.errors import CrashSignal
from repro.engine.evaluator import Evaluator
from repro.engine.functions import build_base_registry
from repro.sqlast import parse_expression, parse_statement, to_sql

# ---------------------------------------------------------------------------
# AST generation strategies
# ---------------------------------------------------------------------------
_ident = st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=6)
_safe_text = st.text(
    alphabet=string.ascii_letters + string.digits + " _%$./[]{}:-",
    max_size=12,
)


def _literal_sql():
    return st.one_of(
        st.integers(min_value=0, max_value=10**20).map(str),
        st.decimals(
            allow_nan=False, allow_infinity=False, places=4,
            min_value=0, max_value=10**6,
        ).map(str),
        _safe_text.map(lambda s: "'" + s.replace("'", "''") + "'"),
        st.just("NULL"),
    )


def _expr_sql(depth=2):
    if depth == 0:
        return _literal_sql()
    sub = _expr_sql(depth - 1)
    return st.one_of(
        _literal_sql(),
        st.tuples(_ident, st.lists(sub, max_size=3)).map(
            lambda t: f"{t[0].upper()}({', '.join(t[1])})"
        ),
        st.tuples(sub, st.sampled_from(["+", "-", "*"]), sub).map(
            lambda t: f"({t[0]} {t[1]} {t[2]})"
        ),
    )


class TestParserProperties:
    @given(_expr_sql(depth=3))
    @settings(max_examples=300)
    def test_print_parse_fixpoint(self, sql):
        """to_sql(parse(x)) is a fixpoint of parse∘print."""
        from repro.sqlast import LexError, ParseError

        try:
            expr = parse_expression(sql)
        except (SQLError, ParseError, LexError):
            # generated names may collide with keywords (NULL(), CASE(...));
            # clean rejection is acceptable
            return
        except Exception:
            pytest.fail(f"parser crashed on generated input {sql!r}")
        once = to_sql(expr)
        assert to_sql(parse_expression(once)) == once

    @given(st.text(max_size=40))
    @settings(max_examples=400)
    def test_parser_never_crashes_on_arbitrary_text(self, text):
        """Arbitrary input produces a parse tree or a clean SQL error."""
        from repro.sqlast import LexError, ParseError

        try:
            parse_statement(text)
        except (ParseError, LexError, RecursionError):
            pass


class TestEvaluatorProperties:
    @pytest.fixture(scope="class")
    def ctx(self):
        return ExecutionContext(build_base_registry())

    @given(st.integers(-10**9, 10**9), st.integers(-10**9, 10**9))
    @settings(max_examples=200)
    def test_integer_arithmetic_matches_python(self, a, b):
        ctx = ExecutionContext(build_base_registry())
        result = Evaluator(ctx).eval(parse_expression(f"({a}) + ({b})"))
        assert result.value == a + b

    @given(st.integers(-10**6, 10**6), st.integers(1, 10**6))
    @settings(max_examples=200)
    def test_div_mod_identity(self, a, b):
        """(a DIV b) * b + (a MOD b) == a (C truncation semantics)."""
        ctx = ExecutionContext(build_base_registry())
        ev = Evaluator(ctx)
        q = ev.eval(parse_expression(f"({a}) DIV ({b})")).value
        r = ev.eval(parse_expression(f"({a}) MOD ({b})")).value
        assert q * b + r == a

    @given(_safe_text)
    @settings(max_examples=200)
    def test_reverse_is_involutive(self, text):
        ctx = ExecutionContext(build_base_registry())
        quoted = "'" + text.replace("'", "''") + "'"
        result = Evaluator(ctx).eval(parse_expression(f"REVERSE(REVERSE({quoted}))"))
        assert result.value == text

    @given(_safe_text, st.integers(0, 30))
    @settings(max_examples=150)
    def test_repeat_length_invariant(self, text, count):
        ctx = ExecutionContext(build_base_registry())
        quoted = "'" + text.replace("'", "''") + "'"
        result = Evaluator(ctx).eval(
            parse_expression(f"CHAR_LENGTH(REPEAT({quoted}, {count}))")
        )
        assert result.value == len(text) * count

    @given(st.lists(st.integers(-1000, 1000), min_size=1, max_size=8))
    @settings(max_examples=150)
    def test_array_sort_is_sorted_permutation(self, items):
        ctx = ExecutionContext(build_base_registry())
        literal = "[" + ", ".join(str(i) for i in items) + "]"
        result = Evaluator(ctx).eval(parse_expression(f"ARRAY_SORT({literal})"))
        values = [v.value for v in result.items]
        assert values == sorted(items)

    @given(st.lists(st.integers(-100, 100), min_size=1, max_size=6))
    @settings(max_examples=150)
    def test_sum_matches_python(self, items):
        ctx = ExecutionContext(build_base_registry())
        literal = "[" + ", ".join(str(i) for i in items) + "]"
        result = Evaluator(ctx).eval(parse_expression(f"ARRAY_SUM({literal})"))
        assert result.value == sum(items)


class TestEngineRobustness:
    """The generic dialect has no injected bugs, so *nothing* SOFT-shaped
    may crash it: crashes must come only from injected flaws."""

    @given(_expr_sql(depth=2))
    @settings(max_examples=250, deadline=None)
    def test_reference_engine_never_crashes(self, sql):
        conn = Dialect().create_server().connect()
        try:
            conn.execute(f"SELECT {sql};")
        except SQLError:
            pass
        except CrashSignal as crash:  # pragma: no cover - the failure mode
            pytest.fail(f"reference engine crashed on {sql!r}: {crash}")
        except RecursionError:
            pass

    def test_reference_engine_survives_all_pocs(self):
        """Every injected bug's PoC must be *handled* by the reference
        implementations (only the flawed dialects crash)."""
        from repro.dialects import all_bugs

        conn = Dialect().create_server().connect()
        crashes = []
        for bug in all_bugs():
            try:
                conn.execute(bug.poc)
            except SQLError:
                pass
            except CrashSignal:
                crashes.append(bug.bug_id)
            except RecursionError:
                pass
        assert crashes == []
