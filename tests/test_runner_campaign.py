"""Tests for the runner, oracle, and campaign orchestration."""

import pytest

from repro.core.campaign import Campaign, run_campaign
from repro.core.config import CampaignConfig
from repro.core.oracles import CrashOracle
from repro.core.runner import Runner
from repro.dialects import bugs_for, dialect_by_name
from repro.engine.connection import ConnectionClosed, ServerCrashed
from repro.engine.errors import NullPointerDereference


class TestRunner:
    def test_ok_outcome(self):
        runner = Runner(dialect_by_name("mariadb"))
        outcome = runner.run("SELECT 1;")
        assert outcome.kind == "ok"
        assert outcome.result_type == "integer"

    def test_error_outcome(self):
        runner = Runner(dialect_by_name("mariadb"))
        outcome = runner.run("SELECT NO_SUCH_FN(1);")
        assert outcome.kind == "error"

    def test_syntax_error_outcome(self):
        runner = Runner(dialect_by_name("mariadb"))
        outcome = runner.run("SELEKT;")
        assert outcome.kind == "error"

    def test_resource_kill_outcome(self):
        runner = Runner(dialect_by_name("mariadb"))
        outcome = runner.run("SELECT REPEAT('a', 9999999999);")
        assert outcome.kind == "resource_kill"

    def test_crash_outcome_and_restart(self):
        runner = Runner(dialect_by_name("mariadb"))
        outcome = runner.run("SELECT REVERSE('');")
        assert outcome.kind == "crash"
        assert outcome.crash.code == "NPD"
        assert runner.restarts == 1
        # the runner keeps serving after the restart
        assert runner.run("SELECT 1;").kind == "ok"

    def test_function_triggering_survives_restart(self):
        runner = Runner(dialect_by_name("mariadb"))
        runner.run("SELECT UPPER('a');")
        runner.run("SELECT REVERSE('');")  # crash + restart
        runner.run("SELECT LOWER('A');")
        assert {"upper", "lower"} <= runner.triggered_functions

    def test_coverage_accumulates(self):
        runner = Runner(dialect_by_name("mariadb"), enable_coverage=True)
        runner.run("SELECT UPPER('a');")
        first = runner.branch_coverage
        runner.run("SELECT JSON_LENGTH('[1, 2]');")
        assert runner.branch_coverage > first > 0

    def test_coverage_survives_crash_restart(self):
        runner = Runner(dialect_by_name("mariadb"), enable_coverage=True)
        runner.run("SELECT UPPER('a');")
        before = runner.branch_coverage
        assert runner.run("SELECT REVERSE('');").kind == "crash"
        # restart(keep_coverage=True) must not reset accumulated metrics
        assert runner.branch_coverage >= before > 0
        runner.run("SELECT JSON_LENGTH('[1, 2]');")
        assert runner.branch_coverage > before


class TestServerLifecycle:
    def test_connection_closed_on_downed_server(self):
        server = dialect_by_name("mariadb").create_server()
        connection = server.connect()
        with pytest.raises(ServerCrashed):
            connection.execute("SELECT REVERSE('');")
        assert not server.alive
        with pytest.raises(ConnectionClosed):
            connection.execute("SELECT 1;")

    def test_restart_revives_execution(self):
        server = dialect_by_name("mariadb").create_server()
        connection = server.connect()
        with pytest.raises(ServerCrashed):
            connection.execute("SELECT REVERSE('');")
        server.restart()
        fresh = server.connect()
        assert fresh.execute("SELECT 1;").rows

    def test_restart_keep_coverage_preserves_metrics(self):
        from repro.engine.coverage import CoverageTracker

        server = dialect_by_name("mariadb").create_server()
        server.ctx.coverage = CoverageTracker()
        connection = server.connect()
        connection.execute("SELECT UPPER('a');")
        tracker = server.ctx.coverage
        arcs_before = len(tracker.arcs)
        assert arcs_before > 0
        with pytest.raises(ServerCrashed):
            connection.execute("SELECT REVERSE('');")
        server.restart(keep_coverage=True)
        assert server.ctx.coverage is tracker
        assert len(server.ctx.coverage.arcs) >= arcs_before


class TestOracle:
    def _crash(self, function="reverse", code_cls=NullPointerDereference):
        crash = code_cls("boom", function=function, stage="execute")
        return crash

    def test_dedup_by_function_and_class(self):
        oracle = CrashOracle("mariadb")
        first = oracle.observe_crash(self._crash(), "SELECT 1;", "P1.2", 1)
        dup = oracle.observe_crash(self._crash(), "SELECT 2;", "P1.2", 2)
        assert first is not None
        assert dup is None
        assert len(oracle.bugs) == 1

    def test_different_functions_not_deduped(self):
        oracle = CrashOracle("mariadb")
        oracle.observe_crash(self._crash("reverse"), "s", "P1.2", 1)
        oracle.observe_crash(self._crash("upper"), "s", "P1.2", 2)
        assert len(oracle.bugs) == 2

    def test_attribution_to_injected_registry(self):
        oracle = CrashOracle("mariadb")
        found = oracle.observe_crash(self._crash("reverse"), "s", "P1.2", 1)
        assert found.injected is not None
        assert found.injected.bug_id.startswith("MARIADB-STRI")

    def test_unknown_crash_still_recorded(self):
        oracle = CrashOracle("mariadb")
        found = oracle.observe_crash(self._crash("mystery_fn"), "s", "P1.2", 1)
        assert found.injected is None
        assert found.family == "unknown"

    def test_false_positive_dedup_by_reason(self):
        oracle = CrashOracle("mariadb")
        assert oracle.observe_resource_kill("SELECT A;", "allocation of 123 bytes")
        assert not oracle.observe_resource_kill("SELECT B;", "allocation of 456 bytes")
        assert oracle.observe_resource_kill("SELECT C;", "REPEAT result exceeds limit")
        assert len(oracle.false_positives) == 2

    def test_recall(self):
        oracle = CrashOracle("mariadb")
        expected = bugs_for("mariadb")
        assert oracle.recall_against(expected) == 0.0
        oracle.observe_crash(self._crash("reverse"), "s", "P1.2", 1)
        assert 0 < oracle.recall_against(expected) < 1


class TestCampaign:
    def test_small_campaign_finds_bugs(self):
        result = run_campaign("duckdb", budget=6000)
        assert result.queries_executed == 6000
        assert result.bug_count >= 5
        assert result.seeds_collected > 100
        assert len(result.triggered_functions) > 100

    def test_campaign_is_deterministic(self):
        a = run_campaign("monetdb", budget=3000, seed=7)
        b = run_campaign("monetdb", budget=3000, seed=7)
        assert [x.sql for x in a.bugs] == [y.sql for y in b.bugs]
        assert a.triggered_functions == b.triggered_functions

    def test_stop_when_all_found(self):
        dialect = dialect_by_name("postgresql")
        campaign = Campaign(dialect, config=CampaignConfig(
            dialect="postgresql", budget=200_000, stop_when_all_found=True))
        result = campaign.run()
        assert result.queries_executed < 200_000
        assert result.bug_count == 1

    def test_bug_discoveries_carry_pattern_and_sql(self):
        result = run_campaign("duckdb", budget=6000)
        for bug in result.bugs:
            assert bug.pattern.startswith(("P1", "P2", "P3", "seed"))
            assert bug.sql.startswith("SELECT")
            assert bug.crash_code

    def test_outcome_accounting_sums_to_budget(self):
        result = run_campaign("monetdb", budget=2500)
        assert sum(result.outcomes.values()) == result.queries_executed == 2500

    def test_injected_rng_and_clock_reproduce_results(self):
        import random

        from repro.robustness import SimulatedClock

        dialect = dialect_by_name("monetdb")
        config = CampaignConfig(dialect="monetdb", budget=2000)
        a = Campaign(dialect, config=config, rng=random.Random(99),
                     clock=SimulatedClock()).run()
        b = Campaign(dialect_by_name("monetdb"), config=config,
                     rng=random.Random(99), clock=SimulatedClock()).run()
        assert a.signature() == b.signature()
        assert a.elapsed_seconds == b.elapsed_seconds


class TestOracleShimDeprecation:
    def test_legacy_import_path_warns_and_reexports(self):
        import importlib
        import sys
        import warnings

        sys.modules.pop("repro.core.oracle", None)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            module = importlib.import_module("repro.core.oracle")
        deprecations = [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        assert deprecations, "importing repro.core.oracle must warn"
        assert "repro.core.oracles" in str(deprecations[0].message)

        from repro.core.oracles import CrashOracle as canonical_oracle
        from repro.core.oracles import DiscoveredBug as canonical_bug

        assert module.CrashOracle is canonical_oracle
        assert module.DiscoveredBug is canonical_bug
