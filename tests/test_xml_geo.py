"""Unit tests for the XML and geometry substrates."""

import pytest

from repro.engine.errors import StackOverflow, ValueError_
from repro.engine.geo import (
    GeometryCollection,
    LineString,
    MultiPoint,
    Point,
    Polygon,
    geometry_from_bytes,
    geometry_to_bytes,
    wkt_parse,
)
from repro.engine.memory import CallStack
from repro.engine.xml_impl import eval_xpath, parse_xpath, xml_parse


class TestXmlParser:
    def test_simple_element(self):
        doc = xml_parse("<a>text</a>")
        assert doc.roots[0].tag == "a"
        assert doc.roots[0].text == "text"

    def test_nested(self):
        doc = xml_parse("<a><b>x</b><c/></a>")
        assert [c.tag for c in doc.roots[0].children] == ["b", "c"]

    def test_attributes(self):
        doc = xml_parse('<a id="1" flag="y"/>')
        assert doc.roots[0].find_attr("id") == "1"
        assert doc.roots[0].find_attr("missing") is None

    def test_multiple_roots(self):
        doc = xml_parse("<a/><b/>")
        assert len(doc.roots) == 2

    def test_comment_and_pi_skipped(self):
        doc = xml_parse("<?xml version='1'?><!-- hi --><a/>")
        assert doc.roots[0].tag == "a"

    def test_serialize_round_trip(self):
        text = "<a><b>x</b><c></c></a>"
        assert xml_parse(text).serialize() == text

    @pytest.mark.parametrize("bad", [
        "", "<a>", "<a></b>", "<a", "text only", "<a attr=></a>",
        "<a><b></a></b>",
    ])
    def test_invalid_rejected(self, bad):
        with pytest.raises(ValueError_):
            xml_parse(bad)

    def test_depth_guard(self):
        deep = "<a>" * 200 + "</a>" * 200
        with pytest.raises(ValueError_):
            xml_parse(deep, max_depth=64)

    def test_unguarded_depth_hits_stack(self):
        stack = CallStack(max_depth=64)
        deep = "<a>" * 100 + "</a>" * 100
        with pytest.raises(StackOverflow):
            xml_parse(deep, stack=stack, max_depth=None)

    def test_all_text_concatenates(self):
        # mixed-content ordering is not preserved: direct text first,
        # then children (sufficient for the EXTRACTVALUE-style functions)
        doc = xml_parse("<a>x<b>y</b>z</a>")
        assert doc.roots[0].all_text() == "xzy"


class TestXPath:
    def test_child_steps(self):
        doc = xml_parse("<a><b>1</b><b>2</b></a>")
        steps = parse_xpath("/a/b")
        matches = eval_xpath(doc, steps)
        assert [m.all_text() for m in matches] == ["1", "2"]

    def test_positional_predicate(self):
        doc = xml_parse("<a><b>1</b><b>2</b></a>")
        matches = eval_xpath(doc, parse_xpath("/a/b[2]"))
        assert [m.all_text() for m in matches] == ["2"]

    def test_descendant_axis(self):
        doc = xml_parse("<a><x><b>deep</b></x></a>")
        matches = eval_xpath(doc, parse_xpath("//b"))
        assert matches[0].all_text() == "deep"

    def test_attribute_step(self):
        doc = xml_parse('<a><b id="7"/></a>')
        assert eval_xpath(doc, parse_xpath("/a/b/@id")) == ["7"]

    def test_wildcard(self):
        doc = xml_parse("<a><b/><c/></a>")
        assert len(eval_xpath(doc, parse_xpath("/a/*"))) == 2

    @pytest.mark.parametrize("bad", ["a/b", "/a[", "/a[x]", "//"])
    def test_invalid_xpath(self, bad):
        with pytest.raises(ValueError_):
            parse_xpath(bad)


class TestWkt:
    def test_point(self):
        geom = wkt_parse("POINT(1 2)")
        assert geom == Point(1, 2)
        assert geom.to_wkt() == "POINT(1 2)"

    def test_linestring_length(self):
        geom = wkt_parse("LINESTRING(0 0, 3 4)")
        assert geom.length() == 5.0

    def test_polygon_area(self):
        geom = wkt_parse("POLYGON((0 0, 4 0, 4 4, 0 4, 0 0))")
        assert geom.area() == 16.0

    def test_polygon_with_hole(self):
        geom = wkt_parse(
            "POLYGON((0 0, 4 0, 4 4, 0 4, 0 0), (1 1, 2 1, 2 2, 1 2, 1 1))"
        )
        assert geom.area() == 15.0

    def test_multipoint(self):
        geom = wkt_parse("MULTIPOINT(1 1, 2 2)")
        assert isinstance(geom, MultiPoint)

    def test_collection_empty(self):
        geom = wkt_parse("GEOMETRYCOLLECTION EMPTY")
        assert geom == GeometryCollection(())

    def test_collection_members(self):
        geom = wkt_parse("GEOMETRYCOLLECTION(POINT(1 1), POINT(2 2))")
        assert len(geom.members) == 2

    @pytest.mark.parametrize("bad", ["", "POINT()", "POINT(1)", "BLOB(1 2)",
                                     "POINT(1 2) extra"])
    def test_invalid_wkt(self, bad):
        with pytest.raises(ValueError_):
            wkt_parse(bad)

    def test_round_trip(self):
        for text in ("POINT(1 2)", "LINESTRING(0 0, 1 1, 2 0)",
                     "POLYGON((0 0, 1 0, 1 1, 0 0))"):
            assert wkt_parse(text).to_wkt() == text


class TestBoundaries:
    def test_point_boundary_empty(self):
        assert Point(1, 2).boundary() == GeometryCollection(())

    def test_open_linestring_boundary_is_endpoints(self):
        line = LineString((Point(0, 0), Point(1, 1)))
        boundary = line.boundary()
        assert isinstance(boundary, MultiPoint)
        assert boundary.points == (Point(0, 0), Point(1, 1))

    def test_closed_linestring_boundary_empty(self):
        ring = LineString((Point(0, 0), Point(1, 1), Point(0, 0)))
        assert ring.boundary() == GeometryCollection(())

    def test_polygon_boundary_is_exterior_ring(self):
        poly = wkt_parse("POLYGON((0 0, 1 0, 1 1, 0 0))")
        assert isinstance(poly.boundary(), LineString)


class TestBinaryGeometry:
    def test_point_round_trip(self):
        blob = geometry_to_bytes(Point(1.5, -2.5))
        assert geometry_from_bytes(blob) == Point(1.5, -2.5)

    def test_linestring_round_trip(self):
        line = LineString((Point(0, 0), Point(1, 1)))
        assert geometry_from_bytes(geometry_to_bytes(line)) == line

    def test_invalid_blob_raises_when_validating(self):
        with pytest.raises(ValueError_):
            geometry_from_bytes(b"\x63junk")

    def test_invalid_blob_returns_none_unvalidated(self):
        """The flawed configuration several injected bugs rely on: a bad
        blob becomes a NULL geometry instead of an error."""
        assert geometry_from_bytes(b"\x63junk", validate=False) is None
