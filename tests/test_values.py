"""Unit and property tests for the runtime value model."""

import decimal

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.errors import TypeError_, ValueError_
from repro.engine.values import (
    FALSE,
    NULL,
    TRUE,
    SQLArray,
    SQLBoolean,
    SQLBytes,
    SQLDate,
    SQLDateTime,
    SQLDecimal,
    SQLDouble,
    SQLInteger,
    SQLInterval,
    SQLMap,
    SQLRow,
    SQLString,
    SQLTime,
    civil_from_days,
    days_from_civil,
    days_in_month,
    is_leap_year,
    numeric_as_decimal,
    validate_civil,
)


class TestScalars:
    def test_null_is_null(self):
        assert NULL.is_null
        assert NULL.render() == "NULL"

    def test_boolean_render(self):
        assert TRUE.render() == "true"
        assert FALSE.render() == "false"

    def test_integer_render(self):
        assert SQLInteger(-42).render() == "-42"

    def test_decimal_render_not_scientific(self):
        value = SQLDecimal(decimal.Decimal("1E+5"))
        assert value.render() == "100000"

    def test_decimal_digit_accounting(self):
        value = SQLDecimal.from_text("123.4567")
        assert value.integer_digits == 3
        assert value.fraction_digits == 4
        assert value.total_digits == 7

    def test_decimal_zero_has_one_integer_digit(self):
        assert SQLDecimal.from_text("0.5").integer_digits == 1

    def test_decimal_invalid_literal(self):
        with pytest.raises(ValueError_):
            SQLDecimal.from_text("not-a-number")

    def test_string_as_bool(self):
        assert SQLString("yes").as_bool()
        assert not SQLString("").as_bool()

    def test_bytes_render_hex(self):
        assert SQLBytes(b"\xff\x00").render() == "0xFF00"

    def test_numeric_cross_type_equality(self):
        assert SQLInteger(5) == SQLDecimal(decimal.Decimal(5))

    def test_numeric_as_decimal_rejects_strings(self):
        with pytest.raises(TypeError_):
            numeric_as_decimal(SQLString("5"))

    def test_row_as_bool_raises(self):
        with pytest.raises(TypeError_):
            SQLRow((SQLInteger(1),)).as_bool()


class TestContainers:
    def test_array_render_quotes_strings(self):
        arr = SQLArray((SQLString("a'b"), SQLInteger(1)))
        assert arr.render() == "['a''b', 1]"

    def test_map_lookup(self):
        mapping = SQLMap((SQLInteger(1),), (SQLString("x"),))
        assert mapping.lookup(SQLInteger(1)) == SQLString("x")
        assert mapping.lookup(SQLInteger(2)) is None

    def test_row_render(self):
        assert SQLRow((SQLInteger(1), SQLInteger(2))).render() == "(1, 2)"

    def test_array_hashable(self):
        a = SQLArray((SQLInteger(1),))
        b = SQLArray((SQLInteger(1),))
        assert hash(a) == hash(b)
        assert a == b


class TestCalendar:
    def test_epoch(self):
        assert days_from_civil(1970, 1, 1) == 0
        assert civil_from_days(0) == (1970, 1, 1)

    def test_known_date(self):
        # 2024-06-15 is 19889 days after the epoch
        assert days_from_civil(2024, 6, 15) == 19889

    def test_leap_years(self):
        assert is_leap_year(2024)
        assert not is_leap_year(2023)
        assert not is_leap_year(1900)
        assert is_leap_year(2000)

    def test_days_in_month_february(self):
        assert days_in_month(2024, 2) == 29
        assert days_in_month(2023, 2) == 28

    def test_validate_rejects_bad_day(self):
        with pytest.raises(ValueError_):
            validate_civil(2023, 2, 29)

    def test_validate_rejects_bad_month(self):
        with pytest.raises(ValueError_):
            validate_civil(2023, 13, 1)

    def test_date_render(self):
        assert SQLDate(2024, 6, 15).render() == "2024-06-15"

    def test_date_from_days_out_of_range(self):
        with pytest.raises(ValueError_):
            SQLDate.from_days(10**9)

    def test_time_render_with_microseconds(self):
        assert SQLTime(1, 2, 3, 450000).render() == "01:02:03.45"

    def test_datetime_sort_before_after(self):
        early = SQLDateTime(SQLDate(2020, 1, 1), SQLTime(0, 0, 0))
        late = SQLDateTime(SQLDate(2020, 1, 1), SQLTime(0, 0, 1))
        assert early.sort_key() < late.sort_key()

    def test_interval_render(self):
        assert SQLInterval(months=1, days=2).render() == "1 mon 2 day"

    @given(st.integers(min_value=-1_000_000, max_value=1_000_000))
    @settings(max_examples=200)
    def test_civil_round_trip(self, days):
        """days -> (y, m, d) -> days is the identity."""
        year, month, day = civil_from_days(days)
        assert days_from_civil(year, month, day) == days

    @given(
        st.integers(min_value=1, max_value=9999),
        st.integers(min_value=1, max_value=12),
        st.integers(min_value=1, max_value=28),
    )
    @settings(max_examples=200)
    def test_civil_inverse(self, year, month, day):
        assert civil_from_days(days_from_civil(year, month, day)) == (
            year, month, day
        )

    @given(st.integers(min_value=-100_000, max_value=100_000))
    def test_consecutive_days_are_consecutive_dates(self, days):
        y1, m1, d1 = civil_from_days(days)
        y2, m2, d2 = civil_from_days(days + 1)
        assert (y2, m2, d2) != (y1, m1, d1)
        assert days_from_civil(y2, m2, d2) - days_from_civil(y1, m1, d1) == 1


class TestSortKeys:
    @given(st.integers(), st.integers())
    def test_integer_ordering_matches_python(self, a, b):
        if a == b:
            assert SQLInteger(a).sort_key() == SQLInteger(b).sort_key()
        else:
            assert (SQLInteger(a).sort_key() < SQLInteger(b).sort_key()) == (a < b)

    @given(st.text(max_size=30), st.text(max_size=30))
    def test_string_ordering_matches_python(self, a, b):
        assert (SQLString(a).sort_key() < SQLString(b).sort_key()) == (a < b) or a == b
