"""Unit tests for the simulated process-memory model."""

import pytest

from repro.engine.errors import (
    GlobalBufferOverflow,
    HeapBufferOverflow,
    NullPointerDereference,
    ResourceError,
    SegmentationViolation,
    StackOverflow,
    UseAfterFree,
)
from repro.engine.memory import (
    Buffer,
    CallStack,
    GlobalBuffer,
    Heap,
    Pointer,
    fits_int32,
    fits_int64,
    sql_assert,
    wrap_int32,
    wrap_int64,
)


class TestBuffer:
    def test_write_within_bounds(self):
        buf = Buffer(8, None)
        buf.write(0, "hello")
        assert buf.read(0, 5) == "hello"

    def test_write_past_end_overflows(self):
        buf = Buffer(4, None, label="fmt")
        with pytest.raises(HeapBufferOverflow) as excinfo:
            buf.write(0, "hello")
        assert "fmt" in str(excinfo.value)

    def test_write_at_offset_overflow(self):
        buf = Buffer(8, None)
        with pytest.raises(HeapBufferOverflow):
            buf.write(6, "abc")

    def test_negative_offset_overflows(self):
        with pytest.raises(HeapBufferOverflow):
            Buffer(8, None).write(-1, "a")

    def test_read_past_end_overflows(self):
        buf = Buffer(4, None)
        with pytest.raises(HeapBufferOverflow):
            buf.read(2, 4)

    def test_use_after_free(self):
        buf = Buffer(4, None)
        buf.free()
        with pytest.raises(UseAfterFree):
            buf.write(0, "x")

    def test_negative_allocation_is_resource_error(self):
        with pytest.raises(ResourceError):
            Buffer(-1, None)

    def test_oversized_allocation_is_resource_error(self):
        with pytest.raises(ResourceError):
            Buffer(10**12, None)

    def test_contents_c_string_view(self):
        buf = Buffer(8, None)
        buf.write(0, "ab\0cd")
        assert buf.contents() == "ab"


class TestGlobalBuffer:
    def test_overflow_is_global_class(self):
        buf = GlobalBuffer(4, label="static_fmt")
        with pytest.raises(GlobalBufferOverflow):
            buf.write(0, "too long")

    def test_read_overflow(self):
        with pytest.raises(GlobalBufferOverflow):
            GlobalBuffer(4).read(0, 8)

    def test_within_bounds(self):
        buf = GlobalBuffer(8)
        buf.write(0, "ok")
        assert buf.read(0, 2) == "ok"


class TestHeap:
    def test_alloc_tracks_live(self):
        heap = Heap()
        buf = heap.alloc(16)
        assert buf in heap.live
        heap.free(buf)
        assert buf not in heap.live

    def test_reset(self):
        heap = Heap()
        heap.alloc(16)
        heap.reset()
        assert heap.live == []


class TestPointer:
    def test_valid_deref(self):
        assert Pointer.to(42).deref() == 42

    def test_null_deref(self):
        with pytest.raises(NullPointerDereference):
            Pointer.null("desc").deref(function="f")

    def test_null_deref_carries_function(self):
        with pytest.raises(NullPointerDereference) as excinfo:
            Pointer.null().deref(function="repeat")
        assert excinfo.value.function == "repeat"

    def test_freed_deref_is_uaf(self):
        ptr = Pointer.to("payload")
        ptr.free()
        with pytest.raises(UseAfterFree):
            ptr.deref()

    def test_wild_deref_is_segv(self):
        with pytest.raises(SegmentationViolation):
            Pointer.wild().deref()

    def test_is_null(self):
        assert Pointer.null().is_null
        assert not Pointer.to(1).is_null


class TestCallStack:
    def test_push_pop(self):
        stack = CallStack(max_depth=4)
        stack.push("f")
        assert stack.depth == 1
        stack.pop()
        assert stack.depth == 0

    def test_overflow(self):
        stack = CallStack(max_depth=3)
        for _ in range(3):
            stack.push("rec")
        with pytest.raises(StackOverflow):
            stack.push("rec")

    def test_frame_context_manager(self):
        stack = CallStack(max_depth=4)
        with stack.frame("f"):
            assert stack.depth == 1
        assert stack.depth == 0

    def test_reset(self):
        stack = CallStack(max_depth=4)
        stack.push("x")
        stack.reset()
        assert stack.depth == 0


class TestHelpers:
    def test_sql_assert_passes(self):
        sql_assert(True, "fine")  # no raise

    def test_sql_assert_fails(self):
        from repro.engine.errors import AssertionFailure

        with pytest.raises(AssertionFailure):
            sql_assert(False, "broken invariant", function="f")

    def test_wrap_int32(self):
        assert wrap_int32(2**31) == -(2**31)
        assert wrap_int32(-(2**31) - 1) == 2**31 - 1

    def test_wrap_int64(self):
        assert wrap_int64(2**63) == -(2**63)

    def test_fits(self):
        assert fits_int32(2**31 - 1)
        assert not fits_int32(2**31)
        assert fits_int64(2**63 - 1)
        assert not fits_int64(2**63)


class TestCrashMetadata:
    def test_crash_captures_backtrace(self):
        def inner():
            Pointer.null().deref(function="victim")

        with pytest.raises(NullPointerDereference) as excinfo:
            inner()
        assert isinstance(excinfo.value.backtrace, list)

    def test_crash_is_not_plain_exception(self):
        """CrashSignal must escape `except Exception` like a real SIGSEGV."""
        caught = False
        try:
            try:
                Pointer.null().deref()
            except Exception:  # noqa: BLE001 - the point of the test
                caught = True
        except NullPointerDereference:
            pass
        assert not caught
