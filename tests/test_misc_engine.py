"""Tests for the optimizer, connection model, coverage tracker, visitor,
and printer edge cases."""

import pytest

from repro.dialects.base import Dialect
from repro.engine.connection import ConnectionClosed, Server, ServerCrashed
from repro.engine.context import ExecutionContext
from repro.engine.coverage import CoverageTracker
from repro.engine.functions import build_base_registry
from repro.engine.optimizer import optimize_statement
from repro.sqlast import (
    BinaryOp,
    FuncCall,
    IntegerLit,
    StringLit,
    parse_expression,
    parse_statement,
    to_sql,
)
from repro.sqlast.visitor import (
    clone,
    count_function_calls,
    find_function_calls,
    find_literals,
    max_function_nesting,
    replace_node,
    transform,
    walk,
)


@pytest.fixture()
def ctx():
    return ExecutionContext(build_base_registry())


class TestOptimizer:
    def test_folds_literal_arithmetic(self, ctx):
        stmt = parse_statement("SELECT 1 + 2 * 3")
        optimized = optimize_statement(ctx, stmt)
        assert to_sql(optimized) == "SELECT 7"

    def test_does_not_fold_functions_by_default(self, ctx):
        stmt = parse_statement("SELECT LENGTH('abc')")
        optimized = optimize_statement(ctx, stmt)
        assert "LENGTH" in to_sql(optimized)

    def test_folds_functions_when_configured(self, ctx):
        ctx.set_config("fold_functions", "1")
        stmt = parse_statement("SELECT LENGTH('abc')")
        optimized = optimize_statement(ctx, stmt)
        assert to_sql(optimized) == "SELECT 3"

    def test_never_folds_impure_functions(self, ctx):
        ctx.set_config("fold_functions", "1")
        stmt = parse_statement("SELECT RAND()")
        assert "RAND" in to_sql(optimize_statement(ctx, stmt))

    def test_never_folds_aggregates(self, ctx):
        ctx.set_config("fold_functions", "1")
        stmt = parse_statement("SELECT SUM(1)")
        assert "SUM" in to_sql(optimize_statement(ctx, stmt))

    def test_erroring_constant_deferred_to_execution(self, ctx):
        stmt = parse_statement("SELECT 1 / 0")
        optimized = optimize_statement(ctx, stmt)
        assert "/" in to_sql(optimized)  # left for the executor to report

    def test_where_true_eliminated(self, ctx):
        stmt = parse_statement("SELECT a FROM t WHERE TRUE")
        assert optimize_statement(ctx, stmt).where is None

    def test_stage_restored(self, ctx):
        optimize_statement(ctx, parse_statement("SELECT 1 + 1"))
        assert ctx.stage == "execute"

    def test_optimization_stage_crash_attribution(self):
        """A crash raised while folding carries stage='optimize'."""
        dialect = Dialect()
        dialect.registry.patch(
            "length",
            lambda ctx, args: (_ for _ in ()).throw(
                __import__("repro.engine.errors", fromlist=["x"]).NullPointerDereference(
                    "opt crash", function="length"
                )
            ),
        )
        server = dialect.create_server()
        server.ctx.set_config("fold_functions", "1")
        conn = server.connect()
        with pytest.raises(ServerCrashed) as excinfo:
            conn.execute("SELECT LENGTH('abc');")
        assert excinfo.value.crash.stage == "optimize"


class TestConnectionModel:
    def test_queries_counted(self):
        server = Dialect().create_server()
        conn = server.connect()
        conn.execute("SELECT 1;")
        conn.execute("SELECT 2;")
        assert server.queries_executed == 2

    def test_crash_count(self):
        server = Dialect().create_server()
        dialect_probe = server.connect()
        # generic dialect has no injected bugs; simulate via stack overflow
        from repro.engine.errors import StackOverflow

        server.dialect.registry.patch(
            "ascii",
            lambda ctx, args: (_ for _ in ()).throw(
                StackOverflow("boom", function="ascii")
            ),
        )
        with pytest.raises(ServerCrashed):
            dialect_probe.execute("SELECT ASCII('x');")
        assert server.crash_count == 1

    def test_closed_connection_raises(self):
        server = Dialect().create_server()
        server.alive = False
        with pytest.raises(ConnectionClosed):
            server.connect().execute("SELECT 1;")

    def test_multi_statement_script(self):
        conn = Dialect().create_server().connect()
        result = conn.execute(
            "CREATE TABLE m (a INT); INSERT INTO m VALUES (9); SELECT a FROM m;"
        )
        assert result.rendered() == [["9"]]


class TestCoverageTracker:
    def test_tracks_arcs_in_scope(self):
        tracker = CoverageTracker()
        ctx = ExecutionContext(build_base_registry())
        ctx.coverage = tracker
        from repro.engine.evaluator import Evaluator

        Evaluator(ctx).eval(parse_expression("LENGTH('abc')"))
        assert tracker.branch_count > 0
        assert tracker.line_count > 0

    def test_different_functions_add_arcs(self):
        tracker = CoverageTracker()
        ctx = ExecutionContext(build_base_registry())
        ctx.coverage = tracker
        from repro.engine.evaluator import Evaluator

        Evaluator(ctx).eval(parse_expression("LENGTH('abc')"))
        first = tracker.branch_count
        Evaluator(ctx).eval(parse_expression("JSON_DEPTH('[[1]]')"))
        assert tracker.branch_count > first

    def test_merge_and_reset(self):
        a, b = CoverageTracker(), CoverageTracker()
        a.arcs.add(("f", 1, 2))
        b.arcs.add(("f", 2, 3))
        a.merge(b)
        assert a.branch_count == 2
        a.reset()
        assert a.branch_count == 0

    def test_out_of_scope_files_ignored(self):
        tracker = CoverageTracker(scope=lambda f: False)
        with tracker.tracking():
            sum(range(10))
        assert tracker.branch_count == 0


class TestVisitor:
    def test_walk_preorder(self):
        expr = parse_expression("A(B(1), 2)")
        names = [n.name for n in walk(expr) if isinstance(n, FuncCall)]
        assert names == ["A", "B"]

    def test_find_literals(self):
        expr = parse_expression("F(1, 'a', NULL)")
        assert len(find_literals(expr)) == 3

    def test_count_function_calls(self):
        assert count_function_calls(parse_expression("A(B(C(1)))")) == 3

    def test_max_nesting(self):
        assert max_function_nesting(parse_expression("A(B(1), C(2))")) == 2
        assert max_function_nesting(parse_expression("A(1) + B(2)")) == 1

    def test_clone_is_deep(self):
        expr = parse_expression("F('x')")
        copy = clone(expr)
        copy.args[0].value = "mutated"
        assert expr.args[0].value == "x"

    def test_replace_node_in_place(self):
        expr = parse_expression("F(1, 2)")
        replace_node(expr, expr.args[0], StringLit("swapped"))
        assert to_sql(expr) == "F('swapped', 2)"

    def test_replace_root(self):
        expr = parse_expression("F(1)")
        result = replace_node(expr, expr, IntegerLit("9"))
        assert to_sql(result) == "9"

    def test_replace_deep_node(self):
        expr = parse_expression("A(B(C(1)))")
        target = expr.args[0].args[0].args[0]
        replace_node(expr, target, IntegerLit("7"))
        assert to_sql(expr) == "A(B(C(7)))"

    def test_replace_missing_node_raises(self):
        expr = parse_expression("F(1)")
        with pytest.raises(ValueError):
            replace_node(expr, IntegerLit("99"), IntegerLit("1"))

    def test_transform_bottom_up(self):
        expr = parse_expression("1 + 2")

        def double_ints(node):
            if isinstance(node, IntegerLit):
                return IntegerLit(str(node.value * 2))
            return None

        result = transform(expr, double_ints)
        assert to_sql(result) == "(2 + 4)"

    def test_transform_does_not_mutate_original(self):
        expr = parse_expression("1 + 2")
        transform(expr, lambda n: IntegerLit("0") if isinstance(n, IntegerLit) else None)
        assert to_sql(expr) == "(1 + 2)"


class TestPrinterEdgeCases:
    @pytest.mark.parametrize("sql", [
        "SELECT ''",
        "SELECT 'it''s'",
        "SELECT -(1)",
        "SELECT NOT (TRUE)",
        "SELECT a IS DISTINCT FROM b",
        "SELECT x NOT BETWEEN 1 AND 2",
        "SELECT CAST(1 AS DECIMAL(10, 2))",
        "SELECT GEOM('POINT(1 2)')::geometry",
    ])
    def test_round_trip_fixpoint(self, sql):
        once = to_sql(parse_statement(sql))
        assert to_sql(parse_statement(once)) == once

    def test_unprintable_node_rejected(self):
        class Alien:
            pass

        with pytest.raises(TypeError):
            to_sql(Alien())


class TestExplain:
    def test_explain_shows_three_stages(self):
        conn = Dialect().create_server().connect()
        conn.execute("CREATE TABLE t (a INT)")
        rows = conn.execute("EXPLAIN SELECT a FROM t WHERE a > 0").rendered()
        stages = [r[0].split(":")[0] for r in rows]
        assert stages == ["parse", "optimize", "execute"]

    def test_explain_marks_optimizer_rewrites(self):
        conn = Dialect().create_server().connect()
        rows = conn.execute("EXPLAIN SELECT 1 + 2").rendered()
        assert "[rewritten]" in rows[1][0]
        assert "SELECT 3" in rows[1][0]

    def test_explain_no_rewrite_unmarked(self):
        conn = Dialect().create_server().connect()
        conn.execute("CREATE TABLE t (a INT)")
        rows = conn.execute("EXPLAIN SELECT a FROM t").rendered()
        assert "[rewritten]" not in rows[1][0]

    def test_explain_pipeline_steps(self):
        conn = Dialect().create_server().connect()
        conn.execute("CREATE TABLE t (a INT, b VARCHAR(4))")
        rows = conn.execute(
            "EXPLAIN SELECT b, COUNT(*) FROM t WHERE a > 0 "
            "GROUP BY b HAVING COUNT(*) > 1 ORDER BY 1 LIMIT 3"
        ).rendered()
        plan = rows[2][0]
        for step in ("scan(t)", "filter", "aggregate(keys: b)", "having",
                     "project", "sort", "limit(3)"):
            assert step in plan

    def test_explain_ddl(self):
        conn = Dialect().create_server().connect()
        rows = conn.execute("EXPLAIN DROP TABLE IF EXISTS zz").rendered()
        assert rows[2][0] == "execute:  droptable"

    def test_explain_round_trips(self):
        from repro.sqlast import parse_statement, to_sql

        sql = "EXPLAIN SELECT a FROM t WHERE (a > 0)"
        assert to_sql(parse_statement(sql)) == sql

    def test_explain_does_not_execute_target(self):
        conn = Dialect().create_server().connect()
        # the table does not exist; EXPLAIN still renders the plan
        rows = conn.execute("EXPLAIN SELECT a FROM missing_table").rendered()
        assert "scan(missing_table)" in rows[2][0]
