"""Campaign-as-a-service, end to end over real HTTP.

Boots a :class:`~repro.service.server.BugService` on an ephemeral port,
submits a campaign job through the JSON API, polls the streamed-findings
cursor while the campaign runs, checks the deduplicated repository
records, runs a replay job, and exercises triage/cancel/error paths —
the full lifecycle the CLI's ``repro serve`` offers.

Also pins the API-redesign acceptance bar: a default-config ``repro run``
(serial *and* sharded) produces a byte-identical campaign signature to
calling the library directly.
"""

import functools
import http.client
import json
import os
import time
import urllib.error
import urllib.request

import pytest

from repro.core import CampaignConfig, run_campaign
from repro.robustness.chaos import SimulatedCrash, StorageFaultInjector
from repro.service import BugService
from repro.service.audit import ServiceAuditor
from repro.service.bugrepo import BugRepository
from repro.service.jobs import (
    JOB_STATES,
    TERMINAL_STATES,
    Job,
    JobStore,
    QueueFull,
    signature_digest,
)
from repro.service.journal import JobJournal
from repro.service.scheduler import (
    SchedulerPool,
    SchedulerWorker,
    build_campaign,
    run_scheduled,
)
from repro.service.storage import crash_points


# ---------------------------------------------------------------------------
# HTTP plumbing
# ---------------------------------------------------------------------------
@pytest.fixture
def service(tmp_path):
    svc = BugService(str(tmp_path / "data")).start()
    yield svc
    svc.stop()


def _request(service, method, path, body=None):
    data = json.dumps(body).encode() if body is not None else None
    request = urllib.request.Request(
        service.url + path,
        data=data,
        method=method,
        headers={"Content-Type": "application/json"} if data else {},
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def _wait(service, job_id, deadline=120.0):
    end = time.monotonic() + deadline
    while time.monotonic() < end:
        _, job = _request(service, "GET", f"/jobs/{job_id}")
        if job["state"] in ("done", "failed", "cancelled"):
            return job
        time.sleep(0.1)
    raise AssertionError(f"job {job_id} did not finish: {job}")


class TestServiceEndToEnd:
    def test_submit_stream_dedup_replay(self, service):
        status, health = _request(service, "GET", "/health")
        assert status == 200 and health["worker_alive"]

        # -- submit a campaign job --------------------------------------
        config = CampaignConfig(dialect="virtuoso", budget=500).to_dict()
        status, job = _request(
            service, "POST", "/jobs", {"kind": "campaign", "config": config}
        )
        assert status == 200 and job["state"] == "queued"
        job_id = job["id"]

        # -- poll the streamed-findings cursor while it runs ------------
        streamed = []
        cursor = 0
        end = time.monotonic() + 120
        while time.monotonic() < end:
            status, chunk = _request(
                service, "GET", f"/jobs/{job_id}/findings?since={cursor}"
            )
            assert status == 200
            assert cursor + len(chunk["findings"]) == chunk["next"]
            streamed.extend(chunk["findings"])
            cursor = chunk["next"]
            if chunk["state"] in ("done", "failed"):
                break
            time.sleep(0.1)

        final = _wait(service, job_id)
        assert final["state"] == "done", final.get("error")
        assert final["summary"]["bug_count"] == len(streamed) > 0
        # the stream carried real positions and labels
        assert all(f["label"] and f["position"] >= 0 for f in streamed)

        # -- the repository deduplicated the campaign's findings --------
        assert final["ingest"]["new_records"] == len(streamed)
        status, listing = _request(service, "GET", "/bugs")
        assert len(listing["bugs"]) == len(streamed)
        record = listing["bugs"][0]
        assert record["dialect"] == "virtuoso"
        assert record["kinds"] == ["crash"]

        # resubmitting the same campaign only bumps occurrences
        status, rerun = _request(
            service, "POST", "/jobs", {"kind": "campaign", "config": config}
        )
        rerun_final = _wait(service, rerun["id"])
        assert rerun_final["ingest"]["new_records"] == 0
        assert rerun_final["ingest"]["duplicates"] == len(streamed)
        status, listing = _request(service, "GET", "/bugs")
        assert len(listing["bugs"]) == len(streamed)

        # -- a replay job re-fires every stored trigger -----------------
        status, replay = _request(
            service, "POST", "/jobs", {"kind": "replay", "dialect": "virtuoso"}
        )
        replay_final = _wait(service, replay["id"])
        assert replay_final["state"] == "done"
        summary = replay_final["summary"]
        assert summary["replayed"] == len(streamed)
        assert summary["still_firing"] == len(streamed)
        assert summary["flipped"] == 0

        # -- triage over HTTP ------------------------------------------
        record_id = record["id"]
        status, updated = _request(
            service, "POST", f"/bugs/{record_id}/triage",
            {"status": "confirmed"},
        )
        assert status == 200 and updated["triage"] == "confirmed"
        status, shown = _request(service, "GET", f"/bugs/{record_id}")
        assert shown["triage"] == "confirmed"
        assert shown["replays"]  # the replay job left history

    def test_api_error_paths(self, service):
        status, body = _request(service, "GET", "/nope")
        assert status == 404
        status, body = _request(service, "POST", "/jobs", {"kind": "campaign"})
        assert status == 400 and "config" in body["error"]
        status, body = _request(
            service, "POST", "/jobs",
            {"kind": "campaign", "config": {"dialect": "duckdb", "bogus": 1}},
        )
        assert status == 400 and "bogus" in body["error"]
        status, body = _request(
            service, "POST", "/jobs", {"kind": "sabotage"}
        )
        assert status == 400
        status, body = _request(service, "GET", "/jobs/job-9999")
        assert status == 404
        status, body = _request(service, "GET", "/bugs/999")
        assert status == 404

    def test_invalid_config_fails_loudly_not_silently(self, service):
        config = {"dialect": "duckdb", "sandbox": True, "faults": "default"}
        status, body = _request(
            service, "POST", "/jobs", {"kind": "campaign", "config": config}
        )
        assert status == 400
        assert "mutually exclusive" in body["error"]


class TestJobModel:
    def test_job_states_and_cursor(self):
        store = JobStore()
        job = store.submit("campaign", config=CampaignConfig(dialect="duckdb"))
        assert job.state == "queued" and job.state in JOB_STATES
        claimed = store.claim(owner="w0")
        assert claimed is not None and claimed[0] is job
        job, lease = claimed
        assert job.state == "running"
        bug = run_campaign("virtuoso", budget=500).bugs[0]
        job.add_finding(bug, position=7)
        cursor, first = job.findings_since(0)
        assert cursor == 1 and first[0]["position"] == 7
        _, rest = job.findings_since(cursor)
        assert rest == []
        assert job.mark_done({"bug_count": 1}, lease)
        assert job.to_dict()["summary"]["bug_count"] == 1

    def test_cancelled_jobs_are_not_claimable(self):
        store = JobStore()
        job = store.submit("replay")
        store.cancel(job.job_id)
        assert job.state == "cancelled"
        assert store.claim(owner="w0") is None

    def test_cancel_claim_race_is_a_cas(self):
        # the PR 6 race: a job cancelled between being popped and
        # mark_running was silently revived to 'running'
        store = JobStore()
        job = store.submit("replay")
        store.cancel(job.job_id)
        assert job.mark_running("w0") is False
        assert job.state == "cancelled"

    def test_terminal_transitions_require_the_lease(self):
        store = JobStore()
        job = store.submit("replay")
        _, lease = store.claim(owner="w0")
        # a stale worker (lost lease) cannot finish the job
        assert not job.mark_done({}, lease + 1)
        assert not job.mark_failed("boom", lease + 1)
        assert job.mark_retrying("boom", lease + 1) == ""
        assert job.state == "running"
        assert job.mark_done({"ok": 1}, lease)
        assert job.state == "done"

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            Job("job-0001", "espresso")

    def test_priority_orders_claims(self):
        store = JobStore()
        low = store.submit("replay", priority=0)
        high = store.submit("replay", priority=5)
        assert store.claim()[0] is high
        assert store.claim()[0] is low

    def test_findings_buffer_is_bounded(self):
        store = JobStore(max_findings=5)
        job = store.submit("campaign", config=CampaignConfig(dialect="duckdb"))
        _, lease = store.claim()
        bug = run_campaign("virtuoso", budget=500).bugs[0]
        for position in range(9):
            job.add_finding(bug, position=position)
        assert job.finding_count == 9
        assert job.findings_truncated == 4
        # the cursor indexes the total stream, not the buffer
        cursor, chunk = job.findings_since(0)
        assert cursor == 9 and len(chunk) == 5
        cursor2, chunk2 = job.findings_since(cursor)
        assert cursor2 == 9 and chunk2 == []
        # mid-buffer cursors still see the stored suffix
        _, tail = job.findings_since(3)
        assert [f["position"] for f in tail] == [3, 4]
        job.mark_done({"bug_count": 9}, lease)
        assert job.to_dict()["summary"]["findings_truncated"] == 4

    def test_queue_watermark_sheds(self):
        store = JobStore(max_depth=2)
        store.submit("replay")
        store.submit("replay")
        with pytest.raises(QueueFull) as excinfo:
            store.submit("replay")
        assert excinfo.value.retry_after > 0
        assert store.shed_count == 1

    def test_submitter_quota_rejects_as_a_state(self):
        store = JobStore(submitter_quota=1)
        ok = store.submit("replay", submitter="alice")
        over = store.submit("replay", submitter="alice")
        other = store.submit("replay", submitter="bob")
        assert ok.state == "queued"
        assert over.state == "rejected" and "quota" in over.error
        assert other.state == "queued"
        # rejected jobs are terminal and never claimable
        claimed_ids = {store.claim()[0].job_id, store.claim()[0].job_id}
        assert over.job_id not in claimed_ids

    def test_lease_expiry_reclaims_with_backoff(self):
        store = JobStore(lease_seconds=0.05, backoff_base=0.01, max_retries=3)
        job = store.submit("replay")
        _, lease = store.claim(owner="w0")
        time.sleep(0.1)
        assert store.reclaim_expired() == [job.job_id]
        assert job.state == "queued" and job.retries == 1
        # ...and the stale worker's completion is refused
        assert not job.mark_done({}, lease)

    def test_heartbeat_prevents_reclaim(self):
        store = JobStore(lease_seconds=0.2)
        job = store.submit("replay")
        _, lease = store.claim(owner="w0")
        for _ in range(3):
            time.sleep(0.05)
            assert job.heartbeat(lease, 0.2)
        assert store.reclaim_expired() == []
        assert job.state == "running"

    def test_retries_exhaust_to_terminal_failed(self):
        store = JobStore(max_retries=1, backoff_base=0.0)
        job = store.submit("replay")
        _, lease = store.claim()
        assert job.mark_retrying("first boom", lease, backoff_base=0.0) == "queued"
        _, lease = store.claim()
        assert job.mark_retrying("second boom", lease, backoff_base=0.0) == "failed"
        assert job.state == "failed" and "second boom" in job.error


class TestSchedulerDispatch:
    def test_build_campaign_dispatches_on_jobs(self):
        from repro.core.campaign import Campaign
        from repro.perf.parallel import ParallelCampaign

        serial = build_campaign(CampaignConfig(dialect="duckdb"))
        assert isinstance(serial, Campaign)
        sharded = build_campaign(CampaignConfig(dialect="duckdb", jobs=2))
        assert isinstance(sharded, ParallelCampaign)
        with pytest.raises(ValueError, match="dialect"):
            build_campaign(CampaignConfig())

    def test_serial_streaming_hooks_fire(self):
        seen = []
        progress = []
        result = run_scheduled(
            CampaignConfig(dialect="virtuoso", budget=500),
            on_finding=lambda f, pos: seen.append((f.bug_type_label, pos)),
            on_progress=progress.append,
        )
        assert [label for label, _ in seen] == [
            b.bug_type_label for b in result.bugs
        ]
        assert all(pos >= 0 for _, pos in seen)
        assert progress and progress[-1]["budget"] == 500

    def test_sharded_run_backfills_the_stream(self):
        seen = []
        result = run_scheduled(
            CampaignConfig(dialect="virtuoso", budget=500, jobs=2),
            on_finding=lambda f, pos: seen.append(f),
        )
        assert len(seen) == len(result.bugs)


class TestSchedulerFailurePaths:
    """Worker crash isolation, poison pills, lease reclamation."""

    def _pool(self, tmp_path, workers=1, **store_kwargs):
        store_kwargs.setdefault("backoff_base", 0.0)
        store = JobStore(
            checkpoint_dir=str(tmp_path / "ckpt"), **store_kwargs
        )
        repo = BugRepository(str(tmp_path / "bugs.sqlite"), minimize=False)
        pool = SchedulerPool(store, repo, workers=workers)
        return store, repo, pool

    def _wait_state(self, job, states, deadline=30.0):
        end = time.monotonic() + deadline
        while time.monotonic() < end:
            if job.state in states:
                return job.state
            time.sleep(0.02)
        raise AssertionError(f"job stuck in {job.state!r}, wanted {states}")

    def test_worker_exception_marks_failed_with_traceback(self, tmp_path):
        store, repo, pool = self._pool(tmp_path, max_retries=0)
        # an unknown dialect blows up inside build_campaign
        job = store.submit(
            "campaign", config=CampaignConfig(dialect="not-a-dbms")
        )
        pool.start()
        try:
            assert self._wait_state(job, ("failed",)) == "failed"
            assert "Traceback" in job.error
            assert pool.alive  # the worker survived the job
        finally:
            pool.stop(drain=False)

    def test_failed_jobs_retry_before_turning_terminal(self, tmp_path):
        store, repo, pool = self._pool(tmp_path, max_retries=2)
        job = store.submit(
            "campaign", config=CampaignConfig(dialect="not-a-dbms")
        )
        pool.start()
        try:
            self._wait_state(job, ("failed",))
            assert job.retries == 2
        finally:
            pool.stop(drain=False)

    def test_poison_pills_stop_every_worker(self, tmp_path):
        store, repo, pool = self._pool(tmp_path, workers=4)
        pool.start()
        assert pool.alive_count == 4
        pool.stop(drain=False)  # one pill per worker
        assert pool.alive_count == 0

    def test_multi_worker_drains_mixed_queue_with_no_double_runs(self, tmp_path):
        store, repo, pool = self._pool(tmp_path, workers=4)
        jobs = []
        for index in range(6):
            jobs.append(store.submit(
                "campaign",
                config=CampaignConfig(dialect="virtuoso", budget=300),
            ))
            jobs.append(store.submit("replay"))
        pool.start()
        try:
            for job in jobs:
                assert self._wait_state(job, ("done",)) == "done"
            # lease uniqueness: every job was claimed exactly once
            assert all(job.lease_seq == 1 for job in jobs)
            assert all(job.retries == 0 for job in jobs)
        finally:
            pool.stop(drain=False)

    def test_lease_expiry_reclamation_end_to_end(self, tmp_path):
        store, repo, pool = self._pool(
            tmp_path, workers=1, lease_seconds=0.05, max_retries=3
        )
        job = store.submit(
            "campaign", config=CampaignConfig(dialect="virtuoso", budget=300)
        )
        # a wedged worker claimed the job and went silent
        claimed = store.claim(owner="wedged")
        assert claimed is not None and claimed[0] is job
        time.sleep(0.1)
        pool.start()  # a healthy worker reclaims and completes it
        try:
            assert self._wait_state(job, ("done",)) == "done"
            assert job.retries == 1 and job.lease_seq == 2
        finally:
            pool.stop(drain=False)

    def test_cooperative_cancel_of_a_running_campaign(self, tmp_path):
        store, repo, pool = self._pool(tmp_path, workers=1)
        job = store.submit(
            "campaign",
            config=CampaignConfig(dialect="virtuoso", budget=200_000),
        )
        pool.start()
        try:
            self._wait_state(job, ("running",))
            assert job.mark_cancelled() == "pending"
            assert self._wait_state(job, ("cancelled",)) == "cancelled"
        finally:
            pool.stop(drain=False)


class TestDurabilityAndRecovery:
    """The journal: jobs survive the process; orphans resume."""

    def test_journal_round_trips_jobs(self, tmp_path):
        path = str(tmp_path / "jobs.sqlite")
        journal = JobJournal(path)
        store = JobStore(journal=journal)
        config = CampaignConfig(dialect="duckdb", budget=777, priority=2)
        job = store.submit(
            "campaign", config=config, submitter="alice", priority=2
        )
        _, lease = store.claim(owner="w0")
        job.mark_done({"bug_count": 3}, lease)
        journal.close()

        reloaded = JobStore(journal=JobJournal(path))
        twin = reloaded.get(job.job_id)
        assert twin is not None
        assert twin.state == "done"
        assert twin.submitter == "alice" and twin.priority == 2
        assert twin.config.budget == 777
        assert twin.summary == {"bug_count": 3}
        # the id sequence continues across the restart
        assert reloaded.submit("replay").job_id != job.job_id

    def test_transitions_are_audited(self, tmp_path):
        journal = JobJournal(str(tmp_path / "jobs.sqlite"))
        store = JobStore(journal=journal)
        job = store.submit("replay")
        _, lease = store.claim(owner="w0")
        job.mark_done({}, lease)
        states = [t["state"] for t in journal.transitions(job.job_id)]
        assert states == ["queued", "running", "done"]

    def test_recovery_requeues_orphaned_running_jobs(self, tmp_path):
        path = str(tmp_path / "jobs.sqlite")
        journal = JobJournal(path)
        store = JobStore(
            journal=journal, checkpoint_dir=str(tmp_path / "ckpt")
        )
        job = store.submit(
            "campaign", config=CampaignConfig(dialect="virtuoso", budget=400)
        )
        assert store.claim(owner="doomed") is not None  # then the host dies
        journal.close()

        # ...the next service incarnation boots over the same journal
        reborn = JobStore(
            journal=JobJournal(path), checkpoint_dir=str(tmp_path / "ckpt"),
            backoff_base=0.0,
        )
        report = reborn.recover()
        twin = reborn.get(job.job_id)
        assert report["requeued"] == [job.job_id]
        assert twin.state == "queued" and twin.retries == 1

        repo = BugRepository(str(tmp_path / "bugs.sqlite"), minimize=False)
        pool = SchedulerPool(reborn, repo, workers=1).start()
        try:
            end = time.monotonic() + 30
            while twin.state != "done" and time.monotonic() < end:
                time.sleep(0.02)
            assert twin.state == "done"
            # recovery is invisible in the outcome: same digest as a
            # clean run of the same config
            control = run_scheduled(twin.config)
            from repro.service import signature_digest
            assert twin.summary["signature_digest"] == signature_digest(control)
        finally:
            pool.stop(drain=False)

    def test_recovery_exhausts_retries_to_failed(self, tmp_path):
        path = str(tmp_path / "jobs.sqlite")
        journal = JobJournal(path)
        store = JobStore(journal=journal, max_retries=0)
        store.submit("replay")
        assert store.claim(owner="doomed") is not None
        journal.close()
        reborn = JobStore(journal=JobJournal(path), max_retries=0)
        report = reborn.recover()
        assert len(report["failed"]) == 1
        job = reborn.get(report["failed"][0])
        assert job.state == "failed" and "orphaned" in job.error

    def test_graceful_drain_requeues_with_resume(self, tmp_path):
        journal = JobJournal(str(tmp_path / "jobs.sqlite"))
        store = JobStore(
            journal=journal, checkpoint_dir=str(tmp_path / "ckpt")
        )
        repo = BugRepository(str(tmp_path / "bugs.sqlite"), minimize=False)
        pool = SchedulerPool(store, repo, workers=1).start()
        job = store.submit(
            "campaign",
            config=CampaignConfig(
                dialect="virtuoso", budget=200_000, checkpoint_every=200
            ),
        )
        end = time.monotonic() + 30
        while job.state != "running" and time.monotonic() < end:
            time.sleep(0.02)
        # let it get past the first checkpoint so the drain can resume
        end = time.monotonic() + 30
        while not job.progress.get("position") and time.monotonic() < end:
            time.sleep(0.02)
        pool.stop(drain=True)
        assert job.state == "queued"
        assert job.retries == 0  # drain is not a failure
        assert job.params.get("resume") == job.checkpoint_path


class TestServiceOverloadProtection:
    """HTTP-level robustness: 429 load shedding, 413 body caps."""

    def test_queue_watermark_returns_429_with_retry_after(self, tmp_path):
        svc = BugService(
            str(tmp_path / "data"), queue_depth=2, workers=1
        ).start()
        try:
            # jam the single worker with a long campaign, then fill up
            config = CampaignConfig(dialect="virtuoso", budget=200_000)
            _request(svc, "POST", "/jobs",
                     {"kind": "campaign", "config": config.to_dict()})
            small = CampaignConfig(dialect="virtuoso", budget=300).to_dict()
            statuses = []
            for _ in range(6):
                status, _body = _request(
                    svc, "POST", "/jobs",
                    {"kind": "campaign", "config": small},
                )
                statuses.append(status)
            assert 429 in statuses
            # the Retry-After header rides on the 429
            request = urllib.request.Request(
                svc.url + "/jobs",
                data=json.dumps(
                    {"kind": "campaign", "config": small}
                ).encode(),
                method="POST",
                headers={"Content-Type": "application/json"},
            )
            try:
                urllib.request.urlopen(request, timeout=30)
                raise AssertionError("expected HTTP 429")
            except urllib.error.HTTPError as error:
                assert error.code == 429
                assert error.headers.get("Retry-After")
            # the server stays responsive under shed load
            status, health = _request(svc, "GET", "/health")
            assert status == 200 and health["shed"] >= 2
        finally:
            svc.stop()

    def test_oversized_body_is_413(self, service):
        big = json.dumps({"pad": "x" * (2 << 20)}).encode()
        request = urllib.request.Request(
            service.url + "/jobs",
            data=big,
            method="POST",
            headers={"Content-Type": "application/json"},
        )
        try:
            urllib.request.urlopen(request, timeout=30)
            raise AssertionError("expected HTTP 413")
        except urllib.error.HTTPError as error:
            assert error.code == 413

    def test_submitter_quota_over_http(self, tmp_path):
        svc = BugService(
            str(tmp_path / "data"), submitter_quota=1, workers=1
        ).start()
        try:
            config = CampaignConfig(
                dialect="virtuoso", budget=200_000
            ).to_dict()
            status, first = _request(
                svc, "POST", "/jobs",
                {"kind": "campaign", "config": config, "submitter": "alice"},
            )
            assert status == 200
            status, second = _request(
                svc, "POST", "/jobs",
                {"kind": "campaign", "config": config, "submitter": "alice"},
            )
            assert status == 200 and second["state"] == "rejected"
            assert "quota" in second["error"]
        finally:
            svc.stop()


class TestRunSignatureParity:
    """The acceptance bar: the redesigned entry points change nothing
    about what a default-config campaign computes."""

    def test_serial_cli_path_matches_library(self):
        direct = run_campaign("duckdb", budget=600)
        via_scheduler = run_scheduled(
            CampaignConfig(dialect="duckdb", budget=600)
        )
        assert direct.signature() == via_scheduler.signature()

    def test_sharded_cli_path_matches_library(self):
        direct = run_campaign("duckdb", budget=600)
        via_scheduler = run_scheduled(
            CampaignConfig(dialect="duckdb", budget=600, jobs=4)
        )
        assert direct.signature() == via_scheduler.signature()


# ---------------------------------------------------------------------------
# crash-point matrix: kill at every named storage crash point, restart,
# audit, and demand a signature identical to an uninterrupted control
# ---------------------------------------------------------------------------
#: budget 500 is the smallest virtuoso workload that actually finds bugs
#: (3 of them) — smaller budgets would leave the bugrepo crash points
#: with nothing to fire on
_MATRIX_CONFIG = CampaignConfig(dialect="virtuoso", budget=500)


@functools.lru_cache(maxsize=1)
def _matrix_control_digest():
    """The signature an uninterrupted run of the matrix workload yields."""
    return signature_digest(run_scheduled(_MATRIX_CONFIG))


class TestCrashPointMatrix:
    """Every named storage crash point, exercised as a process death.

    One incarnation = journal + store + repo + worker pool over the same
    on-disk files, running a scripted workload (campaign, replay, triage).
    The armed crash point "kills" the incarnation mid-write — either the
    worker thread dies silently or the main thread aborts the script —
    and the next incarnation recovers from whatever the crash left on
    disk.  After the workload finally completes: the auditor must pass,
    and the campaign signature must match an uninterrupted control.
    """

    @staticmethod
    def _await_terminal(pool, job, deadline=120.0):
        """True when *job* went terminal; False when the worker died."""
        end = time.monotonic() + deadline
        while time.monotonic() < end:
            if job.state in TERMINAL_STATES:
                return True
            if not pool.alive:
                return False  # the simulated kill took the worker down
            time.sleep(0.02)
        raise AssertionError(f"job {job.job_id} stuck in {job.state!r}")

    def _incarnation(self, base, chaos):
        """One service-process lifetime; returns (crashed, summary)."""
        journal = JobJournal(os.path.join(base, "jobs.sqlite"), chaos=chaos)
        store = JobStore(
            journal=journal,
            checkpoint_dir=os.path.join(base, "checkpoints"),
            backoff_base=0.0,
        )
        store.recover()
        repo = BugRepository(
            os.path.join(base, "bugs.sqlite"), minimize=False, chaos=chaos
        )
        pool = SchedulerPool(store, repo, workers=1).start()
        crashed = False
        summary = None
        try:
            # the workload is idempotent find-or-submit so a restarted
            # incarnation continues the journaled jobs instead of
            # duplicating them
            campaign = next(
                (j for j in store.list() if j.kind == "campaign"), None
            )
            if campaign is None:
                campaign = store.submit("campaign", config=_MATRIX_CONFIG)
            if not self._await_terminal(pool, campaign):
                crashed = True
            else:
                assert campaign.state == "done", campaign.error
                summary = dict(campaign.summary)
                replay = next(
                    (j for j in store.list() if j.kind == "replay"), None
                )
                if replay is None:
                    replay = store.submit(
                        "replay", params={"dialect": "virtuoso"}
                    )
                if not self._await_terminal(pool, replay):
                    crashed = True
                    summary = None
                else:
                    assert replay.state == "done", replay.error
                    records = repo.list()
                    assert records, "the campaign found no bugs to triage"
                    if records[0].triage == "new":
                        repo.set_triage(records[0].record_id, "confirmed")
        except SimulatedCrash:
            # a crash point fired on this thread (submit / triage writes)
            crashed = True
            summary = None
        finally:
            pool.stop(drain=False, timeout=30)
            if crashed:
                # die like SIGKILL: no close(), no final commit — leave
                # the journal exactly as the torn write left it
                journal.abandon()
            else:
                journal.close()
        return crashed, summary

    @pytest.mark.parametrize("point", crash_points())
    def test_kill_restart_audit_signature(self, tmp_path, point):
        chaos = StorageFaultInjector()
        chaos.arm_crash(point)
        base = str(tmp_path)
        summary = None
        for _ in range(4):  # the armed point fires once, then disarms
            crashed, result = self._incarnation(base, chaos)
            if not crashed:
                summary = result
                break
        assert summary is not None, (
            f"workload never completed after dying at {point}"
        )
        assert chaos.counters.get("crash") == 1, (
            f"crash point {point} never fired"
        )
        # the survivors must satisfy every service invariant...
        report = ServiceAuditor(data_dir=base).run(repair=True)
        assert report.ok, report.to_dict()
        # ...and the campaign must have computed exactly what an
        # uninterrupted run computes
        assert summary["signature_digest"] == _matrix_control_digest()


# ---------------------------------------------------------------------------
# internal-error envelope: a poisoned handler must not leak or wedge
# ---------------------------------------------------------------------------
class TestInternalErrorEnvelope:
    def test_poisoned_handler_returns_json_500_and_keeps_serving(
        self, tmp_path, monkeypatch
    ):
        svc = BugService(str(tmp_path / "data")).start()
        try:
            def poisoned():
                raise ZeroDivisionError("secret internal detail")

            # /health calls store.state_counts; poisoning it makes the
            # handler itself blow up mid-request
            monkeypatch.setattr(svc.store, "state_counts", poisoned)
            connection = http.client.HTTPConnection(
                svc.host, svc.port, timeout=30
            )
            try:
                connection.request("GET", "/health")
                response = connection.getresponse()
                raw = response.read()
                assert response.status == 500
                payload = json.loads(raw)  # still a JSON envelope
                assert payload == {
                    "error": "internal server error",
                    "exception": "ZeroDivisionError",
                }
                # no traceback, message, or path leaks on the wire
                text = raw.decode()
                assert "Traceback" not in text
                assert "secret internal detail" not in text
                assert str(tmp_path) not in text

                # the same keep-alive connection serves the next request
                connection.request("GET", "/jobs")
                response = connection.getresponse()
                assert response.status == 200
                assert json.loads(response.read())["jobs"] == []
            finally:
                connection.close()
            # and fresh connections are fine too: the service survived
            status, health = _request(svc, "GET", "/health")
            assert status == 500  # still poisoned, still enveloped
            assert health["exception"] == "ZeroDivisionError"
        finally:
            svc.stop()


# ---------------------------------------------------------------------------
# checkpoint sidecar GC: terminal jobs leave no litter behind
# ---------------------------------------------------------------------------
class TestSidecarGC:
    @staticmethod
    def _litter(path):
        """Create the sidecar plus every companion the writer can leave."""
        os.makedirs(os.path.dirname(path), exist_ok=True)
        for suffix in ("", ".tmp", ".shard0", ".shard1"):
            with open(path + suffix, "w") as sidecar:
                sidecar.write("{}")

    def test_done_sweeps_store_owned_sidecars(self, tmp_path):
        ckpt_dir = str(tmp_path / "checkpoints")
        store = JobStore(checkpoint_dir=ckpt_dir)
        job = store.submit(
            "campaign", config=CampaignConfig(dialect="duckdb", budget=100)
        )
        path = job.checkpoint_path
        assert os.path.dirname(os.path.abspath(path)) == os.path.abspath(
            ckpt_dir
        )
        self._litter(path)
        claimed, lease_seq = store.claim(owner="w0")
        assert claimed is job
        job.mark_done({"bug_count": 0}, lease_seq)
        assert os.listdir(ckpt_dir) == []

    def test_cancel_while_queued_sweeps_too(self, tmp_path):
        ckpt_dir = str(tmp_path / "checkpoints")
        store = JobStore(checkpoint_dir=ckpt_dir)
        job = store.submit(
            "campaign", config=CampaignConfig(dialect="duckdb", budget=100)
        )
        self._litter(job.checkpoint_path)
        assert store.cancel(job.job_id) is job
        assert job.state == "cancelled"
        assert os.listdir(ckpt_dir) == []

    def test_user_owned_checkpoint_survives(self, tmp_path):
        # a checkpoint_path outside the store's directory is the user's
        # file: terminal-state GC must not touch it
        mine = tmp_path / "mine.ckpt"
        mine.write_text("{}")
        store = JobStore(checkpoint_dir=str(tmp_path / "checkpoints"))
        job = store.submit(
            "campaign",
            config=CampaignConfig(
                dialect="duckdb", budget=100, checkpoint_path=str(mine)
            ),
        )
        _, lease_seq = store.claim(owner="w0")
        job.mark_done({"bug_count": 0}, lease_seq)
        assert mine.exists()
