"""Campaign-as-a-service, end to end over real HTTP.

Boots a :class:`~repro.service.server.BugService` on an ephemeral port,
submits a campaign job through the JSON API, polls the streamed-findings
cursor while the campaign runs, checks the deduplicated repository
records, runs a replay job, and exercises triage/cancel/error paths —
the full lifecycle the CLI's ``repro serve`` offers.

Also pins the API-redesign acceptance bar: a default-config ``repro run``
(serial *and* sharded) produces a byte-identical campaign signature to
calling the library directly.
"""

import json
import time
import urllib.error
import urllib.request

import pytest

from repro.core import CampaignConfig, run_campaign
from repro.service import BugService
from repro.service.jobs import JOB_STATES, Job, JobStore
from repro.service.scheduler import build_campaign, run_scheduled


# ---------------------------------------------------------------------------
# HTTP plumbing
# ---------------------------------------------------------------------------
@pytest.fixture
def service(tmp_path):
    svc = BugService(str(tmp_path / "data")).start()
    yield svc
    svc.stop()


def _request(service, method, path, body=None):
    data = json.dumps(body).encode() if body is not None else None
    request = urllib.request.Request(
        service.url + path,
        data=data,
        method=method,
        headers={"Content-Type": "application/json"} if data else {},
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def _wait(service, job_id, deadline=120.0):
    end = time.monotonic() + deadline
    while time.monotonic() < end:
        _, job = _request(service, "GET", f"/jobs/{job_id}")
        if job["state"] in ("done", "failed", "cancelled"):
            return job
        time.sleep(0.1)
    raise AssertionError(f"job {job_id} did not finish: {job}")


class TestServiceEndToEnd:
    def test_submit_stream_dedup_replay(self, service):
        status, health = _request(service, "GET", "/health")
        assert status == 200 and health["worker_alive"]

        # -- submit a campaign job --------------------------------------
        config = CampaignConfig(dialect="virtuoso", budget=500).to_dict()
        status, job = _request(
            service, "POST", "/jobs", {"kind": "campaign", "config": config}
        )
        assert status == 200 and job["state"] == "queued"
        job_id = job["id"]

        # -- poll the streamed-findings cursor while it runs ------------
        streamed = []
        cursor = 0
        end = time.monotonic() + 120
        while time.monotonic() < end:
            status, chunk = _request(
                service, "GET", f"/jobs/{job_id}/findings?since={cursor}"
            )
            assert status == 200
            assert cursor + len(chunk["findings"]) == chunk["next"]
            streamed.extend(chunk["findings"])
            cursor = chunk["next"]
            if chunk["state"] in ("done", "failed"):
                break
            time.sleep(0.1)

        final = _wait(service, job_id)
        assert final["state"] == "done", final.get("error")
        assert final["summary"]["bug_count"] == len(streamed) > 0
        # the stream carried real positions and labels
        assert all(f["label"] and f["position"] >= 0 for f in streamed)

        # -- the repository deduplicated the campaign's findings --------
        assert final["ingest"]["new_records"] == len(streamed)
        status, listing = _request(service, "GET", "/bugs")
        assert len(listing["bugs"]) == len(streamed)
        record = listing["bugs"][0]
        assert record["dialect"] == "virtuoso"
        assert record["kinds"] == ["crash"]

        # resubmitting the same campaign only bumps occurrences
        status, rerun = _request(
            service, "POST", "/jobs", {"kind": "campaign", "config": config}
        )
        rerun_final = _wait(service, rerun["id"])
        assert rerun_final["ingest"]["new_records"] == 0
        assert rerun_final["ingest"]["duplicates"] == len(streamed)
        status, listing = _request(service, "GET", "/bugs")
        assert len(listing["bugs"]) == len(streamed)

        # -- a replay job re-fires every stored trigger -----------------
        status, replay = _request(
            service, "POST", "/jobs", {"kind": "replay", "dialect": "virtuoso"}
        )
        replay_final = _wait(service, replay["id"])
        assert replay_final["state"] == "done"
        summary = replay_final["summary"]
        assert summary["replayed"] == len(streamed)
        assert summary["still_firing"] == len(streamed)
        assert summary["flipped"] == 0

        # -- triage over HTTP ------------------------------------------
        record_id = record["id"]
        status, updated = _request(
            service, "POST", f"/bugs/{record_id}/triage",
            {"status": "confirmed"},
        )
        assert status == 200 and updated["triage"] == "confirmed"
        status, shown = _request(service, "GET", f"/bugs/{record_id}")
        assert shown["triage"] == "confirmed"
        assert shown["replays"]  # the replay job left history

    def test_api_error_paths(self, service):
        status, body = _request(service, "GET", "/nope")
        assert status == 404
        status, body = _request(service, "POST", "/jobs", {"kind": "campaign"})
        assert status == 400 and "config" in body["error"]
        status, body = _request(
            service, "POST", "/jobs",
            {"kind": "campaign", "config": {"dialect": "duckdb", "bogus": 1}},
        )
        assert status == 400 and "bogus" in body["error"]
        status, body = _request(
            service, "POST", "/jobs", {"kind": "sabotage"}
        )
        assert status == 400
        status, body = _request(service, "GET", "/jobs/job-9999")
        assert status == 404
        status, body = _request(service, "GET", "/bugs/999")
        assert status == 404

    def test_invalid_config_fails_loudly_not_silently(self, service):
        config = {"dialect": "duckdb", "sandbox": True, "faults": "default"}
        status, body = _request(
            service, "POST", "/jobs", {"kind": "campaign", "config": config}
        )
        assert status == 400
        assert "mutually exclusive" in body["error"]


class TestJobModel:
    def test_job_states_and_cursor(self):
        store = JobStore()
        job = store.submit("campaign", config=CampaignConfig(dialect="duckdb"))
        assert job.state == "queued" and job.state in JOB_STATES
        assert store.next_job(timeout=1.0) is job
        job.mark_running()
        bug = run_campaign("virtuoso", budget=500).bugs[0]
        job.add_finding(bug, position=7)
        cursor, first = job.findings_since(0)
        assert cursor == 1 and first[0]["position"] == 7
        _, rest = job.findings_since(cursor)
        assert rest == []
        job.mark_done({"bug_count": 1})
        assert job.to_dict()["summary"]["bug_count"] == 1

    def test_cancelled_jobs_are_skipped_by_the_worker(self):
        store = JobStore()
        job = store.submit("replay")
        store.cancel(job.job_id)
        assert job.state == "cancelled"
        assert store.next_job(timeout=0.5) is None

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            Job("job-0001", "espresso")


class TestSchedulerDispatch:
    def test_build_campaign_dispatches_on_jobs(self):
        from repro.core.campaign import Campaign
        from repro.perf.parallel import ParallelCampaign

        serial = build_campaign(CampaignConfig(dialect="duckdb"))
        assert isinstance(serial, Campaign)
        sharded = build_campaign(CampaignConfig(dialect="duckdb", jobs=2))
        assert isinstance(sharded, ParallelCampaign)
        with pytest.raises(ValueError, match="dialect"):
            build_campaign(CampaignConfig())

    def test_serial_streaming_hooks_fire(self):
        seen = []
        progress = []
        result = run_scheduled(
            CampaignConfig(dialect="virtuoso", budget=500),
            on_finding=lambda f, pos: seen.append((f.bug_type_label, pos)),
            on_progress=progress.append,
        )
        assert [label for label, _ in seen] == [
            b.bug_type_label for b in result.bugs
        ]
        assert all(pos >= 0 for _, pos in seen)
        assert progress and progress[-1]["budget"] == 500

    def test_sharded_run_backfills_the_stream(self):
        seen = []
        result = run_scheduled(
            CampaignConfig(dialect="virtuoso", budget=500, jobs=2),
            on_finding=lambda f, pos: seen.append(f),
        )
        assert len(seen) == len(result.bugs)


class TestRunSignatureParity:
    """The acceptance bar: the redesigned entry points change nothing
    about what a default-config campaign computes."""

    def test_serial_cli_path_matches_library(self):
        direct = run_campaign("duckdb", budget=600)
        via_scheduler = run_scheduled(
            CampaignConfig(dialect="duckdb", budget=600)
        )
        assert direct.signature() == via_scheduler.signature()

    def test_sharded_cli_path_matches_library(self):
        direct = run_campaign("duckdb", budget=600)
        via_scheduler = run_scheduled(
            CampaignConfig(dialect="duckdb", budget=600, jobs=4)
        )
        assert direct.signature() == via_scheduler.signature()
