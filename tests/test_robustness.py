"""Tests for the robustness layer: faults, retries, watchdog, checkpoints."""

import json
import os

import pytest

from repro.core.campaign import Campaign, run_campaign
from repro.core.oracles import CrashOracle
from repro.core.runner import Runner
from repro.dialects import dialect_by_name
from repro.engine.connection import (
    ConnectionDropped,
    RestartFailed,
    Server,
)
from repro.engine.errors import NullPointerDereference
from repro.robustness import (
    CampaignCheckpoint,
    CheckpointError,
    CircuitBreaker,
    FaultInjector,
    FaultPlan,
    RetryPolicy,
    ServerQuarantined,
    SimulatedClock,
    StatementTimeout,
    Watchdog,
    make_fault_injector,
    rng_state_from_json,
    rng_state_to_json,
)

FAULT_SPEC = "hang=0.01,slow=0.02,drop=0.01,flaky=0.01,restart_fail=0.1"


def faulted_runner(plan_spec, dialect="mariadb", **kwargs):
    clock = SimulatedClock()
    injector = FaultInjector(FaultPlan.parse(plan_spec), seed=1, clock=clock)
    runner = Runner(dialect_by_name(dialect), faults=injector, clock=clock, **kwargs)
    return runner, injector, clock


class TestFaultPlan:
    def test_parse_default_preset(self):
        plan = FaultPlan.parse("default")
        assert plan.any_enabled
        assert plan.hang_rate > 0 and plan.restart_failure_rate > 0

    def test_parse_named_rates_with_aliases(self):
        plan = FaultPlan.parse("hang=0.1,flaky=0.05,restart_fail=0.2")
        assert plan.hang_rate == 0.1
        assert plan.flaky_crash_rate == 0.05
        assert plan.restart_failure_rate == 0.2
        assert plan.drop_rate == 0.0

    def test_parse_off(self):
        assert not FaultPlan.parse("off").any_enabled

    def test_parse_rejects_unknown_class(self):
        with pytest.raises(ValueError):
            FaultPlan.parse("gremlins=0.5")

    def test_parse_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            FaultPlan.parse("hang=lots")
        with pytest.raises(ValueError):
            FaultPlan(hang_rate=1.5)

    def test_rates_must_fit_one_statement_draw(self):
        with pytest.raises(ValueError):
            FaultPlan(hang_rate=0.6, drop_rate=0.6)

    def test_parse_rejects_duplicate_keys(self):
        with pytest.raises(ValueError, match="duplicate fault spec key 'hang'"):
            FaultPlan.parse("hang=0.01,hang=0.02")

    def test_parse_rejects_aliased_duplicates(self):
        # "flaky" and "flaky_crash" both resolve to flaky_crash_rate; the
        # duplicate check runs after alias resolution so this is caught too
        with pytest.raises(
            ValueError,
            match="duplicate fault spec key 'flaky_crash'.*flaky_crash_rate "
            "was already set",
        ):
            FaultPlan.parse("flaky=0.01,flaky_crash=0.02")

    def test_parse_rejects_nan_rate(self):
        with pytest.raises(
            ValueError, match="fault spec value for hang_rate must not be NaN"
        ):
            FaultPlan.parse("hang=nan")

    def test_parse_rejects_negative_rate(self):
        with pytest.raises(
            ValueError,
            match=r"fault spec value for drop_rate must be >= 0, got -0.1",
        ):
            FaultPlan.parse("drop=-0.1")

    def test_make_injector_coercions(self):
        assert make_fault_injector(None) is None
        assert make_fault_injector("off") is None
        assert isinstance(make_fault_injector("default"), FaultInjector)
        assert isinstance(make_fault_injector(FaultPlan(drop_rate=0.1)), FaultInjector)


class TestRetryPolicy:
    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(base_delay=1.0, max_delay=8.0, jitter=0.0)
        delays = [policy.delay(a) for a in range(1, 7)]
        assert delays[:4] == [1.0, 2.0, 4.0, 8.0]
        assert delays[4] == delays[5] == 8.0

    def test_jitter_is_deterministic_and_bounded(self):
        policy = RetryPolicy(base_delay=1.0, jitter=0.5, seed=42)
        again = RetryPolicy(base_delay=1.0, jitter=0.5, seed=42)
        for attempt in range(1, 6):
            assert policy.delay(attempt) == again.delay(attempt)
            raw = min(1.0 * 2 ** (attempt - 1), policy.max_delay)
            assert raw <= policy.delay(attempt) <= raw * 1.5

    def test_attempt_budget(self):
        policy = RetryPolicy(max_attempts=3)
        assert policy.allows(3)
        assert not policy.allows(4)


class TestCircuitBreaker:
    def test_opens_after_consecutive_failures(self):
        breaker = CircuitBreaker("duckdb", failure_threshold=3)
        for _ in range(2):
            breaker.record_failure()
        breaker.check()  # still closed
        breaker.record_failure()
        assert breaker.is_open
        with pytest.raises(ServerQuarantined):
            breaker.check()

    def test_success_resets_the_streak(self):
        breaker = CircuitBreaker(failure_threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert not breaker.is_open


class TestWatchdog:
    def test_guard_charges_statement_cost(self):
        clock = SimulatedClock()
        watchdog = Watchdog(clock, deadline_seconds=10, statement_cost_seconds=0.5)
        assert watchdog.guard(lambda: "ok") == "ok"
        assert clock.now() == 0.5

    def test_overrun_raises_timeout(self):
        clock = SimulatedClock()
        watchdog = Watchdog(clock, deadline_seconds=1.0, statement_cost_seconds=0.1)

        def slow():
            clock.advance(5.0)
            return "done"

        with pytest.raises(StatementTimeout):
            watchdog.guard(slow)
        assert watchdog.timeouts == 1

    def test_genuine_timeout_outcome(self):
        clock = SimulatedClock()
        runner = Runner(
            dialect_by_name("mariadb"),
            clock=clock,
            watchdog=Watchdog(clock, deadline_seconds=0.001, statement_cost_seconds=0.01),
        )
        outcome = runner.run("SELECT 1;")
        assert outcome.kind == "timeout"
        assert "deadline" in outcome.message


class TestFaultInjection:
    def test_hang_is_killed_and_recovered(self):
        runner, injector, clock = faulted_runner("hang=1.0")
        outcome = runner.run("SELECT 1;")
        # the kill plus one quiet retry recovers the statement
        assert outcome.kind == "ok"
        assert injector.counters["hang"] >= 1
        assert runner.timeouts == 1
        assert clock.now() > 500  # the hang burned simulated time

    def test_drop_reconnects_and_recovers(self):
        runner, injector, _ = faulted_runner("drop=1.0")
        outcome = runner.run("SELECT 1;")
        assert outcome.kind == "ok"
        assert injector.counters["drop"] == 1
        assert runner.fault_counters["reconnects"] == 1
        assert runner.restarts == 0  # the server never died

    def test_flaky_crash_reconfirmed_as_flaky_not_bug(self):
        runner, injector, _ = faulted_runner("flaky=1.0")
        outcome = runner.run("SELECT 1;")
        assert outcome.kind == "flaky"
        assert runner.flaky_crashes == 1
        assert runner.restarts == 1
        # the runner keeps serving afterwards
        assert runner.run("SELECT 2;").kind == "flaky"  # every statement is flaky here

    def test_genuine_crash_survives_reconfirmation(self):
        runner, injector, _ = faulted_runner("slow=0.5")
        outcome = runner.run("SELECT REVERSE('');")
        assert outcome.kind == "crash"
        assert outcome.crash.code == "NPD"
        assert runner.restarts == 2  # initial restart + post-reconfirmation restart

    def test_flaky_masked_bug_still_reconfirms_as_crash(self):
        # every statement draws a spurious crash, but the reconfirmation
        # executes for real and must find the genuine NPD underneath
        runner, injector, _ = faulted_runner("flaky=1.0")
        outcome = runner.run("SELECT REVERSE('');")
        assert outcome.kind == "crash"
        assert outcome.crash.code == "NPD"
        assert outcome.crash.function == "reverse"

    def test_restart_failures_retry_with_backoff(self):
        runner, injector, clock = faulted_runner("restart_fail=0.5")
        outcome = runner.run("SELECT REVERSE('');")  # crash forces restarts
        assert outcome.kind == "crash"
        assert runner.run("SELECT 1;").kind == "ok"

    def test_unrecoverable_restarts_quarantine_the_server(self):
        runner, injector, _ = faulted_runner("restart_fail=1.0")
        with pytest.raises(ServerQuarantined):
            runner.run("SELECT REVERSE('');")
        assert runner.breaker.is_open
        # once open, the breaker refuses further work immediately
        with pytest.raises(ServerQuarantined):
            runner._restart()

    def test_fault_stream_is_keyed_by_statement_position(self):
        # the schedule for a statement depends only on (fault seed,
        # position) — not on what executed before it.  Run two statements
        # in order, then replay the second alone on a fresh injector: the
        # draw it sees must be identical.
        runner, injector, _ = faulted_runner("slow=0.0")  # all rates zero
        runner.run("SELECT 1;")
        injector.set_position(1)
        expected = injector.rng.random()
        fresh_runner, fresh_injector, _ = faulted_runner("slow=0.0")
        fresh_injector.set_position(1)
        assert fresh_injector.rng.random() == expected

    def test_one_rng_draw_per_statement(self):
        runner, injector, _ = faulted_runner("slow=0.0")  # all rates zero
        runner.run("SELECT 1;")
        after = injector.rng.getstate()
        # exactly one draw: re-keying to the same position and drawing
        # once reproduces the post-statement RNG state
        injector.set_position(0)
        first_draw = injector.rng.random()
        assert injector.rng.getstate() == after
        # adjacent positions get decorrelated streams
        injector.set_position(1)
        assert injector.rng.random() != first_draw


class TestConnectionFaults:
    def test_connection_dropped_is_a_connection_closed(self):
        assert issubclass(ConnectionDropped, Exception)
        from repro.engine.connection import ConnectionClosed

        assert issubclass(ConnectionDropped, ConnectionClosed)

    def test_server_restart_is_exception_safe(self):
        server = dialect_by_name("mariadb").create_server()

        class FailingHook:
            def on_execute(self, connection, sql):
                pass

            def on_restart(self, srv):
                raise RestartFailed("wedged")

        server.alive = False
        ctx_before = server.ctx
        server.fault_hook = FailingHook()
        with pytest.raises(RestartFailed):
            server.restart()
        assert server.alive is False
        assert server.ctx is ctx_before  # nothing was torn down
        assert server.restart_failures == 1
        server.fault_hook = None
        server.restart()
        assert server.alive is True

    def test_runner_auto_reconnects_on_downed_server(self):
        # kill the server behind the runner's back: the next run() must
        # auto-reconnect (restart) instead of leaking ConnectionClosed
        runner = Runner(dialect_by_name("mariadb"))
        runner.server.alive = False
        outcome = runner.run("SELECT 1;")
        assert outcome.kind == "ok"
        assert runner.restarts == 1


class TestCampaignResilience:
    def test_faulted_campaign_reports_fault_free_bug_set(self):
        base = run_campaign("duckdb", budget=2000, seed=3)
        faulted = run_campaign(
            "duckdb", budget=2000, seed=3, faults=FAULT_SPEC, fault_seed=5
        )
        assert faulted.bug_keys() == base.bug_keys()
        # all three headline fault classes actually fired
        assert faulted.fault_counters["hang"] > 0
        assert faulted.fault_counters["drop"] > 0
        assert faulted.fault_counters["restart_fail"] > 0
        # zero injected flaky crashes surfaced as DiscoveredBugs
        assert faulted.flaky_signals
        flaky_sqls = set(faulted.flaky_signals)
        assert not {b.sql for b in faulted.bugs if b.function == "unknown"}
        assert faulted.outcomes["flaky"] == len(faulted.flaky_signals)

    def test_fault_counters_surface_in_outcomes(self):
        faulted = run_campaign(
            "monetdb", budget=1000, seed=1, faults="drop=0.05", fault_seed=2
        )
        assert faulted.outcomes.get("fault.drop", 0) > 0
        plain = {
            k: v for k, v in faulted.outcomes.items() if not k.startswith("fault.")
        }
        assert sum(plain.values()) == faulted.queries_executed

    def test_quarantined_campaign_degrades_instead_of_aborting(self):
        result = run_campaign("mariadb", budget=3000, seed=0, faults="restart_fail=1.0")
        assert result.quarantined
        assert "quarantined" in result.quarantine_reason
        assert 0 < result.queries_executed < 3000
        plain = {
            k: v for k, v in result.outcomes.items() if not k.startswith("fault.")
        }
        assert sum(plain.values()) == result.queries_executed

    def test_same_seed_campaigns_are_identical(self):
        kwargs = dict(budget=1200, seed=11, faults=FAULT_SPEC, fault_seed=7)
        a = run_campaign("monetdb", **kwargs)
        b = run_campaign("monetdb", **kwargs)
        assert a.signature() == b.signature()
        assert a.elapsed_seconds == b.elapsed_seconds  # simulated clock


class TestCheckpointResume:
    def test_checkpoint_file_roundtrip(self, tmp_path):
        path = str(tmp_path / "cp.json")
        cp = CampaignCheckpoint(
            dialect="duckdb", seed=1, budget=100, max_partners=48,
            enable_coverage=False, executed=50,
            outcomes={"ok": 40, "error": 10},
            rng_state=rng_state_to_json((3, (1, 2, 3), None)),
        )
        cp.save(path)
        loaded = CampaignCheckpoint.load(path)
        assert loaded == cp
        assert rng_state_from_json(loaded.rng_state) == (3, (1, 2, 3), None)

    def test_load_rejects_corrupt_file(self, tmp_path):
        path = tmp_path / "cp.json"
        path.write_text("{not json")
        with pytest.raises(CheckpointError):
            CampaignCheckpoint.load(str(path))

    def test_load_rejects_wrong_version(self, tmp_path):
        path = tmp_path / "cp.json"
        path.write_text(json.dumps({"version": 999}))
        with pytest.raises(CheckpointError):
            CampaignCheckpoint.load(str(path))

    def test_resume_refuses_mismatched_campaign(self, tmp_path):
        path = str(tmp_path / "cp.json")
        run_campaign("duckdb", budget=600, seed=3, checkpoint=path,
                     checkpoint_every=200)
        with pytest.raises(CheckpointError):
            run_campaign("duckdb", budget=600, seed=4, resume=path)
        with pytest.raises(CheckpointError):
            run_campaign("monetdb", budget=600, seed=3, resume=path)

    def test_resume_is_identical_to_uninterrupted_run(self, tmp_path):
        path = str(tmp_path / "cp.json")
        kwargs = dict(budget=2000, seed=3, faults=FAULT_SPEC, fault_seed=5)
        full = run_campaign("duckdb", checkpoint=path, checkpoint_every=700, **kwargs)
        cp = CampaignCheckpoint.load(path)
        assert 0 < cp.executed < 2000
        resumed = run_campaign("duckdb", resume=path, **kwargs)
        assert resumed.signature() == full.signature()
        assert resumed.elapsed_seconds == pytest.approx(full.elapsed_seconds)

    def test_resume_from_mid_seed_phase_checkpoint(self, tmp_path):
        # the seed corpus is several hundred statements; budget 280 with a
        # checkpoint every 100 leaves the last snapshot inside the seed phase
        path = str(tmp_path / "cp.json")
        kwargs = dict(budget=280, seed=3, faults=FAULT_SPEC, fault_seed=5)
        full = run_campaign("duckdb", checkpoint=path, checkpoint_every=100, **kwargs)
        cp = CampaignCheckpoint.load(path)
        assert cp.executed < full.seeds_collected
        resumed = run_campaign("duckdb", resume=path, **kwargs)
        assert resumed.signature() == full.signature()

    def test_resume_with_coverage_restores_metrics(self, tmp_path):
        path = str(tmp_path / "cp.json")
        kwargs = dict(budget=800, seed=2, enable_coverage=True)
        full = run_campaign("monetdb", checkpoint=path, checkpoint_every=300, **kwargs)
        resumed = run_campaign("monetdb", resume=path, **kwargs)
        assert resumed.branch_coverage == full.branch_coverage
        assert resumed.triggered_functions == full.triggered_functions

    def test_checkpoint_write_is_atomic(self, tmp_path):
        path = str(tmp_path / "cp.json")
        run_campaign("duckdb", budget=600, seed=3, checkpoint=path,
                     checkpoint_every=200)
        assert not os.path.exists(path + ".tmp")
        CampaignCheckpoint.load(path)  # parses cleanly


class TestOracleState:
    def test_export_restore_roundtrip(self):
        oracle = CrashOracle("mariadb")
        crash = NullPointerDereference("boom", function="reverse", stage="execute")
        oracle.observe_crash(crash, "SELECT REVERSE('');", "P1.2", 7)
        oracle.observe_resource_kill("SELECT REPEAT('a', 9);", "allocation of 9 bytes")
        oracle.observe_flaky_crash("SELECT 1;", "spurious")
        state = json.loads(json.dumps(oracle.export_state()))  # JSON-safe
        restored = CrashOracle("mariadb")
        restored.restore_state(state)
        assert len(restored.bugs) == 1
        assert restored.bugs[0].key == ("reverse", "NPD")
        assert restored.bugs[0].injected is not None  # re-resolved from registry
        assert restored.false_positives == oracle.false_positives
        assert restored.flaky_signals == ["SELECT 1;"]
        # dedup state survives: the same crash is not double-counted
        assert restored.observe_crash(crash, "SELECT 2;", "P1.2", 9) is None


class TestCLIFlags:
    def test_fuzz_with_faults(self, capsys):
        from repro.cli import main

        code = main(["fuzz", "duckdb", "--budget", "400",
                     "--faults", "default", "--fault-seed", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Campaign health" in out

    def test_fuzz_checkpoint_and_resume(self, tmp_path, capsys):
        from repro.cli import main

        path = str(tmp_path / "cp.json")
        assert main(["fuzz", "duckdb", "--budget", "600", "--seed", "3",
                     "--checkpoint", path, "--checkpoint-every", "200"]) == 0
        assert os.path.exists(path)
        assert main(["fuzz", "duckdb", "--budget", "600", "--seed", "3",
                     "--resume", path]) == 0

    def test_fuzz_bad_fault_spec_is_reported(self, capsys):
        from repro.cli import main

        code = main(["fuzz", "duckdb", "--budget", "100",
                     "--faults", "gremlins=1"])
        assert code == 1
        assert "error:" in capsys.readouterr().out
