"""Command-line interface: ``soft <command>``.

Commands:

* ``soft fuzz <dialect> [--budget N] [--coverage] [--faults SPEC]
  [--checkpoint PATH] [--resume PATH] [--jobs N] [--no-stmt-cache]
  [--oracles NAMES] [--sandbox] [--budgets SPEC]`` — run a SOFT campaign
  (optionally under injected infrastructure faults, with periodic
  checkpoints, sharded across N worker processes, with extra logic-bug
  oracles, inside a subprocess execution sandbox, and/or under
  per-statement resource budgets) and print the discovered bugs as
  disclosure-ready reports.
* ``soft dialects`` — list the simulated DBMSs and their inventories.
* ``soft study`` — print the bug-study summary (Findings 1-4).
* ``soft compare [--budget N]`` — the Tables 5/6 tool comparison.
* ``soft poc <dialect>`` — print every injected bug's PoC statement.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="soft",
        description="Boundary-argument fuzzing for built-in SQL functions "
        "(EuroSys'25 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_fuzz = sub.add_parser("fuzz", help="run a SOFT campaign")
    p_fuzz.add_argument("dialect", help="target dialect name")
    p_fuzz.add_argument("--budget", type=int, default=20_000,
                        help="query budget (default: 20000 ≈ '24 hours')")
    p_fuzz.add_argument("--coverage", action="store_true",
                        help="track branch coverage (slower)")
    p_fuzz.add_argument("--seed", type=int, default=0)
    p_fuzz.add_argument("--reports", action="store_true",
                        help="print full bug reports instead of one-liners")
    p_fuzz.add_argument("--faults", metavar="SPEC", default=None,
                        help="inject infrastructure faults: 'default' or "
                        "'hang=0.01,drop=0.02,flaky=0.005,restart_fail=0.1'")
    p_fuzz.add_argument("--fault-seed", type=int, default=0,
                        help="seed for the deterministic fault schedule")
    p_fuzz.add_argument("--checkpoint", metavar="PATH", default=None,
                        help="periodically checkpoint the campaign to PATH")
    p_fuzz.add_argument("--checkpoint-every", type=int, default=1_000,
                        help="statements between checkpoints (default: 1000)")
    p_fuzz.add_argument("--resume", metavar="PATH", default=None,
                        help="resume a killed campaign from a checkpoint file")
    p_fuzz.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="shard the campaign across N worker processes "
                        "(same bug set and signature as the serial run)")
    p_fuzz.add_argument("--no-stmt-cache", action="store_true",
                        help="bypass the statement parse/plan cache")
    p_fuzz.add_argument("--oracles", metavar="NAMES", default="crash",
                        help="comma-separated detection oracles: "
                        "crash,differential,conformance (default: crash)")
    p_fuzz.add_argument("--sandbox", action="store_true",
                        help="execute statements in a SIGKILL-able "
                        "subprocess worker with crash-loop containment "
                        "(incompatible with --faults and --coverage)")
    p_fuzz.add_argument("--budgets", metavar="SPEC", default=None,
                        help="per-statement resource budgets, e.g. "
                        "'depth=64,rows=100000,cells=1000000,"
                        "bytes=16777216,wall_ms=2000'")

    sub.add_parser("dialects", help="list simulated DBMSs")
    sub.add_parser("study", help="print the 318-bug study summary")

    p_cmp = sub.add_parser("compare", help="tool comparison (Tables 5/6)")
    p_cmp.add_argument("--budget", type=int, default=4_000)

    p_poc = sub.add_parser("poc", help="print injected-bug PoCs")
    p_poc.add_argument("dialect", help="target dialect name")

    p_min = sub.add_parser("minimize", help="delta-debug a crashing statement")
    p_min.add_argument("dialect", help="target dialect name")
    p_min.add_argument("sql", help="the crashing SQL statement")

    p_logic = sub.add_parser("logic", help="run the NoREC/TLP logic oracles")
    p_logic.add_argument("dialect", help="target dialect name")
    p_logic.add_argument("--rounds", type=int, default=40)

    args = parser.parse_args(argv)
    if args.command == "fuzz":
        return _cmd_fuzz(args)
    if args.command == "dialects":
        return _cmd_dialects()
    if args.command == "study":
        return _cmd_study()
    if args.command == "compare":
        return _cmd_compare(args)
    if args.command == "poc":
        return _cmd_poc(args)
    if args.command == "minimize":
        return _cmd_minimize(args)
    if args.command == "logic":
        return _cmd_logic(args)
    return 2  # pragma: no cover


def _cmd_fuzz(args) -> int:
    from .core import (
        format_resilience,
        render_bug_report,
        render_finding,
        run_campaign,
    )
    from .robustness import CheckpointError

    if args.jobs < 1:
        print(f"error: --jobs must be >= 1 (got {args.jobs})")
        return 1
    try:
        if args.jobs > 1:
            from .perf import run_parallel_campaign

            # for a sharded run --resume reuses the per-shard sidecar
            # checkpoints written next to the --checkpoint/--resume path
            result = run_parallel_campaign(
                args.dialect,
                jobs=args.jobs,
                budget=args.budget,
                enable_coverage=args.coverage,
                seed=args.seed,
                faults=args.faults,
                fault_seed=args.fault_seed,
                checkpoint=args.resume or args.checkpoint,
                checkpoint_every=args.checkpoint_every,
                resume=args.resume is not None,
                statement_cache=not args.no_stmt_cache,
                oracles=args.oracles,
                budgets=args.budgets,
                sandbox=args.sandbox,
            )
        else:
            result = run_campaign(
                args.dialect,
                budget=args.budget,
                enable_coverage=args.coverage,
                seed=args.seed,
                faults=args.faults,
                fault_seed=args.fault_seed,
                checkpoint=args.checkpoint,
                checkpoint_every=args.checkpoint_every,
                resume=args.resume,
                statement_cache=not args.no_stmt_cache,
                oracles=args.oracles,
                budgets=args.budgets,
                sandbox=args.sandbox,
            )
    except (CheckpointError, ValueError) as exc:
        print(f"error: {exc}")
        return 1
    print(
        f"{result.dialect}: {result.queries_executed} queries, "
        f"{len(result.bugs)} unique bugs, "
        f"{len(result.triggered_functions)} functions triggered"
        + (f", {result.branch_coverage} branches" if args.coverage else "")
    )
    for bug in result.bugs:
        if args.reports:
            print("\n" + "=" * 70)
            print(render_bug_report(bug))
        else:
            print(f"  [{bug.crash_code}] {bug.function} via {bug.pattern}: {bug.sql}")
    findings = getattr(result, "findings", [])
    if findings:
        print(f"  logic-oracle findings: {len(findings)}")
        for finding in findings:
            if args.reports:
                print("\n" + "=" * 70)
                print(render_finding(finding))
            else:
                print(f"  {finding.one_liner()}")
    if result.false_positives:
        print(f"  ({len(result.false_positives)} false positives from resource kills)")
    if (
        args.faults
        or args.resume
        or args.jobs > 1
        or args.sandbox
        or args.budgets
        or result.fault_counters
        or result.quarantined
    ):
        print(format_resilience(result))
    return 0


def _cmd_dialects() -> int:
    from .dialects import all_dialect_classes, bugs_for

    for cls in all_dialect_classes():
        dialect = cls()
        bugs = bugs_for(dialect.name)
        print(
            f"{dialect.name:<12} v{dialect.version:<10} "
            f"{len(dialect.registry):>4} functions, {len(bugs):>3} injected bugs"
        )
    return 0


def _cmd_study() -> int:
    from .corpus import summarize

    s = summarize()
    print(f"Studied bugs: {s.total}  ({s.by_dbms})")
    print(f"Backtraces: {s.with_backtrace}; stages: {s.stages}")
    print(f"Expressions per statement: {dict(sorted(s.expression_counts.items()))}")
    print(f"Prerequisites: {s.prerequisites}")
    print(f"Root causes: {s.root_causes}")
    print(f"Boundary-value share: {s.boundary_share:.1%}")
    print("Function types (occurrences / distinct):")
    for row in s.type_histogram:
        print(f"  {row.family:<12} {row.occurrences:>4} / {row.unique_functions}")
    return 0


def _cmd_compare(args) -> int:
    from .analysis import run_comparison

    table = run_comparison(budget=args.budget)
    print(table.format("triggered_functions", "Triggered built-in SQL functions"))
    print()
    print(table.format("branch_coverage", "Covered branches in function components"))
    print()
    print(table.format("bugs_found", "Unique SQL function bugs"))
    return 0


def _cmd_poc(args) -> int:
    from .dialects import bugs_for

    for bug in bugs_for(args.dialect.lower()):
        status = "fixed" if bug.fixed else "confirmed"
        print(f"-- {bug.bug_id} [{bug.crash}] via {bug.pattern} ({status})")
        print(bug.poc)
    return 0


def _cmd_minimize(args) -> int:
    from .core import minimize_poc
    from .dialects import dialect_by_name

    dialect = dialect_by_name(args.dialect)
    try:
        result = minimize_poc(dialect, args.sql)
    except ValueError as exc:
        print(f"error: {exc}")
        return 1
    print(f"before ({len(result.original)} chars): {result.original}")
    print(f"after  ({len(result.minimized)} chars): {result.minimized}")
    print(f"({result.attempts} candidate executions, "
          f"{result.reduction:.0%} smaller)")
    return 0


def _cmd_logic(args) -> int:
    from .core import LogicOracle
    from .dialects import dialect_by_name

    oracle = LogicOracle(dialect_by_name(args.dialect))
    result = oracle.run(rounds=args.rounds)
    print(f"{args.dialect}: {result.checks} oracle checks, "
          f"{result.errors} rejected predicates, "
          f"{len(result.violations)} violations")
    for violation in result.violations:
        print(f"  {violation}")
    return 0 if result.ok else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
