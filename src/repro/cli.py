"""Command-line interface: ``repro <command>`` (also installed as ``soft``).

Commands:

* ``repro run <dialect> [--budget N] [--coverage] [--faults SPEC]
  [--checkpoint PATH] [--resume PATH] [--jobs N] [--no-stmt-cache]
  [--oracles NAMES] [--sandbox] [--budgets SPEC]`` — run a SOFT campaign
  (optionally under injected infrastructure faults, with periodic
  checkpoints, sharded across N worker processes, with extra logic-bug
  oracles, inside a subprocess execution sandbox, and/or under
  per-statement resource budgets) and print the discovered bugs as
  disclosure-ready reports.  ``fuzz`` is the historical alias.
* ``repro serve [--port N] [--data-dir DIR]`` — campaign-as-a-service:
  the HTTP/JSON scheduler plus persistent bug repository.
* ``repro bugs list|show|replay|triage`` — browse, replay, and triage
  the persistent bug repository without booting the server.
* ``repro audit [--data-dir DIR] [--repair]`` — check (and optionally
  repair) the service's durable invariants: journal transition chains,
  leases, checkpoint sidecars, bug-repository dedup keys.
* ``repro dialects`` — list the simulated DBMSs and their inventories.
* ``repro study`` — print the bug-study summary (Findings 1-4).
* ``repro compare [--budget N]`` — the Tables 5/6 tool comparison.
* ``repro poc <dialect>`` — print every injected bug's PoC statement.

The library's option validation speaks :class:`~repro.core.CampaignConfig`
field names ('sandbox', 'faults', 'enable_coverage', ...); this module
owns the flag spellings, so :func:`_flagify` rewrites those names into
``--sandbox``/``--faults``/``--coverage`` before an error reaches the
terminal.
"""

from __future__ import annotations

import argparse
import os
import re
import sys
from typing import List, Optional

#: config field name -> CLI flag spelling.  Library errors name config
#: fields; the CLI translates them at its boundary (see _flagify).
_FIELD_FLAGS = {
    "enable_coverage": "--coverage",
    "statement_cache": "--no-stmt-cache",
    "compile": "--no-compile",
    "checkpoint_path": "--checkpoint",
    "checkpoint_every": "--checkpoint-every",
    "fault_seed": "--fault-seed",
    "sandbox": "--sandbox",
    "faults": "--faults",
    "budgets": "--budgets",
    "oracles": "--oracles",
    "statement_family": "--statement-family",
    "budget": "--budget",
    "jobs": "--jobs",
    "seed": "--seed",
}

_DEFAULT_DATA_DIR = os.path.join(".", ".repro-service")


def _flagify(message: str) -> str:
    """Rewrite config field names in a library error into flag spellings."""
    for field, flag in _FIELD_FLAGS.items():
        message = re.sub(
            rf"(?:the )?'{re.escape(field)}'(?: option(?:s)?)?", flag, message
        )
    return message


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Boundary-argument fuzzing for built-in SQL functions "
        "(EuroSys'25 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser(
        "run", aliases=["fuzz"], help="run a SOFT campaign (alias: fuzz)"
    )
    p_run.add_argument("dialect", help="target dialect name")
    p_run.add_argument("--budget", type=int, default=20_000,
                       help="query budget (default: 20000 ≈ '24 hours')")
    p_run.add_argument("--coverage", action="store_true",
                       help="track branch coverage (slower)")
    p_run.add_argument("--seed", type=int, default=0)
    p_run.add_argument("--reports", action="store_true",
                       help="print full bug reports instead of one-liners")
    p_run.add_argument("--faults", metavar="SPEC", default=None,
                       help="inject infrastructure faults: 'default' or "
                       "'hang=0.01,drop=0.02,flaky=0.005,restart_fail=0.1'")
    p_run.add_argument("--fault-seed", type=int, default=0,
                       help="seed for the deterministic fault schedule")
    p_run.add_argument("--checkpoint", metavar="PATH", default=None,
                       help="periodically checkpoint the campaign to PATH")
    p_run.add_argument("--checkpoint-every", type=int, default=1_000,
                       help="statements between checkpoints (default: 1000)")
    p_run.add_argument("--resume", metavar="PATH", default=None,
                       help="resume a killed campaign from a checkpoint file")
    p_run.add_argument("--jobs", type=int, default=1, metavar="N",
                       help="shard the campaign across N worker processes "
                       "(same bug set and signature as the serial run)")
    p_run.add_argument("--no-stmt-cache", action="store_true",
                       help="bypass the statement parse/plan cache")
    p_run.add_argument("--no-compile", action="store_true",
                       help="disable plan-to-closure compilation and run "
                       "every statement through the interpreter (results "
                       "and signatures are identical either way)")
    p_run.add_argument("--oracles", metavar="NAMES", default="crash",
                       help="comma-separated detection oracles: "
                       "crash,differential,conformance,tlp,norec "
                       "(default: crash)")
    p_run.add_argument("--statement-family", metavar="FAMILY",
                       default="expression", choices=("expression", "predicate"),
                       help="what the pattern engine emits: 'expression' "
                       "(bare SELECT f(args); — the default) or 'predicate' "
                       "(SELECT ... FROM fuzz_t WHERE f(args) <cmp> ... over "
                       "a seeded table, the metamorphic oracles' workload)")
    p_run.add_argument("--sandbox", action="store_true",
                       help="execute statements in a SIGKILL-able "
                       "subprocess worker with crash-loop containment "
                       "(incompatible with --faults and --coverage)")
    p_run.add_argument("--budgets", metavar="SPEC", default=None,
                       help="per-statement resource budgets, e.g. "
                       "'depth=64,rows=100000,cells=1000000,"
                       "bytes=16777216,wall_ms=2000'")

    p_serve = sub.add_parser(
        "serve", help="run the campaign scheduler + bug repository service"
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8137,
                         help="listen port (0 picks an ephemeral port)")
    p_serve.add_argument("--data-dir", default=_DEFAULT_DATA_DIR,
                         help="where the bug repository lives "
                         f"(default: {_DEFAULT_DATA_DIR})")
    p_serve.add_argument("--no-minimize", action="store_true",
                         help="store raw trigger statements instead of "
                         "minimizing on ingest")
    p_serve.add_argument("--budgets", metavar="SPEC", default=None,
                         help="default per-job resource quota applied to "
                         "campaign submissions without their own budgets")
    p_serve.add_argument("--workers", type=int, default=1,
                         help="concurrent scheduler workers claiming jobs "
                         "under leases (default: 1)")
    p_serve.add_argument("--queue-depth", type=int, default=64,
                         help="admission watermark: queued jobs past this "
                         "are shed with HTTP 429 (default: 64)")
    p_serve.add_argument("--quota", type=int, default=None,
                         help="max queued+running jobs per submitter; "
                         "over-quota submissions land in the terminal "
                         "'rejected' job state (default: unlimited)")
    p_serve.add_argument("--lease-seconds", type=float, default=30.0,
                         help="worker lease duration; an expired lease "
                         "makes a running job reclaimable (default: 30)")
    p_serve.add_argument("--no-preempt", action="store_true",
                         help="disable priority preemption (by default a "
                         "strictly higher-priority queued job may "
                         "checkpoint-and-requeue a running one)")
    p_serve.add_argument("--tenant-budget", metavar="SPEC", default=None,
                         help="per-submitter resource budgets, e.g. "
                         "'statements=10000,rows=5000,wall_ms=100': "
                         "'statements' caps each submitter's cumulative "
                         "statement allowance; the rest is a per-statement "
                         "ceiling overriding submitted budgets")
    p_serve.add_argument("--chaos", metavar="SPEC", default=None,
                         help="storage fault-injection spec, e.g. 'default' "
                         "or 'locked=0.05,enospc=0.01,corrupt=0.001' "
                         "(testing only; REPRO_CHAOS env var also works)")
    p_serve.add_argument("--chaos-seed", type=int, default=0,
                         help="deterministic seed for --chaos draws")

    p_audit = sub.add_parser(
        "audit", help="check (and repair) the service's durable invariants"
    )
    p_audit.add_argument("--data-dir", default=_DEFAULT_DATA_DIR,
                         help="the service data directory to audit "
                         f"(default: {_DEFAULT_DATA_DIR})")
    p_audit.add_argument("--repair", action="store_true",
                         help="repair what can be repaired: re-enqueue "
                         "stale leases, strip unloadable resume pointers, "
                         "quarantine-and-rebuild corrupt databases, merge "
                         "duplicate dedup keys, delete orphaned sidecars")

    p_bugs = sub.add_parser("bugs", help="browse the persistent bug repository")
    p_bugs.add_argument("--data-dir", default=_DEFAULT_DATA_DIR,
                        help="where the bug repository lives")
    bugs_sub = p_bugs.add_subparsers(dest="bugs_command", required=True)
    p_list = bugs_sub.add_parser("list", help="list repository records")
    p_list.add_argument("--dialect", default=None)
    p_list.add_argument("--triage", default=None)
    p_show = bugs_sub.add_parser("show", help="show one record + replays")
    p_show.add_argument("id", type=int)
    p_replay = bugs_sub.add_parser(
        "replay", help="re-execute stored triggers, report status flips"
    )
    p_replay.add_argument("--dialect", default=None,
                          help="only replay this dialect's records")
    p_replay.add_argument("--target", default=None,
                          help="re-target execution onto another dialect "
                          "(report-only; records are not mutated)")
    p_replay.add_argument("--ids", default=None,
                          help="comma-separated record ids")
    p_triage = bugs_sub.add_parser("triage", help="set a record's triage status")
    p_triage.add_argument("id", type=int)
    p_triage.add_argument("status")

    sub.add_parser("dialects", help="list simulated DBMSs")
    sub.add_parser("study", help="print the 318-bug study summary")

    p_cmp = sub.add_parser("compare", help="tool comparison (Tables 5/6)")
    p_cmp.add_argument("--budget", type=int, default=4_000)

    p_poc = sub.add_parser("poc", help="print injected-bug PoCs")
    p_poc.add_argument("dialect", help="target dialect name")

    p_min = sub.add_parser("minimize", help="delta-debug a crashing statement")
    p_min.add_argument("dialect", help="target dialect name")
    p_min.add_argument("sql", help="the crashing SQL statement")

    p_logic = sub.add_parser("logic", help="run the NoREC/TLP logic oracles")
    p_logic.add_argument("dialect", help="target dialect name")
    p_logic.add_argument("--rounds", type=int, default=40)

    args = parser.parse_args(argv)
    if args.command in ("run", "fuzz"):
        return _cmd_run(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "audit":
        return _cmd_audit(args)
    if args.command == "bugs":
        return _cmd_bugs(args)
    if args.command == "dialects":
        return _cmd_dialects()
    if args.command == "study":
        return _cmd_study()
    if args.command == "compare":
        return _cmd_compare(args)
    if args.command == "poc":
        return _cmd_poc(args)
    if args.command == "minimize":
        return _cmd_minimize(args)
    if args.command == "logic":
        return _cmd_logic(args)
    return 2  # pragma: no cover


def _cmd_run(args) -> int:
    from .core import (
        CampaignConfig,
        format_resilience,
        render_bug_report,
        render_finding,
    )
    from .robustness import CheckpointError
    from .service.scheduler import run_scheduled

    if args.jobs < 1:
        print(f"error: --jobs must be >= 1 (got {args.jobs})")
        return 1
    try:
        config = CampaignConfig(
            dialect=args.dialect,
            budget=args.budget,
            enable_coverage=args.coverage,
            seed=args.seed,
            faults=args.faults,
            fault_seed=args.fault_seed,
            checkpoint_path=args.checkpoint,
            checkpoint_every=args.checkpoint_every,
            statement_cache=not args.no_stmt_cache,
            compile=not args.no_compile,
            oracles=args.oracles,
            statement_family=args.statement_family,
            budgets=args.budgets,
            sandbox=args.sandbox,
            jobs=args.jobs,
        )
        result = run_scheduled(config, resume=args.resume)
    except (CheckpointError, ValueError) as exc:
        print(f"error: {_flagify(str(exc))}")
        return 1
    print(
        f"{result.dialect}: {result.queries_executed} queries, "
        f"{len(result.bugs)} unique bugs, "
        f"{len(result.triggered_functions)} functions triggered"
        + (f", {result.branch_coverage} branches" if args.coverage else "")
    )
    for bug in result.bugs:
        if args.reports:
            print("\n" + "=" * 70)
            print(render_bug_report(bug))
        else:
            print(f"  [{bug.crash_code}] {bug.function} via {bug.pattern}: {bug.sql}")
    findings = getattr(result, "findings", [])
    if findings:
        print(f"  logic-oracle findings: {len(findings)}")
        for finding in findings:
            if args.reports:
                print("\n" + "=" * 70)
                print(render_finding(finding))
            else:
                print(f"  {finding.one_liner()}")
    if result.false_positives:
        print(f"  ({len(result.false_positives)} false positives from resource kills)")
    if (
        args.faults
        or args.resume
        or args.jobs > 1
        or args.sandbox
        or args.budgets
        or result.fault_counters
        or result.quarantined
    ):
        print(format_resilience(result))
    return 0


def _cmd_serve(args) -> int:
    from .robustness.chaos import StorageFaultInjector, StorageFaultPlan
    from .service import BugService

    chaos = None
    if args.chaos:
        try:
            chaos = StorageFaultInjector(
                StorageFaultPlan.parse(args.chaos), seed=args.chaos_seed
            )
        except ValueError as exc:
            print(f"error: {exc}")
            return 1
    try:
        service = BugService(
            data_dir=args.data_dir,
            host=args.host,
            port=args.port,
            minimize=not args.no_minimize,
            default_budgets=args.budgets,
            workers=args.workers,
            queue_depth=args.queue_depth,
            submitter_quota=args.quota,
            lease_seconds=args.lease_seconds,
            preemption=not args.no_preempt,
            tenant_budget=args.tenant_budget,
            chaos=chaos,
        )
    except ValueError as exc:
        print(f"error: {exc}")
        return 1
    print(f"repro service listening on {service.url}")
    print(f"bug repository: {os.path.join(args.data_dir, 'bugs.sqlite')}")
    print(f"job journal:    {os.path.join(args.data_dir, 'jobs.sqlite')} "
          f"({args.workers} worker{'s' if args.workers != 1 else ''})")
    recovered = service.recovered
    if recovered["requeued"] or recovered["failed"]:
        print(f"crash recovery: requeued {len(recovered['requeued'])}, "
              f"abandoned {len(recovered['failed'])}")
    for name, event in service.rebuilds.items():
        print(f"storage rebuild: {name} quarantined to "
              f"{event['quarantined']} ({event['salvaged']} rows salvaged)")
    if service.audit_report is not None and not service.audit_report.ok:
        print("warning: startup audit found unrepaired errors "
              "(see /health or run 'repro audit')")
    service.serve_forever()
    return 0


def _cmd_audit(args) -> int:
    from .service import ServiceAuditor

    if not os.path.isdir(args.data_dir):
        print(f"error: no service data directory at {args.data_dir}")
        return 1
    report = ServiceAuditor(data_dir=args.data_dir).run(repair=args.repair)
    for finding in report.findings:
        marker = "repaired" if finding.repaired else finding.severity
        line = f"  [{marker}] {finding.check} {finding.subject}: {finding.detail}"
        if finding.repair:
            line += f" -> {finding.repair}"
        print(line)
    summary = report.to_dict()
    print(f"audit: {len(report.checks)} checks, {summary['errors']} errors "
          f"({summary['repaired']} repaired), {summary['warnings']} warnings")
    if report.ok:
        print("audit passed")
        return 0
    print("audit FAILED: unrepaired errors remain"
          + ("" if args.repair else " (re-run with --repair?)"))
    return 1


def _cmd_bugs(args) -> int:
    from .service import BugRepository

    db_path = os.path.join(args.data_dir, "bugs.sqlite")
    if args.bugs_command != "list" and not os.path.exists(db_path):
        print(f"error: no bug repository at {db_path} "
              "(run 'repro serve' or 'repro bugs list' to create one)")
        return 1
    repo = BugRepository(db_path)
    if args.bugs_command == "list":
        records = repo.list(dialect=args.dialect, triage=args.triage)
        if not records:
            print("no bug records")
            return 0
        for r in records:
            kinds = ",".join(r.kinds)
            print(f"  #{r.record_id:<4} {r.dialect:<12} {r.function:<20} "
                  f"[{'/'.join(r.labels)}] ({kinds}) x{r.occurrences} "
                  f"{r.triage}/{r.last_status}: {r.statement}")
        return 0
    if args.bugs_command == "show":
        record = repo.get(args.id)
        if record is None:
            print(f"error: no bug record {args.id}")
            return 1
        for key, value in record.to_dict().items():
            print(f"{key:<12} {value}")
        history = repo.replay_history(args.id)
        if history:
            print("replays:")
            for entry in history:
                status = "fires" if entry["fires"] else "quiet"
                flip = " FLIP" if entry["flipped"] else ""
                print(f"  {entry['dialect']:<12} {entry['observed']:<18} "
                      f"{status}{flip}")
        return 0
    if args.bugs_command == "replay":
        record_ids = None
        if args.ids:
            record_ids = [int(part) for part in args.ids.split(",") if part]
        try:
            report = repo.replay(
                dialect=args.dialect, target=args.target, record_ids=record_ids
            )
        except ValueError as exc:
            print(f"error: {exc}")
            return 1
        print(f"replayed {report.replayed} triggers against {report.dialect}: "
              f"{report.still_firing} still firing, {len(report.flips)} flipped")
        for outcome in report.outcomes:
            marker = "FLIP " if outcome.flipped else ""
            print(f"  {marker}#{outcome.record_id} {outcome.dialect}: "
                  f"expected {outcome.expected}, observed {outcome.observed} "
                  f"-- {outcome.statement}")
        return 0
    if args.bugs_command == "triage":
        try:
            record = repo.set_triage(args.id, args.status)
        except (KeyError, ValueError) as exc:
            print(f"error: {exc}")
            return 1
        print(f"#{record.record_id} -> {record.triage}")
        return 0
    return 2  # pragma: no cover


def _cmd_dialects() -> int:
    from .dialects import all_dialect_classes, bugs_for

    for cls in all_dialect_classes():
        dialect = cls()
        bugs = bugs_for(dialect.name)
        print(
            f"{dialect.name:<12} v{dialect.version:<10} "
            f"{len(dialect.registry):>4} functions, {len(bugs):>3} injected bugs"
        )
    return 0


def _cmd_study() -> int:
    from .corpus import summarize

    s = summarize()
    print(f"Studied bugs: {s.total}  ({s.by_dbms})")
    print(f"Backtraces: {s.with_backtrace}; stages: {s.stages}")
    print(f"Expressions per statement: {dict(sorted(s.expression_counts.items()))}")
    print(f"Prerequisites: {s.prerequisites}")
    print(f"Root causes: {s.root_causes}")
    print(f"Boundary-value share: {s.boundary_share:.1%}")
    print("Function types (occurrences / distinct):")
    for row in s.type_histogram:
        print(f"  {row.family:<12} {row.occurrences:>4} / {row.unique_functions}")
    return 0


def _cmd_compare(args) -> int:
    from .analysis import run_comparison

    table = run_comparison(budget=args.budget)
    print(table.format("triggered_functions", "Triggered built-in SQL functions"))
    print()
    print(table.format("branch_coverage", "Covered branches in function components"))
    print()
    print(table.format("bugs_found", "Unique SQL function bugs"))
    return 0


def _cmd_poc(args) -> int:
    from .dialects import bugs_for

    for bug in bugs_for(args.dialect.lower()):
        status = "fixed" if bug.fixed else "confirmed"
        print(f"-- {bug.bug_id} [{bug.crash}] via {bug.pattern} ({status})")
        print(bug.poc)
    return 0


def _cmd_minimize(args) -> int:
    from .core import minimize_poc
    from .dialects import dialect_by_name

    dialect = dialect_by_name(args.dialect)
    try:
        result = minimize_poc(dialect, args.sql)
    except ValueError as exc:
        print(f"error: {exc}")
        return 1
    print(f"before ({len(result.original)} chars): {result.original}")
    print(f"after  ({len(result.minimized)} chars): {result.minimized}")
    print(f"({result.attempts} candidate executions, "
          f"{result.reduction:.0%} smaller)")
    return 0


def _cmd_logic(args) -> int:
    from .core import LogicOracle
    from .dialects import dialect_by_name

    oracle = LogicOracle(dialect_by_name(args.dialect))
    result = oracle.run(rounds=args.rounds)
    print(f"{args.dialect}: {result.checks} oracle checks, "
          f"{result.errors} rejected predicates, "
          f"{len(result.violations)} violations")
    for violation in result.violations:
        print(f"  {violation}")
    return 0 if result.ok else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
