"""Simulated ClickHouse.

ClickHouse exposes by far the largest function inventory of the seven
systems (hundreds of typed conversion and array combinators), which is why
Table 5 shows SOFT triggering 711 functions there.  We model the inventory
with the camel-case ``toX``/``arrayX`` alias families.  Six injected bugs
(all fixed within days — the toDecimalString story of Listing 1).
"""

from __future__ import annotations

from dataclasses import replace
from typing import List

from ..engine.casting import TypeLimits
from ..engine.functions import FunctionRegistry
from .base import Dialect
from .bugs import InjectedBug, register_bugs

_BUG_ROWS = [
    # -- aggregate (1): NPD; P1.2
    ("any_value", "aggregate", "NPD", "P1.2", ("null", 0),
     "SELECT ANY_VALUE(NULL);",
     "the single-value state is initialised lazily from the first row and "
     "never initialised for NULL", True),
    # -- array (1): NPD; P2.3
    ("element_at", "array", "NPD", "P2.3", ("foreign", ("$",), 1),
     "SELECT ELEMENT_AT([1, 2], '$[0]');",
     "a JSON-path index takes the by-name map branch with a NULL key "
     "hasher", True),
    # -- date (1): NPD; P1.2
    ("from_days", "date", "NPD", "P1.2", ("neg", 0),
     "SELECT FROM_DAYS(-99999);",
     "negative day counts index the era lookup table before its base "
     "pointer", True),
    # -- string (3): NPD(1), SEGV(2); P1.2(1), P2.3(1), P3.1(1)
    ("todecimalstring", "string", "NPD", "P1.2", ("star",),
     "SELECT TODECIMALSTRING('110'::Decimal256(45), *);",
     "the digit-count argument slot is NULL when '*' is smuggled in "
     "(paper Listing 1 — the bug the CTO ordered fixed immediately)", True),
    ("substring", "string", "SEGV", "P2.3", ("foreign", ("$",), 0),
     "SELECT SUBSTRING('$[0]', 1, 2);",
     "a JSON-path-shaped subject selects the UTF-8 offset cache of a "
     "different column type", True),
    ("concat", "string", "SEGV", "P3.1", ("long", 2000, 0),
     "SELECT CONCAT(REPEAT('a', 3000), 'b');",
     "the rope builder caches a chunk pointer that reallocation "
     "invalidates for repetition-scale inputs", True),
]

#: conversion-target suffixes for the toX() family
_TO_SUFFIXES = [
    "Int8", "Int16", "Int32", "Int64", "Int128", "Int256",
    "UInt8", "UInt16", "UInt32", "UInt64", "UInt128", "UInt256",
]


class ClickHouseDialect(Dialect):
    name = "clickhouse"
    version = "23.6.2.18"
    stack_depth = 256

    def make_limits(self) -> TypeLimits:
        return TypeLimits(
            decimal_max_digits=76,   # Decimal256
            decimal_max_scale=76,
            json_max_depth=None,     # ClickHouse had no depth guard
            xml_max_depth=None,
        )

    def customize_registry(self, registry: FunctionRegistry) -> None:
        # camel-case conversion family
        for suffix in _TO_SUFFIXES:
            registry.alias("try_cast_int", f"to{suffix}")
            registry.alias("try_cast_int", f"to{suffix}OrZero")
            registry.alias("try_cast_int", f"to{suffix}OrNull")
        registry.alias("to_char", "toString")
        registry.alias("to_number", "toFloat32", "toFloat64",
                       "toFloat32OrZero", "toFloat64OrZero",
                       "toDecimal32", "toDecimal64", "toDecimal128",
                       "toDecimal256")
        registry.alias("to_date", "toDate", "toDate32", "toDateOrNull")
        registry.alias("timestamp", "toDateTime", "toDateTime64")
        registry.alias("year", "toYear")
        registry.alias("month", "toMonth")
        registry.alias("day", "toDayOfMonth")
        registry.alias("dayofweek", "toDayOfWeek")
        registry.alias("dayofyear", "toDayOfYear")
        registry.alias("hour", "toHour")
        registry.alias("minute", "toMinute")
        registry.alias("second", "toSecond")
        registry.alias("quarter", "toQuarter")
        registry.alias("week", "toWeek", "toISOWeek")
        registry.alias("unix_timestamp", "toUnixTimestamp")
        # array combinator family
        registry.alias("array_length", "arrayLength", "length_array")
        registry.alias("array_concat", "arrayConcat")
        registry.alias("array_contains", "arrayExists_eq")
        registry.alias("array_position", "arrayFirstIndex_eq")
        registry.alias("array_slice", "arraySlice")
        registry.alias("array_reverse", "arrayReverse")
        registry.alias("array_distinct", "arrayDistinct")
        registry.alias("array_sort", "arraySort")
        registry.alias("array_sum", "arraySum")
        registry.alias("array_min", "arrayMin")
        registry.alias("array_max", "arrayMax")
        registry.alias("array_flatten", "arrayFlatten")
        registry.alias("array_append", "arrayPushBack")
        registry.alias("array_prepend", "arrayPushFront")
        registry.alias("element_at", "arrayElement_at")
        registry.alias("range", "range_ch")
        # string family camel-case spellings
        for base_name, spellings in (
            ("length", ("lengthUTF8",)),
            ("lower", ("lowerUTF8",)),
            ("upper", ("upperUTF8",)),
            ("reverse", ("reverseUTF8",)),
            ("substring", ("substringUTF8",)),
            ("position", ("positionCaseInsensitive", "positionUTF8")),
            ("starts_with", ("startsWith",)),
            ("ends_with", ("endsWith",)),
            ("trim", ("trimBoth",)),
            ("ltrim", ("trimLeft",)),
            ("rtrim", ("trimRight",)),
            ("concat", ("concatAssumeInjective",)),
            ("repeat", ("repeat_ch",)),
            ("md5", ("MD5_ch", "halfMD5")),
            ("sha1", ("SHA1_ch",)),
            ("crc32", ("CRC32_ch", "CRC32IEEE", "CRC64")),
            ("hex", ("hex_ch",)),
            ("unhex", ("unhex_ch",)),
            ("to_base64", ("base64Encode",)),
            ("from_base64", ("base64Decode", "tryBase64Decode")),
            ("format", ("formatReadableQuantity",)),
            ("ascii", ("ascii_ch",)),
            ("chr", ("char_ch",)),
            ("json_valid", ("isValidJSON",)),
            ("json_extract", ("JSONExtractRaw", "JSONExtractString",
                              "JSONExtractInt", "JSONExtractFloat",
                              "JSONExtractBool", "JSONExtractArrayRaw")),
            ("json_length", ("JSONLength",)),
            ("json_type", ("JSONType",)),
            ("json_keys", ("JSONExtractKeys",)),
            ("map_keys", ("mapKeys",)),
            ("map_values", ("mapValues",)),
            ("map_contains", ("mapContains_ch",)),
            ("map_from_arrays", ("mapFromArrays",)),
            ("abs", ("abs_ch",)),
            ("sqrt", ("sqrt_ch",)),
            ("exp", ("exp_ch", "exp2", "exp10")),
            ("ln", ("log_ch",)),
            ("floor", ("floor_ch",)),
            ("ceil", ("ceil_ch",)),
            ("round", ("round_ch", "roundBankers", "roundToExp2")),
            ("sign", ("sign_ch",)),
            ("greatest", ("greatest_ch",)),
            ("least", ("least_ch",)),
            ("bit_count", ("bitCount",)),
            ("rand", ("rand_ch", "rand32", "rand64", "canonicalRand")),
            ("coalesce", ("coalesce_ch",)),
            ("ifnull", ("ifNull",)),
            ("nullif", ("nullIf",)),
            ("if", ("if_ch", "multiIf")),
            ("isnull", ("isNull_ch", "isNotNull_inv")),
            ("now", ("now_ch", "now64")),
            ("current_date", ("today_ch",)),
            ("version", ("version_ch",)),
            ("uuid", ("generateUUIDv4",)),
            ("typeof", ("toTypeName",)),
            ("inet_aton", ("IPv4StringToNum",)),
            ("inet_ntoa", ("IPv4NumToString",)),
            ("inet6_aton", ("IPv6StringToNum",)),
            ("inet6_ntoa", ("IPv6NumToString",)),
            ("is_ipv4", ("isIPv4String",)),
            ("is_ipv6", ("isIPv6String",)),
            ("st_astext", ("readWKT_inv",)),
            ("st_geomfromtext", ("readWKTPoint",)),
        ):
            registry.alias(base_name, *spellings)
        # ClickHouse spells toDecimalString camel-case and classifies it
        # with the string formatters; keep both spellings, family=string.
        original = registry.lookup("todecimalstring")
        registry.register(replace(original, family="string"))
        registry.register(replace(original, name="todecimalstring_alias",
                                  family="string"))
        # no XML or sequence support
        for missing in ("updatexml", "extractvalue", "xml_valid", "xpath",
                        "xmlconcat", "xmlelement", "nextval", "currval",
                        "setval", "lastval", "column_create", "column_json",
                        "column_get"):
            registry.remove(missing)

    def inject_bugs(self, registry: FunctionRegistry) -> None:
        self.bugs: List[InjectedBug] = register_bugs(self.name, registry, _BUG_ROWS)
