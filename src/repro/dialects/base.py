"""Dialect framework: what a simulated DBMS looks like to the harness.

A :class:`Dialect` owns a function registry (the shared reference library,
pruned/renamed to match the real system's inventory and patched with that
dialect's injected bugs), numeric limits, configuration defaults, a
documentation dump, and a regression test suite.  SOFT's collection step
consumes the last two, exactly as the paper scans real docs and test suites.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..engine.casting import TypeLimits
from ..engine.connection import Server
from ..engine.context import ExecutionContext
from ..engine.functions import FunctionRegistry, build_base_registry


@dataclass(frozen=True)
class DocEntry:
    """One function's documentation entry."""

    name: str
    signature: str
    family: str
    doc: str


#: default seed argument lists per family used to auto-generate the
#: regression test suite (what a real suite's "basic usage" tests look like)
_FAMILY_SEED_ARGS: Dict[str, List[str]] = {
    "string": ["'abc'", "'abc', 'b'", "'abc', 1, 2", "'abc', 2, 'x', 'y'"],
    "math": ["2", "2, 3", "2, 3, 4"],
    "aggregate": ["1", "1, ','"],
    "date": ["'2020-05-06'", "'2020-05-06', '%Y'", "2020, 100"],
    "json": ["'{\"a\": 1}'", "'[1, 2]', '$[0]'", "'k', 1"],
    "xml": ["'<a><b>x</b></a>'", "'<a><b>x</b></a>', '/a/b'",
            "'<a><c></c></a>', '/a/c', '<b></b>'"],
    "array": ["[1, 2, 3]", "[1, 2, 3], 2", "[1, 2, 3], 1, 2"],
    "map": ["MAP {1: 'a'}", "MAP {1: 'a'}, 1", "[1], ['a']"],
    "spatial": ["'POINT(1 2)'", "1, 2", "'POINT(1 2)', 'POINT(3 4)'"],
    "inet": ["'127.0.0.1'", "2130706433"],
    "condition": ["1", "1, 2", "1, 2, 3", "1, 2, 3, 4"],
    "casting": ["'123'", "123.45, 2"],
    "system": ["", "'version'", "0", "10, 1"],
    "sequence": ["'s'", "'s', 5", ""],
}


class Dialect:
    """Base class for the seven simulated DBMSs."""

    #: dialect identifier used throughout campaigns and reports
    name = "generic"
    #: mimicked real-system version (per the paper's §7.2 setup)
    version = "1.0"
    #: simulated thread-stack depth
    stack_depth = 256

    def __init__(self) -> None:
        self.limits = self.make_limits()
        self.config_defaults = self.make_config()
        self.registry = build_base_registry()
        self.customize_registry(self.registry)
        self.inject_bugs(self.registry)
        # logic flaws are declared eagerly (they are ground truth for the
        # logic-bug oracles) but installed only on demand — the default
        # crash-only pipeline keeps this dialect's behaviour untouched
        from .bugs import register_logic_flaws

        self.logic_flaws = register_logic_flaws(
            self.name, self.declare_logic_flaws()
        )
        self._logic_flaws_installed = False
        self._predicate_flaws_installed: set = set()

    # -- extension points ---------------------------------------------------
    def make_limits(self) -> TypeLimits:
        return TypeLimits()

    def make_config(self) -> Dict[str, str]:
        return {"version": f"{self.name}-{self.version}"}

    def customize_registry(self, registry: FunctionRegistry) -> None:
        """Rename/remove/add functions to match the real system."""

    def inject_bugs(self, registry: FunctionRegistry) -> None:
        """Patch flawed implementations (the dialect's injected bugs)."""

    def declare_logic_flaws(self) -> List[tuple]:
        """Rows for :func:`~repro.dialects.bugs.register_logic_flaws` —
        wrong-result / over-strict defects installed only when a logic-bug
        oracle asks for them."""
        return []

    def install_logic_flaws(self, predicate_kinds: Sequence[str] = ()) -> None:
        """Patch the declared logic flaws into this instance's registry.

        Idempotent, and scoped to this instance: other instances of the
        same dialect (differential-oracle peers, minimizer probes) stay
        clean unless they install explicitly.

        Function-level flaws (kinds ``wrong``/``strict``) always install.
        Predicate-level flaws (kinds ``tlp``/``norec``) are engine knobs,
        not function patches, and only the kinds listed in
        *predicate_kinds* are switched on — the knob lands in
        ``config_defaults`` so every server subsequently created from this
        instance (campaign runner, oracle arms, minimizer probes) carries
        the defect.
        """
        from .bugs import make_trigger
        from .flaws import PREDICATE_KINDS, PREDICATE_KNOBS, install_logic_flaw

        if not self._logic_flaws_installed:
            for flaw in self.logic_flaws:
                if flaw.kind in PREDICATE_KINDS:
                    continue
                install_logic_flaw(
                    self.registry,
                    flaw.function,
                    make_trigger(flaw.trigger_spec),
                    flaw.kind,
                )
            self._logic_flaws_installed = True
        for kind in predicate_kinds:
            if kind in self._predicate_flaws_installed:
                continue
            if any(flaw.kind == kind for flaw in self.logic_flaws):
                self.config_defaults[PREDICATE_KNOBS[kind]] = "1"
            self._predicate_flaws_installed.add(kind)

    def install_context_hooks(self, ctx: ExecutionContext) -> None:
        """Install cast overrides and other per-process hooks."""

    # -- harness API ---------------------------------------------------------
    def make_context(self) -> ExecutionContext:
        ctx = ExecutionContext(
            registry=self.registry,
            limits=self.limits,
            config=dict(self.config_defaults),
            stack_depth=self.stack_depth,
        )
        self.install_context_hooks(ctx)
        return ctx

    def create_server(self) -> Server:
        return Server(self)

    def documentation(self) -> List[DocEntry]:
        """The dialect's function reference — SOFT's first seed source."""
        return [
            DocEntry(d.name, d.signature, d.family, d.doc)
            for d in self.registry
        ]

    def function_names(self) -> List[str]:
        return self.registry.names()

    def test_suite(self) -> List[str]:
        """The dialect's regression suite — SOFT's second seed source.

        Combines auto-generated basic-usage queries (one per function, using
        each function's documented examples when available) with the
        dialect's hand-written scenario queries.
        """
        queries: List[str] = []
        for definition in self.registry:
            if definition.examples:
                for example in definition.examples:
                    queries.append(f"SELECT {example};")
                continue
            for arg_list in _FAMILY_SEED_ARGS.get(definition.family, ["1"]):
                count = 0 if not arg_list else arg_list.count(",") + 1
                if count < definition.min_args:
                    continue
                if definition.max_args is not None and count > definition.max_args:
                    continue
                queries.append(f"SELECT {definition.name.upper()}({arg_list});")
                break
            else:
                pass
        queries.extend(self.scenario_queries())
        return queries

    def scenario_queries(self) -> List[str]:
        """Hand-written queries with tables, mirroring richer suite tests."""
        return [
            "DROP TABLE IF EXISTS t0;",
            "CREATE TABLE t0 (c0 INT, c1 VARCHAR(32), c2 DECIMAL(10, 2));",
            "INSERT INTO t0 VALUES (1, 'alpha', 1.25), (2, 'beta', -7.50), (3, NULL, 0);",
            "SELECT c0, UPPER(c1) FROM t0 WHERE c2 > 0;",
            "SELECT COUNT(*), SUM(c2), AVG(c0) FROM t0 GROUP BY c0 > 1;",
            "SELECT CONCAT(c1, '-', c0) FROM t0 ORDER BY c0 DESC LIMIT 2;",
            "SELECT COALESCE(c1, 'missing'), LENGTH(COALESCE(c1, '')) FROM t0;",
            "SELECT t0.c0 FROM t0 WHERE c1 LIKE '%a%' AND c2 BETWEEN -10 AND 10;",
            "SELECT CAST(c0 AS VARCHAR(10)) FROM t0 UNION SELECT c1 FROM t0;",
        ]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Dialect {self.name} v{self.version} ({len(self.registry)} functions)>"
