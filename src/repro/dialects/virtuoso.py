"""Simulated Virtuoso.

Virtuoso accounts for a third of the paper's new bugs (45 of 132), heavily
concentrated in its large bespoke ``system`` function surface (15 bugs) and
string functions (10).  The CONTAINS('x', 'x', *) segmentation violation of
Listing 7 lives here.  All 45 were confirmed and fixed.
"""

from __future__ import annotations

from typing import List

from ..engine.casting import TypeLimits
from ..engine.context import ExecutionContext
from ..engine.errors import ValueError_
from ..engine.functions import FunctionRegistry
from ..engine.values import NULL, SQLBytes, SQLInteger, SQLString, SQLValue
from .base import Dialect
from .bugs import InjectedBug, register_bugs

_BUG_ROWS = [
    # -- aggregate (5): NPD(4), SEGV(1); P1.2(1), P3.2(1), P3.3(3)
    ("count", "aggregate", "NPD", "P1.2", ("empty", 0),
     "SELECT COUNT('');",
     "the empty string maps to the unset box tag whose counter slot is "
     "NULL", True),
    ("sum", "aggregate", "NPD", "P3.3", ("ngeom", 0),
     "SELECT SUM(POINT(1, 2));",
     "geometry boxes have no numeric promotion entry", True),
    ("avg", "aggregate", "NPD", "P3.3", ("ndate", 0),
     "SELECT AVG(DATE('2020-01-02'));",
     "datetime boxes reach the mean accumulator unconverted", True),
    ("group_concat", "aggregate", "NPD", "P3.3", ("njson", 0),
     "SELECT GROUP_CONCAT(JSON_ARRAY(1));",
     "document boxes have no string image in the concatenator", True),
    ("max", "aggregate", "SEGV", "P3.2", ("nbytes", 0),
     "SELECT MAX(UNHEX('FF'));",
     "blob comparison reads the box header as a length-prefixed string", True),
    # -- casting (2): AF(2); P1.2(2)
    ("to_number", "casting", "AF", "P1.2", ("empty", 0),
     "SELECT TO_NUMBER('');",
     "the numeric scanner asserts at least one input character", True),
    ("to_char", "casting", "AF", "P1.2", ("star",),
     "SELECT TO_CHAR(*);",
     "the '*' marker is asserted to be a bound column box", True),
    # -- condition (3): NPD(2), SEGV(1); P3.3(3)
    ("coalesce", "condition", "NPD", "P3.3", ("ngeom", 0),
     "SELECT COALESCE(POINT(1, 2));",
     "geometry boxes short-circuit the null test through an unset vtable", True),
    ("isnull", "condition", "NPD", "P3.3", ("njson", 0),
     "SELECT ISNULL(JSON_ARRAY(1));",
     "document boxes miss the is-null dispatch entry", True),
    ("if", "condition", "SEGV", "P3.3", ("nbytes", 1),
     "SELECT IF(1, UNHEX('FF'), 2);",
     "the then-branch blob is copied with the else-branch's length", True),
    # -- math (5): NPD(3), SEGV(1), DBZ(1); P1.2(2), P2.1(1), P2.2(1), P2.3(1)
    ("abs", "math", "NPD", "P1.2", ("wide", 30, 0),
     "SELECT ABS(999999999999999999999999999999);",
     "30-digit literals overflow into the bignum path whose context is "
     "NULL until first use", True),
    ("floor", "math", "NPD", "P1.2", ("wide", 25, 0),
     "SELECT FLOOR(9999999999999999999999999.5);",
     "same uninitialised bignum context on the rounding path", True),
    ("sqrt", "math", "NPD", "P2.1", ("castdec", 20, 0),
     "SELECT SQRT(CAST(2 AS DECIMAL(30, 25)));",
     "high-scale decimal casts carry no double image for the math "
     "library call", True),
    ("sign", "math", "SEGV", "P2.2", ("unionarr", 0),
     "SELECT SIGN((SELECT 1 UNION SELECT 2));",
     "a set value's first element is fetched through a vector descriptor "
     "belonging to the scalar path", True),
    ("mod", "math", "DBZ", "P2.3", ("zdiv", 1),
     "SELECT MOD(10, 0);",
     "the scale-normalisation divide runs before the zero check", True),
    # -- spatial (2): NPD(1), SEGV(1); P1.2(1), P2.1(1)
    ("st_x", "spatial", "NPD", "P1.2", ("empty", 0),
     "SELECT ST_X('');",
     "empty WKT yields a NULL shape that the accessor dereferences", True),
    ("st_geomfromtext", "spatial", "SEGV", "P2.1", ("castbin", 0),
     "SELECT ST_GEOMFROMTEXT(CAST('POINT(1 2)' AS BINARY));",
     "binary input takes the WKB branch and reads coordinates past the "
     "blob", True),
    # -- string (10): NPD(2), SEGV(6), SO(1), UAF(1);
    #    P1.2(5), P2.3(1), P3.1(3), P3.2(1)
    ("upper", "string", "SEGV", "P1.2", ("empty", 0),
     "SELECT UPPER('');",
     "the case-fold loop decrements the end pointer of an empty box "
     "below its start", True),
    ("lower", "string", "SEGV", "P1.2", ("star",),
     "SELECT LOWER(*);",
     "the '*' marker is dereferenced as a string box", True),
    ("ascii", "string", "NPD", "P1.2", ("empty", 0),
     "SELECT ASCII('');",
     "first-byte pointer of the empty box is NULL", True),
    ("space", "string", "SEGV", "P1.2", ("neg", 0),
     "SELECT SPACE(-99999);",
     "negative lengths wrap the allocation size and memset walks wild", True),
    ("chr", "string", "NPD", "P1.2", ("big", 1000000, 0),
     "SELECT CHR(99999999);",
     "out-of-plane code points index the encoding table past its end "
     "into a NULL page", True),
    ("strcmp", "string", "SEGV", "P2.3", ("foreign", ("$",), 1),
     "SELECT STRCMP('a', '$[0]');",
     "path-shaped operands divert into the vectored comparator with a "
     "scalar frame", True),
    ("concat", "string", "SO", "P3.1", ("long", 1200, 0),
     "SELECT CONCAT(REPEAT('x', 1500));",
     "the chunked copy recurses per 1KB chunk without a depth guard", True),
    ("replace", "string", "SEGV", "P3.1", ("long", 800, 1),
     "SELECT REPLACE('abc', REPEAT('a', 900), 'b');",
     "needle length is stored in a 16-bit field for Boyer-Moore tables", True),
    ("instr", "string", "SEGV", "P3.1", ("long", 700, 0),
     "SELECT INSTR(REPEAT('a', 800), 'a');",
     "the skip table is built on the stack sized for short subjects", True),
    ("trim", "string", "UAF", "P3.2", ("nbytes", 0),
     "SELECT TRIM(UNHEX('FF'));",
     "the blob temporary is freed after charset probing but trimmed "
     "afterwards", True),
    # -- xml (3): NPD(3); P1.2(3)
    ("extractvalue", "xml", "NPD", "P1.2", ("empty", 0),
     "SELECT EXTRACTVALUE('', '/a');",
     "empty documents have no root entity; the root pointer is NULL", True),
    ("xml_valid", "xml", "NPD", "P1.2", ("empty", 0),
     "SELECT XML_VALID('');",
     "the validity scan dereferences the first-tag pointer of an empty "
     "document", True),
    ("xmlconcat", "xml", "NPD", "P1.2", ("null", 0),
     "SELECT XMLCONCAT(NULL);",
     "NULL fragments contribute a NULL tree to the concatenation list", True),
    # -- system (15): NPD(8), SEGV(6), HBOF(1); P1.2(11), P3.1(3), P3.3(1)
    ("contains", "system", "SEGV", "P1.2", ("star",),
     "SELECT CONTAINS('x', 'x', *);",
     "the free-text option list is walked without checking for the '*' "
     "marker (paper Listing 7)", True),
    ("registry_get", "system", "NPD", "P1.2", ("empty", 0),
     "SELECT REGISTRY_GET('');",
     "empty registry keys hash to the unused bucket whose chain head is "
     "NULL", True),
    ("registry_set", "system", "NPD", "P1.2", ("null", 1),
     "SELECT REGISTRY_SET('k', NULL);",
     "NULL registry values are stored as NULL box pointers and "
     "re-serialised on write-back", True),
    ("connection_get", "system", "NPD", "P1.2", ("empty", 0),
     "SELECT CONNECTION_GET('');",
     "the client-state map has no entry object for the empty key", True),
    ("log_enable", "system", "SEGV", "P1.2", ("neg", 0),
     "SELECT LOG_ENABLE(-99999);",
     "negative log levels index the handler table before its base", True),
    ("trx_status", "system", "NPD", "P1.2", ("big", 99999, 0),
     "SELECT TRX_STATUS(99999);",
     "transaction slots above the table size return NULL and are "
     "dereferenced", True),
    ("blob_to_string", "system", "NPD", "P1.2", ("null", 0),
     "SELECT BLOB_TO_STRING(NULL);",
     "the blob handle of a NULL box is NULL", True),
    ("string_to_blob", "system", "SEGV", "P1.2", ("empty", 0),
     "SELECT STRING_TO_BLOB('');",
     "zero-length payloads skip page allocation but the directory entry "
     "is still written", True),
    ("iri_to_id", "system", "NPD", "P1.2", ("empty", 0),
     "SELECT IRI_TO_ID('');",
     "the IRI dictionary probe for '' returns the NULL sentinel", True),
    ("id_to_iri", "system", "SEGV", "P1.2", ("neg", 0),
     "SELECT ID_TO_IRI(-99999);",
     "negative IDs are used as dictionary page offsets", True),
    ("exec", "system", "SEGV", "P1.2", ("empty", 0),
     "SELECT EXEC('');",
     "the statement-text pointer of an empty string is advanced past the "
     "box before the emptiness check", True),
    ("crc32", "system", "NPD", "P3.1", ("long", 2000, 0),
     "SELECT CRC32(REPEAT('a', 2500));",
     "inputs above the streaming threshold use the chunk iterator whose "
     "first chunk is NULL", True),
    ("sleep", "system", "SEGV", "P3.1", ("long", 100, 0),
     "SELECT SLEEP(REPEAT('1', 200));",
     "a repetition-generated duration string overflows the atoi scratch "
     "buffer offset", True),
    ("benchmark", "system", "HBOF", "P3.1", ("long", 300, 1),
     "SELECT BENCHMARK(10, REPEAT('a', 400));",
     "the expression preview is copied into a 256-byte report buffer", True),
    ("checkpoint_interval", "system", "NPD", "P3.3", ("ndate", 0),
     "SELECT CHECKPOINT_INTERVAL(DATE('2020-01-02'));",
     "datetime boxes bypass integer coercion; the coerced-value pointer "
     "stays NULL", True),
]


class VirtuosoDialect(Dialect):
    name = "virtuoso"
    version = "7.2.12"
    stack_depth = 256

    def make_limits(self) -> TypeLimits:
        return TypeLimits(
            decimal_max_digits=40,
            decimal_max_scale=15,
            json_max_depth=None,
            xml_max_depth=None,   # Virtuoso's XML stack had no guard
        )

    def customize_registry(self, registry: FunctionRegistry) -> None:
        define = registry.define

        @define("contains", "system", min_args=2,
                signature="CONTAINS(column, pattern[, options...])",
                doc="Free-text containment test.",
                examples=["CONTAINS('x', 'x')"])
        def fn_contains(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
            from ..engine.functions.helpers import need_string, out_int, reject_star

            reject_star(args, "contains")
            if args[0].is_null or args[1].is_null:
                return NULL
            subject = need_string(args[0], "contains")
            pattern = need_string(args[1], "contains")
            return out_int(1 if pattern in subject else 0)

        def _registry_key(name: str) -> str:
            return f"vregistry::{name}"

        @define("registry_get", "system", min_args=1, max_args=1, pure=False,
                signature="REGISTRY_GET(name)", doc="Read a registry entry.",
                examples=["REGISTRY_GET('k')"])
        def fn_registry_get(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
            from ..engine.functions.helpers import need_string, out_string

            if args[0].is_null:
                return NULL
            name = need_string(args[0], "registry_get")
            return out_string(ctx.get_config(_registry_key(name)), "registry_get")

        @define("registry_set", "system", min_args=2, max_args=2, pure=False,
                signature="REGISTRY_SET(name, value)", doc="Write a registry entry.",
                examples=["REGISTRY_SET('k', 'v')"])
        def fn_registry_set(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
            from ..engine.functions.helpers import need_string, out_int

            if args[0].is_null:
                return NULL
            name = need_string(args[0], "registry_set")
            ctx.set_config(_registry_key(name), args[1].render())
            return out_int(1)

        @define("connection_get", "system", min_args=1, max_args=1, pure=False,
                signature="CONNECTION_GET(name)",
                doc="Read a client-connection attribute.",
                examples=["CONNECTION_GET('client')"])
        def fn_connection_get(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
            from ..engine.functions.helpers import need_string, out_string

            if args[0].is_null:
                return NULL
            name = need_string(args[0], "connection_get")
            return out_string(ctx.get_config(f"conn::{name}"), "connection_get")

        @define("log_enable", "system", min_args=1, max_args=1, pure=False,
                signature="LOG_ENABLE(level)", doc="Set transaction logging mode.",
                examples=["LOG_ENABLE(1)"])
        def fn_log_enable(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
            from ..engine.functions.helpers import need_int, out_int

            if args[0].is_null:
                return NULL
            level = need_int(args[0], "log_enable")
            if level not in (0, 1, 2, 3):
                raise ValueError_(f"LOG_ENABLE level {level} out of range")
            previous = int(ctx.get_config("log_level", "1"))
            ctx.set_config("log_level", str(level))
            return out_int(previous)

        @define("trx_status", "system", min_args=1, max_args=1, pure=False,
                signature="TRX_STATUS(slot)", doc="Status of a transaction slot.",
                examples=["TRX_STATUS(1)"])
        def fn_trx_status(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
            from ..engine.functions.helpers import need_int, out_string

            if args[0].is_null:
                return NULL
            slot = need_int(args[0], "trx_status")
            if not 0 <= slot < 1024:
                raise ValueError_(f"TRX_STATUS slot {slot} out of range")
            return out_string("IDLE", "trx_status")

        @define("blob_to_string", "system", min_args=1, max_args=1,
                signature="BLOB_TO_STRING(blob)", doc="Decode a blob as text.",
                examples=["BLOB_TO_STRING(STRING_TO_BLOB('ab'))"])
        def fn_blob_to_string(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
            from ..engine.functions.helpers import out_string

            if args[0].is_null:
                return NULL
            if isinstance(args[0], SQLBytes):
                return out_string(
                    args[0].value.decode("utf-8", "replace"), "blob_to_string"
                )
            return out_string(args[0].render(), "blob_to_string")

        @define("string_to_blob", "system", min_args=1, max_args=1,
                signature="STRING_TO_BLOB(str)", doc="Encode text as a blob.",
                examples=["STRING_TO_BLOB('ab')"])
        def fn_string_to_blob(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
            from ..engine.functions.helpers import need_string

            if args[0].is_null:
                return NULL
            return SQLBytes(need_string(args[0], "string_to_blob").encode("utf-8"))

        @define("iri_to_id", "system", min_args=1, max_args=1, pure=False,
                signature="IRI_TO_ID(iri)", doc="Intern an IRI, returning its id.",
                examples=["IRI_TO_ID('http://example.org/a')"])
        def fn_iri_to_id(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
            from ..engine.functions.helpers import need_string, out_int

            if args[0].is_null:
                return NULL
            iri = need_string(args[0], "iri_to_id")
            key = f"iri::{iri}"
            existing = ctx.get_config(key)
            if existing:
                return out_int(int(existing))
            next_id = int(ctx.get_config("iri_next", "1"))
            ctx.set_config(key, str(next_id))
            ctx.set_config(f"irirev::{next_id}", iri)
            ctx.set_config("iri_next", str(next_id + 1))
            return out_int(next_id)

        @define("id_to_iri", "system", min_args=1, max_args=1, pure=False,
                signature="ID_TO_IRI(id)", doc="Resolve an interned IRI id.",
                examples=["ID_TO_IRI(1)"])
        def fn_id_to_iri(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
            from ..engine.functions.helpers import need_int, out_string

            if args[0].is_null:
                return NULL
            iri_id = need_int(args[0], "id_to_iri")
            iri = ctx.get_config(f"irirev::{iri_id}")
            if not iri:
                return NULL
            return out_string(iri, "id_to_iri")

        @define("exec", "system", min_args=1, max_args=1, pure=False,
                signature="EXEC(sql)",
                doc="Execute dynamic SQL (modelled as a syntax check).",
                examples=["EXEC('SELECT 1')"])
        def fn_exec(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
            from ..sqlast import ParseError, parse_statements
            from ..engine.functions.helpers import need_string, out_int

            if args[0].is_null:
                return NULL
            text = need_string(args[0], "exec")
            try:
                parse_statements(text)
            except ParseError as exc:
                raise ValueError_(f"EXEC: {exc}")
            return out_int(0)

        @define("checkpoint_interval", "system", min_args=1, max_args=1,
                pure=False, signature="CHECKPOINT_INTERVAL(minutes)",
                doc="Set the checkpoint interval, returning the previous one.",
                examples=["CHECKPOINT_INTERVAL(60)"])
        def fn_checkpoint_interval(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
            from ..engine.functions.helpers import need_int, out_int

            if args[0].is_null:
                return NULL
            minutes = need_int(args[0], "checkpoint_interval")
            previous = int(ctx.get_config("checkpoint_interval", "60"))
            ctx.set_config("checkpoint_interval", str(minutes))
            return out_int(previous)

        # Virtuoso keeps a broad SQL surface; drop only MySQL dynamic columns
        for missing in ("column_create", "column_json", "column_get",
                        "format_bytes", "name_const", "get_lock",
                        "release_lock", "is_used_lock", "todecimalstring"):
            registry.remove(missing)

    def inject_bugs(self, registry: FunctionRegistry) -> None:
        self.bugs: List[InjectedBug] = register_bugs(self.name, registry, _BUG_ROWS)
