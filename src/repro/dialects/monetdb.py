"""Simulated MonetDB.

MonetDB is the smallest inventory of the seven (Table 5: SOFT triggers 171
functions; SQLsmith only 29).  Nineteen injected bugs, all confirmed and
fixed — MonetDB's developers turned fixes around quickly during the
disclosure window.
"""

from __future__ import annotations

from typing import List

from ..engine.casting import TypeLimits
from ..engine.functions import FunctionRegistry
from .base import Dialect
from .bugs import InjectedBug, register_bugs

_BUG_ROWS = [
    # -- aggregate (7): NPD(6), SEGV(1); P1.2(1), P2.1(1), P2.2(2), P2.3(2), P3.3(1)
    ("sum", "aggregate", "NPD", "P2.2", ("unionarr", 0),
     "SELECT SUM((SELECT 1 UNION SELECT 2));",
     "set-valued input reaches the BAT accumulator with a NULL tail "
     "pointer", True),
    ("avg", "aggregate", "NPD", "P2.2", ("unionarr", 0),
     "SELECT AVG((SELECT 1 UNION SELECT 2.5));",
     "mixed-type UNION coercion leaves the average state uninitialised", True),
    ("count", "aggregate", "NPD", "P2.1", ("castbin", 0),
     "SELECT COUNT(CAST('a' AS BINARY));",
     "blob candidates have no count-column image; NULL image dereferenced", True),
    ("min", "aggregate", "NPD", "P2.3", ("foreign", ("$",), 0),
     "SELECT MIN('$[0]');",
     "path-shaped strings select the dictionary-encoded comparator that "
     "this column never built", True),
    ("max", "aggregate", "NPD", "P2.3", ("foreign", ("/",), 0),
     "SELECT MAX('/a/b');",
     "same dictionary-comparator flaw as MIN, on the ascending scan", True),
    ("median", "aggregate", "NPD", "P3.3", ("ndate", 0),
     "SELECT MEDIAN(DATE('2020-01-02'));",
     "temporal values bypass the numeric partitioner and its NULL "
     "fallback is dereferenced", True),
    ("stddev", "aggregate", "SEGV", "P1.2", ("wide", 16, 0),
     "SELECT STDDEV(9999999999999999);",
     "the hugeint moment buffer is indexed by decimal digit count", True),
    # -- condition (3): NPD(2), SEGV(1); P2.2(1), P3.2(1), P3.3(1)
    ("coalesce", "condition", "NPD", "P2.2", ("unionarr", 0),
     "SELECT COALESCE((SELECT 1 UNION SELECT 2), 0);",
     "candidate-list walk over a set value dereferences a NULL candidate "
     "pointer", True),
    ("ifnull", "condition", "NPD", "P3.3", ("ngeom", 0),
     "SELECT IFNULL(POINT(1, 2), 0);",
     "geometry values have no nil-representation entry in the atom table", True),
    ("nullif", "condition", "SEGV", "P3.2", ("nbytes", 0),
     "SELECT NULLIF(UNHEX('FF'), 1);",
     "blob/int comparison reinterprets the blob header as a heap offset", True),
    # -- math (1): NPD(1); P2.2
    ("round", "math", "NPD", "P2.2", ("unionarr", 0),
     "SELECT ROUND((SELECT 1 UNION SELECT 2), 1);",
     "scale lookup for a set value returns the NULL scale descriptor", True),
    # -- string (6): NPD(5), HBOF(1); P1.2(1), P1.3(1), P1.4(1), P2.3(3)
    ("ltrim", "string", "NPD", "P1.2", ("empty", 0),
     "SELECT LTRIM('');",
     "the first-character probe of an empty varchar is a NULL byte "
     "pointer", True),
    ("locate", "string", "NPD", "P1.3", ("digitrun", 5, 1),
     "SELECT LOCATE('a', 'x99999x');",
     "digit runs trip the numeric-literal fast path that assumes a "
     "pre-parsed integer item", True),
    ("split_part", "string", "NPD", "P1.4", ("double", ",", 4, 0),
     "SELECT SPLIT_PART('a,,,,b', ',', 2);",
     "consecutive separators produce empty fields whose slice descriptor "
     "is NULL", True),
    ("replace", "string", "NPD", "P2.3", ("foreign", ("$",), 1),
     "SELECT REPLACE('abc', '$[0]', 'x');",
     "pattern precompilation for path-shaped needles is skipped; the "
     "compiled-pattern pointer stays NULL", True),
    ("instr", "string", "NPD", "P2.3", ("foreign", ("/",), 1),
     "SELECT INSTR('abc', '/a');",
     "same skipped precompilation on the position scan", True),
    ("concat_ws", "string", "HBOF", "P2.3", ("foreign", ("%",), 0),
     "SELECT CONCAT_WS('%Y', 'a', 'b');",
     "format-shaped separators are expanded in place into a buffer sized "
     "for the literal separator", True),
    # -- system (2): SEGV(1), DBZ(1); P1.2(1), P2.3(1)
    ("sleep", "system", "SEGV", "P1.2", ("neg", 0),
     "SELECT SLEEP(-99999);",
     "a negative duration underflows the timer-wheel slot index", True),
    ("benchmark", "system", "DBZ", "P2.3", ("zdiv", 0),
     "SELECT BENCHMARK(0, 1);",
     "per-iteration cost is computed as total/iterations with no zero "
     "check", True),
]


class MonetDBDialect(Dialect):
    name = "monetdb"
    version = "11.47.11"
    stack_depth = 256

    def make_limits(self) -> TypeLimits:
        return TypeLimits(
            decimal_max_digits=38,   # hugeint-backed decimals
            decimal_max_scale=38,
            json_max_depth=64,
            xml_max_depth=64,
        )

    def customize_registry(self, registry: FunctionRegistry) -> None:
        # a deliberately small analytical-core inventory
        for missing in (
            "updatexml", "extractvalue", "xml_valid", "xmlconcat",
            "xmlelement", "column_create", "column_json", "column_get",
            "elt", "field", "makedate", "maketime",
            "format_bytes", "name_const", "get_lock", "release_lock",
            "is_used_lock", "found_rows", "last_insert_id",
            "json_set", "json_remove", "json_merge", "json_merge_preserve",
            "json_pretty", "json_quote", "json_arrayagg", "json_objectagg",
            "json_object_agg", "json_contains", "json_insert",
            "map_keys", "map_values", "map_size", "map_contains",
            "mapcontains", "map_from_arrays", "map_entries", "map_concat",
            "array_flatten", "flatten", "array_distinct", "array_sort",
            "array_min", "array_max", "array_sum", "array_reverse",
            "array_prepend", "array_append", "array_position", "indexof",
            "list_position", "list_contains", "list_extract", "list_slice",
            "arrayelement", "array_extract", "grouparray",
            "inet_aton", "inet_ntoa", "inet6_aton", "inet6_ntoa",
            "is_ipv4", "is_ipv6", "soundex", "to_base64", "from_base64",
            "todecimalstring", "from_unixtime", "unix_timestamp",
            "date_format", "dayname", "monthname",
            "sha1", "sha2", "uuid", "bit_and",
            "bit_or", "bit_xor", "regexp_replace", "regexp_matches",
            "translate", "initcap", "quote", "crc32",
            "boundary", "st_boundary", "st_centroid", "st_equals",
            "st_distance", "st_geometrytype", "st_npoints", "st_isclosed",
        ):
            registry.remove(missing)
        registry.alias("char_length", "length_mdb")
        registry.alias("current_setting", "sys_getenv")

    def inject_bugs(self, registry: FunctionRegistry) -> None:
        self.bugs: List[InjectedBug] = register_bugs(self.name, registry, _BUG_ROWS)
