"""Injected-bug registry: the ground truth behind Table 4.

Every injected bug is declared as an :class:`InjectedBug` row: which dialect
and function it lives in, its crash class, the boundary-value-generation
pattern expected to find it (Table 4's "Patterns" column), its disclosure
status (confirmed/fixed), and a proof-of-concept statement.  The dialect
modules install the corresponding flawed implementation via
:mod:`repro.dialects.flaws`.

The registry doubles as the oracle's attribution table: a crash is matched
to a bug by ``(dbms, function, crash_class)``, which is unique by
construction (asserted in the test suite).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..engine.functions.registry import FunctionRegistry
from . import flaws


@dataclass(frozen=True)
class InjectedBug:
    """One injected bug (one row's worth of Table 4)."""

    bug_id: str          # e.g. "MYSQL-AGG-001"
    dbms: str            # dialect name
    function: str        # flawed built-in function (lower-case)
    family: str          # function type (Table 4 column 2)
    crash: str           # NPD | SEGV | UAF | HBOF | GBOF | AF | SO | DBZ
    pattern: str         # P1.1..P3.3 — pattern expected to trigger it
    fixed: bool          # Table 4 status column
    poc: str             # proof-of-concept SQL statement
    description: str     # one-line root-cause description
    trigger_spec: Tuple = ()  # flaw-kind spec used to build the trigger

    @property
    def key(self) -> Tuple[str, str, str]:
        return (self.dbms, self.function, self.crash)

    @property
    def pattern_family(self) -> str:
        """"P1", "P2", or "P3" — the §7.3 roll-up granularity."""
        return self.pattern.split(".")[0]


# ---------------------------------------------------------------------------
# trigger-spec mini-language → flaw trigger
# ---------------------------------------------------------------------------
def make_trigger(spec: Tuple) -> flaws.Trigger:
    """Build a trigger predicate from a compact spec tuple.

    Specs: ("empty", i) ("null", i) ("star",) ("wide", digits, i)
    ("digitrun", run, i) ("double", char, n, i) ("castdec", frac, i)
    ("castuns", i) ("castbin", i) ("unionarr", i) ("foreign", prefixes, i)
    ("long", n, i) ("deep", chars, n, i) ("nbytes", i) ("ngeom", i)
    ("njson", i) ("narr", i) ("ndate", i) ("row",) ("zdiv", i) ("neg", i)
    """
    kind = spec[0]
    rest = spec[1:]
    if kind == "empty":
        return flaws.trig_empty_string(*rest)
    if kind == "null":
        return flaws.trig_null_arg(*rest)
    if kind == "star":
        return flaws.trig_star_arg()
    if kind == "wide":
        return flaws.trig_wide_number(*rest)
    if kind == "digitrun":
        return flaws.trig_digit_run(*rest)
    if kind == "double":
        return flaws.trig_char_doubling(*rest)
    if kind == "castdec":
        return flaws.trig_cast_decimal(*rest)
    if kind == "castuns":
        return flaws.trig_cast_unsigned(*rest)
    if kind == "castbin":
        return flaws.trig_cast_binary(*rest)
    if kind == "unionarr":
        return flaws.trig_union_array(*rest)
    if kind == "foreign":
        return flaws.trig_foreign_text(*rest)
    if kind == "long":
        return flaws.trig_long_text(*rest)
    if kind == "deep":
        return flaws.trig_deep_nesting(*rest)
    if kind == "nbytes":
        return flaws.trig_nested_bytes(*rest)
    if kind == "ngeom":
        return flaws.trig_nested_geom(*rest)
    if kind == "njson":
        return flaws.trig_nested_json(*rest)
    if kind == "narr":
        return flaws.trig_nested_array(*rest)
    if kind == "ndate":
        return flaws.trig_nested_date(*rest)
    if kind == "row":
        return flaws.trig_row_arg(*rest)
    if kind == "zdiv":
        return flaws.trig_zero_div(*rest)
    if kind == "neg":
        return flaws.trig_negative(*rest)
    if kind == "big":
        return flaws.trig_big_value(*rest)
    if kind == "arrarr":
        return flaws.trig_array_of_arrays(*rest)
    raise ValueError(f"unknown trigger spec {spec!r}")


# ---------------------------------------------------------------------------
# global registry
# ---------------------------------------------------------------------------
_ALL_BUGS: List[InjectedBug] = []


def register_bugs(
    dbms: str,
    registry: FunctionRegistry,
    rows: Sequence[Tuple],
) -> List[InjectedBug]:
    """Declare and install a dialect's bugs.

    Each row: (function, family, crash, pattern, trigger_spec, poc,
    description[, fixed]) — ``fixed`` defaults to True (the paper's default
    outcome; MySQL/MariaDB rows override it per Table 4's status column).
    """
    installed: List[InjectedBug] = []
    counters: Dict[str, int] = {}
    for row in rows:
        function, family, crash, pattern, trigger_spec, poc, description = row[:7]
        fixed = row[7] if len(row) > 7 else True
        counters[family] = counters.get(family, 0) + 1
        bug = InjectedBug(
            bug_id=f"{dbms.upper()}-{family.upper()[:4]}-{counters[family]:03d}",
            dbms=dbms,
            function=function.lower(),
            family=family,
            crash=crash,
            pattern=pattern,
            fixed=fixed,
            poc=poc,
            description=description,
            trigger_spec=tuple(trigger_spec),
        )
        flaws.install_flaw(registry, bug.function, make_trigger(bug.trigger_spec), crash)
        installed.append(bug)
        _register_global(bug)
    return installed


def _register_global(bug: InjectedBug) -> None:
    # dialects may be instantiated repeatedly (fresh servers); keep one
    # registry entry per bug identity
    for existing in _ALL_BUGS:
        if existing.bug_id == bug.bug_id:
            return
    _ALL_BUGS.append(bug)


def all_bugs() -> List[InjectedBug]:
    """Every injected bug across all dialects (imports the dialects)."""
    from . import all_dialect_classes

    for cls in all_dialect_classes():
        cls()  # instantiation registers the bugs
    return list(_ALL_BUGS)


def bugs_for(dbms: str) -> List[InjectedBug]:
    return [b for b in all_bugs() if b.dbms == dbms]


def find_bug(dbms: str, function: str, crash: str) -> Optional[InjectedBug]:
    for bug in all_bugs():
        if bug.key == (dbms, function.lower(), crash):
            return bug
    return None


# ---------------------------------------------------------------------------
# logic flaws: the wrong-result / over-strict ground truth
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class LogicFlaw:
    """One seeded non-crashing defect (the logic-bug oracles' ground truth).

    Unlike :class:`InjectedBug`, a logic flaw is *declared* at dialect
    construction but only *installed* on demand
    (:meth:`~repro.dialects.base.Dialect.install_logic_flaws`): the default
    crash-only pipeline must keep every campaign byte-identical to the
    pre-pipeline code, which a permanently miscomputing function would not.
    """

    flaw_id: str         # e.g. "MYSQL-LOGIC-001"
    dbms: str            # dialect name
    function: str        # flawed built-in function (lower-case)
    family: str          # function type
    kind: str            # "wrong" (miscomputes) | "strict" (spurious error)
    pattern: str         # P1.1..P3.3 — pattern expected to trigger it
    poc: str             # proof-of-concept SQL statement
    description: str     # one-line root-cause description
    trigger_spec: Tuple = ()

    #: logic flaws have no upstream fix cycle in the simulation
    fixed: bool = False

    @property
    def key(self) -> Tuple[str, str, str]:
        return (self.dbms, self.function, self.kind)


_ALL_LOGIC_FLAWS: List[LogicFlaw] = []


def register_logic_flaws(dbms: str, rows: Sequence[Tuple]) -> List[LogicFlaw]:
    """Declare a dialect's logic flaws (without installing them).

    Each row: (function, family, kind, pattern, trigger_spec, poc,
    description).  Installation happens lazily via
    :meth:`Dialect.install_logic_flaws` when a logic-bug oracle is enabled.
    """
    declared: List[LogicFlaw] = []
    for index, row in enumerate(rows, start=1):
        function, family, kind, pattern, trigger_spec, poc, description = row
        if kind not in flaws.LOGIC_KINDS + flaws.PREDICATE_KINDS:
            raise ValueError(f"unknown logic-flaw kind {kind!r}")
        flaw = LogicFlaw(
            flaw_id=f"{dbms.upper()}-LOGIC-{index:03d}",
            dbms=dbms,
            function=function.lower(),
            family=family,
            kind=kind,
            pattern=pattern,
            poc=poc,
            description=description,
            trigger_spec=tuple(trigger_spec),
        )
        declared.append(flaw)
        if not any(f.flaw_id == flaw.flaw_id for f in _ALL_LOGIC_FLAWS):
            _ALL_LOGIC_FLAWS.append(flaw)
    return declared


def all_logic_flaws() -> List[LogicFlaw]:
    """Every declared logic flaw across all dialects."""
    from . import all_dialect_classes

    for cls in all_dialect_classes():
        cls()  # instantiation declares the flaws
    return list(_ALL_LOGIC_FLAWS)


def logic_flaws_for(dbms: str) -> List[LogicFlaw]:
    return [f for f in all_logic_flaws() if f.dbms == dbms]


def find_logic_flaw(
    dbms: str, function: str, kind: Optional[str] = None
) -> Optional[LogicFlaw]:
    for flaw in all_logic_flaws():
        if flaw.dbms != dbms or flaw.function != function.lower():
            continue
        if kind is None or flaw.kind == kind:
            return flaw
    return None


def find_predicate_flaw(dbms: str, kind: str) -> Optional[LogicFlaw]:
    """The dialect's seeded predicate-level flaw of *kind* ("tlp"/"norec").

    Predicate flaws are engine-wide knobs, not per-function patches, so a
    metamorphic finding attributes by (dialect, kind) alone — whatever
    statement exposed the broken law, the root cause is the same defect.
    """
    for flaw in all_logic_flaws():
        if flaw.dbms == dbms and flaw.kind == kind:
            return flaw
    return None


def table4_totals() -> Dict[str, int]:
    """Aggregates used by the Table 4 benchmark and the tests."""
    bugs = all_bugs()
    out: Dict[str, int] = {"total": len(bugs), "fixed": sum(b.fixed for b in bugs)}
    for bug in bugs:
        out[f"dbms:{bug.dbms}"] = out.get(f"dbms:{bug.dbms}", 0) + 1
        out[f"crash:{bug.crash}"] = out.get(f"crash:{bug.crash}", 0) + 1
        out[f"patfam:{bug.pattern_family}"] = out.get(f"patfam:{bug.pattern_family}", 0) + 1
    return out
