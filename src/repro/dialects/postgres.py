"""Simulated PostgreSQL.

PostgreSQL's strict type system and rigorous argument checks are the reason
the paper found only one new bug there (§7.3).  We model that strictness:
this dialect keeps every reference check, enables strict string/numeric
limits, and carries a single injected bug — the JSONB_OBJECT_AGG heap
overflow (CVE-2023-5868 analogue, found via Pattern 2.3).
"""

from __future__ import annotations

from dataclasses import replace
from typing import List

from ..engine.casting import TypeLimits
from ..engine.functions import FunctionRegistry
from .base import Dialect
from .bugs import InjectedBug, register_bugs

_BUG_ROWS = [
    (
        "jsonb_object_agg", "aggregate", "HBOF", "P2.3",
        ("foreign", ("$",), 1),
        "SELECT JSONB_OBJECT_AGG('a', '$[0]');",
        "unknown-type aggregate arguments mis-identified as NUL-terminated "
        "strings; a JSON-path-shaped value makes the length calculation "
        "read past the allocation (CVE-2023-5868 analogue)",
        True,
    ),
]


class PostgreSQLDialect(Dialect):
    name = "postgresql"
    version = "16.1"
    stack_depth = 384

    def make_limits(self) -> TypeLimits:
        return TypeLimits(
            decimal_max_digits=131072,  # PostgreSQL numeric is effectively unbounded
            decimal_max_scale=16383,
            json_max_depth=64,          # the CVE-2015-5289 fix
            xml_max_depth=64,
        )

    def customize_registry(self, registry: FunctionRegistry) -> None:
        # PostgreSQL spellings and additions
        registry.alias("json_extract", "jsonb_extract_path")
        registry.alias("json_array", "jsonb_build_array", "json_build_array")
        registry.alias("json_object", "jsonb_build_object", "json_build_object")
        registry.alias("json_pretty", "jsonb_pretty")
        registry.alias("array_length", "array_upper")
        registry.alias("concat_ws", "format_with_sep")
        registry.alias("length", "pg_column_size")
        registry.alias("current_setting", "pg_settings_get")
        registry.alias("version", "pg_version")
        registry.alias("database", "pg_database")
        registry.alias("now", "transaction_timestamp", "statement_timestamp",
                       "clock_timestamp")
        registry.alias("chr", "pg_chr")
        registry.alias("md5", "pg_md5")
        registry.alias("substring", "pg_substring")
        registry.alias("array_concat", "array_cat_pg")
        registry.alias("array_append", "array_append_pg")
        registry.alias("upper", "pg_upper")
        registry.alias("lower", "pg_lower")
        registry.alias("regexp_matches", "regexp_like")
        registry.alias("split_part", "string_to_array_part")
        registry.alias("to_char", "quote_literal_text")
        registry.alias("translate", "pg_translate")
        registry.alias("ascii", "pg_ascii")
        registry.alias("trim", "btrim")
        registry.alias("extract", "date_part")
        registry.alias("coalesce", "pg_coalesce")
        registry.alias("json_arrayagg", "json_agg", "jsonb_agg")
        # MySQL-only surface does not exist in PostgreSQL
        for missing in ("updatexml", "extractvalue", "column_create",
                        "column_json", "column_get", "elt", "field",
                        "from_base64", "to_base64", "makedate", "maketime",
                        "benchmark", "get_lock" , "format_bytes",
                        "inet_aton", "inet_ntoa", "inet6_aton", "inet6_ntoa"):
            registry.remove(missing)

    def inject_bugs(self, registry: FunctionRegistry) -> None:
        self.bugs: List[InjectedBug] = register_bugs(self.name, registry, _BUG_ROWS)
