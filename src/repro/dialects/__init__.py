"""The seven simulated DBMS dialects and their injected-bug registry."""

from typing import Dict, List, Type

from .base import Dialect, DocEntry
from .bugs import InjectedBug, all_bugs, bugs_for, find_bug, table4_totals


def all_dialect_classes() -> List[Type[Dialect]]:
    """The seven dialects, in the paper's Table 4 order."""
    from .clickhouse import ClickHouseDialect
    from .duckdb import DuckDBDialect
    from .mariadb import MariaDBDialect
    from .monetdb import MonetDBDialect
    from .mysql import MySQLDialect
    from .postgres import PostgreSQLDialect
    from .virtuoso import VirtuosoDialect

    return [
        PostgreSQLDialect,
        MySQLDialect,
        MariaDBDialect,
        ClickHouseDialect,
        MonetDBDialect,
        DuckDBDialect,
        VirtuosoDialect,
    ]


def dialect_by_name(name: str) -> Dialect:
    """Instantiate a dialect by its name (e.g. ``"mysql"``)."""
    for cls in all_dialect_classes():
        if cls.name == name.lower():
            return cls()
    raise KeyError(f"unknown dialect {name!r}")


def dialect_names() -> List[str]:
    return [cls.name for cls in all_dialect_classes()]


__all__ = [
    "Dialect",
    "DocEntry",
    "InjectedBug",
    "all_bugs",
    "all_dialect_classes",
    "bugs_for",
    "dialect_by_name",
    "dialect_names",
    "find_bug",
    "table4_totals",
]
