"""Simulated DuckDB.

DuckDB's rich array/map/JSON surface is where its 21 injected bugs cluster
(Table 4: nine in array functions alone).  DuckDB builds with assertions
enabled, which is why its dominant crash class is assertion failure (AF).
All 21 bugs were confirmed and fixed.
"""

from __future__ import annotations

from typing import List

from ..engine.casting import TypeLimits
from ..engine.functions import FunctionRegistry
from .base import Dialect
from .bugs import InjectedBug, register_bugs

_BUG_ROWS = [
    # -- array (9): AF(5), HBOF(3), SO(1); P1.2(7), P1.4(1), P2.2(1)
    ("array_length", "array", "AF", "P1.2", ("null", 0),
     "SELECT ARRAY_LENGTH(NULL);",
     "D_ASSERT(vector.validity) fires for an untyped NULL list", True),
    ("array_append", "array", "AF", "P1.2", ("star",),
     "SELECT ARRAY_APPEND([1], *);",
     "the '*' marker is asserted to be a bound expression", True),
    ("array_position", "array", "AF", "P1.2", ("empty", 1),
     "SELECT ARRAY_POSITION([1], '');",
     "empty-string needles are asserted to have a non-zero hash", True),
    ("array_slice", "array", "HBOF", "P1.2", ("big", 99999, 1),
     "SELECT ARRAY_SLICE([1, 2], 99999, 3);",
     "the begin offset is clamped after the child-vector pointer is "
     "advanced", True),
    ("array_concat", "array", "HBOF", "P1.2", ("null", 1),
     "SELECT ARRAY_CONCAT([1], NULL);",
     "NULL second list contributes garbage length to the result "
     "allocation", True),
    ("array_reverse", "array", "AF", "P1.2", ("null", 0),
     "SELECT ARRAY_REVERSE(NULL);",
     "reverse asserts a materialised child vector", True),
    ("array_sum", "array", "HBOF", "P1.2", ("wide", 13, 0),
     "SELECT ARRAY_SUM(9999999999999);",
     "a wide scalar takes the flat-vector path sized for list entries", True),
    ("array_distinct", "array", "AF", "P1.4", ("double", "[", 2, 0),
     "SELECT ARRAY_DISTINCT('[[1, 2]');",
     "a malformed doubled-bracket list literal is asserted to have been "
     "rejected by the binder", True),
    ("array_sort", "array", "SO", "P2.2", ("arrarr", 0),
     "SELECT ARRAY_SORT((SELECT [1] UNION SELECT [2]));",
     "UNION-unified list-of-list values make the comparator recurse "
     "per nesting level with no depth guard", True),
    # -- date (1): SO; P3.1
    ("str_to_date", "date", "SO", "P3.1", ("long", 400, 0),
     "SELECT STR_TO_DATE(REPEAT('1-', 300), '%Y');",
     "the format matcher backtracks once per repeated separator", True),
    # -- map (3): AF(1), HBOF(2); P1.2(2), P2.1(1)
    ("map_keys", "map", "AF", "P1.2", ("null", 0),
     "SELECT MAP_KEYS(NULL);",
     "MAP_KEYS asserts the map vector is non-null", True),
    ("map_values", "map", "HBOF", "P1.2", ("star",),
     "SELECT MAP_VALUES(*);",
     "the '*' marker is copied as if it were a map payload", True),
    ("map_from_arrays", "map", "HBOF", "P2.1", ("castbin", 0),
     "SELECT MAP_FROM_ARRAYS(CAST('ab' AS BINARY), [1]);",
     "a blob where the key list is expected is measured in entries but "
     "copied in bytes", True),
    # -- json (1): AF; P1.2
    ("json_depth", "json", "AF", "P1.2", ("empty", 0),
     "SELECT JSON_DEPTH('');",
     "the yyjson root is asserted non-null; empty input has no root", True),
    # -- math (2): AF(1), HBOF(1); P1.2(1), P2.1(1)
    ("factorial", "math", "AF", "P1.2", ("neg", 0),
     "SELECT FACTORIAL(-99999);",
     "the operand is asserted non-negative before range checking", True),
    ("round", "math", "HBOF", "P2.1", ("castdec", 25, 0),
     "SELECT ROUND(CAST(1.5 AS DECIMAL(30, 28)), 2);",
     "the power-of-ten table for rescaling is indexed by a 28-digit "
     "scale", True),
    # -- string (4): AF(2), SEGV(2); P1.2(1), P1.3(1), P3.1(1), P3.3(1)
    ("left", "string", "AF", "P1.2", ("big", 9999, 1),
     "SELECT LEFT('abc', 99999);",
     "count is asserted to fit the subject's length class", True),
    ("right", "string", "AF", "P1.3", ("digitrun", 5, 0),
     "SELECT RIGHT('x99999', 2);",
     "inserted digit runs trip the numeric-suffix fast path assertion", True),
    ("repeat", "string", "SEGV", "P3.1", ("long", 1000, 0),
     "SELECT REPEAT(REPEAT('ab', 600), 2);",
     "the doubling copy loop overruns the source when the subject itself "
     "came from repetition", True),
    ("reverse", "string", "SEGV", "P3.3", ("njson", 0),
     "SELECT REVERSE(JSON_ARRAY(1, 2));",
     "grapheme iteration over a JSON document's inline representation", True),
    # -- system (1): AF; P2.1
    ("current_setting", "system", "AF", "P2.1", ("castbin", 0),
     "SELECT CURRENT_SETTING(CAST('a' AS BINARY));",
     "setting names are asserted to be inlined strings; blobs are not", True),
]


#: non-crashing defects for the logic-bug oracles (installed on demand only;
#: see Dialect.install_logic_flaws) — rows are (function, family, kind,
#: pattern, trigger_spec, poc, description)
_LOGIC_FLAW_ROWS = [
    ("floor", "math", "wrong", "P1.3", ("wide", 5, 0),
     "SELECT FLOOR(99999.8);",
     "the wide-decimal path rounds half-up before flooring, so FLOOR lands "
     "one above the correct integer for five-digit-and-wider inputs"),
    ("lower", "string", "wrong", "P1.3", ("digitrun", 5, 0),
     "SELECT LOWER('A99999B');",
     "the case-folding scratch buffer is sized before digit runs are "
     "copied, losing the final character of the result"),
    ("space", "string", "strict", "P1.2", ("big", 1, 0),
     "SELECT SPACE(4);",
     "the padding-length validation reuses the negative-count error path "
     "for every positive count"),
    ("is_null_test", "predicate", "tlp", "P1.1", (),
     "SELECT k, i, s, d FROM fuzz_t WHERE d < 1.5;",
     "the IS NULL test propagates the unknown instead of deciding it, so "
     "the three-way predicate partition loses every row whose predicate "
     "is NULL"),
    ("null_compare_fold", "predicate", "norec", "P1.1", (),
     "SELECT k, i, s, d FROM fuzz_t WHERE d = d AND NOT (NULL = 1);",
     "the constant folder rewrites comparisons against NULL to FALSE "
     "instead of NULL, so optimized plans flip NOT (... = NULL) from "
     "unknown to true"),
]


class DuckDBDialect(Dialect):
    name = "duckdb"
    version = "0.10.1"
    stack_depth = 256

    def declare_logic_flaws(self) -> List[tuple]:
        return _LOGIC_FLAW_ROWS

    def make_limits(self) -> TypeLimits:
        return TypeLimits(
            decimal_max_digits=38,
            decimal_max_scale=38,
            json_max_depth=None,   # yyjson parses iteratively, no guard
            xml_max_depth=64,
        )

    def customize_registry(self, registry: FunctionRegistry) -> None:
        # DuckDB naming: list_* synonyms for array functions
        registry.alias("array_length", "list_length", "array_size")
        registry.alias("array_append", "list_append")
        registry.alias("array_prepend", "list_prepend")
        registry.alias("array_concat", "list_concat", "list_cat")
        registry.alias("array_sort", "list_sort")
        registry.alias("array_distinct", "list_distinct")
        registry.alias("array_reverse", "list_reverse")
        registry.alias("array_sum", "list_sum")
        registry.alias("array_min", "list_min")
        registry.alias("array_max", "list_max")
        registry.alias("group_concat", "string_agg_duck")
        registry.alias("json_extract", "json_extract_path_duck")
        registry.alias("typeof", "typeof_duck")
        # no MySQL-isms / XML / dynamic columns
        for missing in ("updatexml", "extractvalue", "xml_valid", "xpath",
                        "xmlconcat", "xmlelement", "column_create",
                        "column_json", "column_get", "elt", "field",
                        "name_const", "get_lock", "release_lock",
                        "is_used_lock", "format_bytes", "benchmark",
                        "found_rows", "last_insert_id", "inet_aton",
                        "inet_ntoa", "inet6_aton", "inet6_ntoa",
                        "todecimalstring"):
            registry.remove(missing)

    def inject_bugs(self, registry: FunctionRegistry) -> None:
        self.bugs: List[InjectedBug] = register_bugs(self.name, registry, _BUG_ROWS)
