"""Simulated MariaDB.

The biggest bug population among the studied DBMSs and the second biggest
among the newly tested ones: 24 injected bugs across aggregates, condition,
date, JSON (including dynamic columns), sequence, spatial, and string
functions.  Four were fixed by publication (three spatial, one string);
the rest remained confirmed-only, mirroring Table 4's status column.
"""

from __future__ import annotations

from typing import List

from ..engine.casting import TypeLimits
from ..engine.functions import FunctionRegistry
from .base import Dialect
from .bugs import InjectedBug, register_bugs

_BUG_ROWS = [
    # -- aggregate (4): NPD(1), SEGV(2), SO(1); P1.2(3), P2.2(1)
    ("stddev", "aggregate", "SEGV", "P1.2", ("wide", 18, 0),
     "SELECT STDDEV(999999999999999999999);",
     "the running-moment buffer indexes by digit count, which a 19-digit "
     "literal walks out of", False),
    ("variance", "aggregate", "SEGV", "P2.2", ("unionarr", 0),
     "SELECT VARIANCE((SELECT 1 UNION SELECT 2));",
     "a multi-row UNION subquery arrives as a set value whose element "
     "stride is miscomputed", False),
    ("group_concat", "aggregate", "NPD", "P1.2", ("empty", 0),
     "SELECT GROUP_CONCAT('');",
     "the empty string contributes a NULL chunk pointer to the rope "
     "concatenator", False),
    ("median", "aggregate", "SO", "P1.2", ("wide", 15, 0),
     "SELECT MEDIAN(999999999999999);",
     "partition-exchange recursion never terminates when the pivot digit "
     "count overflows its counter", False),
    # -- condition (1): NPD(1); P2.2
    ("nullif", "condition", "NPD", "P2.2", ("unionarr", 0),
     "SELECT NULLIF((SELECT 1 UNION SELECT 2), 1);",
     "comparison item tree for a set value has no cached comparator", False),
    # -- date (3): NPD(2), GBOF(1); P1.2(1), P2.3(1), P3.3(1)
    ("last_day", "date", "NPD", "P1.2", ("empty", 0),
     "SELECT LAST_DAY('');",
     "the empty string parses to a zero-date whose month descriptor is "
     "NULL", False),
    ("datediff", "date", "NPD", "P2.3", ("foreign", ("$", "/"), 1),
     "SELECT DATEDIFF('2020-01-01', '$[0]');",
     "a path-shaped argument takes the cached-item fast path which was "
     "never populated", False),
    ("dayname", "date", "GBOF", "P3.3", ("ndate", 0),
     "SELECT DAYNAME(DATE('2020-01-02'));",
     "the weekday-name static table is indexed with the packed temporal "
     "value instead of the weekday number", False),
    # -- json (6): NPD(2), SEGV(1), AF(1), GBOF(2); P1.4(2), P2.3(1), P3.1(2), P3.3(1)
    ("json_length", "json", "GBOF", "P3.1", ("long", 200, 0),
     "SELECT JSON_LENGTH(REPEAT('[1,', 100), '$[2][1]');",
     "large nested array expressions overflow the static path-evaluation "
     "scratch buffer (paper Listing 10)", False),
    ("json_valid", "json", "GBOF", "P1.4", ("double", "{", 4, 0),
     "SELECT JSON_VALID('{{{{\"a\": 0}');",
     "repeated object openers overrun the fixed token-lookahead window", False),
    ("json_extract", "json", "NPD", "P1.4", ("double", "[", 4, 1),
     "SELECT JSON_EXTRACT('[1]', '$[[[[0]');",
     "doubled brackets in the path produce an empty leg whose node pointer "
     "is NULL", False),
    ("json_keys", "json", "NPD", "P2.3", ("foreign", ("/",), 1),
     "SELECT JSON_KEYS('{\"a\": 1}', '/a');",
     "an XPath-shaped path skips '$' validation and leaves the root cursor "
     "NULL", False),
    ("json_unquote", "json", "SEGV", "P3.1", ("long", 300, 0),
     "SELECT JSON_UNQUOTE(REPEAT('\"a', 200));",
     "unterminated-quote scanning runs past the value when the input is "
     "repetition-generated", False),
    ("json_contains", "json", "AF", "P3.3", ("njson", 1),
     "SELECT JSON_CONTAINS('[1]', JSON_ARRAY(1));",
     "the candidate is asserted to be a parsed-from-text document; nested "
     "function output violates the assertion", False),
    # -- sequence (1): NPD(1); P3.3
    ("nextval", "sequence", "NPD", "P3.3", ("njson", 0),
     "SELECT NEXTVAL(JSON_OBJECT('a', 1));",
     "sequence lookup by non-string key returns NULL and is dereferenced", False),
    # -- spatial (5): NPD(3), SEGV(1), SO(1); P3.2(1), P3.3(4) — three fixed
    ("boundary", "spatial", "NPD", "P3.3", ("nbytes", 0),
     "SELECT BOUNDARY(INET6_ATON('255.255.255.255'));",
     "a packed IPv6 address is decoded as a geometry blob; the failed "
     "decode leaves a NULL shape that boundary computation dereferences "
     "(paper Listing 11)", True),
    ("st_astext", "spatial", "SEGV", "P3.3", ("nbytes", 0),
     "SELECT ST_ASTEXT(INET6_ATON('255.255.255.255'));",
     "WKT rendering walks the coordinate array of a non-geometry blob", True),
    ("st_x", "spatial", "NPD", "P3.3", ("njson", 0),
     "SELECT ST_X(JSON_ARRAY(1));",
     "point accessor on a JSON document finds no coordinate vector", False),
    ("st_isclosed", "spatial", "NPD", "P3.2", ("njson", 0),
     "SELECT ST_ISCLOSED(JSON_ARRAY('LINESTRING(0 0, 1 1)'));",
     "a JSON-wrapped WKT value passes the cheap prefix probe and the ring "
     "cursor ends up NULL", True),
    ("st_npoints", "spatial", "SO", "P3.3", ("njson", 0),
     "SELECT ST_NPOINTS(JSON_OBJECT('a', 1));",
     "the point counter recurses into the document structure without a "
     "geometry terminator", False),
    # -- string (4): NPD(2), HBOF(1), SO(1); P1.2(2), P3.1(1), P3.3(1) — one fixed
    ("format", "string", "HBOF", "P1.2", ("big", 39, 1),
     "SELECT FORMAT('0', 50, 'de_DE');",
     "String::set_real falls back to scientific notation above 38 digits, "
     "shorter than the digits the format writer was promised "
     "(MDEV-23415 analogue)", True),
    ("reverse", "string", "NPD", "P1.2", ("empty", 0),
     "SELECT REVERSE('');",
     "in-place reversal takes a pointer to the last byte of an empty "
     "buffer", False),
    ("soundex", "string", "SO", "P3.1", ("long", 500, 0),
     "SELECT SOUNDEX(REPEAT('a', 600));",
     "the phonetic-code collapse recurses per repeated letter group", False),
    ("translate", "string", "NPD", "P3.3", ("njson", 2),
     "SELECT TRANSLATE('abc', 'ab', JSON_ARRAY(1));",
     "mapping-table construction from a non-string third argument leaves "
     "NULL slots that translation dereferences", False),
]


class MariaDBDialect(Dialect):
    name = "mariadb"
    version = "11.3.2"
    stack_depth = 256

    def make_limits(self) -> TypeLimits:
        return TypeLimits(
            decimal_max_digits=65,
            decimal_max_scale=38,
            json_max_depth=32,
            xml_max_depth=100,
        )

    def customize_registry(self, registry: FunctionRegistry) -> None:
        # MariaDB: MySQL-compatible surface (no arrays/maps) plus dynamic
        # columns (already in the base library) and sequences.
        for missing in ("array_length", "cardinality", "len", "array_append",
                        "array_prepend", "array_concat", "array_cat",
                        "array_contains", "has", "list_contains",
                        "array_position", "indexof", "list_position",
                        "array_slice", "list_slice", "array_reverse",
                        "array_distinct", "array_sort", "element_at",
                        "array_extract", "list_extract", "arrayelement",
                        "array_sum", "array_min", "array_max", "range",
                        "generate_series", "sequence_array", "array_flatten",
                        "flatten", "map_keys", "map_values", "map_size",
                        "map_contains", "mapcontains", "map_from_arrays",
                        "map_entries", "map_concat", "xpath", "xmlconcat",
                        "xmlelement", "todecimalstring", "starts_with",
                        "ends_with", "split_part"):
            registry.remove(missing)
        registry.alias("lower", "lcase")
        registry.alias("upper", "ucase")
        registry.alias("now", "localtime", "localtimestamp")
        registry.alias("char_length", "character_length")
        registry.alias("json_extract", "json_query_maria")
        registry.alias("group_concat", "json_group_concat")

    def inject_bugs(self, registry: FunctionRegistry) -> None:
        self.bugs: List[InjectedBug] = register_bugs(self.name, registry, _BUG_ROWS)
