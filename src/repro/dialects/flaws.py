"""Flawed-implementation building blocks for bug injection.

Each *flaw kind* below is a realistic defect written against the simulated
memory model (:mod:`repro.engine.memory`): the crash **emerges** from a
miscomputed allocation, a missing NULL check, an unchecked recursion — it is
never a bare ``raise``.  A dialect instantiates a flaw kind for a specific
function; the flawed wrapper runs the defective code path when the boundary
condition holds and defers to the original implementation otherwise, exactly
how a real bug hides behind a branch that ordinary inputs never take.

The triggering boundary conditions are aligned with the paper's ten
boundary-value-generation patterns (§6):

=============  ===========================================================
flaw kind      boundary condition (pattern that reaches it)
=============  ===========================================================
empty_string   '' argument (P1.1/P1.2 boundary pool)
null_arg       NULL argument slipping past a missing check (P1.2)
star_arg       the ``*`` marker as an argument (P1.2; Virtuoso CONTAINS)
wide_number    numeric literal with ≥ threshold digits (P1.2)
digit_run      string containing a long inserted digit run (P1.3)
char_doubling  string with a format character doubled/repeated (P1.4)
cast_decimal   high-precision DECIMAL instance from an explicit cast (P2.1)
cast_unsigned  reinterpreted unsigned/huge integer from a cast (P2.1)
cast_binary    BINARY/BLOB instance from an explicit cast (P2.1)
union_array    multi-row subquery value from a UNION branch (P2.2)
foreign_text   text in another function's argument format (P2.3)
long_text      argument of extreme length from REPEAT (P3.1)
deep_nesting   deeply nested structured text from REPEAT (P3.1)
nested_bytes   binary value returned by a nested function (P3.2/P3.3)
nested_geom    geometry value returned by a nested function (P3.2/P3.3)
nested_json    JSON/map document returned by a nested function (P3.2/P3.3)
nested_array   array value returned by a nested function (P3.2/P3.3)
nested_date    temporal value returned by a nested function (P3.2/P3.3)
row_arg        ROW value reaching a comparison (P1.2/P3.x; MDEV-14596)
zero_div       divisor of exactly zero on an unchecked path (P1.2/P2.x)
=============  ===========================================================
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..engine.context import ExecutionContext
from ..engine.errors import AssertionFailure, DivideByZeroCrash, ValueError_
from ..engine.functions.registry import FunctionDef, FunctionRegistry
from ..engine.memory import GlobalBuffer, Pointer, sql_assert
from ..engine.values import (
    SQLArray,
    SQLBoolean,
    SQLBytes,
    SQLDate,
    SQLDateTime,
    SQLDecimal,
    SQLGeometry,
    SQLInteger,
    SQLJson,
    SQLMap,
    SQLRow,
    SQLStarMarker,
    SQLString,
    SQLValue,
    is_numeric,
)

Trigger = Callable[[ExecutionContext, List[SQLValue]], bool]
CrashAction = Callable[[ExecutionContext, str, List[SQLValue]], SQLValue]


# ---------------------------------------------------------------------------
# trigger predicates (one per flaw kind)
# ---------------------------------------------------------------------------
def _arg(args: List[SQLValue], index: int) -> Optional[SQLValue]:
    if index < len(args):
        return args[index]
    return None


def trig_empty_string(index: int = 0) -> Trigger:
    def trigger(ctx: ExecutionContext, args: List[SQLValue]) -> bool:
        value = _arg(args, index)
        return isinstance(value, SQLString) and value.value == ""

    return trigger


def trig_null_arg(index: int = 0) -> Trigger:
    def trigger(ctx: ExecutionContext, args: List[SQLValue]) -> bool:
        value = _arg(args, index)
        return value is not None and value.is_null

    return trigger


def trig_star_arg() -> Trigger:
    def trigger(ctx: ExecutionContext, args: List[SQLValue]) -> bool:
        return any(isinstance(a, SQLStarMarker) for a in args)

    return trigger


def trig_wide_number(digits: int = 15, index: int = 0) -> Trigger:
    def trigger(ctx: ExecutionContext, args: List[SQLValue]) -> bool:
        value = _arg(args, index)
        if isinstance(value, SQLDecimal):
            return value.total_digits >= digits
        if isinstance(value, SQLInteger):
            return len(str(abs(value.value))) >= digits
        return False

    return trigger


def trig_digit_run(run: int = 5, index: int = 0) -> Trigger:
    def trigger(ctx: ExecutionContext, args: List[SQLValue]) -> bool:
        value = _arg(args, index)
        if not isinstance(value, SQLString):
            return False
        return "9" * run in value.value

    return trigger


def trig_char_doubling(char: str, repeats: int = 2, index: int = 0) -> Trigger:
    def trigger(ctx: ExecutionContext, args: List[SQLValue]) -> bool:
        value = _arg(args, index)
        if not isinstance(value, SQLString):
            return False
        return char * repeats in value.value

    return trigger


def trig_cast_decimal(precision: int = 31, index: int = 0) -> Trigger:
    def trigger(ctx: ExecutionContext, args: List[SQLValue]) -> bool:
        value = _arg(args, index)
        return isinstance(value, SQLDecimal) and value.fraction_digits >= precision

    return trigger


def trig_cast_unsigned(index: int = 0) -> Trigger:
    def trigger(ctx: ExecutionContext, args: List[SQLValue]) -> bool:
        value = _arg(args, index)
        return isinstance(value, SQLInteger) and value.value > 2**63 - 1

    return trigger


def trig_cast_binary(index: int = 0) -> Trigger:
    def trigger(ctx: ExecutionContext, args: List[SQLValue]) -> bool:
        return isinstance(_arg(args, index), SQLBytes)

    return trigger


def trig_union_array(index: int = 0) -> Trigger:
    def trigger(ctx: ExecutionContext, args: List[SQLValue]) -> bool:
        return isinstance(_arg(args, index), SQLArray)

    return trigger


def trig_foreign_text(prefixes: tuple, index: int = 0) -> Trigger:
    def trigger(ctx: ExecutionContext, args: List[SQLValue]) -> bool:
        value = _arg(args, index)
        if not isinstance(value, SQLString):
            return False
        return value.value.startswith(prefixes)

    return trigger


def trig_long_text(length: int = 512, index: int = 0) -> Trigger:
    def trigger(ctx: ExecutionContext, args: List[SQLValue]) -> bool:
        value = _arg(args, index)
        return isinstance(value, SQLString) and len(value.value) >= length

    return trigger


def trig_deep_nesting(char_set: str = "[{(", depth: int = 64, index: int = 0) -> Trigger:
    def trigger(ctx: ExecutionContext, args: List[SQLValue]) -> bool:
        value = _arg(args, index)
        if not isinstance(value, SQLString):
            return False
        return any(ch * depth in value.value for ch in char_set)

    return trigger


def trig_nested_bytes(index: int = 0) -> Trigger:
    def trigger(ctx: ExecutionContext, args: List[SQLValue]) -> bool:
        return isinstance(_arg(args, index), SQLBytes)

    return trigger


def trig_nested_geom(index: int = 0) -> Trigger:
    def trigger(ctx: ExecutionContext, args: List[SQLValue]) -> bool:
        return isinstance(_arg(args, index), SQLGeometry)

    return trigger


def trig_nested_json(index: int = 0) -> Trigger:
    def trigger(ctx: ExecutionContext, args: List[SQLValue]) -> bool:
        return isinstance(_arg(args, index), (SQLJson, SQLMap))

    return trigger


def trig_nested_array(index: int = 0) -> Trigger:
    def trigger(ctx: ExecutionContext, args: List[SQLValue]) -> bool:
        return isinstance(_arg(args, index), SQLArray)

    return trigger


def trig_nested_date(index: int = 0) -> Trigger:
    def trigger(ctx: ExecutionContext, args: List[SQLValue]) -> bool:
        return isinstance(_arg(args, index), (SQLDate, SQLDateTime))

    return trigger


def trig_row_arg(index: int = 0) -> Trigger:
    def trigger(ctx: ExecutionContext, args: List[SQLValue]) -> bool:
        return any(isinstance(a, SQLRow) for a in args)

    return trigger


def trig_zero_div(index: int = 1) -> Trigger:
    def trigger(ctx: ExecutionContext, args: List[SQLValue]) -> bool:
        value = _arg(args, index)
        if value is None or not is_numeric(value):
            return False
        from ..engine.values import numeric_as_decimal

        return numeric_as_decimal(value) == 0

    return trigger


def trig_negative(index: int = 0) -> Trigger:
    def trigger(ctx: ExecutionContext, args: List[SQLValue]) -> bool:
        value = _arg(args, index)
        if value is None or not is_numeric(value):
            return False
        from ..engine.values import numeric_as_decimal

        return numeric_as_decimal(value) < 0

    return trigger


def trig_big_value(threshold: int, index: int = 0) -> Trigger:
    def trigger(ctx: ExecutionContext, args: List[SQLValue]) -> bool:
        value = _arg(args, index)
        if value is None or not is_numeric(value):
            return False
        from ..engine.values import numeric_as_decimal

        return numeric_as_decimal(value) >= threshold

    return trigger


def trig_array_of_arrays(index: int = 0) -> Trigger:
    """An array whose elements are themselves arrays — the shape a UNION of
    mismatched branches (Pattern 2.2) produces for array-typed columns."""

    def trigger(ctx: ExecutionContext, args: List[SQLValue]) -> bool:
        value = _arg(args, index)
        return isinstance(value, SQLArray) and any(
            isinstance(item, SQLArray) for item in value.items
        )

    return trigger


def trig_any(*triggers: Trigger) -> Trigger:
    def trigger(ctx: ExecutionContext, args: List[SQLValue]) -> bool:
        return any(t(ctx, args) for t in triggers)

    return trigger


# ---------------------------------------------------------------------------
# crash actions: defective code paths over the memory model
# ---------------------------------------------------------------------------
def crash_npd(ctx: ExecutionContext, name: str, args: List[SQLValue]) -> SQLValue:
    """Missing NULL check: look up an internal descriptor that does not
    exist for this input and dereference the resulting NULL pointer."""
    descriptor: Pointer = Pointer.null(label=f"{name}_arg_descriptor")
    payload = descriptor.deref(function=name)  # crashes
    return payload  # pragma: no cover


def crash_segv(ctx: ExecutionContext, name: str, args: List[SQLValue]) -> SQLValue:
    """Pointer arithmetic on a bogus offset walks into unmapped memory."""
    wild: Pointer = Pointer.wild(label=f"{name}_cursor+0x7ffe")
    return wild.deref(function=name)  # pragma: no cover


def crash_uaf(ctx: ExecutionContext, name: str, args: List[SQLValue]) -> SQLValue:
    """A temporary is freed on the error path but used afterwards."""
    temp = ctx.heap.alloc(32, label=f"{name}_tmp")
    holder: Pointer = Pointer.to(temp, label=f"{name}_tmp_ptr")
    ctx.heap.free(temp)
    holder.free()
    return holder.deref(function=name)  # pragma: no cover


def crash_hbof(ctx: ExecutionContext, name: str, args: List[SQLValue]) -> SQLValue:
    """MDEV-8407-style: the length of the textual form is *miscalculated*
    (as if the value were short), the buffer is allocated with the wrong
    size, and writing the true rendering overflows it."""
    rendering = args[0].render() if args else ""
    miscalculated = min(len(rendering), 24)  # "cannot be longer than 24"
    buffer = ctx.heap.alloc(miscalculated, label=f"{name}_result")
    buffer.write(0, rendering + "\0", function=name)  # crashes when longer
    return SQLString(buffer.contents())  # pragma: no cover


_STATIC_FMT_BUFFERS = {}


def crash_gbof(ctx: ExecutionContext, name: str, args: List[SQLValue]) -> SQLValue:
    """MDEV-23415-style: a fixed static format buffer receives a rendering
    whose length the caller never validated."""
    static = _STATIC_FMT_BUFFERS.setdefault(name, GlobalBuffer(8, label=f"{name}_static_fmt"))
    rendering = "".join(a.render() for a in args if not a.is_null)
    static.write(0, rendering + "\0", function=name)  # crashes when > 8
    return SQLString(rendering)  # pragma: no cover


def crash_so(ctx: ExecutionContext, name: str, args: List[SQLValue]) -> SQLValue:
    """CVE-2015-5289-style: recursive descent whose termination check is
    wrong for this boundary input — the parser re-enters on the same
    position forever and the thread stack overflows."""
    while True:  # the simulated stack bounds this loop
        ctx.stack.push(f"{name}_parse_recursive", function=name)


def crash_af(ctx: ExecutionContext, name: str, args: List[SQLValue]) -> SQLValue:
    """A debug assertion about the argument's internal representation is
    simply wrong for this boundary input."""
    sql_assert(False, f"{name}: argument vector in canonical form", function=name)
    raise AssertionFailure("unreachable", function=name)  # pragma: no cover


def crash_dbz(ctx: ExecutionContext, name: str, args: List[SQLValue]) -> SQLValue:
    """An unchecked division: scale factor of zero reaches the divide."""
    raise DivideByZeroCrash(
        f"{name}: division by zero scale factor", function=name
    )


CRASH_ACTIONS = {
    "NPD": crash_npd,
    "SEGV": crash_segv,
    "UAF": crash_uaf,
    "HBOF": crash_hbof,
    "GBOF": crash_gbof,
    "SO": crash_so,
    "AF": crash_af,
    "DBZ": crash_dbz,
}


# ---------------------------------------------------------------------------
# logic flaws: defects that miscompute instead of crashing
# ---------------------------------------------------------------------------
#: recognised logic-flaw kinds — "wrong" silently returns a corrupted
#: result, "strict" rejects documented-valid arguments with an SQL error
LOGIC_KINDS = ("wrong", "strict")

#: predicate-level defect kinds — seeded as engine config knobs rather
#: than function wrappers, because the defect lives in clause evaluation
#: (the executor's null test, the optimizer's constant folder), not in any
#: one built-in.  "tlp" breaks the three-valued IS NULL test; "norec"
#: breaks the optimizer's NULL-comparison fold.  Each is ground truth for
#: the same-named metamorphic oracle (:mod:`repro.core.oracles.metamorphic`)
#: and invisible to the other one.
PREDICATE_KINDS = ("tlp", "norec")

#: engine knob flipped on (via Dialect.config_defaults) per predicate kind
PREDICATE_KNOBS = {
    "tlp": "faulty_is_null_propagates",
    "norec": "faulty_fold_null_compare",
}


def miscompute(value: SQLValue) -> SQLValue:
    """Deterministically corrupt a correct scalar result.

    The corruption is small and type-preserving — an off-by-one, a
    truncated byte — the shape real wrong-result bugs take (a misplaced
    boundary comparison, a length field measured before the last write).
    NULL and exotic types pass through untouched: a logic flaw that turned
    NULL into a value would be caught by trivial type checks, not by a
    differential oracle.
    """
    if isinstance(value, SQLBoolean):
        return SQLBoolean(not value.value)
    if isinstance(value, SQLInteger):
        return SQLInteger(value.value + 1)
    if isinstance(value, SQLDecimal):
        return SQLDecimal(value.value + 1)
    if isinstance(value, SQLString):
        if value.value:
            return SQLString(value.value[:-1])
        return SQLString("?")
    return value


def install_logic_flaw(
    registry: FunctionRegistry,
    function: str,
    trigger: Trigger,
    kind: str,
) -> None:
    """Wrap *function*'s implementation with a non-crashing defect.

    ``wrong`` computes the correct result and corrupts it when the boundary
    condition holds (the function's metadata — documentation, signature —
    stays untouched, which is exactly why cross-dialect differential
    comparison remains sound).  ``strict`` raises an ordinary SQL error for
    arguments the documentation declares valid.
    """
    definition = registry.lookup(function)
    if definition.is_aggregate:
        raise ValueError(
            f"logic flaws are scalar-only; {function!r} is an aggregate"
        )
    original = definition.impl
    if kind == "wrong":
        def flawed(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
            result = original(ctx, args)
            if trigger(ctx, args):
                return miscompute(result)
            return result
    elif kind == "strict":
        def flawed(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
            if trigger(ctx, args):
                raise ValueError_(
                    f"{function.upper()}: argument out of supported range"
                )
            return original(ctx, args)
    else:
        raise ValueError(f"unknown logic-flaw kind {kind!r}")

    flawed.__name__ = f"logic_flawed_{function}"
    flawed.__qualname__ = f"logic_flawed_{function}"
    registry.patch(function, flawed)


# ---------------------------------------------------------------------------
# installation
# ---------------------------------------------------------------------------
def install_flaw(
    registry: FunctionRegistry,
    function: str,
    trigger: Trigger,
    crash: str,
) -> None:
    """Wrap *function*'s implementation with a flawed fast path.

    The wrapper mirrors how the original defects sit on rarely-taken
    branches: ordinary arguments flow to the correct implementation, the
    boundary condition diverts into the defective code path.
    """
    definition = registry.lookup(function)
    original = definition.impl
    action = CRASH_ACTIONS[crash]
    is_aggregate = definition.is_aggregate

    if is_aggregate:
        def flawed(ctx: ExecutionContext, columns):  # type: ignore[no-redef]
            probe = [col[0] for col in columns if col]
            if trigger(ctx, probe):
                return action(ctx, function, probe)
            return original(ctx, columns)
    else:
        def flawed(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
            if trigger(ctx, args):
                return action(ctx, function, args)
            return original(ctx, args)

    flawed.__name__ = f"flawed_{function}"
    flawed.__qualname__ = f"flawed_{function}"
    registry.patch(function, flawed)
