"""Simulated MySQL.

Carries 16 injected bugs (Table 4): six in aggregates, one date, one
spatial, two string, five system, one XML.  Per the paper, MySQL confirmed
all of them but had fixed only one by publication time (releases lag bug
reports by months), so ``fixed`` is False for all but one system bug.
"""

from __future__ import annotations

from typing import List

from ..engine.casting import TypeLimits
from ..engine.context import ExecutionContext
from ..engine.errors import ValueError_
from ..engine.functions import FunctionRegistry
from ..engine.values import NULL, SQLString, SQLValue
from .base import Dialect
from .bugs import InjectedBug, register_bugs

_BUG_ROWS = [
    # -- aggregate (6): NPD(4), SEGV(1), GBOF(1); P1.3(1), P3.3(4), P2.1(1)
    ("avg", "aggregate", "GBOF", "P1.3", ("wide", 20, 0),
     "SELECT AVG(1.29999999999999999999999999999999999999999999);",
     "an over-wide decimal literal exceeds the static digit buffer used to "
     "normalise AVG inputs (paper Listing 6)", False),
    ("sum", "aggregate", "NPD", "P3.3", ("nbytes", 0),
     "SELECT SUM(UNHEX('FF'));",
     "a binary value from a nested function has no numeric item descriptor; "
     "the NULL descriptor is dereferenced", False),
    ("max", "aggregate", "NPD", "P3.3", ("ngeom", 0),
     "SELECT MAX(POINT(1, 2));",
     "geometry comparator lookup returns NULL for MAX over points", False),
    ("min", "aggregate", "NPD", "P3.3", ("njson", 0),
     "SELECT MIN(JSON_ARRAY(1));",
     "JSON document reaches MIN's scalar comparator path", False),
    ("bit_and", "aggregate", "NPD", "P3.3", ("ndate", 0),
     "SELECT BIT_AND(DATE('2020-01-02'));",
     "temporal value has no integer image in the BIT_AND accumulator", False),
    ("group_concat", "aggregate", "SEGV", "P2.1", ("castbin", 0),
     "SELECT GROUP_CONCAT(CAST('a' AS BINARY));",
     "binary collation pointer is computed from a charset table the cast "
     "value does not carry", False),
    # -- date (1): SEGV(1); P3.3
    ("makedate", "date", "SEGV", "P3.3", ("ndate", 0),
     "SELECT MAKEDATE(DATE('2020-01-02'), 5);",
     "a DATE value where the year integer is expected walks the packed "
     "temporal representation as an offset", False),
    # -- spatial (1): UAF(1); P3.3
    ("st_centroid", "spatial", "UAF", "P3.3", ("nbytes", 0),
     "SELECT ST_CENTROID(INET6_ATON('::1'));",
     "the geometry temporary is freed on the failed-decode path but the "
     "centroid accumulator still points into it", False),
    # -- string (2): HBOF(2); P3.2(1), P3.3(1)
    ("lpad", "string", "HBOF", "P3.2", ("njson", 0),
     "SELECT LPAD(JSON_ARRAY('5'), 10, '0');",
     "pad-length measured on the inline JSON header but the full document "
     "is copied into the pad buffer", False),
    ("insert", "string", "HBOF", "P3.3", ("ngeom", 0),
     "SELECT INSERT(POINT(1, 2), 1, 1, 'x');",
     "geometry rendering is longer than the length field used for the "
     "splice buffer", False),
    # -- system (5): NPD(4), HBOF(1); P3.2(1), P3.3(4) — one fixed
    ("name_const", "system", "NPD", "P3.3", ("njson", 1),
     "SELECT NAME_CONST('n', JSON_OBJECT('a', 1));",
     "NAME_CONST only models literal values; a JSON document yields a NULL "
     "item pointer (fixed upstream)", True),
    ("get_lock", "system", "NPD", "P3.3", ("ndate", 1),
     "SELECT GET_LOCK('l', DATE('2020-01-02'));",
     "timeout extraction assumes a numeric item and dereferences the "
     "missing conversion result", False),
    ("release_lock", "system", "NPD", "P3.3", ("nbytes", 0),
     "SELECT RELEASE_LOCK(UNHEX('FF'));",
     "lock name hashing dereferences the NULL charset of a binary value", False),
    ("is_used_lock", "system", "NPD", "P3.3", ("ngeom", 0),
     "SELECT IS_USED_LOCK(POINT(1, 2));",
     "lock registry lookup with a non-string key returns NULL and is used "
     "unchecked", False),
    ("format_bytes", "system", "HBOF", "P3.2", ("ndate", 0),
     "SELECT FORMAT_BYTES(FROM_UNIXTIME(1048576));",
     "unit-suffix formatting measures the epoch integer but writes the "
     "full datetime rendering", False),
    # -- xml (1): UAF(1); P3.2
    ("updatexml", "xml", "UAF", "P3.2", ("foreign", ('"',), 0),
     "SELECT UPDATEXML(JSON_QUOTE('<a></a>'), '/a', '<b></b>');",
     "a JSON-quoted document fails the XML pre-scan, which frees the parse "
     "tree that the replacement step still walks", False),
]


#: non-crashing defects for the logic-bug oracles (installed on demand only;
#: see Dialect.install_logic_flaws) — rows are (function, family, kind,
#: pattern, trigger_spec, poc, description)
_LOGIC_FLAW_ROWS = [
    ("ascii", "string", "wrong", "P1.2", ("empty", 0),
     "SELECT ASCII('');",
     "the empty-string guard is off by one: ASCII('') reports code point 1 "
     "instead of 0"),
    ("sign", "math", "wrong", "P1.2", ("neg", 0),
     "SELECT SIGN(-2.5);",
     "the comparison runs on an unsigned image of the value, so negative "
     "arguments report 0 instead of -1"),
    ("chr", "string", "strict", "P1.2", ("big", 1, 0),
     "SELECT CHR(65);",
     "the code-point range check compares against the wrong constant and "
     "rejects every documented positive code point"),
    ("is_null_test", "predicate", "tlp", "P1.1", (),
     "SELECT k, i, s, d FROM fuzz_t WHERE i > 0;",
     "the IS NULL test propagates the unknown instead of deciding it, so "
     "the three-way predicate partition loses every row whose predicate "
     "is NULL"),
    ("null_compare_fold", "predicate", "norec", "P1.1", (),
     "SELECT k, i, s, d FROM fuzz_t WHERE i = i AND NOT (NULL = 0);",
     "the constant folder rewrites comparisons against NULL to FALSE "
     "instead of NULL, so optimized plans flip NOT (... = NULL) from "
     "unknown to true"),
]


class MySQLDialect(Dialect):
    name = "mysql"
    version = "8.3.0"
    stack_depth = 256

    def declare_logic_flaws(self) -> List[tuple]:
        return _LOGIC_FLAW_ROWS

    def make_limits(self) -> TypeLimits:
        return TypeLimits(
            decimal_max_digits=65,
            decimal_max_scale=30,
            json_max_depth=100,
            xml_max_depth=100,
        )

    def customize_registry(self, registry: FunctionRegistry) -> None:
        # MySQL has no first-class array/map constructors
        for missing in ("array_length", "cardinality", "len", "array_append",
                        "array_prepend", "array_concat", "array_cat",
                        "array_contains", "has", "list_contains",
                        "array_position", "indexof", "list_position",
                        "array_slice", "list_slice", "array_reverse",
                        "array_distinct", "array_sort", "element_at",
                        "array_extract", "list_extract", "arrayelement",
                        "array_sum", "array_min", "array_max", "range",
                        "generate_series", "sequence_array", "array_flatten",
                        "flatten", "map_keys", "map_values", "map_size",
                        "map_contains", "mapcontains", "map_from_arrays",
                        "map_entries", "map_concat", "xpath", "xmlconcat",
                        "xmlelement", "nextval", "currval", "setval",
                        "lastval", "split_part", "todecimalstring",
                        "starts_with", "ends_with", "initcap", "translate"):
            registry.remove(missing)

        define = registry.define

        @define("name_const", "system", min_args=2, max_args=2,
                signature="NAME_CONST(name, value)",
                doc="Return value under an explicit column name.",
                examples=["NAME_CONST('n', 1)"])
        def fn_name_const(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
            if args[0].is_null:
                raise ValueError_("NAME_CONST name must be a literal")
            return args[1]

        @define("get_lock", "system", min_args=2, max_args=2, pure=False,
                signature="GET_LOCK(name, timeout)",
                doc="Acquire a named user lock (always succeeds here).",
                examples=["GET_LOCK('l', 0)"])
        def fn_get_lock(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
            from ..engine.functions.helpers import need_string, out_int

            if args[0].is_null:
                return NULL
            name = need_string(args[0], "get_lock")
            ctx.set_config(f"lock::{name}", "1")
            return out_int(1)

        @define("release_lock", "system", min_args=1, max_args=1, pure=False,
                signature="RELEASE_LOCK(name)", doc="Release a named user lock.",
                examples=["RELEASE_LOCK('l')"])
        def fn_release_lock(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
            from ..engine.functions.helpers import need_string, out_int

            if args[0].is_null:
                return NULL
            name = need_string(args[0], "release_lock")
            held = ctx.get_config(f"lock::{name}") == "1"
            ctx.set_config(f"lock::{name}", "0")
            return out_int(1 if held else 0)

        @define("is_used_lock", "system", min_args=1, max_args=1, pure=False,
                signature="IS_USED_LOCK(name)",
                doc="Connection holding the lock, or NULL.",
                examples=["IS_USED_LOCK('l')"])
        def fn_is_used_lock(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
            from ..engine.functions.helpers import need_string, out_int

            if args[0].is_null:
                return NULL
            name = need_string(args[0], "is_used_lock")
            return out_int(1) if ctx.get_config(f"lock::{name}") == "1" else NULL

        @define("format_bytes", "system", min_args=1, max_args=1,
                signature="FORMAT_BYTES(count)",
                doc="Human-readable byte count.",
                examples=["FORMAT_BYTES(1048576)"])
        def fn_format_bytes(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
            from ..engine.functions.helpers import need_decimal, out_string

            if args[0].is_null:
                return NULL
            count = float(need_decimal(args[0], "format_bytes"))
            for unit in ("bytes", "KiB", "MiB", "GiB", "TiB"):
                if abs(count) < 1024 or unit == "TiB":
                    return out_string(f"{count:.2f} {unit}", "format_bytes")
                count /= 1024
            return out_string(f"{count:.2f} TiB", "format_bytes")  # pragma: no cover

        registry.alias("json_extract", "json_value_mysql")
        registry.alias("group_concat", "json_group_concat")
        registry.alias("now", "localtime", "localtimestamp")
        registry.alias("database", "schema_name")
        registry.alias("char_length", "character_length")
        registry.alias("lower", "lcase")
        registry.alias("upper", "ucase")
        registry.alias("strcmp", "str_compare")
        registry.alias("to_base64", "base64_encode")
        registry.alias("from_base64", "base64_decode")

    def inject_bugs(self, registry: FunctionRegistry) -> None:
        self.bugs: List[InjectedBug] = register_bugs(self.name, registry, _BUG_ROWS)
