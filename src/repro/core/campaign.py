"""Campaign orchestration: SOFT end-to-end against one dialect.

A campaign runs the three SOFT steps (§7.1) under a *query budget* — our
deterministic stand-in for the paper's wall-clock budgets ("24 hours",
"two weeks" — see DESIGN.md's substitution table):

1. collect seeds from the dialect's documentation and regression suite,
2. generate boundary-argument statements with the ten patterns,
3. execute them, deduplicating crashes through the oracle.

The seeds themselves run first: they establish baseline function coverage
(and regression suites are supposed to pass — a crashing seed would be a
pre-existing bug, attributed to the pseudo-pattern ``"seed"``).
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import List, Optional, Set

from ..dialects import dialect_by_name
from ..dialects.base import Dialect
from .collect import Seed, SeedCollector
from .oracle import CrashOracle, DiscoveredBug
from .patterns import GeneratedCase, PatternEngine
from .runner import Outcome, Runner

#: query budgets standing in for the paper's time budgets
BUDGET_24_HOURS = 20_000
BUDGET_TWO_WEEKS = 300_000


@dataclass
class CampaignResult:
    """Everything the benchmarks need from one campaign."""

    dialect: str
    queries_executed: int = 0
    seeds_collected: int = 0
    bugs: List[DiscoveredBug] = field(default_factory=list)
    false_positives: List[str] = field(default_factory=list)
    triggered_functions: Set[str] = field(default_factory=set)
    branch_coverage: int = 0
    outcomes: dict = field(default_factory=dict)  # kind -> count
    elapsed_seconds: float = 0.0

    @property
    def bug_count(self) -> int:
        return len(self.bugs)

    def bugs_by(self, attr: str) -> dict:
        out: dict = {}
        for bug in self.bugs:
            key = getattr(bug, attr)
            out[key] = out.get(key, 0) + 1
        return out


class Campaign:
    """One SOFT campaign over one dialect."""

    def __init__(
        self,
        dialect: Dialect,
        budget: int = BUDGET_24_HOURS,
        enable_coverage: bool = False,
        seed: int = 0,
        max_partners: int = 48,
        stop_when_all_found: bool = False,
    ) -> None:
        self.dialect = dialect
        self.budget = budget
        self.enable_coverage = enable_coverage
        self.rng = random.Random(seed)
        self.max_partners = max_partners
        self.stop_when_all_found = stop_when_all_found

    # ------------------------------------------------------------------
    def run(self) -> CampaignResult:
        started = time.monotonic()
        result = CampaignResult(dialect=self.dialect.name)
        runner = Runner(self.dialect, enable_coverage=self.enable_coverage)
        oracle = CrashOracle(self.dialect.name)
        expected = getattr(self.dialect, "bugs", [])

        collector = SeedCollector(self.dialect)
        seeds = collector.collect()
        result.seeds_collected = len(seeds)

        # step 0: replay the regression-suite seeds, observing each
        # function's result type (used to order partner enumeration)
        return_types = {}
        for seed_obj in seeds:
            if runner.executed >= self.budget:
                break
            outcome = runner.run(f"SELECT {seed_obj.sql};")
            self._record(result, oracle, outcome, "seed", runner)
            if outcome.result_type and seed_obj.function not in return_types:
                return_types[seed_obj.function] = outcome.result_type

        engine = PatternEngine(
            seeds,
            rng=self.rng,
            max_partners=self.max_partners,
            return_types=return_types,
        )
        for case in engine.generate_all():
            if runner.executed >= self.budget:
                break
            outcome = runner.run(case.sql)
            self._record(result, oracle, outcome, case.pattern, runner)
            if (
                self.stop_when_all_found
                and expected
                and oracle.recall_against(expected) >= 1.0
            ):
                break

        result.queries_executed = runner.executed
        result.bugs = list(oracle.bugs)
        result.false_positives = list(oracle.false_positives)
        result.triggered_functions = runner.triggered_functions
        result.branch_coverage = runner.branch_coverage
        result.elapsed_seconds = time.monotonic() - started
        return result

    # ------------------------------------------------------------------
    def _record(
        self,
        result: CampaignResult,
        oracle: CrashOracle,
        outcome: Outcome,
        pattern: str,
        runner: Runner,
    ) -> None:
        result.outcomes[outcome.kind] = result.outcomes.get(outcome.kind, 0) + 1
        if outcome.kind == "crash" and outcome.crash is not None:
            oracle.observe_crash(
                outcome.crash, outcome.sql, pattern, runner.executed
            )
        elif outcome.kind == "resource_kill":
            oracle.observe_resource_kill(outcome.sql, outcome.message)


def run_campaign(
    dialect_name: str,
    budget: int = BUDGET_24_HOURS,
    enable_coverage: bool = False,
    seed: int = 0,
    stop_when_all_found: bool = False,
) -> CampaignResult:
    """Convenience wrapper: run SOFT against a dialect by name."""
    dialect = dialect_by_name(dialect_name)
    return Campaign(
        dialect,
        budget=budget,
        enable_coverage=enable_coverage,
        seed=seed,
        stop_when_all_found=stop_when_all_found,
    ).run()
