"""Campaign orchestration: SOFT end-to-end against one dialect.

A campaign runs the three SOFT steps (§7.1) under a *query budget* — our
deterministic stand-in for the paper's wall-clock budgets ("24 hours",
"two weeks" — see DESIGN.md's substitution table):

1. collect seeds from the dialect's documentation and regression suite,
2. generate boundary-argument statements with the ten patterns,
3. execute them, deduplicating crashes through the oracle.

The seeds themselves run first: they establish baseline function coverage
(and regression suites are supposed to pass — a crashing seed would be a
pre-existing bug, attributed to the pseudo-pattern ``"seed"``).

Resilience (the long-campaign survival layer, :mod:`repro.robustness`):

* ``faults`` installs a deterministic :class:`FaultInjector` on the
  simulated server; the runner absorbs the injected noise (retry/backoff,
  watchdog kills, crash reconfirmation) so the campaign reports the same
  deduplicated bug set as a fault-free run.
* ``checkpoint_path`` periodically snapshots the campaign;
  ``run(resume=...)`` continues a killed campaign deterministically.  The
  resume replays the (deterministic) generation stream, *skipping* the
  first ``executed`` statements without executing them, then verifies the
  campaign RNG state matches the checkpoint before running anything new.
* A server that repeatedly fails to restart is quarantined by the circuit
  breaker: the campaign finalizes what it has (``result.quarantined``)
  instead of aborting, so multi-dialect sweeps degrade gracefully.

Per-fault-class counters are surfaced in ``CampaignResult.outcomes`` under
``fault.*`` keys; the plain outcome kinds (``ok``/``error``/…) still sum to
``queries_executed``.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple, Union

from ..dialects import dialect_by_name
from ..dialects.base import Dialect
from ..robustness.checkpoint import (
    CampaignCheckpoint,
    CheckpointError,
    rng_state_from_json,
    rng_state_to_json,
)
from ..robustness.faults import make_fault_injector
from ..robustness.policy import RetryPolicy, ServerQuarantined
from ..robustness.sandbox import ContainmentState
from ..robustness.watchdog import (
    DEFAULT_DEADLINE_SECONDS,
    Clock,
    SimulatedClock,
    WallClock,
    Watchdog,
)
from .collect import Seed, SeedCollector
from .config import (
    BUDGET_24_HOURS,
    BUDGET_TWO_WEEKS,
    DEFAULT_CHECKPOINT_EVERY,
    _UNSET,
    CampaignConfig,
    resolve_config,
)
from .oracles import (
    CaseInfo,
    Finding,
    OraclePipeline,
    OracleStateError,
    build_pipeline,
)
from .oracles.base import OracleSpec
from .oracles.crash import DiscoveredBug
from .patterns import GeneratedCase, PatternEngine
from .runner import Outcome, Runner
from .tables import TABLE_SETUP

# BUDGET_24_HOURS / BUDGET_TWO_WEEKS / DEFAULT_CHECKPOINT_EVERY now live in
# :mod:`repro.core.config`; re-imported above for their historical home here.


@dataclass
class CampaignResult:
    """Everything the benchmarks need from one campaign."""

    dialect: str
    queries_executed: int = 0
    seeds_collected: int = 0
    bugs: List[DiscoveredBug] = field(default_factory=list)
    false_positives: List[str] = field(default_factory=list)
    flaky_signals: List[str] = field(default_factory=list)
    #: non-crash oracle findings (divergences, conformance violations);
    #: empty under the default crash-only pipeline
    findings: List[Finding] = field(default_factory=list)
    triggered_functions: Set[str] = field(default_factory=set)
    branch_coverage: int = 0
    outcomes: dict = field(default_factory=dict)  # kind -> count (+ fault.*)
    fault_counters: Dict[str, int] = field(default_factory=dict)
    quarantined: bool = False
    quarantine_reason: str = ""
    elapsed_seconds: float = 0.0
    #: throughput instrumentation — real wall-clock time (monotonic), even
    #: when the campaign itself runs on a simulated clock, plus the parse/
    #: plan cache counters.  None of these enter :meth:`signature`.
    wall_seconds: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0
    #: plan→closure compilation counters (repro.perf.compiler); like the
    #: cache counters these are throughput instrumentation and never enter
    #: :meth:`signature` — compiled and interpreted runs sign identically
    compiled_executions: int = 0
    compile_fallbacks: int = 0
    #: sandbox supervisor health (``--sandbox`` campaigns only; the
    #: default-config signature layout is untouched when inactive)
    sandbox_active: bool = False
    sandbox_kills: int = 0          # SIGKILLs after blown wall deadlines
    sandbox_worker_deaths: int = 0  # workers that died on their own
    sandbox_respawns: int = 0
    open_breakers: List[str] = field(default_factory=list)
    quarantined_statements: int = 0
    skipped_statements: int = 0

    @property
    def bug_count(self) -> int:
        return len(self.bugs)

    @property
    def statements_per_second(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return self.queries_executed / self.wall_seconds

    @property
    def cache_hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    def bugs_by(self, attr: str) -> dict:
        out: dict = {}
        for bug in self.bugs:
            key = getattr(bug, attr)
            out[key] = out.get(key, 0) + 1
        return out

    def bug_keys(self) -> Set[Tuple[str, str]]:
        """The deduplicated bug identities (function, crash class)."""
        return {(b.function, b.crash_code) for b in self.bugs}

    def signature(self) -> tuple:
        """A deterministic fingerprint of the campaign outcome.

        Covers every reproducible field (everything except wall-clock
        elapsed time); two same-seed campaigns — or a killed+resumed
        campaign and its uninterrupted twin — must produce equal
        signatures.
        """
        base = (
            self.dialect,
            self.queries_executed,
            self.seeds_collected,
            tuple(
                (b.function, b.crash_code, b.pattern, b.sql, b.stage, b.query_index)
                for b in self.bugs
            ),
            tuple(self.false_positives),
            tuple(self.flaky_signals),
            tuple(sorted(self.triggered_functions)),
            self.branch_coverage,
            tuple(sorted(self.outcomes.items())),
            tuple(sorted(self.fault_counters.items())),
            self.quarantined,
        )
        if self.findings:
            base = base + (tuple(f.signature_tuple() for f in self.findings),)
        if self.sandbox_active:
            # sandbox campaigns fold the containment outcome in; default
            # campaigns keep the historical signature layout byte-identical
            base = base + (
                (
                    tuple(self.open_breakers),
                    self.quarantined_statements,
                    self.skipped_statements,
                    self.sandbox_kills,
                    self.sandbox_worker_deaths,
                    self.sandbox_respawns,
                ),
            )
        return base


class Campaign:
    """One SOFT campaign over one dialect.

    The campaign options live in a :class:`~repro.core.config.CampaignConfig`
    passed as ``config=``; the historical keyword arguments still work
    through a shim that emits a :class:`DeprecationWarning`.  The
    ``clock``/``rng``/``retry_policy`` runtime objects are not
    configuration and remain ordinary constructor arguments.
    """

    def __init__(
        self,
        dialect: Dialect,
        budget: Any = _UNSET,
        enable_coverage: Any = _UNSET,
        seed: Any = _UNSET,
        max_partners: Any = _UNSET,
        stop_when_all_found: Any = _UNSET,
        faults: Any = _UNSET,
        fault_seed: Any = _UNSET,
        checkpoint_path: Any = _UNSET,
        checkpoint_every: Any = _UNSET,
        clock: Optional[Clock] = None,
        rng: Optional[random.Random] = None,
        retry_policy: Optional[RetryPolicy] = None,
        statement_deadline: Any = _UNSET,
        statement_cache: Any = _UNSET,
        oracles: Any = _UNSET,
        budgets: Any = _UNSET,
        sandbox: Any = _UNSET,
        config: Optional[CampaignConfig] = None,
    ) -> None:
        config = resolve_config(
            "Campaign",
            config,
            {
                "budget": budget,
                "enable_coverage": enable_coverage,
                "seed": seed,
                "max_partners": max_partners,
                "stop_when_all_found": stop_when_all_found,
                "faults": faults,
                "fault_seed": fault_seed,
                "checkpoint_path": checkpoint_path,
                "checkpoint_every": checkpoint_every,
                "statement_deadline": statement_deadline,
                "statement_cache": statement_cache,
                "oracles": oracles,
                "budgets": budgets,
                "sandbox": sandbox,
            },
            dialect=dialect.name,
        )
        self.config = config
        self.dialect = dialect
        self.budget = config.budget
        self.oracle_names = config.oracles
        self.budgets = config.budgets
        self.sandbox_config = config.sandbox
        self.containment: Optional[ContainmentState] = (
            ContainmentState.from_config(self.sandbox_config)
            if self.sandbox_config is not None
            else None
        )
        self.enable_coverage = config.enable_coverage
        self.seed = config.seed
        self.statement_cache = config.statement_cache
        self.rng = rng if rng is not None else random.Random(config.seed)
        self.max_partners = config.max_partners
        self.stop_when_all_found = config.stop_when_all_found
        self.checkpoint_path = config.checkpoint_path
        self.checkpoint_every = config.checkpoint_every
        self.retry_policy = retry_policy
        self.statement_deadline = config.statement_deadline
        if clock is None:
            # faulted or checkpointed campaigns need steerable, restorable
            # time; plain campaigns keep reporting real elapsed seconds
            wants_simulated = (
                config.faults is not None or config.checkpoint_path is not None
            )
            clock = SimulatedClock() if wants_simulated else WallClock()
        self.clock = clock
        self.injector = make_fault_injector(
            config.faults, seed=config.fault_seed, clock=self.clock
        )
        #: optional streaming hooks (the service scheduler sets these):
        #: ``on_finding(finding, position)`` fires for every *new* oracle
        #: finding; ``on_progress(snapshot_dict)`` fires periodically
        self.on_finding = None
        self.on_progress = None
        self.progress_every = 200
        self._started = 0.0
        self._elapsed_offset = 0.0
        self._wall_started = 0.0

    # ------------------------------------------------------------------
    def run(
        self, resume: Union[None, str, CampaignCheckpoint] = None
    ) -> CampaignResult:
        cp: Optional[CampaignCheckpoint] = None
        if resume is not None:
            cp = (
                resume
                if isinstance(resume, CampaignCheckpoint)
                else CampaignCheckpoint.load(resume)
            )
            cp.validate_for(
                self.dialect.name,
                self.seed,
                self.budget,
                self.max_partners,
                self.enable_coverage,
            )
        self._started = self.clock.now()
        self._elapsed_offset = 0.0
        self._wall_started = time.monotonic()
        result = CampaignResult(dialect=self.dialect.name)
        # the pipeline comes first: non-crash oracles install the dialect's
        # logic flaws, which must be patched in before the server is built
        pipeline = build_pipeline(self.dialect, self.oracle_names)
        bootstrap_sql: Tuple[str, ...] = ()
        if self.config.statement_family == "predicate":
            bootstrap_sql = TABLE_SETUP
        runner = Runner(
            self.dialect,
            enable_coverage=self.enable_coverage,
            faults=self.injector,
            retry_policy=self.retry_policy,
            clock=self.clock,
            watchdog=Watchdog(self.clock, deadline_seconds=self.statement_deadline),
            statement_cache=self.statement_cache,
            compile_plans=self.config.compile,
            budgets=self.budgets,
            sandbox=self.sandbox_config,
            bootstrap_sql=bootstrap_sql,
        )
        runner.capture_fingerprints = pipeline.needs_fingerprints
        crash_oracle = pipeline.get("crash")
        expected = getattr(self.dialect, "bugs", [])

        collector = SeedCollector(self.dialect)
        seeds = collector.collect()
        result.seeds_collected = len(seeds)

        skip = 0
        return_types: Dict[str, str] = {}
        rng_verified = cp is None
        if cp is not None:
            # stream_position counts containment skips too; older
            # checkpoints (no skipped statements possible) fall back to
            # the executed count
            skip = (
                cp.stream_position
                if cp.stream_position is not None
                else cp.executed
            )
            return_types = self._restore(cp, runner, pipeline, result)

        position = 0
        try:
            # step 0: replay the regression-suite seeds, observing each
            # function's result type (used to order partner enumeration)
            for seed_obj in seeds:
                if position < skip:
                    position += 1  # executed before the checkpoint
                    continue
                if self._processed(runner) >= self.budget:
                    break
                sql = f"SELECT {seed_obj.sql};"
                case = CaseInfo("seed", seed_obj.function, seed_obj.family)
                outcome = self._contained_run(runner, sql, case, position)
                self._record(result, pipeline, outcome, case, position)
                if outcome.result_type and seed_obj.function not in return_types:
                    return_types[seed_obj.function] = outcome.result_type
                position += 1
                self._maybe_checkpoint(
                    runner, pipeline, result, return_types, position
                )

            # the campaign RNG is first consumed by the pattern engine; if
            # the skip ended inside the seed phase it must still be pristine
            if not rng_verified and position >= skip:
                self._verify_rng(cp)
                rng_verified = True

            engine = PatternEngine(
                seeds,
                rng=self.rng,
                max_partners=self.max_partners,
                return_types=return_types,
                statement_family=self.config.statement_family,
            )
            for case in engine.generate_all():
                if position < skip:
                    position += 1  # re-generated, already executed: skip
                    continue
                if not rng_verified:
                    self._verify_rng(cp)
                    rng_verified = True
                if self._processed(runner) >= self.budget:
                    break
                info = CaseInfo(case.pattern, case.seed_function, case.seed_family)
                outcome = self._contained_run(runner, case.sql, info, position)
                self._record(result, pipeline, outcome, info, position)
                position += 1
                if (
                    self.stop_when_all_found
                    and expected
                    and crash_oracle is not None
                    and crash_oracle.recall_against(expected) >= 1.0
                ):
                    break
                self._maybe_checkpoint(
                    runner, pipeline, result, return_types, position
                )
        except ServerQuarantined as exc:
            # the in-flight statement never completed; keep the outcome
            # accounting consistent with queries_executed
            runner.executed = max(runner.executed - 1, 0)
            result.quarantined = True
            result.quarantine_reason = str(exc)

        return self._finalize(result, runner, pipeline)

    # ------------------------------------------------------------------
    def _processed(self, runner: Runner) -> int:
        """Stream positions consumed so far: executions plus containment
        skips.  The budget caps *processed* positions, so a skipped
        statement spends its slot — this keeps serial and sharded runs on
        exactly the same stream prefix (a shard cannot know how many
        statements its siblings skipped).  Without containment this is
        just ``runner.executed``, i.e. the historical behaviour.
        """
        skipped = self.containment.skipped if self.containment is not None else 0
        return runner.executed + skipped

    def _contained_run(
        self, runner: Runner, sql: str, case: CaseInfo, position: int
    ) -> Outcome:
        """Run one statement through the crash-loop containment layer.

        A statement that is quarantined (it killed a worker before) or
        whose function family's circuit breaker is open is *skipped*: it
        produces exactly one ``skipped`` outcome and never reaches the
        runner.  Everything else executes normally and feeds the
        containment state.
        """
        containment = self.containment
        if containment is None:
            return runner.run(sql, position=position)
        reason = containment.should_skip(sql, case.family)
        if reason is not None:
            containment.note_skip()
            return Outcome("skipped", sql, message=reason)
        outcome = runner.run(sql, position=position)
        containment.observe(outcome.kind, sql, case.family, outcome.message)
        return outcome

    # ------------------------------------------------------------------
    def _record(
        self,
        result: CampaignResult,
        pipeline: OraclePipeline,
        outcome: Outcome,
        case: CaseInfo,
        position: int,
    ) -> None:
        result.outcomes[outcome.kind] = result.outcomes.get(outcome.kind, 0) + 1
        found = pipeline.observe(outcome, case, position)
        if self.on_finding is not None:
            for finding in found:
                self.on_finding(finding, position)
        if (
            self.on_progress is not None
            and self.progress_every > 0
            and (position + 1) % self.progress_every == 0
        ):
            self.on_progress(
                {
                    "position": position + 1,
                    "budget": self.budget,
                    "outcomes": dict(result.outcomes),
                }
            )

    def _finalize(
        self, result: CampaignResult, runner: Runner, pipeline: OraclePipeline
    ) -> CampaignResult:
        result.queries_executed = runner.executed
        crash = pipeline.get("crash")
        if crash is not None:
            result.bugs = list(crash.bugs)
            result.false_positives = list(crash.false_positives)
            result.flaky_signals = list(crash.flaky_signals)
        result.findings = pipeline.extra_findings()
        result.triggered_functions = runner.triggered_functions
        result.branch_coverage = runner.branch_coverage
        merged: Dict[str, int] = dict(runner.fault_counters)
        if self.injector is not None:
            for kind, count in self.injector.counters.items():
                merged[kind] = merged.get(kind, 0) + count
        result.fault_counters = merged
        for kind, count in sorted(merged.items()):
            result.outcomes[f"fault.{kind}"] = count
        result.elapsed_seconds = (
            self.clock.now() - self._started
        ) + self._elapsed_offset
        result.wall_seconds = time.monotonic() - self._wall_started
        result.cache_hits = runner.cache_hits
        result.cache_misses = runner.cache_misses
        result.compiled_executions = runner.compiled_executions
        result.compile_fallbacks = runner.compile_fallbacks
        if self.containment is not None:
            result.sandbox_active = True
            result.open_breakers = self.containment.open_breakers
            result.quarantined_statements = len(self.containment.quarantine)
            result.skipped_statements = self.containment.skipped
            if runner.sandbox is not None:
                result.sandbox_kills = runner.sandbox.kills
                result.sandbox_worker_deaths = runner.sandbox.worker_deaths
                result.sandbox_respawns = runner.sandbox.respawns
        runner.close()
        return result

    # ------------------------------------------------------------------
    # checkpoint/resume plumbing
    def _maybe_checkpoint(
        self,
        runner: Runner,
        pipeline: OraclePipeline,
        result: CampaignResult,
        return_types: Dict[str, str],
        position: int,
    ) -> None:
        if self.checkpoint_path is None or self.checkpoint_every <= 0:
            return
        if runner.executed == 0 or runner.executed % self.checkpoint_every:
            return
        self._capture(runner, pipeline, result, return_types, position).save(
            self.checkpoint_path
        )

    def _capture(
        self,
        runner: Runner,
        pipeline: OraclePipeline,
        result: CampaignResult,
        return_types: Dict[str, str],
        position: int,
    ) -> CampaignCheckpoint:
        coverage_arcs: List[list] = []
        coverage_lines: List[list] = []
        if runner.coverage is not None:
            coverage_arcs = [list(arc) for arc in sorted(runner.coverage.arcs)]
            coverage_lines = [list(line) for line in sorted(runner.coverage.lines)]
        sandbox_state = None
        if self.containment is not None and runner.sandbox is not None:
            sandbox_state = {
                "containment": self.containment.export_state(),
                "kills": runner.sandbox.kills,
                "worker_deaths": runner.sandbox.worker_deaths,
                "respawns": runner.sandbox.respawns,
            }
        return CampaignCheckpoint(
            dialect=self.dialect.name,
            seed=self.seed,
            budget=self.budget,
            max_partners=self.max_partners,
            enable_coverage=self.enable_coverage,
            executed=runner.executed,
            restarts=runner.restarts,
            timeouts=runner.timeouts,
            flaky_crashes=runner.flaky_crashes,
            seeds_collected=result.seeds_collected,
            outcomes=dict(result.outcomes),
            fault_counters=dict(runner.fault_counters),
            return_types=dict(return_types),
            oracle=pipeline.export_state(),
            rng_state=rng_state_to_json(self.rng.getstate()),
            ctx_rng_state=rng_state_to_json(runner.server.ctx.rng.getstate()),
            injector=self.injector.state() if self.injector is not None else None,
            triggered_functions=sorted(runner.server.ctx.triggered_functions),
            stats=dict(runner.server.ctx.stats),
            coverage_arcs=coverage_arcs,
            coverage_lines=coverage_lines,
            elapsed_seconds=(self.clock.now() - self._started)
            + self._elapsed_offset,
            stream_position=position,
            sandbox=sandbox_state,
        )

    def _restore(
        self,
        cp: CampaignCheckpoint,
        runner: Runner,
        pipeline: OraclePipeline,
        result: CampaignResult,
    ) -> Dict[str, str]:
        runner.executed = cp.executed
        runner.restarts = cp.restarts
        runner.timeouts = cp.timeouts
        runner.flaky_crashes = cp.flaky_crashes
        runner.fault_counters = dict(cp.fault_counters)
        try:
            pipeline.restore_state(cp.oracle)
        except OracleStateError as exc:
            raise CheckpointError(str(exc)) from exc
        result.outcomes = dict(cp.outcomes)
        if self.injector is not None and cp.injector is not None:
            self.injector.restore_state(cp.injector)
        ctx = runner.server.ctx
        ctx.triggered_functions |= set(cp.triggered_functions)
        ctx.stats.update(cp.stats)
        if cp.ctx_rng_state is not None:
            ctx.rng.setstate(rng_state_from_json(cp.ctx_rng_state))
        if runner.coverage is not None:
            runner.coverage.arcs |= {tuple(arc) for arc in cp.coverage_arcs}
            runner.coverage.lines |= {tuple(line) for line in cp.coverage_lines}
        if cp.sandbox is not None and self.containment is not None:
            self.containment.restore_state(cp.sandbox["containment"])
            if runner.sandbox is not None:
                runner.sandbox.kills = cp.sandbox["kills"]
                runner.sandbox.worker_deaths = cp.sandbox["worker_deaths"]
                runner.sandbox.respawns = cp.sandbox["respawns"]
        self._elapsed_offset = cp.elapsed_seconds
        return dict(cp.return_types)

    def _verify_rng(self, cp: Optional[CampaignCheckpoint]) -> None:
        if cp is None or cp.rng_state is None:
            return
        current = rng_state_to_json(self.rng.getstate())
        if current != cp.rng_state:
            raise CheckpointError(
                "deterministic replay diverged: the campaign RNG state after "
                "skipping does not match the checkpoint (was the checkpoint "
                "written by a different code version or configuration?)"
            )


def run_campaign(
    dialect_name: Optional[str] = None,
    budget: Any = _UNSET,
    enable_coverage: Any = _UNSET,
    seed: Any = _UNSET,
    stop_when_all_found: Any = _UNSET,
    faults: Any = _UNSET,
    fault_seed: Any = _UNSET,
    checkpoint: Any = _UNSET,
    checkpoint_every: Any = _UNSET,
    resume: Union[None, str, CampaignCheckpoint] = None,
    statement_cache: Any = _UNSET,
    oracles: OracleSpec = _UNSET,
    budgets: Any = _UNSET,
    sandbox: Any = _UNSET,
    config: Optional[CampaignConfig] = None,
) -> CampaignResult:
    """Convenience wrapper: run SOFT against a dialect by name.

    This is the compatibility surface — the historical keyword arguments
    keep working here without a deprecation warning (they are folded into
    a :class:`CampaignConfig` internally).  New code should build the
    config itself and pass ``config=`` (``dialect_name`` may then be
    omitted in favour of ``config.dialect``).
    """
    config = resolve_config(
        "run_campaign",
        config,
        {
            "budget": budget,
            "enable_coverage": enable_coverage,
            "seed": seed,
            "stop_when_all_found": stop_when_all_found,
            "faults": faults,
            "fault_seed": fault_seed,
            "checkpoint_path": checkpoint,
            "checkpoint_every": checkpoint_every,
            "statement_cache": statement_cache,
            "oracles": oracles,
            "budgets": budgets,
            "sandbox": sandbox,
        },
        dialect=dialect_name or "",
        warn=False,
    )
    if not config.dialect:
        raise ValueError("run_campaign needs a dialect name (or config.dialect)")
    dialect = dialect_by_name(config.dialect)
    return Campaign(dialect, config=config).run(resume=resume)


def run_campaigns(
    dialect_names: List[str],
    **kwargs,
) -> Dict[str, CampaignResult]:
    """Run SOFT against several dialects, degrading gracefully.

    Each dialect gets its own campaign (and its own circuit breaker); a
    quarantined server yields a partial, ``quarantined`` result instead of
    aborting the sweep — the remaining dialects still run.  A ``config=``
    keyword applies the same :class:`CampaignConfig` to every dialect.
    """
    config: Optional[CampaignConfig] = kwargs.pop("config", None)
    results: Dict[str, CampaignResult] = {}
    for name in dialect_names:
        if config is not None:
            results[name] = run_campaign(config=config.replace(dialect=name), **kwargs)
        else:
            results[name] = run_campaign(name, **kwargs)
    return results
