"""Shared false-positive guards for result-comparing oracles.

Every oracle that judges a statement by *re-executing* something — the
differential oracle replaying on peers, the metamorphic oracles running
partition variants or an optimization-suppressed arm — faces the same
trap: a statement whose result legitimately varies between executions
will diverge without any bug.  The per-statement RNG is keyed on the
statement text, so even "the same" impure call re-rendered inside a
variant draws differently; and ``system``/``sequence`` functions answer
from ambient state no replay can reproduce.

This module is the single home for that exclusion logic, so the
differential, conformance, TLP, and NoREC oracles cannot drift apart on
what counts as replay-safe.
"""

from __future__ import annotations

import re
from typing import List, Sequence

#: ``name(`` shapes — how an oracle learns which functions a statement calls
CALL_RE = re.compile(r"([A-Za-z_][A-Za-z0-9_]*)\s*\(")

#: families whose results depend on ambient state (session, sequences) and
#: therefore legitimately differ between executions or across dialects even
#: when the documentation matches word for word
INCOMPARABLE_FAMILIES = frozenset({"system", "sequence"})


def called_functions(sql: str, registry) -> List[str]:
    """Called names that exist in *registry*, in first-mention order."""
    out: List[str] = []
    for raw in CALL_RE.findall(sql):
        name = raw.lower()
        if name in out:
            continue
        if registry.contains(name):
            out.append(name)
    return out


def replay_safe(called: Sequence[str], registry) -> bool:
    """True when every called function gives the same answer on re-execution.

    A function qualifies when it is pure and outside the incomparable
    families; any impure, ``system``, or ``sequence`` call poisons the
    whole statement for comparison purposes.
    """
    for name in called:
        definition = registry.lookup(name)
        if not definition.pure or definition.family in INCOMPARABLE_FAMILIES:
            return False
    return True
