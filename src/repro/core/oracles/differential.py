"""Differential oracle: cross-dialect result comparison for logic bugs.

Crash oracles miss bugs that return *wrong answers*.  The differential
oracle closes that gap with the classic cross-DBMS referee: when a
statement succeeds on the campaign dialect, replay it on peer dialects
whose documentation promises identical semantics for every function the
statement calls, and flag any fingerprint divergence
(:mod:`repro.engine.fingerprint`).

The comparability bar is deliberately strict — a differential finding is
only as trustworthy as the claim that the two systems *should* agree:

* every called function must exist in both registries with identical
  documentation, signature, family, and aggregate-ness (the registry keeps
  metadata when a flaw is patched in, so seeded ``logic_flaw`` functions
  still qualify — that is exactly the point);
* the function must be pure on the campaign dialect: non-deterministic or
  stateful results legitimately differ;
* ``system`` and ``sequence`` families are excluded wholesale —
  ``VERSION()`` is documented identically everywhere and agrees nowhere;
* statements containing ``CAST(`` or ``UNION`` are skipped: cast rules and
  set-operation type unification are dialect policy, not function
  semantics;
* statements carrying a digit run at least as wide as the narrower
  dialect's ``decimal_max_digits`` are skipped per pair — overflow
  behaviour at the numeric cliff is a documented *difference*.

Peers run as throwaway in-process servers owned by the oracle.  A peer
that errors is skipped (strictness differences are the conformance
oracle's job); a peer that crashes is restarted and skipped — peer crashes
are that dialect's own injected bugs, already discoverable by running a
campaign against it.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from ...dialects import dialect_names
from ...dialects.base import Dialect
from ...dialects.bugs import LogicFlaw, find_logic_flaw
from ...engine.connection import ServerCrashed
from ...engine.errors import SQLError
from ...engine.fingerprint import (
    ResultFingerprint,
    divergence_class,
    fingerprint_result,
)
from ..runner import Outcome
from .base import CaseInfo, Finding, Oracle, check_state_version
from .guards import INCOMPARABLE_FAMILIES, called_functions

#: report labels per divergence class (most blatant first)
_LABELS = {"cardinality": "WRONGCARD", "type": "WRONGTYPE", "value": "WRONG"}


@dataclass
class DivergenceFinding(Finding):
    """One cross-dialect disagreement on a documented-identical call."""

    dbms: str                    # campaign dialect
    peer: str                    # the disagreeing peer dialect
    function: str                # attributed function (lower-case)
    divergence: str              # cardinality | type | value
    pattern: str                 # generation pattern of the statement
    sql: str
    query_index: int             # 1-based global statement position
    own_digest: str
    peer_digest: str
    flaw: Optional[LogicFlaw] = field(default=None, compare=False)

    kind = "divergence"

    @property
    def key(self) -> Tuple:
        # one finding per (function, unordered pair, class): re-discovering
        # the same disagreement through a different statement is not news
        return (self.function, tuple(sorted((self.dbms, self.peer))), self.divergence)

    @property
    def bug_type_label(self) -> str:
        return _LABELS[self.divergence]

    @property
    def attribution(self) -> Optional[LogicFlaw]:
        return self.flaw

    def one_liner(self) -> str:
        return (
            f"[{self.bug_type_label}] {self.function} vs {self.peer} "
            f"via {self.pattern}: {self.sql}"
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "dbms": self.dbms,
            "peer": self.peer,
            "function": self.function,
            "divergence": self.divergence,
            "pattern": self.pattern,
            "sql": self.sql,
            "query_index": self.query_index,
            "own_digest": self.own_digest,
            "peer_digest": self.peer_digest,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "DivergenceFinding":
        return cls(
            dbms=data["dbms"],
            peer=data["peer"],
            function=data["function"],
            divergence=data["divergence"],
            pattern=data["pattern"],
            sql=data["sql"],
            query_index=int(data["query_index"]),
            own_digest=data["own_digest"],
            peer_digest=data["peer_digest"],
            flaw=find_logic_flaw(data["dbms"], data["function"]),
        )


ORACLE_STATE_VERSION = 1
_STATE_KEYS = ("dbms", "findings", "checked", "compared", "skipped")


class DifferentialOracle(Oracle):
    """Replays successful statements on peer dialects and compares."""

    name = "differential"
    needs_fingerprints = True

    def __init__(self, dialect: Dialect) -> None:
        self.dialect = dialect
        self.dbms = dialect.name
        self.peer_names = [n for n in dialect_names() if n != dialect.name]
        self._findings: List[DivergenceFinding] = []
        self._seen: Set[Tuple] = set()
        # peer name -> (dialect, server, connection); created on first use so
        # a campaign that never produces a comparable statement pays nothing
        self._peers: Dict[str, Tuple] = {}
        # (function, peer) -> comparability verdict
        self._comparable_cache: Dict[Tuple[str, str], bool] = {}
        # diagnostics (merged additively across shards, never in signatures)
        self.checked = 0
        self.compared = 0
        self.skipped = 0

    # ------------------------------------------------------------------
    def observe(
        self, outcome: Outcome, case: CaseInfo, index: int
    ) -> Optional[Finding]:
        if outcome.kind != "ok" or outcome.fingerprint is None:
            return None
        self.checked += 1
        sql = outcome.sql
        called = self._called_functions(sql)
        if not called:
            return None
        upper = sql.upper()
        if "CAST(" in upper or "UNION" in upper:
            self.skipped += 1
            return None
        first: Optional[DivergenceFinding] = None
        for peer_name in self.peer_names:
            finding = self._compare_against(
                peer_name, outcome.fingerprint, sql, called, case, index
            )
            if finding is not None and first is None:
                first = finding
        return first

    def findings(self) -> List[Finding]:
        return list(self._findings)

    # ------------------------------------------------------------------
    def _called_functions(self, sql: str) -> List[str]:
        """Called names that exist in the campaign dialect's registry."""
        return called_functions(sql, self.dialect.registry)

    def _comparable(self, function: str, peer_name: str, peer: Dialect) -> bool:
        cached = self._comparable_cache.get((function, peer_name))
        if cached is not None:
            return cached
        verdict = self._comparable_uncached(function, peer)
        self._comparable_cache[(function, peer_name)] = verdict
        return verdict

    def _comparable_uncached(self, function: str, peer: Dialect) -> bool:
        if not peer.registry.contains(function):
            return False
        own = self.dialect.registry.lookup(function)
        other = peer.registry.lookup(function)
        if not own.pure or own.family in INCOMPARABLE_FAMILIES:
            return False
        return (
            own.doc == other.doc
            and own.signature == other.signature
            and own.family == other.family
            and own.is_aggregate == other.is_aggregate
        )

    def _compare_against(
        self,
        peer_name: str,
        own_fp: ResultFingerprint,
        sql: str,
        called: Sequence[str],
        case: CaseInfo,
        index: int,
    ) -> Optional[DivergenceFinding]:
        peer_dialect, _, _ = self._peer(peer_name)
        for function in called:
            if not self._comparable(function, peer_name, peer_dialect):
                self.skipped += 1
                return None
        # numeric-cliff guard: wide literals overflow at different widths
        narrow = min(
            self.dialect.limits.decimal_max_digits,
            peer_dialect.limits.decimal_max_digits,
        )
        if re.search(r"\d{%d,}" % narrow, sql):
            self.skipped += 1
            return None
        peer_fp = self._execute_on_peer(peer_name, sql)
        if peer_fp is None:
            self.skipped += 1
            return None
        self.compared += 1
        divergence = divergence_class(own_fp, peer_fp)
        if divergence is None:
            return None
        function = case.function if case.function in called else called[0]
        finding = DivergenceFinding(
            dbms=self.dbms,
            peer=peer_name,
            function=function,
            divergence=divergence,
            pattern=case.pattern,
            sql=sql,
            query_index=index + 1,
            own_digest=own_fp.digest,
            peer_digest=peer_fp.digest,
            flaw=find_logic_flaw(self.dbms, function),
        )
        if finding.key in self._seen:
            return None
        self._seen.add(finding.key)
        self._findings.append(finding)
        return finding

    # -- peer lifecycle -----------------------------------------------------
    def _peer(self, name: str) -> Tuple:
        peer = self._peers.get(name)
        if peer is None:
            from ...dialects import dialect_by_name

            dialect = dialect_by_name(name)
            server = dialect.create_server()
            peer = (dialect, server, server.connect())
            self._peers[name] = peer
        return peer

    def _execute_on_peer(self, name: str, sql: str) -> Optional[ResultFingerprint]:
        dialect, server, conn = self._peer(name)
        # pure functions cannot read sequence state, but clearing it keeps
        # the peer history-independent no matter what ran before
        server.ctx.clear_sequence_state()
        try:
            result = conn.execute(sql)
        except SQLError:
            return None
        except ServerCrashed:
            # the peer's own injected bug — not this campaign's business
            server.restart()
            self._peers[name] = (dialect, server, server.connect())
            return None
        except RecursionError:
            del self._peers[name]
            return None
        return fingerprint_result(result)

    # -- checkpoint/merge ---------------------------------------------------
    def export_state(self) -> Dict[str, Any]:
        return {
            "version": ORACLE_STATE_VERSION,
            "dbms": self.dbms,
            "findings": [f.to_dict() for f in self._findings],
            "checked": self.checked,
            "compared": self.compared,
            "skipped": self.skipped,
        }

    def restore_state(self, state: Dict[str, Any]) -> None:
        check_state_version(
            state, ORACLE_STATE_VERSION, _STATE_KEYS, "differential oracle"
        )
        self._findings = [
            DivergenceFinding.from_dict(row) for row in state.get("findings", [])
        ]
        self._seen = {f.key for f in self._findings}
        self.checked = int(state.get("checked", 0))
        self.compared = int(state.get("compared", 0))
        self.skipped = int(state.get("skipped", 0))

    def merge(self, shard_states: Sequence[Dict[str, Any]]) -> None:
        """Replay shard findings in global stream order (first keeps)."""
        collected = list(self._findings)
        for state in shard_states:
            check_state_version(
                state, ORACLE_STATE_VERSION, _STATE_KEYS, "differential oracle"
            )
            collected.extend(
                DivergenceFinding.from_dict(row)
                for row in state.get("findings", [])
            )
            self.checked += int(state.get("checked", 0))
            self.compared += int(state.get("compared", 0))
            self.skipped += int(state.get("skipped", 0))
        collected.sort(key=lambda f: f.query_index)
        self._findings = []
        self._seen = set()
        for finding in collected:
            if finding.key in self._seen:
                continue
            self._seen.add(finding.key)
            self._findings.append(finding)
