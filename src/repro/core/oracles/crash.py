"""Crash oracle: deduplication and attribution of observed crashes.

A crash is identified by ``(crashing function, crash class)`` within one
DBMS — the same granularity developers use when marking reports as
duplicates.  When the repository's injected-bug registry knows the identity,
the discovery is attributed to it (this is how the benchmarks check recall
against Table 4); unknown identities are still recorded, so the oracle works
unchanged against user-supplied dialects.

This is the original (and default) SOFT oracle, ported onto the
:class:`~repro.core.oracles.base.Oracle` protocol unchanged in behaviour:
a crash-only campaign reports byte-identical results to the pre-pipeline
code, including checkpoint round-trips and parallel shard merges.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from ...dialects.bugs import InjectedBug, find_bug
from ...engine.errors import CrashSignal
from ..runner import Outcome
from .base import CaseInfo, Finding, Oracle, check_state_version

#: kill-reason normalisation, hoisted to import time: digit runs collapse to
#: ``N`` so one runaway argument pattern counts as one false positive no
#: matter which concrete boundary value produced it
_KILL_REASON_RE = re.compile(r"\d+")

#: checkpoint schema version for :meth:`CrashOracle.export_state`; version 1
#: is the historical unversioned dict, still loadable via the fallback in
#: :meth:`CrashOracle.restore_state`
ORACLE_STATE_VERSION = 2

_STATE_KEYS = ("dbms", "bugs", "false_positives", "flaky_signals", "fp_seen")


@dataclass
class DiscoveredBug(Finding):
    """One deduplicated crash discovery."""

    dbms: str
    function: str            # crashing built-in function
    crash_code: str          # NPD | SEGV | ...
    pattern: str             # pattern of the generated statement ("seed" if none)
    sql: str                 # the triggering statement
    stage: str               # parse | optimize | execute
    backtrace: List[str]
    message: str
    query_index: int         # how many statements had run when it surfaced
    injected: Optional[InjectedBug] = None

    kind = "crash"

    @property
    def key(self) -> Tuple[str, str]:
        return (self.function, self.crash_code)

    @property
    def bug_type_label(self) -> str:
        return self.crash_code

    @property
    def attribution(self) -> Optional[InjectedBug]:
        return self.injected

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable form (used by campaign checkpoints)."""
        return {
            "dbms": self.dbms,
            "function": self.function,
            "crash_code": self.crash_code,
            "pattern": self.pattern,
            "sql": self.sql,
            "stage": self.stage,
            "backtrace": list(self.backtrace),
            "message": self.message,
            "query_index": self.query_index,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "DiscoveredBug":
        """Rebuild a discovery; the injected-bug link is re-resolved from
        the registry rather than serialized."""
        bug = cls(**data)  # type: ignore[arg-type]
        bug.backtrace = list(bug.backtrace)
        bug.injected = find_bug(bug.dbms, bug.function, bug.crash_code)
        return bug


class CrashOracle(Oracle):
    """Deduplicates crashes and tracks false positives for one dialect."""

    name = "crash"
    needs_fingerprints = False

    def __init__(self, dbms: str) -> None:
        self.dbms = dbms
        self.bugs: List[DiscoveredBug] = []
        self._seen: Set[Tuple[str, str]] = set()
        self._fp_seen: Set[str] = set()
        #: deduplicated (stream index, sql, normalized reason) kill records;
        #: the index is what lets shard merges replay global stream order
        self._fp_records: List[Tuple[Optional[int], str, str]] = []
        #: (stream index, sql) per non-reproducible crash, in stream order
        self._flaky_records: List[Tuple[Optional[int], str]] = []

    # -- legacy list views (the public pre-pipeline surface) ---------------
    @property
    def false_positives(self) -> List[str]:
        return [sql for _, sql, _ in self._fp_records]

    @property
    def flaky_signals(self) -> List[str]:
        return [sql for _, sql in self._flaky_records]

    # ------------------------------------------------------------------
    # Oracle protocol
    def observe(
        self, outcome: Outcome, case: CaseInfo, index: int
    ) -> Optional[DiscoveredBug]:
        # query_index is 1-based ("how many statements had run"), matching
        # the serial campaign's historical runner.executed accounting
        if outcome.kind == "crash" and outcome.crash is not None:
            return self.observe_crash(
                outcome.crash, outcome.sql, case.pattern, index + 1
            )
        if outcome.kind == "resource_kill":
            self._record_resource_kill(outcome.sql, outcome.message, index)
        elif outcome.kind == "flaky":
            self._flaky_records.append((index, outcome.sql))
        return None

    def findings(self) -> List[DiscoveredBug]:
        return list(self.bugs)

    # ------------------------------------------------------------------
    # direct observation API (used by baselines/benchmarks and the legacy
    # call sites; indices default to "unknown")
    def observe_crash(
        self,
        crash: CrashSignal,
        sql: str,
        pattern: str,
        query_index: int,
    ) -> Optional[DiscoveredBug]:
        """Record a crash; returns the discovery when it is new."""
        function = (crash.function or "unknown").lower()
        key = (function, crash.code)
        if key in self._seen:
            return None
        self._seen.add(key)
        discovery = DiscoveredBug(
            dbms=self.dbms,
            function=function,
            crash_code=crash.code,
            pattern=pattern,
            sql=sql,
            stage=crash.stage or "execute",
            backtrace=list(crash.backtrace),
            message=crash.message,
            query_index=query_index,
            injected=find_bug(self.dbms, function, crash.code),
        )
        self.bugs.append(discovery)
        return discovery

    def observe_resource_kill(self, sql: str, message: str = "") -> bool:
        """Record a forcibly-terminated query (false-positive candidate).

        Deduplicated by the normalised kill reason: one runaway argument
        pattern ("REPEAT('a', 9999999999) exceeds the memory limit") is one
        false positive no matter how many functions it was fed to — which
        is how the paper counts its 7 FPs.
        """
        return self._record_resource_kill(sql, message, None)

    def _record_resource_kill(
        self, sql: str, message: str, index: Optional[int]
    ) -> bool:
        reason = _KILL_REASON_RE.sub("N", message or sql.split("(", 1)[0]).lower()
        if reason in self._fp_seen:
            return False
        self._fp_seen.add(reason)
        self._fp_records.append((index, sql, reason))
        return True

    def observe_flaky_crash(self, sql: str, message: str = "") -> None:
        """Record a crash that did not reproduce on re-execution.

        The paper's triage discards crash reports it cannot reproduce —
        infrastructure noise, not bugs.  We keep the signal (for the
        campaign health report) but never promote it to a
        :class:`DiscoveredBug`.
        """
        self._flaky_records.append((None, sql))

    # ------------------------------------------------------------------
    # checkpoint support
    def export_state(self) -> Dict[str, Any]:
        """Everything needed to rebuild this oracle (JSON-serializable)."""
        return {
            "version": ORACLE_STATE_VERSION,
            "dbms": self.dbms,
            "bugs": [bug.to_dict() for bug in self.bugs],
            "false_positives": [list(r) for r in self._fp_records],
            "flaky_signals": [list(r) for r in self._flaky_records],
            "fp_seen": sorted(self._fp_seen),
        }

    def restore_state(self, state: Dict[str, Any]) -> None:
        if "version" not in state:
            self._restore_v1(state)
            return
        check_state_version(
            state, ORACLE_STATE_VERSION, _STATE_KEYS, "crash oracle"
        )
        self.bugs = [DiscoveredBug.from_dict(d) for d in state["bugs"]]
        self._fp_records = [
            (r[0], r[1], r[2]) for r in state["false_positives"]
        ]
        self._flaky_records = [(r[0], r[1]) for r in state["flaky_signals"]]
        self._seen = {bug.key for bug in self.bugs}
        self._fp_seen = set(state["fp_seen"])

    def _restore_v1(self, state: Dict[str, Any]) -> None:
        """Version-1 fallback: the historical unversioned flat-list format
        (false positives and flaky signals as bare SQL strings)."""
        from .base import OracleStateError

        unknown = sorted(set(state) - set(_STATE_KEYS))
        if unknown:
            raise OracleStateError(
                f"crash oracle state carries unknown keys {unknown}; "
                "refusing a partial restore (checkpoint from a newer "
                "version?)"
            )
        self.bugs = [DiscoveredBug.from_dict(d) for d in state["bugs"]]
        # v1 recorded neither stream indices nor per-kill reasons; the
        # dedup truth lives in fp_seen, which is restored separately
        self._fp_records = [
            (None, sql, "") for sql in state["false_positives"]
        ]
        self._flaky_records = [
            (None, sql) for sql in state.get("flaky_signals", [])
        ]
        self._seen = {bug.key for bug in self.bugs}
        self._fp_seen = set(state["fp_seen"])

    def merge(self, shard_states: Sequence[Dict[str, Any]]) -> None:
        """Fold shard states in, replaying records in global stream order.

        Each shard deduplicated within its own slice; re-sorting the kept
        records by stream index and re-deduplicating keeps exactly the
        record a serial run would have kept (the globally first occurrence
        of each identity is necessarily the first within its shard).
        """
        bug_records: List[Tuple[int, DiscoveredBug]] = [
            (bug.query_index, bug) for bug in self.bugs
        ]
        fp_records = list(self._fp_records)
        flaky_records = list(self._flaky_records)
        for state in shard_states:
            check_state_version(
                state, ORACLE_STATE_VERSION, _STATE_KEYS, "crash oracle shard"
            )
            for data in state["bugs"]:
                bug = DiscoveredBug.from_dict(data)
                bug_records.append((bug.query_index, bug))
            fp_records.extend((r[0], r[1], r[2]) for r in state["false_positives"])
            flaky_records.extend((r[0], r[1]) for r in state["flaky_signals"])

        def order(index: Optional[int]) -> int:
            return -1 if index is None else index

        self.bugs = []
        self._seen = set()
        for _, bug in sorted(bug_records, key=lambda r: order(r[0])):
            if bug.key in self._seen:
                continue
            self._seen.add(bug.key)
            self.bugs.append(bug)
        self._fp_records = []
        self._fp_seen = set()
        for index, sql, reason in sorted(fp_records, key=lambda r: order(r[0])):
            if reason in self._fp_seen:
                continue
            self._fp_seen.add(reason)
            self._fp_records.append((index, sql, reason))
        self._flaky_records = sorted(flaky_records, key=lambda r: order(r[0]))

    # ------------------------------------------------------------------
    @property
    def attributed(self) -> List[DiscoveredBug]:
        return [b for b in self.bugs if b.injected is not None]

    def recall_against(self, expected: List[InjectedBug]) -> float:
        """Fraction of *expected* injected bugs discovered so far."""
        if not expected:
            return 1.0
        found = {b.injected.bug_id for b in self.attributed}
        return sum(1 for bug in expected if bug.bug_id in found) / len(expected)
