"""Metamorphic logic-bug oracles: TLP and NoREC over the seeded table.

Differential testing needs a second system to disagree with; metamorphic
testing needs only a law the system must obey against itself.  Both
oracles here watch the predicate statement family
(``CampaignConfig(statement_family="predicate")`` — ``SELECT ... FROM
fuzz_t WHERE <p>``) and check one law each:

* **TLP** (ternary logic partitioning): any predicate splits the rows of
  a table into exactly three camps — ``p`` IS TRUE, ``p`` IS FALSE, and
  ``p`` IS NULL.  The multiset union of the three partition queries must
  therefore equal the unfiltered table, row for row.  A WHERE clause or
  null-test that mishandles three-valued logic breaks the reunion.
* **NoREC** (non-optimizing reference engine construction): the same
  statement executed with the optimizer suppressed
  (``SET optimizer_passes = 'none'`` — see
  :func:`repro.engine.optimizer.optimize_statement`) must return the
  same rows as the optimized plan.  A rewrite that is not
  semantics-preserving — the classic being a constant fold that loses
  NULL — shows up as a fingerprint divergence between the two arms.

Both laws are checked on **oracle-owned servers** built from the campaign
dialect, not on the campaign's own connection: the campaign runner may be
injecting infrastructure faults or caching plans, and a law verdict must
come from deterministic, interference-free executions.  Arm servers run
without a statement cache (variant texts execute once each, and a plan
cached under one optimizer configuration must never serve another).

False-positive discipline comes from :mod:`.guards`: statements calling
impure or ``system``/``sequence`` functions are skipped — the
per-statement RNG is keyed on statement text, so a partition variant of
an impure call legitimately draws differently.  An arm that raises an SQL
error skips the statement (strictness is the conformance oracle's
business); an arm that crashes is rebuilt and the statement skipped
(crashes are the crash oracle's).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from ...dialects.base import Dialect
from ...dialects.bugs import LogicFlaw, find_predicate_flaw
from ...engine.connection import ServerCrashed
from ...engine.errors import SQLError
from ...engine.fingerprint import (
    ResultFingerprint,
    divergence_class,
    fingerprint_result,
)
from ...sqlast import Select, parse_statement, to_sql
from ...sqlast.lexer import LexError
from ...sqlast.parser import ParseError
from ...sqlast.visitor import clone
from ..runner import Outcome
from ..tables import BASE_QUERY, PREDICATE_PREFIX, TABLE_SETUP
from .base import CaseInfo, Finding, Oracle, check_state_version
from .guards import called_functions, replay_safe

#: report labels per divergence class (same vocabulary as the differential
#: oracle — a broken law is a wrong result, whoever noticed it)
_LABELS = {"cardinality": "WRONGCARD", "type": "WRONGTYPE", "value": "WRONG"}

#: the select head shared by the base query and every partition variant
_HEAD = BASE_QUERY[:-1]  # "SELECT k, i, s, d FROM fuzz_t"

#: ``optimizer_passes`` value that turns optimization off (the NoREC
#: reference arm)
SUPPRESS_PASSES = "none"


def tlp_partition_statement(head: str, predicate: str) -> str:
    """The three-way partition reunion for *predicate* over *head*.

    ``head`` is a complete ``SELECT ... FROM ...`` without a WHERE clause;
    the returned statement unions the IS-TRUE, IS-FALSE, and IS-NULL camps
    with ``UNION ALL`` so multiset cardinality survives.
    """
    return (
        f"{head} WHERE ({predicate}) "
        f"UNION ALL {head} WHERE NOT ({predicate}) "
        f"UNION ALL {head} WHERE ({predicate}) IS NULL;"
    )


def split_predicate(sql: str) -> Optional[Tuple[str, str]]:
    """``(head, predicate)`` for a single-table SELECT, via the AST.

    The minimizer rewrites statement text while shrinking, so anything
    that wants the predicate out of a *reduced* candidate must re-parse
    rather than match the generator's exact rendering.  Returns ``None``
    for anything that is not a WHERE-bearing plain SELECT.
    """
    try:
        stmt = parse_statement(sql)
    except (ParseError, LexError, RecursionError):
        return None
    if not isinstance(stmt, Select) or stmt.where is None or not stmt.from_:
        return None
    predicate = to_sql(stmt.where)
    trimmed = clone(stmt)
    trimmed.where = None
    return to_sql(trimmed), predicate


@dataclass
class MetamorphicFinding(Finding):
    """One violated metamorphic law on the campaign dialect."""

    dbms: str
    function: str                # seed function inside the predicate
    oracle: str                  # "tlp" | "norec"
    divergence: str              # cardinality | type | value
    pattern: str                 # generation pattern of the statement
    sql: str
    query_index: int             # 1-based global statement position
    own_digest: str              # base query (TLP) / optimized arm (NoREC)
    variant_digest: str          # partition union (TLP) / suppressed arm
    flaw: Optional[LogicFlaw] = field(default=None, compare=False)

    @property
    def kind(self) -> str:  # type: ignore[override]
        return self.oracle

    @property
    def key(self) -> Tuple:
        # the law is a property of the engine, not of the statement that
        # exposed it: re-breaking the same law the same way through another
        # predicate is not news
        return (self.oracle, self.divergence)

    @property
    def bug_type_label(self) -> str:
        return _LABELS[self.divergence]

    @property
    def attribution(self) -> Optional[LogicFlaw]:
        return self.flaw

    def one_liner(self) -> str:
        law = "partition law" if self.oracle == "tlp" else "optimization identity"
        return (
            f"[{self.bug_type_label}] {self.oracle}: {law} broken "
            f"via {self.pattern}: {self.sql}"
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "dbms": self.dbms,
            "function": self.function,
            "oracle": self.oracle,
            "divergence": self.divergence,
            "pattern": self.pattern,
            "sql": self.sql,
            "query_index": self.query_index,
            "own_digest": self.own_digest,
            "variant_digest": self.variant_digest,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "MetamorphicFinding":
        return cls(
            dbms=data["dbms"],
            function=data["function"],
            oracle=data["oracle"],
            divergence=data["divergence"],
            pattern=data["pattern"],
            sql=data["sql"],
            query_index=int(data["query_index"]),
            own_digest=data["own_digest"],
            variant_digest=data["variant_digest"],
            flaw=find_predicate_flaw(data["dbms"], data["oracle"]),
        )


ORACLE_STATE_VERSION = 1
_STATE_KEYS = ("dbms", "findings", "checked", "compared", "skipped")


class _MetamorphicOracle(Oracle):
    """Shared harness: arm servers, FP guards, checkpoint/merge."""

    #: finding discriminator and PREDICATE_KINDS entry ("tlp" | "norec")
    oracle_kind = ""

    def __init__(self, dialect: Dialect) -> None:
        self.dialect = dialect
        self.dbms = dialect.name
        self._findings: List[MetamorphicFinding] = []
        self._seen: Set[Tuple] = set()
        # arm key -> (server, connection); built on first use so a campaign
        # that never emits a predicate statement pays nothing
        self._arms: Dict[str, Tuple] = {}
        # diagnostics (merged additively across shards, never in signatures)
        self.checked = 0
        self.compared = 0
        self.skipped = 0

    # ------------------------------------------------------------------
    def observe(
        self, outcome: Outcome, case: CaseInfo, index: int
    ) -> Optional[Finding]:
        if outcome.kind != "ok":
            return None
        sql = outcome.sql
        if not sql.startswith(PREDICATE_PREFIX):
            return None
        self.checked += 1
        registry = self.dialect.registry
        if not replay_safe(called_functions(sql, registry), registry):
            self.skipped += 1
            return None
        pair = self._check(sql)
        if pair is None:
            self.skipped += 1
            return None
        self.compared += 1
        own_fp, variant_fp = pair
        divergence = divergence_class(own_fp, variant_fp)
        if divergence is None:
            return None
        finding = MetamorphicFinding(
            dbms=self.dbms,
            function=case.function,
            oracle=self.oracle_kind,
            divergence=divergence,
            pattern=case.pattern,
            sql=sql,
            query_index=index + 1,
            own_digest=own_fp.digest,
            variant_digest=variant_fp.digest,
            flaw=find_predicate_flaw(self.dbms, self.oracle_kind),
        )
        if finding.key in self._seen:
            return None
        self._seen.add(finding.key)
        self._findings.append(finding)
        return finding

    def findings(self) -> List[Finding]:
        return list(self._findings)

    def _check(
        self, sql: str
    ) -> Optional[Tuple[ResultFingerprint, ResultFingerprint]]:
        """Both arms of the law for *sql*, or ``None`` to skip."""
        raise NotImplementedError

    # -- arm lifecycle ------------------------------------------------------
    def _arm(self, key: str) -> Tuple:
        arm = self._arms.get(key)
        if arm is None:
            server = self.dialect.create_server()
            # no statement cache: each variant text runs once, and a plan
            # cached under one optimizer configuration must never be
            # replayed under another
            server.stmt_cache = None
            if key == "ref":
                server.ctx.set_config("optimizer_passes", SUPPRESS_PASSES)
            conn = server.connect()
            for ddl in TABLE_SETUP:
                conn.execute(ddl)
            self._arms[key] = arm = (server, conn)
        return arm

    def _fingerprint(self, key: str, sql: str) -> Optional[ResultFingerprint]:
        try:
            server, conn = self._arm(key)
        except (SQLError, ServerCrashed, RecursionError):
            self._arms.pop(key, None)
            return None
        server.ctx.clear_sequence_state()
        try:
            result = conn.execute(sql)
        except SQLError:
            # an erroring variant says nothing about the law — strictness
            # bugs are the conformance oracle's department
            return None
        except ServerCrashed:
            # dropped arms are rebuilt (tables and knobs included) on next
            # use; the crash itself belongs to the crash oracle
            self._arms.pop(key, None)
            return None
        except RecursionError:
            self._arms.pop(key, None)
            return None
        return fingerprint_result(result)

    # -- checkpoint/merge ---------------------------------------------------
    def export_state(self) -> Dict[str, Any]:
        return {
            "version": ORACLE_STATE_VERSION,
            "dbms": self.dbms,
            "findings": [f.to_dict() for f in self._findings],
            "checked": self.checked,
            "compared": self.compared,
            "skipped": self.skipped,
        }

    def restore_state(self, state: Dict[str, Any]) -> None:
        check_state_version(
            state, ORACLE_STATE_VERSION, _STATE_KEYS, f"{self.name} oracle"
        )
        self._findings = [
            MetamorphicFinding.from_dict(row) for row in state.get("findings", [])
        ]
        self._seen = {f.key for f in self._findings}
        self.checked = int(state.get("checked", 0))
        self.compared = int(state.get("compared", 0))
        self.skipped = int(state.get("skipped", 0))

    def merge(self, shard_states: Sequence[Dict[str, Any]]) -> None:
        """Replay shard findings in global stream order (first keeps)."""
        collected = list(self._findings)
        for state in shard_states:
            check_state_version(
                state, ORACLE_STATE_VERSION, _STATE_KEYS, f"{self.name} oracle"
            )
            collected.extend(
                MetamorphicFinding.from_dict(row)
                for row in state.get("findings", [])
            )
            self.checked += int(state.get("checked", 0))
            self.compared += int(state.get("compared", 0))
            self.skipped += int(state.get("skipped", 0))
        collected.sort(key=lambda f: f.query_index)
        self._findings = []
        self._seen = set()
        for finding in collected:
            if finding.key in self._seen:
                continue
            self._seen.add(finding.key)
            self._findings.append(finding)


class TLPOracle(_MetamorphicOracle):
    """Checks that the three-way predicate partition reunites the table."""

    name = "tlp"
    oracle_kind = "tlp"

    def __init__(self, dialect: Dialect) -> None:
        super().__init__(dialect)
        self._base_fp: Optional[ResultFingerprint] = None

    def _check(
        self, sql: str
    ) -> Optional[Tuple[ResultFingerprint, ResultFingerprint]]:
        base_fp = self._base_fingerprint()
        if base_fp is None:
            return None
        predicate = sql[len(PREDICATE_PREFIX):].strip().rstrip(";").rstrip()
        if not predicate:
            return None
        union_fp = self._fingerprint(
            "opt", tlp_partition_statement(_HEAD, predicate)
        )
        if union_fp is None:
            return None
        return base_fp, union_fp

    def _base_fingerprint(self) -> Optional[ResultFingerprint]:
        # campaign statements never mutate fuzz_t, so the unfiltered side
        # of the law is one execution per oracle lifetime
        if self._base_fp is None:
            self._base_fp = self._fingerprint("opt", BASE_QUERY)
        return self._base_fp


class NoRECOracle(_MetamorphicOracle):
    """Checks the optimized plan against an optimization-suppressed run."""

    name = "norec"
    oracle_kind = "norec"

    def _check(
        self, sql: str
    ) -> Optional[Tuple[ResultFingerprint, ResultFingerprint]]:
        opt_fp = self._fingerprint("opt", sql)
        if opt_fp is None:
            return None
        ref_fp = self._fingerprint("ref", sql)
        if ref_fp is None:
            return None
        return opt_fp, ref_fp


# ---------------------------------------------------------------------------
# law checks over an arbitrary statement — the minimizer's probe surface
# ---------------------------------------------------------------------------
def tlp_divergence(conn, sql: str) -> Optional[str]:
    """Divergence class of the partition law for *sql* on *conn*.

    Raises ``SQLError``/``ServerCrashed`` through to the caller (the
    minimizer treats those candidates as uninteresting); returns ``None``
    when the statement has no extractable predicate or the law holds.
    """
    parts = split_predicate(sql)
    if parts is None:
        return None
    head, predicate = parts
    base_fp = fingerprint_result(conn.execute(f"{head};"))
    union_fp = fingerprint_result(
        conn.execute(tlp_partition_statement(head, predicate))
    )
    return divergence_class(base_fp, union_fp)


def norec_divergence(opt_conn, ref_conn, sql: str) -> Optional[str]:
    """Divergence class between optimized and suppressed runs of *sql*."""
    opt_fp = fingerprint_result(opt_conn.execute(sql))
    ref_fp = fingerprint_result(ref_conn.execute(sql))
    return divergence_class(opt_fp, ref_fp)
