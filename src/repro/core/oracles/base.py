"""Oracle protocol: findings, the per-statement fan-out, and shard merge.

Detection is pluggable.  An :class:`Oracle` watches the stream of executed
statements (every :class:`~repro.core.runner.Outcome`, in campaign order)
and accumulates :class:`Finding` objects; the :class:`OraclePipeline` fans
each outcome to all registered oracles and owns their checkpoint state as
one unit.

The protocol has three obligations beyond ``observe``:

* **Checkpointing** — ``export_state``/``restore_state`` round-trip the
  oracle through JSON; every state dict carries a ``version`` field and
  restoring an unknown version (or unknown keys) is a hard error, never a
  silent partial restore.
* **Shard merge** — ``merge(shard_states)`` folds the states of workers
  that each saw a disjoint slice of the statement stream into this oracle,
  replaying records in global stream order so first-occurrence dedup gives
  byte-identical findings to a serial run.
* **Determinism** — observing the same outcome stream must produce the
  same findings regardless of what other statements ran in between; the
  campaign's parallel-vs-serial signature parity rests on it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from ...dialects.base import Dialect
from ..runner import Outcome


class OracleStateError(ValueError):
    """A checkpointed oracle state cannot be restored (wrong version,
    unknown keys, or a different oracle set than the running pipeline)."""


@dataclass(frozen=True)
class CaseInfo:
    """What the campaign knows about the statement behind an outcome."""

    pattern: str                 # P1.1..P3.3, or "seed"
    function: str = ""           # the seed function under test ("" = unknown)
    family: str = ""


class Finding:
    """Base class for anything an oracle reports.

    Subclasses are dataclasses carrying their own fields; this base fixes
    the attribute contract every consumer (reports, signatures, minimizer)
    relies on: ``dbms``, ``function``, ``pattern``, ``sql``,
    ``query_index``, plus the polymorphic surface below.
    """

    #: short oracle-specific discriminator ("crash", "divergence", ...)
    kind = "finding"

    # -- polymorphic surface ------------------------------------------------
    @property
    def key(self) -> Tuple:
        """Dedup identity within one oracle."""
        raise NotImplementedError

    @property
    def bug_type_label(self) -> str:
        """Short label for report tables (a crash class, "WRONG", ...)."""
        return self.kind.upper()

    @property
    def attribution(self):
        """The injected ground-truth entry this finding matches, if any."""
        return None

    @property
    def family(self) -> str:
        attributed = self.attribution
        if attributed is not None:
            return attributed.family
        return "unknown"

    def signature_tuple(self) -> Tuple:
        """Deterministic fingerprint entry for ``CampaignResult.signature``."""
        return (
            self.kind,
            self.function,
            self.bug_type_label,
            self.pattern,
            self.sql,
            self.query_index,
        )

    def one_liner(self) -> str:
        return (
            f"[{self.bug_type_label}] {self.function} "
            f"via {self.pattern}: {self.sql}"
        )


def check_state_version(
    state: Dict[str, Any],
    expected: int,
    known_keys: Sequence[str],
    owner: str,
) -> None:
    """Validate a checkpointed state dict before restoring it.

    Raises :class:`OracleStateError` on a version mismatch or on keys the
    running code does not know — an old binary restoring a newer
    checkpoint must fail loudly, not drop the fields it cannot parse.
    """
    version = state.get("version")
    if version != expected:
        raise OracleStateError(
            f"{owner} state version {version!r} is not supported by this "
            f"code (expected {expected}); the checkpoint was written by a "
            "different version"
        )
    unknown = sorted(set(state) - set(known_keys) - {"version"})
    if unknown:
        raise OracleStateError(
            f"{owner} state carries unknown keys {unknown}; refusing a "
            "partial restore (checkpoint from a newer version?)"
        )


class Oracle:
    """Base class for pluggable detection oracles."""

    #: registry name, also the key inside pipeline checkpoint state
    name = "oracle"
    #: set when observe() reads ``outcome.fingerprint`` — the runner only
    #: computes fingerprints when some registered oracle asks for them
    needs_fingerprints = False

    def observe(
        self, outcome: Outcome, case: CaseInfo, index: int
    ) -> Optional[Finding]:
        """Inspect one executed statement; return a finding when new.

        *index* is the statement's global 0-based campaign position — the
        same position a parallel shard worker would report, so serial and
        sharded runs attribute identical query indices.
        """
        raise NotImplementedError

    def findings(self) -> List[Finding]:
        """Everything this oracle has reported, in discovery order."""
        raise NotImplementedError

    # -- checkpoint/merge ---------------------------------------------------
    def export_state(self) -> Dict[str, Any]:
        raise NotImplementedError

    def restore_state(self, state: Dict[str, Any]) -> None:
        raise NotImplementedError

    def merge(self, shard_states: Sequence[Dict[str, Any]]) -> None:
        """Fold shard-exported states into this oracle, in stream order."""
        raise NotImplementedError


class OraclePipeline:
    """Fans each outcome to every registered oracle, in registration order."""

    STATE_VERSION = 1

    def __init__(self, oracles: Sequence[Oracle]) -> None:
        if not oracles:
            raise ValueError("an oracle pipeline needs at least one oracle")
        names = [oracle.name for oracle in oracles]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate oracle names in pipeline: {names}")
        self.oracles: List[Oracle] = list(oracles)

    @property
    def names(self) -> Tuple[str, ...]:
        return tuple(oracle.name for oracle in self.oracles)

    @property
    def needs_fingerprints(self) -> bool:
        return any(oracle.needs_fingerprints for oracle in self.oracles)

    def get(self, name: str) -> Optional[Oracle]:
        for oracle in self.oracles:
            if oracle.name == name:
                return oracle
        return None

    # ------------------------------------------------------------------
    def observe(
        self, outcome: Outcome, case: CaseInfo, index: int
    ) -> List[Finding]:
        """Fan one outcome out; returns the new findings (usually empty)."""
        found: List[Finding] = []
        for oracle in self.oracles:
            finding = oracle.observe(outcome, case, index)
            if finding is not None:
                found.append(finding)
        return found

    def findings(self) -> List[Finding]:
        out: List[Finding] = []
        for oracle in self.oracles:
            out.extend(oracle.findings())
        return out

    def extra_findings(self) -> List[Finding]:
        """Findings from every oracle except the crash oracle (which keeps
        its historical home in ``CampaignResult.bugs``)."""
        out: List[Finding] = []
        for oracle in self.oracles:
            if oracle.name != "crash":
                out.extend(oracle.findings())
        return out

    # -- checkpoint/merge ---------------------------------------------------
    def export_state(self) -> Dict[str, Any]:
        return {
            "version": self.STATE_VERSION,
            "names": list(self.names),
            "oracles": {o.name: o.export_state() for o in self.oracles},
        }

    def restore_state(self, state: Dict[str, Any]) -> None:
        if "oracles" not in state:
            # legacy checkpoint: a bare CrashOracle state dict written
            # before the pipeline existed — loadable iff this pipeline is
            # the legacy crash-only configuration
            crash = self.get("crash")
            if crash is None or len(self.oracles) != 1:
                raise OracleStateError(
                    "checkpoint carries a single legacy crash-oracle state "
                    f"but the campaign runs oracles {list(self.names)}; "
                    "resume it with the default --oracles crash"
                )
            crash.restore_state(state)
            return
        check_state_version(
            state, self.STATE_VERSION, ("names", "oracles"), "oracle pipeline"
        )
        names = list(state.get("names", []))
        if names != list(self.names):
            raise OracleStateError(
                f"checkpoint was written with oracles {names} but the "
                f"campaign runs {list(self.names)}; resume with the same "
                "--oracles set"
            )
        for oracle in self.oracles:
            oracle.restore_state(state["oracles"][oracle.name])

    def merge(self, shard_states: Sequence[Dict[str, Any]]) -> None:
        """Fold shard pipeline states into this (parent) pipeline."""
        for state in shard_states:
            if list(state.get("names", [])) != list(self.names):
                raise OracleStateError(
                    f"shard oracle state has oracles "
                    f"{state.get('names')} but the parent runs "
                    f"{list(self.names)}"
                )
        for oracle in self.oracles:
            oracle.merge([state["oracles"][oracle.name] for state in shard_states])


# ---------------------------------------------------------------------------
# registry: --oracles spec -> pipeline
# ---------------------------------------------------------------------------
ORACLE_NAMES = ("crash", "differential", "conformance", "tlp", "norec")

#: oracle names that double as predicate-level flaw kinds — requesting one
#: installs the matching engine-knob defect as its ground truth
METAMORPHIC_ORACLES = ("tlp", "norec")

#: the historical default — byte-identical behaviour to the pre-pipeline code
DEFAULT_ORACLES = ("crash",)

OracleSpec = Union[None, str, Sequence[str]]


def parse_oracle_names(spec: OracleSpec) -> Tuple[str, ...]:
    """Normalize an ``--oracles`` spec to a validated name tuple."""
    if spec is None:
        return DEFAULT_ORACLES
    if isinstance(spec, str):
        names = [part.strip().lower() for part in spec.split(",") if part.strip()]
    else:
        names = [str(part).strip().lower() for part in spec]
    if not names:
        return DEFAULT_ORACLES
    seen: List[str] = []
    for name in names:
        if name not in ORACLE_NAMES:
            raise ValueError(
                f"unknown oracle {name!r} (known: {', '.join(ORACLE_NAMES)})"
            )
        if name not in seen:
            seen.append(name)
    return tuple(seen)


def build_pipeline(dialect: Dialect, spec: OracleSpec = None) -> OraclePipeline:
    """Construct the pipeline for one campaign over *dialect*.

    Non-crash oracles hunt the dialect's seeded ``logic_flaw`` defects, so
    requesting any of them installs the dialect's logic flaws first (the
    default crash-only pipeline leaves the dialect untouched — and every
    existing campaign byte-identical).
    """
    from .conformance import ErrorConformanceOracle
    from .crash import CrashOracle
    from .differential import DifferentialOracle
    from .metamorphic import NoRECOracle, TLPOracle

    names = parse_oracle_names(spec)
    if any(name != "crash" for name in names):
        # predicate-level flaw knobs install only for the metamorphic
        # oracles that hunt them — a differential/conformance campaign
        # keeps clause evaluation pristine
        dialect.install_logic_flaws(
            predicate_kinds=tuple(n for n in names if n in METAMORPHIC_ORACLES)
        )
    oracles: List[Oracle] = []
    for name in names:
        if name == "crash":
            oracles.append(CrashOracle(dialect.name))
        elif name == "differential":
            oracles.append(DifferentialOracle(dialect))
        elif name == "conformance":
            oracles.append(ErrorConformanceOracle(dialect))
        elif name == "tlp":
            oracles.append(TLPOracle(dialect))
        elif name == "norec":
            oracles.append(NoRECOracle(dialect))
    return OraclePipeline(oracles)
