"""Error-conformance oracle: documented calls must not error.

A dialect's function reference is a promise: the documented example of a
function is, by definition, a well-defined call.  The conformance oracle
watches for statements that (a) are the exact rendering of a documented
example and (b) come back as an *error* — the signature of an over-strict
validation bug (the ``"strict"`` logic-flaw kind), where a range or
argument check rejects inputs the documentation says are fine.

The documented-statement table is built the same way the seed collector
builds seeds — parse the example expression, re-render with ``to_sql``,
wrap in ``SELECT ...;`` — so membership is an exact string match against
statements the campaign actually executes.  Impure functions and the
``system``/``sequence`` families are excluded: their examples can error
for environmental reasons (no sequence defined yet, no lock held) that say
nothing about conformance.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from ...dialects.base import Dialect
from ...dialects.bugs import LogicFlaw, find_logic_flaw
from ...sqlast import FuncCall, ParseError, parse_expression, to_sql
from ...sqlast.lexer import LexError
from ..runner import Outcome
from .base import CaseInfo, Finding, Oracle, check_state_version
from .guards import INCOMPARABLE_FAMILIES

#: collapse counters/limits inside error messages so "beyond 10" and
#: "beyond 20" dedupe as one defect
_DIGIT_RE = re.compile(r"\d+")

#: families whose documented examples may error for environmental reasons
_EXEMPT_FAMILIES = INCOMPARABLE_FAMILIES


def _normalize_message(message: str) -> str:
    return _DIGIT_RE.sub("N", message.lower()).strip()


@dataclass
class ConformanceFinding(Finding):
    """A documented example that errored."""

    dbms: str
    function: str                # the documented function (lower-case)
    pattern: str                 # where the statement came from ("seed", ...)
    sql: str
    message: str                 # the error text
    query_index: int             # 1-based global statement position
    flaw: Optional[LogicFlaw] = field(default=None, compare=False)

    kind = "conformance"

    @property
    def key(self) -> Tuple:
        return (self.function, _normalize_message(self.message))

    @property
    def bug_type_label(self) -> str:
        return "STRICT"

    @property
    def attribution(self) -> Optional[LogicFlaw]:
        return self.flaw

    def one_liner(self) -> str:
        return (
            f"[STRICT] {self.function} via {self.pattern}: "
            f"{self.sql} -> {self.message}"
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "dbms": self.dbms,
            "function": self.function,
            "pattern": self.pattern,
            "sql": self.sql,
            "message": self.message,
            "query_index": self.query_index,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ConformanceFinding":
        return cls(
            dbms=data["dbms"],
            function=data["function"],
            pattern=data["pattern"],
            sql=data["sql"],
            message=data["message"],
            query_index=int(data["query_index"]),
            flaw=find_logic_flaw(data["dbms"], data["function"], kind="strict"),
        )


ORACLE_STATE_VERSION = 1
_STATE_KEYS = ("dbms", "findings")


class ErrorConformanceOracle(Oracle):
    """Flags errors on statements the documentation declares well-defined."""

    name = "conformance"

    def __init__(self, dialect: Dialect) -> None:
        self.dbms = dialect.name
        self._documented = self._documented_statements(dialect)
        self._findings: List[ConformanceFinding] = []
        self._seen: Set[Tuple] = set()

    @staticmethod
    def _documented_statements(dialect: Dialect) -> Dict[str, str]:
        """Exact documented statements -> documented function name.

        Iterates names in sorted order so aliases sharing an examples list
        resolve deterministically (last name wins, matching how crash
        attribution resolves aliased functions).
        """
        documented: Dict[str, str] = {}
        for name in sorted(dialect.registry.names()):
            definition = dialect.registry.lookup(name)
            if not definition.pure or definition.family in _EXEMPT_FAMILIES:
                continue
            for example in definition.examples:
                try:
                    expr = parse_expression(example)
                except (ParseError, LexError, RecursionError):
                    continue
                if not isinstance(expr, FuncCall):
                    continue
                documented[f"SELECT {to_sql(expr)};"] = definition.name
        return documented

    # ------------------------------------------------------------------
    def observe(
        self, outcome: Outcome, case: CaseInfo, index: int
    ) -> Optional[Finding]:
        if outcome.kind != "error":
            return None
        function = self._documented.get(outcome.sql)
        if function is None:
            return None
        # infrastructure errors (exhausted reconnects under fault injection)
        # are resilience events, not conformance verdicts
        if "connection" in outcome.message.lower():
            return None
        finding = ConformanceFinding(
            dbms=self.dbms,
            function=function,
            pattern=case.pattern,
            sql=outcome.sql,
            message=outcome.message,
            query_index=index + 1,
            flaw=find_logic_flaw(self.dbms, function, kind="strict"),
        )
        if finding.key in self._seen:
            return None
        self._seen.add(finding.key)
        self._findings.append(finding)
        return finding

    def findings(self) -> List[Finding]:
        return list(self._findings)

    # -- checkpoint/merge ---------------------------------------------------
    def export_state(self) -> Dict[str, Any]:
        return {
            "version": ORACLE_STATE_VERSION,
            "dbms": self.dbms,
            "findings": [f.to_dict() for f in self._findings],
        }

    def restore_state(self, state: Dict[str, Any]) -> None:
        check_state_version(
            state, ORACLE_STATE_VERSION, _STATE_KEYS, "conformance oracle"
        )
        self._findings = [
            ConformanceFinding.from_dict(row) for row in state.get("findings", [])
        ]
        self._seen = {f.key for f in self._findings}

    def merge(self, shard_states: Sequence[Dict[str, Any]]) -> None:
        """Replay shard findings in global stream order (first keeps)."""
        collected = list(self._findings)
        for state in shard_states:
            check_state_version(
                state, ORACLE_STATE_VERSION, _STATE_KEYS, "conformance oracle"
            )
            collected.extend(
                ConformanceFinding.from_dict(row)
                for row in state.get("findings", [])
            )
        collected.sort(key=lambda f: f.query_index)
        self._findings = []
        self._seen = set()
        for finding in collected:
            if finding.key in self._seen:
                continue
            self._seen.add(finding.key)
            self._findings.append(finding)
