"""Pluggable detection oracles.

``crash`` is the paper's oracle (SOFT detects bugs by crashing the
server); ``differential`` and ``conformance`` extend detection to
non-crashing logic bugs; ``tlp`` and ``norec`` are metamorphic oracles
over the predicate statement family.  See :mod:`.base` for the protocol
and :func:`build_pipeline` for the ``--oracles`` entry point.
"""

from .base import (
    DEFAULT_ORACLES,
    METAMORPHIC_ORACLES,
    ORACLE_NAMES,
    CaseInfo,
    Finding,
    Oracle,
    OraclePipeline,
    OracleStateError,
    build_pipeline,
    parse_oracle_names,
)
from .conformance import ConformanceFinding, ErrorConformanceOracle
from .crash import CrashOracle, DiscoveredBug
from .differential import DifferentialOracle, DivergenceFinding
from .metamorphic import MetamorphicFinding, NoRECOracle, TLPOracle

__all__ = [
    "CaseInfo",
    "ConformanceFinding",
    "CrashOracle",
    "DEFAULT_ORACLES",
    "DifferentialOracle",
    "DiscoveredBug",
    "DivergenceFinding",
    "ErrorConformanceOracle",
    "Finding",
    "METAMORPHIC_ORACLES",
    "MetamorphicFinding",
    "NoRECOracle",
    "ORACLE_NAMES",
    "Oracle",
    "OraclePipeline",
    "OracleStateError",
    "TLPOracle",
    "build_pipeline",
    "parse_oracle_names",
]
