"""Function-expression collection (SOFT step 1, §7.1).

SOFT acquires its initial function expressions from two sources, exactly as
the paper describes:

1. **Documentation scan** — every SQL function *name* in the dialect's
   function reference.
2. **Test-suite scan** — SQL queries from the dialect's regression suite are
   scanned for ``name(...)`` shapes: we walk all parenthesis pairs and, when
   the token before ``(`` is a known function name, lift the expression.

The paren-pair scan intentionally does not require the whole query to parse
(real regression suites contain dialect syntax our parser does not model);
each lifted expression is then parsed on its own.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

from ..dialects.base import Dialect
from ..sqlast import FuncCall, ParseError, parse_expression, to_sql, tokenize
from ..sqlast.lexer import LexError
from ..sqlast.tokens import Token, TokenKind
from ..sqlast.visitor import count_function_calls


@dataclass
class Seed:
    """One collected function expression."""

    function: str           # lower-case function name
    family: str             # function family per the dialect's docs
    expression: FuncCall    # parsed expression (never mutated; clone first)
    source: str             # originating query or "documentation"

    @property
    def sql(self) -> str:
        return to_sql(self.expression)

    @property
    def call_count(self) -> int:
        return count_function_calls(self.expression)


class SeedCollector:
    """Collects per-function seed expressions for one dialect."""

    def __init__(self, dialect: Dialect, max_seeds_per_function: int = 3) -> None:
        self.dialect = dialect
        self.max_seeds_per_function = max_seeds_per_function

    # ------------------------------------------------------------------
    def collect(self) -> List[Seed]:
        """Run both collection steps and return the deduplicated seeds."""
        known = self._known_functions()
        # sorted: set iteration order is hash-randomized per process, and the
        # seed order feeds everything downstream (generation stream, campaign
        # results, checkpoint resume across processes)
        seeds: Dict[str, List[Seed]] = {name: [] for name in sorted(known)}
        seen_sql: Set[str] = set()
        for query in self.dialect.test_suite():
            for expr in self.scan_query(query, known):
                name = expr.name.lower()
                bucket = seeds.setdefault(name, [])
                if len(bucket) >= self.max_seeds_per_function:
                    continue
                sql = to_sql(expr)
                if sql in seen_sql:
                    continue
                seen_sql.add(sql)
                bucket.append(
                    Seed(name, self._family_of(name), expr, source=query)
                )
        # documentation fallback: a function never seen in the suite still
        # gets a minimal synthetic seed so SOFT can exercise it
        for name in known:
            if not seeds.get(name):
                synthetic = self._synthetic_seed(name)
                if synthetic is not None:
                    seeds[name] = [synthetic]
        return [seed for bucket in seeds.values() for seed in bucket]

    # ------------------------------------------------------------------
    def _known_functions(self) -> Set[str]:
        return {entry.name for entry in self.dialect.documentation()}

    def _family_of(self, name: str) -> str:
        try:
            return self.dialect.registry.lookup(name).family
        except Exception:
            return "unknown"

    # ------------------------------------------------------------------
    def scan_query(self, query: str, known: Set[str]) -> List[FuncCall]:
        """Lift ``name(...)`` expressions from a query via paren scanning."""
        try:
            tokens = tokenize(query)
        except LexError:
            return []
        out: List[FuncCall] = []
        for idx, token in enumerate(tokens):
            if not token.is_op("("):
                continue
            if idx == 0:
                continue
            previous = tokens[idx - 1]
            if previous.kind is not TokenKind.IDENT:
                continue
            if previous.text.lower() not in known:
                continue
            close = self._matching_paren(tokens, idx)
            if close is None:
                continue
            text = query[previous.pos : self._token_end(query, tokens[close])]
            expr = self._parse_call(text)
            if expr is not None:
                out.append(expr)
        return out

    @staticmethod
    def _matching_paren(tokens: Sequence[Token], open_idx: int) -> Optional[int]:
        depth = 0
        for idx in range(open_idx, len(tokens)):
            if tokens[idx].is_op("("):
                depth += 1
            elif tokens[idx].is_op(")"):
                depth -= 1
                if depth == 0:
                    return idx
        return None

    @staticmethod
    def _token_end(query: str, token: Token) -> int:
        return token.pos + 1  # ')' is a single character

    @staticmethod
    def _parse_call(text: str) -> Optional[FuncCall]:
        try:
            expr = parse_expression(text)
        except (ParseError, LexError, RecursionError):
            return None
        return expr if isinstance(expr, FuncCall) else None

    # ------------------------------------------------------------------
    def _synthetic_seed(self, name: str) -> Optional[Seed]:
        """Build a minimal call for functions absent from the suite."""
        try:
            definition = self.dialect.registry.lookup(name)
        except Exception:
            return None
        from ..sqlast import IntegerLit, StringLit

        family_defaults = {
            "string": StringLit("abc"),
            "json": StringLit('{"a": 1}'),
            "xml": StringLit("<a><b>x</b></a>"),
            "date": StringLit("2020-05-06"),
            "spatial": StringLit("POINT(1 2)"),
            "inet": StringLit("127.0.0.1"),
        }
        default = family_defaults.get(definition.family, IntegerLit("1"))
        import copy

        args = [copy.deepcopy(default) for _ in range(definition.min_args)]
        expr = FuncCall(name.upper(), args)
        return Seed(name, definition.family, expr, source="documentation")
