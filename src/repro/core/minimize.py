"""Proof-of-concept minimisation (delta debugging over the AST).

Disclosure-ready reports carry *minimal* PoCs — the paper's listings are
all one-liners.  The minimiser takes a crashing statement and greedily
shrinks it while preserving the crash identity (same function, same crash
class), using AST-level reductions rather than textual chunking:

* drop trailing/optional arguments of function calls;
* replace a nested call with each of its own arguments ("hoist");
* replace argument subtrees with simple literals (1, 'a', NULL, '');
* shrink wide numeric literals and long strings toward the shortest
  reproducer (binary search on digit/character count);
* shrink REPEAT counts toward the smallest crashing repetition;
* unwrap casts;
* drop SELECT-level baggage (other select items).

The reduction loop is a fixpoint: passes repeat until no pass shrinks the
statement further.  Every candidate runs against a fresh server, so
minimisation is immune to crash-induced state loss.

What must stay invariant is pluggable (mirroring the oracle pipeline): the
default :class:`CrashProbe` preserves the crash identity, while
:class:`DivergenceProbe` preserves a cross-dialect result divergence, so
logic-oracle findings minimise through the same reduction passes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from ..dialects.base import Dialect
from ..engine.connection import ServerCrashed
from ..engine.errors import SQLError
from ..engine.fingerprint import divergence_class, fingerprint_result
from ..sqlast import (
    Cast,
    DecimalLit,
    Expr,
    FuncCall,
    IntegerLit,
    NullLit,
    ParseError,
    Select,
    StringLit,
    parse_statement,
    to_sql,
)
from ..sqlast.visitor import clone, replace_node, walk
from .oracles.metamorphic import (
    SUPPRESS_PASSES,
    norec_divergence,
    tlp_divergence,
)
from .tables import TABLE_SETUP


@dataclass
class CrashIdentity:
    """What must stay invariant across reductions."""

    function: str
    crash_code: str


class Probe:
    """What must stay invariant across reductions (the minimiser's oracle).

    ``identity(sql)`` observes the finding on a fresh server and returns
    its identity, or ``None`` when the statement no longer reproduces it;
    ``same`` decides whether a candidate's identity matches the original.
    """

    def identity(self, sql: str):
        raise NotImplementedError

    @staticmethod
    def same(found, original) -> bool:
        return found == original

    def no_reproduce_message(self, sql: str) -> str:
        return f"statement does not reproduce the finding: {sql!r}"


class CrashProbe(Probe):
    """The historical default: preserve ``(function, crash class)``."""

    def __init__(self, dialect: Dialect) -> None:
        self.dialect = dialect

    def identity(self, sql: str) -> Optional[CrashIdentity]:
        connection = self.dialect.create_server().connect()
        try:
            connection.execute(sql)
            return None
        except SQLError:
            return None
        except ServerCrashed as crashed:
            return CrashIdentity(
                crashed.crash.function or "unknown", crashed.crash.code
            )
        except RecursionError:
            return None

    @staticmethod
    def same(found, original) -> bool:
        return (
            found.function == original.function
            and found.crash_code == original.crash_code
        )

    def no_reproduce_message(self, sql: str) -> str:
        return f"statement does not crash the server: {sql!r}"


class DivergenceProbe(Probe):
    """Preserve a cross-dialect result divergence (differential findings).

    Identity is the :func:`~repro.engine.fingerprint.divergence_class`
    between the subject dialect and the peer — a reduction is accepted only
    while the same class of divergence (cardinality/type/value) persists.
    The subject dialect is used as configured by the campaign (logic flaws
    installed); the peer executes vanilla, exactly as the differential
    oracle ran it.
    """

    def __init__(self, dialect: Dialect, peer: Dialect) -> None:
        self.dialect = dialect
        self.peer = peer

    def identity(self, sql: str) -> Optional[str]:
        own = self._fingerprint(self.dialect, sql)
        other = self._fingerprint(self.peer, sql)
        if own is None or other is None:
            return None
        return divergence_class(own, other)

    @staticmethod
    def _fingerprint(dialect: Dialect, sql: str):
        connection = dialect.create_server().connect()
        try:
            return fingerprint_result(connection.execute(sql))
        except (SQLError, ServerCrashed, RecursionError):
            return None

    def no_reproduce_message(self, sql: str) -> str:
        return (
            f"statement does not diverge between {self.dialect.name} "
            f"and {self.peer.name}: {sql!r}"
        )


class MetamorphicProbe(Probe):
    """Preserve a violated metamorphic law (TLP/NoREC findings).

    Identity is the divergence class of the law check re-run on fresh
    bootstrapped servers built from *dialect* (with whatever flaws the
    campaign installed).  The predicate is re-extracted from each
    candidate's AST — reductions rewrite the statement text, so nothing
    here may rely on the generator's exact rendering.  A candidate that
    stops parsing as a WHERE-bearing SELECT, errors, or crashes no longer
    reproduces the finding and is rejected.
    """

    def __init__(self, dialect: Dialect, kind: str) -> None:
        if kind not in ("tlp", "norec"):
            raise ValueError(f"unknown metamorphic probe kind {kind!r}")
        self.dialect = dialect
        self.kind = kind

    def identity(self, sql: str) -> Optional[str]:
        try:
            if self.kind == "tlp":
                return tlp_divergence(self._connect(), sql)
            return norec_divergence(
                self._connect(), self._connect(suppress=True), sql
            )
        except (SQLError, ServerCrashed, RecursionError):
            return None

    def _connect(self, suppress: bool = False):
        server = self.dialect.create_server()
        server.stmt_cache = None
        if suppress:
            server.ctx.set_config("optimizer_passes", SUPPRESS_PASSES)
        connection = server.connect()
        for ddl in TABLE_SETUP:
            connection.execute(ddl)
        return connection

    def no_reproduce_message(self, sql: str) -> str:
        law = "partition law" if self.kind == "tlp" else "optimization identity"
        return (
            f"statement does not break the {law} on "
            f"{self.dialect.name}: {sql!r}"
        )


@dataclass
class MinimizationResult:
    original: str
    minimized: str
    attempts: int
    successes: int

    @property
    def reduction(self) -> float:
        if not self.original:
            return 0.0
        return 1.0 - len(self.minimized) / len(self.original)


class Minimizer:
    """Shrinks a crashing statement for one dialect."""

    def __init__(
        self,
        dialect: Dialect,
        max_attempts: int = 2_000,
        probe: Optional[Probe] = None,
    ) -> None:
        self.dialect = dialect
        self.probe = probe if probe is not None else CrashProbe(dialect)
        self.max_attempts = max_attempts
        self.attempts = 0
        self.successes = 0

    # ------------------------------------------------------------------
    def crash_identity(self, sql: str) -> Optional[CrashIdentity]:
        """Execute *sql* on a fresh server; return its crash identity."""
        return CrashProbe(self.dialect).identity(sql)

    def minimize(self, sql: str) -> MinimizationResult:
        """Shrink *sql* while the probe's finding identity is preserved."""
        identity = self.probe.identity(sql)
        if identity is None:
            raise ValueError(self.probe.no_reproduce_message(sql))
        current = parse_statement(sql)
        changed = True
        while changed and self.attempts < self.max_attempts:
            changed = False
            for reduction in (
                self._drop_select_items,
                self._hoist_nested_calls,
                self._drop_optional_args,
                self._simplify_subtrees,
                self._unwrap_casts,
                self._shrink_literals,
            ):
                reduced = reduction(current, identity)
                if reduced is not None:
                    current = reduced
                    changed = True
        return MinimizationResult(
            original=sql,
            minimized=to_sql(current) + ";",
            attempts=self.attempts,
            successes=self.successes,
        )

    # ------------------------------------------------------------------
    def _still_crashes(self, stmt, identity) -> bool:
        self.attempts += 1
        if self.attempts > self.max_attempts:
            return False
        try:
            sql = to_sql(stmt) + ";"
            parse_statement(sql)
        except (ParseError, TypeError):
            return False
        found = self.probe.identity(sql)
        ok = found is not None and self.probe.same(found, identity)
        if ok:
            self.successes += 1
        return ok

    # -- reductions ---------------------------------------------------------
    def _drop_select_items(self, stmt, identity):
        """SELECT a, crash(), b -> SELECT crash()."""
        if not isinstance(stmt, Select) or len(stmt.items) <= 1:
            return None
        for index in range(len(stmt.items)):
            candidate = clone(stmt)
            candidate.items = [
                item for i, item in enumerate(candidate.items) if i != index
            ]
            if self._still_crashes(candidate, identity):
                return candidate
        return None

    def _hoist_nested_calls(self, stmt, identity):
        """F(G(x)) -> F(x) when the crash survives without the wrapper."""
        for node in walk(stmt):
            if not isinstance(node, FuncCall):
                continue
            for arg_index, arg in enumerate(node.args):
                if not isinstance(arg, FuncCall) or not arg.args:
                    continue
                for inner in arg.args:
                    candidate = clone(stmt)
                    # find the corresponding nodes in the clone by path
                    target = self._find_twin(stmt, candidate, arg)
                    twin_inner = self._find_twin(stmt, candidate, inner)
                    if target is None or twin_inner is None:
                        continue
                    replace_node(candidate, target, clone(twin_inner))
                    if self._still_crashes(candidate, identity):
                        return candidate
        return None

    def _drop_optional_args(self, stmt, identity):
        """F(a, b, c) -> F(a, b) when the tail argument is not needed."""
        for node in walk(stmt):
            if not isinstance(node, FuncCall) or len(node.args) <= 1:
                continue
            candidate = clone(stmt)
            twin = self._find_twin(stmt, candidate, node)
            if twin is None:
                continue
            twin.args = twin.args[:-1]
            if self._still_crashes(candidate, identity):
                return candidate
        return None

    def _simplify_subtrees(self, stmt, identity):
        """Replace non-trivial argument subtrees with atomic literals."""
        atoms: Tuple[Expr, ...] = (
            IntegerLit("1"), StringLit("a"), NullLit(), StringLit(""),
        )
        for node in walk(stmt):
            if not isinstance(node, FuncCall):
                continue
            for arg in node.args:
                if isinstance(arg, (IntegerLit, StringLit, NullLit)):
                    continue
                for atom in atoms:
                    candidate = clone(stmt)
                    twin = self._find_twin(stmt, candidate, arg)
                    if twin is None:
                        continue
                    replace_node(candidate, twin, clone(atom))
                    if self._still_crashes(candidate, identity):
                        return candidate
        return None

    def _unwrap_casts(self, stmt, identity):
        for node in walk(stmt):
            if not isinstance(node, Cast):
                continue
            candidate = clone(stmt)
            twin = self._find_twin(stmt, candidate, node)
            if twin is None:
                continue
            replace_node(candidate, twin, clone(twin.operand))
            if self._still_crashes(candidate, identity):
                return candidate
        return None

    def _shrink_literals(self, stmt, identity):
        """Binary-search long strings / wide numbers to the shortest
        still-crashing form."""
        for node in walk(stmt):
            if isinstance(node, StringLit) and len(node.value) > 4:
                shrunk = self._shrink_text(
                    stmt, node, identity,
                    lambda twin, size: setattr(twin, "value", twin.value[:size]),
                    len(node.value),
                )
                if shrunk is not None:
                    return shrunk
            if isinstance(node, IntegerLit) and len(node.text) > 2 \
                    and not node.text.lower().startswith("0x"):
                shrunk = self._shrink_text(
                    stmt, node, identity,
                    lambda twin, size: setattr(twin, "text", twin.text[:size] or "9"),
                    len(node.text),
                )
                if shrunk is not None:
                    return shrunk
                shrunk = self._shrink_integer_value(stmt, node, identity)
                if shrunk is not None:
                    return shrunk
            if isinstance(node, DecimalLit) and len(node.text) > 4:
                shrunk = self._shrink_text(
                    stmt, node, identity,
                    lambda twin, size: setattr(
                        twin, "text",
                        twin.text[:max(size, 3)] if "." in twin.text[:max(size, 3)]
                        else twin.text[:max(size, 3)] + ".9",
                    ),
                    len(node.text),
                )
                if shrunk is not None:
                    return shrunk
        return None

    def _shrink_integer_value(self, stmt, node, identity):
        """Binary-search an integer toward the smallest crashing value
        (e.g. REPEAT counts shrink to just past the buggy threshold)."""
        try:
            value = node.value
        except ValueError:
            return None
        if value <= 2:
            return None
        best = None
        low, high = 1, value - 1
        while low <= high:
            mid = (low + high) // 2
            candidate = clone(stmt)
            twin = self._find_twin(stmt, candidate, node)
            if twin is None:
                return None
            twin.text = str(mid)
            if self._still_crashes(candidate, identity):
                best = candidate
                high = mid - 1
            else:
                low = mid + 1
        return best

    def _shrink_text(self, stmt, node, identity, apply_cut, length):
        best = None
        low, high = 1, length - 1
        while low <= high:
            mid = (low + high) // 2
            candidate = clone(stmt)
            twin = self._find_twin(stmt, candidate, node)
            if twin is None:
                return None
            apply_cut(twin, mid)
            if self._still_crashes(candidate, identity):
                best = candidate
                high = mid - 1
            else:
                low = mid + 1
        return best

    # ------------------------------------------------------------------
    @staticmethod
    def _find_twin(original, cloned, target):
        """Locate the clone's node occupying *target*'s preorder slot."""
        for orig_node, clone_node in zip(walk(original), walk(cloned)):
            if orig_node is target:
                return clone_node
        return None


def minimize_poc(
    dialect: Dialect,
    sql: str,
    max_attempts: int = 2_000,
    probe: Optional[Probe] = None,
) -> MinimizationResult:
    """Convenience wrapper around :class:`Minimizer`."""
    return Minimizer(dialect, max_attempts=max_attempts, probe=probe).minimize(sql)
