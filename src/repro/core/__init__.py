"""SOFT — the paper's primary contribution.

Seed collection from docs and regression suites, the ten
boundary-value-generation patterns, the execution runner, the pluggable
oracle pipeline (crash, differential, error-conformance, and the
metamorphic TLP/NoREC pair), and campaign orchestration.
"""

from .campaign import (
    BUDGET_24_HOURS,
    BUDGET_TWO_WEEKS,
    DEFAULT_CHECKPOINT_EVERY,
    Campaign,
    CampaignResult,
    run_campaign,
    run_campaigns,
)
from .clauses import ClauseBoundaryGenerator
from .collect import Seed, SeedCollector
from .config import CampaignConfig, fault_spec
from .literals import boundary_literals, boundary_repeat_counts
from .logic import LogicCheckResult, LogicOracle, LogicViolation, check_norec, check_tlp
from .minimize import (
    CrashProbe,
    DivergenceProbe,
    MetamorphicProbe,
    MinimizationResult,
    Minimizer,
    Probe,
    minimize_poc,
)
from .oracles import (
    ConformanceFinding,
    CrashOracle,
    DiscoveredBug,
    DivergenceFinding,
    Finding,
    MetamorphicFinding,
    NoRECOracle,
    OraclePipeline,
    OracleStateError,
    TLPOracle,
    build_pipeline,
    parse_oracle_names,
)
from .patterns import CAST_TARGETS, GeneratedCase, PatternEngine
from .tables import BASE_QUERY, PREDICATE_PREFIX, TABLE_NAME, TABLE_SETUP
from .report import (
    Table4Row,
    feedback_summary,
    format_findings,
    format_resilience,
    format_table4,
    render_bug_report,
    render_finding,
    resilience_summary,
    table4_rows,
)
from .runner import Outcome, Runner

__all__ = [
    "BASE_QUERY", "BUDGET_24_HOURS", "BUDGET_TWO_WEEKS", "CAST_TARGETS",
    "Campaign", "CampaignConfig", "CampaignResult", "ClauseBoundaryGenerator",
    "ConformanceFinding", "fault_spec",
    "CrashOracle", "CrashProbe", "DEFAULT_CHECKPOINT_EVERY",
    "DiscoveredBug", "DivergenceFinding", "DivergenceProbe", "Finding",
    "GeneratedCase", "LogicCheckResult", "LogicOracle", "LogicViolation",
    "MetamorphicFinding", "MetamorphicProbe", "MinimizationResult",
    "Minimizer", "NoRECOracle", "OraclePipeline", "OracleStateError",
    "Outcome", "PREDICATE_PREFIX", "PatternEngine", "Probe", "Runner",
    "Seed", "SeedCollector", "TABLE_NAME", "TABLE_SETUP", "TLPOracle",
    "Table4Row", "boundary_literals", "boundary_repeat_counts",
    "build_pipeline", "check_norec", "check_tlp", "feedback_summary",
    "format_findings", "format_resilience", "format_table4", "minimize_poc",
    "parse_oracle_names", "render_bug_report", "render_finding",
    "resilience_summary", "run_campaign", "run_campaigns", "table4_rows",
]
