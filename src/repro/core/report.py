"""Bug reporting and result aggregation (Table 4 / Figure 2 surfaces).

Renders discovered bugs as disclosure-ready reports (title, version, crash
class, PoC, backtrace), rolls campaigns up into the paper's Table 4 row
format, and produces the confirmed/fixed feedback summary behind Figure 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..dialects import all_bugs, dialect_by_name
from ..engine.errors import CRASH_CLASSES
from .campaign import CampaignResult
from .oracles import DiscoveredBug, Finding


def render_bug_report(bug: DiscoveredBug, version: Optional[str] = None) -> str:
    """A disclosure-ready textual bug report for one discovery."""
    if version is None:
        try:
            version = dialect_by_name(bug.dbms).version
        except KeyError:
            version = "unknown"
    crash_label = CRASH_CLASSES[bug.crash_code].label
    lines = [
        f"Title: {crash_label} in {bug.function.upper()} ({bug.dbms} {version})",
        f"Severity: crash ({bug.crash_code})",
        f"Found by: SOFT pattern {bug.pattern}",
        f"Stage: {bug.stage}",
        "",
        "Proof of concept:",
        f"    {bug.sql}",
        "",
        f"Crash message: {bug.message}",
    ]
    if bug.backtrace:
        lines.append("")
        lines.append("Backtrace (innermost last):")
        lines.extend(f"    #{i} {frame}" for i, frame in enumerate(bug.backtrace))
    if bug.injected is not None:
        status = "fixed" if bug.injected.fixed else "confirmed"
        lines.append("")
        lines.append(f"Vendor status: {status} ({bug.injected.bug_id})")
    return "\n".join(lines)


def render_finding(finding: Finding, version: Optional[str] = None) -> str:
    """Disclosure-ready report for any finding, crash or logic.

    Crash findings keep the historical :func:`render_bug_report` layout;
    other oracle kinds render from the polymorphic :class:`Finding`
    surface, so a new oracle needs no report-layer changes to show up.
    """
    if isinstance(finding, DiscoveredBug):
        return render_bug_report(finding, version)
    if version is None:
        try:
            version = dialect_by_name(finding.dbms).version
        except KeyError:
            version = "unknown"
    lines = [
        f"Title: {finding.bug_type_label} result from "
        f"{finding.function.upper()} ({finding.dbms} {version})",
        f"Severity: logic ({finding.kind})",
        f"Found by: SOFT pattern {finding.pattern}",
        "",
        "Proof of concept:",
        f"    {finding.sql}",
    ]
    message = getattr(finding, "message", "")
    if message:
        lines.append("")
        lines.append(f"Error message: {message}")
    peer = getattr(finding, "peer", "")
    if peer:
        lines.append("")
        lines.append(f"Diverges from: {peer}")
    flaw = finding.attribution
    if flaw is not None:
        lines.append("")
        lines.append(f"Root cause: {flaw.description} ({flaw.flaw_id})")
    return "\n".join(lines)


def format_findings(result: CampaignResult) -> str:
    """The campaign's logic-oracle findings section (CLI surface)."""
    findings = getattr(result, "findings", [])
    lines = [f"Logic findings — {result.dialect}: {len(findings)}"]
    lines.extend(f"  {finding.one_liner()}" for finding in findings)
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Table 4 aggregation
# ---------------------------------------------------------------------------
@dataclass
class Table4Row:
    """One row of Table 4: DBMS × function type."""

    dbms: str
    family: str
    count: int
    bug_types: Dict[str, int]
    patterns: Dict[str, int]
    confirmed: int
    fixed: int

    def bug_type_text(self) -> str:
        return ", ".join(f"{k}({v})" for k, v in sorted(self.bug_types.items()))

    def pattern_text(self) -> str:
        return ", ".join(f"{k}({v})" for k, v in sorted(self.patterns.items()))

    def status_text(self) -> str:
        if self.fixed == self.count and self.confirmed == self.count:
            return f"{self.count} Confirmed & Fixed"
        parts = [f"{self.confirmed} Confirmed"]
        if self.fixed:
            parts.append(f"{self.fixed} Fixed")
        return ", ".join(parts)


def table4_rows(results: Sequence[CampaignResult]) -> List[Table4Row]:
    """Aggregate campaign discoveries into Table 4's row structure.

    Totals over every :class:`Finding` subtype — crash bugs and attributed
    logic-oracle findings alike — via the polymorphic ``bug_type_label`` /
    ``attribution`` surface rather than crash-only fields.
    """
    cells: Dict[Tuple[str, str], List[Finding]] = {}
    for result in results:
        for bug in list(result.bugs) + list(getattr(result, "findings", [])):
            if bug.attribution is None:
                continue
            cells.setdefault((bug.dbms, bug.family), []).append(bug)
    rows: List[Table4Row] = []
    for (dbms, family), bugs in sorted(cells.items()):
        bug_types: Dict[str, int] = {}
        patterns: Dict[str, int] = {}
        fixed = 0
        for bug in bugs:
            label = bug.bug_type_label
            bug_types[label] = bug_types.get(label, 0) + 1
            pattern = bug.attribution.pattern
            patterns[pattern] = patterns.get(pattern, 0) + 1
            if bug.attribution.fixed:
                fixed += 1
        rows.append(
            Table4Row(
                dbms=dbms,
                family=family,
                count=len(bugs),
                bug_types=bug_types,
                patterns=patterns,
                confirmed=len(bugs),
                fixed=fixed,
            )
        )
    return rows


def format_table4(rows: Sequence[Table4Row]) -> str:
    header = f"{'DBMS':<12} {'Function Type':<16} {'Bug Type':<34} {'Patterns':<34} Status"
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row.dbms:<12} {row.family + f' ({row.count})':<16} "
            f"{row.bug_type_text():<34} {row.pattern_text():<34} {row.status_text()}"
        )
    total = sum(r.count for r in rows)
    fixed = sum(r.fixed for r in rows)
    patterns: Dict[str, int] = {}
    for row in rows:
        for pattern, count in row.patterns.items():
            fam = pattern.split(".")[0]
            patterns[fam] = patterns.get(fam, 0) + count
    pattern_text = ", ".join(f"{k}.x({v})" for k, v in sorted(patterns.items()))
    lines.append("-" * len(header))
    lines.append(
        f"{'Total':<12} {'-':<16} {str(total) + ' Bugs':<34} "
        f"{pattern_text:<34} {total} Confirmed, {fixed} Fixed"
    )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Campaign health / resilience roll-up
# ---------------------------------------------------------------------------
def resilience_summary(results: Sequence[CampaignResult]) -> Dict[str, object]:
    """Aggregate infrastructure-noise accounting across campaigns.

    Uses ``getattr`` defaults so results produced (and cached) before the
    robustness layer existed still aggregate cleanly.
    """
    fault_totals: Dict[str, int] = {}
    quarantined: List[str] = []
    flaky = 0
    timeouts = 0
    sandbox_kills = 0
    worker_deaths = 0
    respawns = 0
    open_breakers: List[str] = []
    quarantined_statements = 0
    skipped = 0
    sandbox_active = False
    for result in results:
        for kind, count in getattr(result, "fault_counters", {}).items():
            fault_totals[kind] = fault_totals.get(kind, 0) + count
        flaky += len(getattr(result, "flaky_signals", []))
        timeouts += getattr(result, "outcomes", {}).get("timeout", 0)
        if getattr(result, "quarantined", False):
            quarantined.append(result.dialect)
        if getattr(result, "sandbox_active", False):
            sandbox_active = True
            sandbox_kills += getattr(result, "sandbox_kills", 0)
            worker_deaths += getattr(result, "sandbox_worker_deaths", 0)
            respawns += getattr(result, "sandbox_respawns", 0)
            open_breakers.extend(getattr(result, "open_breakers", []))
            quarantined_statements += getattr(result, "quarantined_statements", 0)
            skipped += getattr(result, "skipped_statements", 0)
    return {
        "fault_counters": fault_totals,
        "flaky_signals": flaky,
        "timeouts": timeouts,
        "quarantined": quarantined,
        "sandbox_active": sandbox_active,
        "sandbox_kills": sandbox_kills,
        "sandbox_worker_deaths": worker_deaths,
        "sandbox_respawns": respawns,
        "open_breakers": sorted(set(open_breakers)),
        "quarantined_statements": quarantined_statements,
        "skipped_statements": skipped,
    }


def format_resilience(result: CampaignResult) -> str:
    """One campaign's infrastructure-noise report (CLI surface)."""
    summary = resilience_summary([result])
    lines = [f"Campaign health — {result.dialect}"]
    counters = summary["fault_counters"]
    if counters:
        injected = ", ".join(f"{k}({v})" for k, v in sorted(counters.items()))
        lines.append(f"  resilience events: {injected}")
    else:
        lines.append("  resilience events: none")
    lines.append(
        f"  flaky crash signals triaged out: {summary['flaky_signals']} "
        f"(0 promoted to bugs)"
    )
    lines.append(f"  statements timed out: {summary['timeouts']}")
    qps = getattr(result, "statements_per_second", 0.0)
    if qps:
        lines.append(
            f"  throughput: {qps:,.0f} statements/s "
            f"({getattr(result, 'wall_seconds', 0.0):.2f}s wall)"
        )
    hits = getattr(result, "cache_hits", 0)
    misses = getattr(result, "cache_misses", 0)
    if hits or misses:
        rate = getattr(result, "cache_hit_rate", 0.0)
        lines.append(
            f"  statement cache: {rate:.1%} hit rate "
            f"({hits:,} hits / {misses:,} misses)"
        )
    compiled = getattr(result, "compiled_executions", 0)
    fallbacks = getattr(result, "compile_fallbacks", 0)
    if compiled or fallbacks:
        lines.append(
            f"  compiled plans: {compiled:,} executions, "
            f"{fallbacks:,} interpreter fallbacks"
        )
    if getattr(result, "quarantined", False):
        lines.append(f"  QUARANTINED: {result.quarantine_reason}")
    if summary["sandbox_active"]:
        lines.append("  sandbox supervisor:")
        lines.append(
            f"    worker kills (hung): {summary['sandbox_kills']}, "
            f"worker deaths: {summary['sandbox_worker_deaths']}, "
            f"respawns: {summary['sandbox_respawns']}"
        )
        lines.append(
            f"    quarantined statements: {summary['quarantined_statements']}, "
            f"skipped by containment: {summary['skipped_statements']}"
        )
        breakers = summary["open_breakers"]
        lines.append(
            "    open family breakers: "
            + (", ".join(breakers) if breakers else "none")
        )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Figure 2: developer feedback roll-up
# ---------------------------------------------------------------------------
def feedback_summary(results: Sequence[CampaignResult]) -> Dict[str, object]:
    """Confirmed/fixed disclosure numbers (the data behind Figure 2)."""
    discovered = [b for r in results for b in r.bugs if b.injected is not None]
    confirmed = len(discovered)
    fixed = sum(1 for b in discovered if b.injected.fixed)
    highlights = []
    for bug in discovered:
        if bug.injected.bug_id == "CLICKHOUSE-STRI-001":
            highlights.append(
                "ClickHouse CTO: \"We must fix it immediately or get rid of "
                "this function.\" (toDecimalString)"
            )
        if bug.dbms == "mariadb" and bug.injected.fixed:
            highlights.append(
                f"MariaDB hid {bug.injected.bug_id} from public view for "
                "security reasons"
            )
        if bug.dbms == "postgresql":
            highlights.append(
                "PostgreSQL asked for the report to go directly to the "
                "security team"
            )
    return {
        "reported": confirmed,
        "confirmed": confirmed,
        "fixed": fixed,
        "highlights": sorted(set(highlights)),
    }
