"""Boundary literal pool — Pattern 1.1 (§6).

The pool is exactly the paper's recipe::

    bound → ±0.99999…, ±99999…, '', NULL, *

with digit lengths *enumerated* rather than maximal: "merely attempting
extremely large values is insufficient, as they might be rejected during
the parsing stage … enumerating values with different digit lengths is a
more suitable approach".
"""

from __future__ import annotations

from typing import List

from ..sqlast import DecimalLit, Expr, IntegerLit, NullLit, Star, StringLit, UnaryOp

#: digit lengths enumerated for boundary numerics (paper §6: different
#: digit lengths, because every dialect caps decimals differently)
DIGIT_LENGTHS = (1, 5, 10, 16, 20, 31, 40, 46, 65, 80)


def boundary_literals(digit_lengths=DIGIT_LENGTHS) -> List[Expr]:
    """The Pattern 1.1 pool, as fresh AST nodes (callers may splice them
    directly; generation clones seeds, not the pool)."""
    # the cheap, famous boundary values lead the pool so bounded budgets
    # try them for every argument before walking the digit-length ladder
    pool: List[Expr] = [
        StringLit(""),
        NullLit(),
        Star(),
        IntegerLit("0"),
    ]
    for length in digit_lengths:
        nines = "9" * length
        pool.append(IntegerLit(nines))
        pool.append(UnaryOp("-", IntegerLit(nines)))
        pool.append(DecimalLit("0." + nines))
        pool.append(UnaryOp("-", DecimalLit("0." + nines)))
        pool.append(DecimalLit("1." + nines))
    return pool


#: repetition counts used by Pattern 3.1 (``REPEAT(prefix, bound)``); the
#: last one intentionally blows the memory limit — the source of the
#: paper's 7 false positives ("REPEAT('a', 9999999999)").
REPEAT_BOUNDS = (9, 99, 999, 99999, 9999999999)


def boundary_repeat_counts() -> List[int]:
    return list(REPEAT_BOUNDS)
