"""Deterministic seeded tables for the predicate statement family.

The metamorphic oracles (TLP / NoREC, ``core.oracles.metamorphic``) need
boundary functions to appear *inside real predicates over real rows* —
bare ``SELECT f(args);`` statements have no row set to partition.  This
module owns the workload's single seeded table:

* ``TABLE_SETUP`` — the bootstrap DDL/DML every server executing the
  predicate family runs first (the :class:`~repro.core.runner.Runner`
  replays it after crash restarts, outside the executed-statement
  accounting, so signatures depend only on generated statements);
* ``predicate_statement`` — wraps a boundary predicate into the family's
  canonical shape, ``SELECT k, i, s, d FROM fuzz_t WHERE <p>;``.

The row set is fixed and NULL-rich on purpose: every non-key column holds
NULLs so three-valued logic is exercised on every comparison, and the
values sit on the same integer/decimal/string boundaries the paper's
argument pool targets.  Determinism is load-bearing — serial and sharded
campaigns must fingerprint identical base relations.
"""

from __future__ import annotations

from typing import Tuple

#: the seeded relation every predicate-family statement ranges over
TABLE_NAME = "fuzz_t"

#: projected columns, in on-disk order (k is the NOT NULL row key)
TABLE_COLUMNS: Tuple[str, ...] = ("k", "i", "s", "d")

#: columns a generated comparison may reference (k included: always
#: non-NULL, so predicates over it separate the executor's NULL handling
#: from plain row filtering)
PREDICATE_COLUMNS: Tuple[str, ...] = ("i", "s", "d", "k")

#: bootstrap statements; executed in order on every fresh server
TABLE_SETUP: Tuple[str, ...] = (
    f"DROP TABLE IF EXISTS {TABLE_NAME};",
    f"CREATE TABLE {TABLE_NAME} "
    "(k INT, i INT, s VARCHAR(24), d DECIMAL(10, 4));",
    f"INSERT INTO {TABLE_NAME} VALUES "
    "(1, 0, '', 0.0), "
    "(2, 1, 'a', 1.5), "
    "(3, -1, NULL, -2.25), "
    "(4, NULL, 'bb', NULL), "
    "(5, 127, 'boundary', 9999.9999), "
    "(6, -128, 'x', -0.0001), "
    "(7, NULL, NULL, NULL), "
    "(8, 32767, 'yz', 123.45);",
)

#: number of rows TABLE_SETUP inserts (oracles sanity-check against it)
TABLE_ROWS = 8

#: the family's statement shape, minus the predicate and terminator
PREDICATE_PREFIX = (
    f"SELECT {', '.join(TABLE_COLUMNS)} FROM {TABLE_NAME} WHERE "
)

#: the unfiltered base query the TLP oracle partitions
BASE_QUERY = f"SELECT {', '.join(TABLE_COLUMNS)} FROM {TABLE_NAME};"


def predicate_statement(predicate: str) -> str:
    """The canonical predicate-family statement for *predicate*."""
    return f"{PREDICATE_PREFIX}{predicate};"
