"""The ten boundary-value-generation patterns (§6) as AST transformations.

Every pattern consumes a :class:`~repro.core.collect.Seed` (one collected
function expression) and yields new expressions with boundary arguments
spliced in:

* **P1.1** is the boundary literal pool itself (:mod:`repro.core.literals`).
* **P1.2** ``f(c) → f(bound)`` — substitute pool literals for arguments.
* **P1.3** ``f(c) → f(c[:i] + 99999 + c[i+1:])`` — inject digit runs.
* **P1.4** ``f(c) → f(c[:i] + c[i]c[i] + c[i+1:])`` — duplicate characters.
* **P2.1** ``f(c) → f(CAST(c AS type))`` — explicit casts.
* **P2.2** ``f(c) → f((SELECT c UNION SELECT t))`` — implicit UNION casts.
* **P2.3** ``f(c), f2(c2) → f(c2)`` — transplant another function's args.
* **P3.1** ``f(c) → f(REPEAT(c[:i], bound))`` — repetition-scale args.
* **P3.2** ``f(c), f2 → f(f2(c))`` — wrap an argument with another function.
* **P3.3** ``f(c), f2(c2) → f(f2(c2))`` — substitute another call wholesale.

Following Finding 3 (87.5% of bug-inducing statements contain ≤ 2 function
expressions), nesting patterns skip seeds that already contain two calls.
"""

from __future__ import annotations

import itertools
import random
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence

from ..sqlast import (
    ArrayExpr,
    Cast,
    DecimalLit,
    Expr,
    FuncCall,
    IntegerLit,
    NullLit,
    ParseError,
    Select,
    SelectItem,
    SetOp,
    StringLit,
    SubqueryExpr,
    TypeName,
    parse_expression,
    to_sql,
)
from ..sqlast.visitor import clone, count_function_calls, replace_node
from .clauses import comparison_bound_texts
from .collect import Seed
from .literals import boundary_literals, boundary_repeat_counts
from .tables import PREDICATE_COLUMNS, predicate_statement

#: cast targets enumerated by Pattern 2.1 — chosen to cross every internal
#: type family boundary (numeric width, binary, temporal, document)
CAST_TARGETS = (
    TypeName("UNSIGNED"),
    TypeName("SIGNED"),
    TypeName("DECIMAL", [30, 28]),
    TypeName("DECIMAL", [38, 2]),
    TypeName("BINARY"),
    TypeName("CHAR", [2]),
    TypeName("DOUBLE"),
    TypeName("BOOLEAN"),
    TypeName("DATE"),
    TypeName("JSON"),
)

#: Finding 3: stop nesting once an expression holds two function calls
MAX_FUNCTION_CALLS = 2

#: digit runs injected by P1.3 (short run + one wide enough to cross
#: every dialect's numeric-width boundaries)
DIGIT_RUNS = ("99999", "9" * 25)

#: duplication factors used by P1.4
DUPLICATION_FACTORS = (2, 4)

#: comparison operators cycled by the predicate statement family when it
#: anchors a boundary expression against a seeded-table column
PREDICATE_OPS = ("=", "<", ">", "<=", ">=", "<>")


class GeneratedCase:
    """One generated test statement.

    The statement text is materialized lazily: pattern generators describe
    the AST surgery as a thunk, and the clone/splice/print work only runs
    when :attr:`sql` is first read.  Parallel shard workers enumerate the
    full generation stream but execute only their own shard's cases, so
    skipped cases must cost an allocation, not a tree build.
    """

    __slots__ = ("_sql", "_build", "pattern", "seed_function", "seed_family")

    def __init__(
        self, sql: str, pattern: str, seed_function: str, seed_family: str
    ) -> None:
        self._sql: Optional[str] = sql
        self._build: Optional[Callable[[], str]] = None
        self.pattern = pattern
        self.seed_function = seed_function
        self.seed_family = seed_family

    @classmethod
    def deferred(
        cls,
        build: Callable[[], str],
        pattern: str,
        seed_function: str,
        seed_family: str,
    ) -> "GeneratedCase":
        """A case whose SQL is produced by *build* on first access."""
        case = cls.__new__(cls)
        case._sql = None
        case._build = build
        case.pattern = pattern
        case.seed_function = seed_function
        case.seed_family = seed_family
        return case

    @property
    def sql(self) -> str:
        if self._sql is None:
            assert self._build is not None
            self._sql = self._build()
            self._build = None
        return self._sql

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"[{self.pattern}] {self.sql}"


def _as_statement(expr: Expr) -> str:
    return f"SELECT {to_sql(expr)};"


def _literal_args(call: FuncCall) -> List[int]:
    """Indices of arguments that are plain literals (P1.3/P1.4 targets)."""
    out = []
    for idx, arg in enumerate(call.args):
        if isinstance(arg, (StringLit, IntegerLit, DecimalLit, ArrayExpr)):
            out.append(idx)
    return out


class PatternEngine:
    """Applies the ten patterns to a seed corpus."""

    def __init__(
        self,
        seeds: Sequence[Seed],
        rng: Optional[random.Random] = None,
        max_partners: int = 48,
        return_types: Optional[Dict[str, str]] = None,
        statement_family: str = "expression",
    ) -> None:
        if statement_family not in ("expression", "predicate"):
            raise ValueError(
                f"unknown statement family {statement_family!r} "
                f"(expected 'expression' or 'predicate')"
            )
        self.seeds = list(seeds)
        self.rng = rng or random.Random(0)
        self.max_partners = max_partners
        self.statement_family = statement_family
        #: comparison-position boundary texts cycled by the predicate
        #: decoration (shared vocabulary with core.clauses)
        self._bound_texts = (
            comparison_bound_texts() if statement_family == "predicate" else []
        )
        #: function → result type observed when the seed corpus was replayed
        #: (SOFT sees every seed's result; the ordering below uses it)
        self.return_types = dict(return_types or {})
        self.pool = boundary_literals()
        self.repeat_counts = boundary_repeat_counts()
        self._partners = self._order_partners()
        self._donors = self._collect_donors()

    # ------------------------------------------------------------------
    # partner ordering for double-enumeration patterns
    # ------------------------------------------------------------------
    #: result types whose producers front the partner enumeration — these
    #: are the internal types the studied bugs show functions mishandle
    _EXOTIC_TYPES = (
        "bytes", "geometry", "json", "map", "date", "datetime", "time",
        "array", "inet", "interval", "row", "xml",
    )

    def _order_partners(self) -> List[Seed]:
        """Result-type-diverse round-robin over partner seeds.

        P2.3/P3.2/P3.3 enumerate pairs of functions; the paper ran the full
        quadratic enumeration over two weeks.  Under a bounded budget we
        order partners round-robin across *observed seed result types*
        (falling back to function family), so producers of every internal
        type — binary, geometry, JSON, temporal — appear within the first
        dozen partners.  This makes a bounded budget representative of the
        exhaustive run (ablated in bench_ablations.py::test_ablation_d5_partner_ordering).
        """
        def bucket_key(seed: Seed) -> str:
            observed = self.return_types.get(seed.function)
            if observed in self._EXOTIC_TYPES:
                return f"type:{observed}"
            return f"family:{seed.family}"

        buckets: Dict[str, List[Seed]] = {}
        for seed in self.seeds:
            buckets.setdefault(bucket_key(seed), []).append(seed)
        for bucket in buckets.values():
            bucket.sort(key=lambda s: (s.function, s.sql))
        # exotic-type buckets first, then families, both alphabetical
        ordered_keys = sorted(
            buckets, key=lambda k: (not k.startswith("type:"), k)
        )
        ordered: List[Seed] = []
        index = 0
        remaining = True
        while remaining:
            remaining = False
            for key in ordered_keys:
                bucket = buckets[key]
                if index < len(bucket):
                    ordered.append(bucket[index])
                    remaining = True
            index += 1
        return ordered

    def partners_for(self, seed: Seed) -> List[Seed]:
        out = []
        seen_functions = set()
        for partner in self._partners:
            if partner.function == seed.function:
                continue
            if partner.function in seen_functions:
                continue  # one seed per partner function keeps breadth
            seen_functions.add(partner.function)
            out.append(partner)
            if len(out) >= self.max_partners:
                break
        return out

    # ------------------------------------------------------------------
    # donor arguments for P2.3
    # ------------------------------------------------------------------
    def _collect_donors(self) -> List[Expr]:
        """Distinct literal arguments across the corpus, format-diverse.

        Pattern 2.3 passes *other functions' arguments* into a function.
        Enumerating every (function, argument) pair repeats the same values
        thousands of times; instead we deduplicate donor values and group
        them by leading character, taking two per group with symbol-leading
        donors (JSON paths, XPaths, format strings) first.
        """
        groups: Dict[str, List[Expr]] = {}
        seen_sql = set()
        for seed in self.seeds:
            for arg in seed.expression.args:
                if isinstance(arg, FuncCall):
                    continue
                sql = to_sql(arg)
                if sql in seen_sql:
                    continue
                seen_sql.add(sql)
                head = sql[1] if sql.startswith("'") and len(sql) > 1 else sql[:1]
                groups.setdefault(head, []).append(arg)
        ordered_heads = sorted(
            groups, key=lambda h: (h.isalnum(), h)
        )
        donors: List[Expr] = []
        for head in ordered_heads:
            donors.extend(groups[head][:2])
        return donors

    # ------------------------------------------------------------------
    # per-seed generation
    # ------------------------------------------------------------------
    def generate_for_seed(self, seed: Seed) -> Iterator[GeneratedCase]:
        """All pattern applications for one seed.

        The nine pattern streams are interleaved round-robin rather than
        exhausted in sequence, so a bounded budget samples every pattern
        family for every function early — the bounded-budget analogue of
        the paper's long-running exhaustive enumeration.
        """
        streams = [
            self.p1_2(seed),
            self.p1_3(seed),
            self.p1_4(seed),
            self.p2_1(seed),
            self.p2_2(seed),
            self.p2_3(seed),
            self.p3_1(seed),
            self.p3_2(seed),
            self.p3_3(seed),
        ]
        pending = list(streams)
        while pending:
            still = []
            for stream in pending:
                batch = list(itertools.islice(stream, 2))
                if batch:
                    still.append(stream)
                    yield from batch
            pending = still

    def generate_all(self) -> Iterator[GeneratedCase]:
        """The engine's statement stream, in the configured family.

        The default ``expression`` family is the raw interleaved pattern
        stream (byte-identical to every pre-family release).  The
        ``predicate`` family decorates each case into a seeded-table
        query — see :meth:`_as_predicate`.
        """
        cases = self._generate_expressions()
        if self.statement_family != "predicate":
            yield from cases
            return
        for ordinal, case in enumerate(cases):
            yield self._as_predicate(case, ordinal)

    def _generate_expressions(self) -> Iterator[GeneratedCase]:
        """Interleave generation across seeds (round-robin), so early budget
        spreads over the whole function inventory instead of exhausting the
        alphabet's first functions."""
        iterators = [self.generate_for_seed(seed) for seed in self.seeds]
        pending = list(iterators)
        while pending:
            still = []
            for iterator in pending:
                batch = list(itertools.islice(iterator, 4))
                if batch:
                    still.append(iterator)
                    yield from batch
            pending = still

    def _as_predicate(self, case: GeneratedCase, ordinal: int) -> GeneratedCase:
        """Wrap an expression case into the predicate statement family::

            SELECT k, i, s, d FROM fuzz_t
            WHERE (<expr>) <cmp> <column> AND NOT (<bound> = <bound2>);

        The boundary expression is anchored against a seeded-table column
        (row-varying, NULL-able — what TLP partitions), and the conjoined
        ``NOT (<bound> = <bound2>)`` term places pool literals in a
        constant comparison the optimizer folds (what NoREC compares
        across optimizer modes).  All decoration choices cycle on the
        case's stream *ordinal*, fixed here eagerly: the wrapped SQL stays
        lazily built, and shard workers that skip rendering non-owned
        cases never touch shared RNG state, so serial and ``--jobs`` runs
        decorate identically.
        """
        op = PREDICATE_OPS[ordinal % len(PREDICATE_OPS)]
        column = PREDICATE_COLUMNS[ordinal % len(PREDICATE_COLUMNS)]
        bounds = self._bound_texts
        left = bounds[ordinal % len(bounds)]
        right = bounds[(ordinal + 1 + ordinal // len(bounds)) % len(bounds)]

        def build(case=case, op=op, column=column, left=left, right=right):
            expr = case.sql[len("SELECT "):].rstrip().rstrip(";")
            return predicate_statement(
                f"({expr}) {op} {column} AND NOT ({left} = {right})"
            )

        return GeneratedCase.deferred(
            build, case.pattern, case.seed_function, case.seed_family
        )

    # ------------------------------------------------------------------
    # P1.2 — boundary pool substitution
    # ------------------------------------------------------------------
    def p1_2(self, seed: Seed) -> Iterator[GeneratedCase]:
        arity = len(seed.expression.args)
        for arg_index in range(arity):
            for literal in self.pool:
                # default-arg binding freezes the loop variables per case
                def build(seed=seed, arg_index=arg_index, literal=literal):
                    tree = clone(seed.expression)
                    replace_node(tree, tree.args[arg_index], clone(literal))
                    return _as_statement(tree)

                yield GeneratedCase.deferred(
                    build, "P1.2", seed.function, seed.family
                )
        if arity == 0:
            return

    # ------------------------------------------------------------------
    # P1.3 — digit-run injection
    # ------------------------------------------------------------------
    def p1_3(self, seed: Seed) -> Iterator[GeneratedCase]:
        for arg_index in _literal_args(seed.expression):
            original = seed.expression.args[arg_index]
            text = original.value if isinstance(original, StringLit) else to_sql(original)
            if not text:
                continue
            positions = sorted({0, len(text) // 2, len(text) - 1})
            for position in positions:
                for run in DIGIT_RUNS:
                    def build(
                        seed=seed,
                        arg_index=arg_index,
                        text=text,
                        position=position,
                        run=run,
                        quote=isinstance(original, StringLit),
                    ):
                        mutated = text[:position] + run + text[position + 1 :]
                        replacement = self._reparse_literal(mutated, quote=quote)
                        tree = clone(seed.expression)
                        replace_node(tree, tree.args[arg_index], replacement)
                        return _as_statement(tree)

                    yield GeneratedCase.deferred(
                        build, "P1.3", seed.function, seed.family
                    )

    # ------------------------------------------------------------------
    # P1.4 — character duplication
    # ------------------------------------------------------------------
    def p1_4(self, seed: Seed) -> Iterator[GeneratedCase]:
        for arg_index in _literal_args(seed.expression):
            original = seed.expression.args[arg_index]
            text = original.value if isinstance(original, StringLit) else to_sql(original)
            if not text:
                continue
            # duplicate the first occurrence of each distinct character
            seen = set()
            positions = []
            for position, ch in enumerate(text):
                if ch not in seen:
                    seen.add(ch)
                    positions.append(position)
                if len(positions) >= 8:
                    break
            for position in positions:
                for factor in DUPLICATION_FACTORS:
                    def build(
                        seed=seed,
                        arg_index=arg_index,
                        text=text,
                        position=position,
                        factor=factor,
                        quote=isinstance(original, StringLit),
                    ):
                        mutated = (
                            text[:position]
                            + text[position] * factor
                            + text[position + 1 :]
                        )
                        replacement = self._reparse_literal(mutated, quote=quote)
                        tree = clone(seed.expression)
                        replace_node(tree, tree.args[arg_index], replacement)
                        return _as_statement(tree)

                    yield GeneratedCase.deferred(
                        build, "P1.4", seed.function, seed.family
                    )

    @staticmethod
    def _reparse_literal(text: str, quote: bool) -> Expr:
        """Rebuild a literal from mutated text.  Non-string literals whose
        mutation no longer parses become string literals — malformed
        structured text is exactly what these patterns are after."""
        if quote:
            return StringLit(text)
        try:
            expr = parse_expression(text)
        except (ParseError, Exception):
            return StringLit(text)
        if isinstance(expr, (IntegerLit, DecimalLit, ArrayExpr)):
            return expr
        return StringLit(text)

    # ------------------------------------------------------------------
    # P2.1 — explicit casts
    # ------------------------------------------------------------------
    def p2_1(self, seed: Seed) -> Iterator[GeneratedCase]:
        for arg_index in range(len(seed.expression.args)):
            for target in CAST_TARGETS:
                def build(seed=seed, arg_index=arg_index, target=target):
                    tree = clone(seed.expression)
                    original = tree.args[arg_index]
                    replace_node(
                        tree,
                        original,
                        Cast(original, TypeName(target.name, list(target.params))),
                    )
                    return _as_statement(tree)

                yield GeneratedCase.deferred(
                    build, "P2.1", seed.function, seed.family
                )

    # ------------------------------------------------------------------
    # P2.2 — implicit casts via UNION
    # ------------------------------------------------------------------
    def p2_2(self, seed: Seed) -> Iterator[GeneratedCase]:
        others: List[Optional[Expr]] = [
            NullLit(),
            IntegerLit("0"),
            StringLit(""),
            DecimalLit("2.5"),
            None,  # sentinel: UNION ALL with the argument itself
        ]
        for arg_index in range(len(seed.expression.args)):
            for other in others:
                def build(seed=seed, arg_index=arg_index, other=other):
                    tree = clone(seed.expression)
                    original = tree.args[arg_index]
                    if other is None:
                        union: SetOp = SetOp(
                            "UNION",
                            Select([SelectItem(original)]),
                            Select([SelectItem(clone(original))]),
                            all=True,
                        )
                    else:
                        union = SetOp(
                            "UNION",
                            Select([SelectItem(original)]),
                            Select([SelectItem(clone(other))]),
                        )
                    replace_node(tree, original, SubqueryExpr(union))
                    return _as_statement(tree)

                yield GeneratedCase.deferred(
                    build, "P2.2", seed.function, seed.family
                )

    # ------------------------------------------------------------------
    # P2.3 — argument transplant between functions
    # ------------------------------------------------------------------
    def p2_3(self, seed: Seed) -> Iterator[GeneratedCase]:
        call = seed.expression
        arity = len(call.args)
        # (a) positional transplant of deduplicated donor values — the
        # format-diverse donors come first, so they lead the stream
        for donor in self._donors:
            for arg_index in range(arity):
                def build(call=call, arg_index=arg_index, donor=donor):
                    tree = clone(call)
                    replace_node(tree, tree.args[arg_index], clone(donor))
                    return _as_statement(tree)

                yield GeneratedCase.deferred(
                    build, "P2.3", seed.function, seed.family
                )
        # (b) wholesale transplant when the arity is compatible
        for partner in self.partners_for(seed):
            partner_args = partner.expression.args
            if partner_args and len(partner_args) == arity:
                def build(call=call, partner_args=partner_args):
                    tree = FuncCall(
                        call.name,
                        [clone(a) for a in partner_args],
                        distinct=call.distinct,
                    )
                    return _as_statement(tree)

                yield GeneratedCase.deferred(
                    build, "P2.3", seed.function, seed.family
                )

    # ------------------------------------------------------------------
    # P3.1 — repetition-built arguments
    # ------------------------------------------------------------------
    def p3_1(self, seed: Seed) -> Iterator[GeneratedCase]:
        if count_function_calls(seed.expression) >= MAX_FUNCTION_CALLS:
            return
        for arg_index in _literal_args(seed.expression):
            original = seed.expression.args[arg_index]
            text = original.value if isinstance(original, StringLit) else to_sql(original)
            if not text:
                continue
            for prefix_len in (1, 3):
                prefix = text[:prefix_len]
                if not prefix:
                    continue
                for count in self.repeat_counts:
                    def build(
                        seed=seed, arg_index=arg_index, prefix=prefix, count=count
                    ):
                        tree = clone(seed.expression)
                        repeat = FuncCall(
                            "REPEAT", [StringLit(prefix), IntegerLit(str(count))]
                        )
                        replace_node(tree, tree.args[arg_index], repeat)
                        return _as_statement(tree)

                    yield GeneratedCase.deferred(
                        build, "P3.1", seed.function, seed.family
                    )

    # ------------------------------------------------------------------
    # P3.2 — wrap an argument with another function
    # ------------------------------------------------------------------
    def p3_2(self, seed: Seed) -> Iterator[GeneratedCase]:
        if count_function_calls(seed.expression) >= MAX_FUNCTION_CALLS:
            return
        call = seed.expression
        for partner in self.partners_for(seed):
            inner_proto = partner.expression
            if not inner_proto.args:
                continue
            for arg_index in range(len(call.args)):
                def build(call=call, arg_index=arg_index, inner_proto=inner_proto):
                    tree = clone(call)
                    original = tree.args[arg_index]
                    inner_args: List[Expr] = [original]
                    inner_args.extend(clone(a) for a in inner_proto.args[1:])
                    wrapped = FuncCall(inner_proto.name, inner_args)
                    replace_node(tree, original, wrapped)
                    return _as_statement(tree)

                yield GeneratedCase.deferred(
                    build, "P3.2", seed.function, seed.family
                )

    # ------------------------------------------------------------------
    # P3.3 — substitute another function call wholesale
    # ------------------------------------------------------------------
    def p3_3(self, seed: Seed) -> Iterator[GeneratedCase]:
        if count_function_calls(seed.expression) >= MAX_FUNCTION_CALLS:
            return
        call = seed.expression
        for partner in self.partners_for(seed):
            if count_function_calls(partner.expression) >= MAX_FUNCTION_CALLS:
                continue
            for arg_index in range(len(call.args)):
                def build(call=call, arg_index=arg_index, partner=partner):
                    tree = clone(call)
                    replace_node(
                        tree, tree.args[arg_index], clone(partner.expression)
                    )
                    return _as_statement(tree)

                yield GeneratedCase.deferred(
                    build, "P3.3", seed.function, seed.family
                )
