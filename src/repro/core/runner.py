"""Test-case execution against a simulated DBMS (SOFT step 3, §7.1).

The runner owns a server process and a client connection, executes generated
statements, classifies the outcome, and restarts the server after a crash —
the in-process equivalent of the paper's Docker-container workflow.

Outcome classes:

* ``ok`` — statement executed, result returned.
* ``error`` — the DBMS rejected the statement with a handled SQL error.
* ``resource_kill`` — the statement was forcibly terminated by a resource
  limit (e.g. ``REPEAT('a', 9999999999)``).  These are the paper's false
  positives (§7.3: 7 FPs); the oracle tracks them separately.
* ``crash`` — the server process died: an SQL function bug was triggered.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

from ..dialects.base import Dialect
from ..engine.connection import Connection, Server, ServerCrashed
from ..engine.coverage import CoverageTracker
from ..engine.errors import CrashSignal, ResourceError, SQLError


@dataclass
class Outcome:
    """Classification of one executed statement."""

    kind: str                      # ok | error | resource_kill | crash
    sql: str
    message: str = ""
    crash: Optional[CrashSignal] = None
    result_type: Optional[str] = None  # type of the first result cell

    @property
    def is_crash(self) -> bool:
        return self.kind == "crash"


class Runner:
    """Executes statements against one dialect with restart-on-crash."""

    def __init__(
        self,
        dialect: Dialect,
        enable_coverage: bool = False,
    ) -> None:
        self.dialect = dialect
        self.server: Server = dialect.create_server()
        self.coverage: Optional[CoverageTracker] = None
        if enable_coverage:
            self.coverage = CoverageTracker()
            self.server.ctx.coverage = self.coverage
        self.connection: Connection = self.server.connect()
        self.executed = 0
        self.restarts = 0

    # ------------------------------------------------------------------
    def run(self, sql: str) -> Outcome:
        """Execute *sql* and classify the outcome."""
        self.executed += 1
        try:
            result = self.connection.execute(sql)
            result_type = None
            if result.rows and result.rows[0]:
                result_type = result.rows[0][0].type_name
            return Outcome("ok", sql, result_type=result_type)
        except ResourceError as exc:
            return Outcome("resource_kill", sql, message=exc.message)
        except SQLError as exc:
            return Outcome("error", sql, message=exc.message)
        except ServerCrashed as exc:
            self._restart()
            return Outcome("crash", sql, message=str(exc), crash=exc.crash)
        except RecursionError:
            # treat interpreter-level recursion like a resource kill
            self._restart()
            return Outcome("resource_kill", sql, message="interpreter recursion limit")

    def _restart(self) -> None:
        self.restarts += 1
        self.server.restart(keep_coverage=True)
        if self.coverage is not None:
            self.server.ctx.coverage = self.coverage
        self.connection = self.server.connect()

    # ------------------------------------------------------------------
    @property
    def triggered_functions(self):
        return set(self.server.ctx.triggered_functions)

    @property
    def branch_coverage(self) -> int:
        return self.coverage.branch_count if self.coverage else 0
