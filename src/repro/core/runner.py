"""Test-case execution against a simulated DBMS (SOFT step 3, §7.1).

The runner owns a server process and a client connection, executes generated
statements, classifies the outcome, and restarts the server after a crash —
the in-process equivalent of the paper's Docker-container workflow.

Outcome classes:

* ``ok`` — statement executed, result returned.
* ``error`` — the DBMS rejected the statement with a handled SQL error.
* ``resource_kill`` — the statement was forcibly terminated by a resource
  limit (e.g. ``REPEAT('a', 9999999999)``).  These are the paper's false
  positives (§7.3: 7 FPs); the oracle tracks them separately.
* ``crash`` — the server process died and the crash *reconfirmed* (when
  reconfirmation is on): an SQL function bug was triggered.
* ``timeout`` — the watchdog killed a statement that exceeded its
  deadline even after one quiet retry (a genuine hang, not infra noise).
* ``flaky`` — the server died but the crash did not reproduce on a clean
  re-execution; recorded as a flaky signal, never as a bug (this mirrors
  the paper's false-positive triage of non-reproducible crash reports).
* ``resource_exhausted`` — an opt-in governor budget (``--budgets``)
  tripped: the harness terminated the statement, not the DBMS.  Distinct
  from ``resource_kill`` so budget kills never pollute the paper's
  false-positive accounting.
* ``harness_crash`` — sandbox mode only (``--sandbox``): the subprocess
  worker died executing the statement (a harness bug, OOM kill, or a
  pathology the in-process model cannot absorb).  The worker is respawned
  and the campaign quarantines the statement instead of dying with it.

Resilience machinery (all from :mod:`repro.robustness`): transient
connection drops are retried with exponential backoff and auto-reconnect; a
hung statement is killed by the watchdog and retried once with faults
suppressed; failed restarts are retried with backoff and, past the circuit
breaker's threshold, the whole server is quarantined
(:class:`~repro.robustness.ServerQuarantined`) so multi-dialect campaigns
degrade gracefully instead of aborting.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from ..dialects.base import Dialect
from ..engine.connection import (
    Connection,
    ConnectionClosed,
    RestartFailed,
    Server,
    ServerCrashed,
)
from ..engine.coverage import CoverageTracker
from ..engine.errors import CrashSignal, ResourceError, ResourceExhausted, SQLError
from ..engine.fingerprint import ResultFingerprint, fingerprint_result
from ..robustness.faults import FaultInjector
from ..robustness.governor import ResourceBudgets, make_governor
from ..robustness.policy import CircuitBreaker, RetryPolicy
from ..robustness.sandbox import (
    SandboxedConnection,
    WorkerCrashed,
    WorkerHung,
    make_sandbox_config,
)
from ..robustness.watchdog import Clock, StatementTimeout, WallClock, Watchdog


@dataclass
class Outcome:
    """Classification of one executed statement."""

    kind: str                      # ok | error | resource_kill | crash | timeout | flaky
    sql: str
    message: str = ""
    crash: Optional[CrashSignal] = None
    result_type: Optional[str] = None  # type of the first result cell
    #: result-set fingerprint, computed only when an oracle asks for it
    #: (Runner.capture_fingerprints) — None otherwise
    fingerprint: Optional["ResultFingerprint"] = None

    @property
    def is_crash(self) -> bool:
        return self.kind == "crash"


class Runner:
    """Executes statements against one dialect with restart-on-crash.

    ``faults`` installs a :class:`~repro.robustness.FaultInjector` on the
    server; when it is set, crash *reconfirmation* defaults to on (every
    crash is re-executed once after the restart, and non-reproducible
    crashes become ``flaky`` outcomes instead of bugs).
    """

    def __init__(
        self,
        dialect: Dialect,
        enable_coverage: bool = False,
        faults: Optional[FaultInjector] = None,
        retry_policy: Optional[RetryPolicy] = None,
        watchdog: Optional[Watchdog] = None,
        clock: Optional[Clock] = None,
        breaker: Optional[CircuitBreaker] = None,
        reconfirm_crashes: Optional[bool] = None,
        statement_cache: bool = True,
        compile_plans: bool = True,
        budgets: Optional[object] = None,
        sandbox: Optional[object] = None,
        bootstrap_sql: Sequence[str] = (),
    ) -> None:
        self.dialect = dialect
        self.bootstrap_sql = tuple(bootstrap_sql)
        if isinstance(budgets, str):
            budgets = ResourceBudgets.parse(budgets)
        self.budgets: Optional[ResourceBudgets] = budgets
        sandbox_config = make_sandbox_config(sandbox)
        # validation speaks library option names; the CLI maps them to
        # flag spellings at its boundary (repro.cli)
        if sandbox_config is not None and faults is not None:
            raise ValueError(
                "the 'sandbox' and 'faults' options are mutually exclusive: "
                "the fault injector simulates infrastructure noise "
                "in-process, the sandbox contains the real thing"
            )
        if sandbox_config is not None and enable_coverage:
            raise ValueError(
                "the 'sandbox' option does not support 'enable_coverage' "
                "(arc sets do not cross the worker boundary)"
            )
        if sandbox_config is not None and self.bootstrap_sql:
            raise ValueError(
                "the 'sandbox' option does not support 'bootstrap_sql' "
                "(the seeded-table workload runs in-process)"
            )
        self.server: Server = dialect.create_server()
        if not statement_cache:
            self.server.stmt_cache = None
        elif not compile_plans:
            # interpreted-only mode (--no-compile): deliberate, so hits
            # that would have compiled are not counted as fallbacks
            self.server.stmt_cache.compile_enabled = False
        self.coverage: Optional[CoverageTracker] = None
        if enable_coverage:
            self.coverage = CoverageTracker()
            self.server.ctx.coverage = self.coverage
        self.sandbox: Optional[SandboxedConnection] = None
        if sandbox_config is not None:
            self.sandbox = SandboxedConnection(
                dialect.name,
                config=sandbox_config,
                budgets=budgets,
                statement_cache=statement_cache,
                compile_plans=compile_plans,
            )
            # worker-reported triggered functions land in the parent ctx,
            # so checkpoints and the triggered_functions property are
            # oblivious to where execution actually happened
            self.sandbox.triggered_sink = self.server.ctx.triggered_functions
        elif budgets is not None and budgets.enabled:
            governor = make_governor(budgets)
            self.server.attach_governor(governor)
        self.connection: Connection = self.server.connect()
        self.clock: Clock = clock if clock is not None else WallClock()
        self.watchdog = watchdog if watchdog is not None else Watchdog(self.clock)
        self.injector = faults
        if faults is not None:
            faults.attach(self.server, self.clock)
        self.retry_policy = retry_policy if retry_policy is not None else RetryPolicy()
        self.breaker = breaker if breaker is not None else CircuitBreaker(dialect.name)
        self.reconfirm_crashes = (
            (faults is not None) if reconfirm_crashes is None else reconfirm_crashes
        )
        self.executed = 0
        self.restarts = 0
        self.timeouts = 0
        #: set by the campaign when a registered oracle needs result-set
        #: fingerprints (OraclePipeline.needs_fingerprints)
        self.capture_fingerprints = False
        self.flaky_crashes = 0
        #: runner-level resilience event counts (injector keeps its own)
        self.fault_counters: Dict[str, int] = {}
        self._apply_bootstrap()

    # ------------------------------------------------------------------
    def _apply_bootstrap(self) -> None:
        """Replay the bootstrap DDL/DML (seeded tables) on a fresh server.

        The base relation is infrastructure, not workload: it runs outside
        the executed-statement accounting and with the fault hook detached,
        so every server — first boot or post-crash restart, with or without
        ``--faults`` — starts from the identical row set and campaign
        signatures depend only on generated statements.
        """
        if not self.bootstrap_sql:
            return
        hook, self.server.fault_hook = self.server.fault_hook, None
        try:
            for sql in self.bootstrap_sql:
                self.connection.execute(sql)
        finally:
            self.server.fault_hook = hook

    # ------------------------------------------------------------------
    def run(self, sql: str, position: Optional[int] = None) -> Outcome:
        """Execute *sql* and classify the outcome, absorbing infra noise.

        *position* is the statement's global campaign position, keying the
        fault injector's per-statement random stream; it defaults to this
        runner's own execution count, which matches the campaign position
        for a serial run.  Parallel shard workers pass it explicitly.
        """
        self.executed += 1
        if self.injector is not None:
            self.injector.set_position(
                self.executed - 1 if position is None else position
            )
        reconnects = 0
        while True:
            try:
                # retries of the same statement run with faults suppressed:
                # infrastructure noise is independent across attempts
                result = self._execute(sql, quiet=reconnects > 0)
                return self._ok(sql, result)
            except ResourceExhausted as exc:
                self._count(f"governor.{exc.budget}")
                return Outcome("resource_exhausted", sql, message=exc.message)
            except ResourceError as exc:
                return Outcome("resource_kill", sql, message=exc.message)
            except SQLError as exc:
                return Outcome("error", sql, message=exc.message)
            except StatementTimeout:
                return self._handle_timeout(sql)
            except WorkerHung as exc:
                self.timeouts += 1
                self._count("sandbox.hang_kills")
                self._count("sandbox.respawns")
                return Outcome("timeout", sql, message=str(exc))
            except WorkerCrashed as exc:
                self._count("sandbox.worker_deaths")
                self._count("sandbox.respawns")
                return Outcome("harness_crash", sql, message=str(exc))
            except ConnectionClosed as exc:
                reconnects += 1
                self._count("reconnects")
                if not self.retry_policy.allows(reconnects):
                    return Outcome(
                        "error",
                        sql,
                        message=f"connection lost after {reconnects} attempts: {exc}",
                    )
                self.clock.advance(self.retry_policy.delay(reconnects))
                self._reconnect()
            except ServerCrashed as exc:
                return self._handle_crash(sql, exc)
            except RecursionError:
                # treat interpreter-level recursion like a resource kill
                self._restart()
                return Outcome("resource_kill", sql, message="interpreter recursion limit")

    # ------------------------------------------------------------------
    def _execute(self, sql: str, quiet: bool = False):
        """One guarded execution attempt, optionally with faults suppressed."""
        if self.sandbox is not None:
            # the worker clears sequence state itself; the simulated-clock
            # watchdog still meters statement cost, while the sandbox's
            # real wall deadline guards against genuine interpreter hangs
            return self.watchdog.guard(lambda: self.sandbox.execute(sql))
        # every attempt starts from clean sequence state: a test case whose
        # outcome leaked in from an earlier statement's NEXTVAL would not be
        # a reproducible PoC, and would make shard workers (which see only a
        # slice of the stream) diverge from the serial run
        self.server.ctx.clear_sequence_state()
        suppress = (
            self.injector.quiet() if quiet and self.injector is not None else nullcontext()
        )
        with suppress:
            return self.watchdog.guard(lambda: self.connection.execute(sql))

    def _ok(self, sql: str, result) -> Outcome:
        result_type = None
        if result.rows and result.rows[0]:
            result_type = result.rows[0][0].type_name
        fingerprint = (
            fingerprint_result(result) if self.capture_fingerprints else None
        )
        return Outcome("ok", sql, result_type=result_type, fingerprint=fingerprint)

    def _count(self, kind: str) -> None:
        self.fault_counters[kind] = self.fault_counters.get(kind, 0) + 1

    # ------------------------------------------------------------------
    def _handle_timeout(self, sql: str) -> Outcome:
        """The watchdog killed the statement; retry once without noise.

        A transient infrastructure hang recovers on the quiet retry; a
        statement that *genuinely* overruns its deadline times out again
        and is reported as the ``timeout`` outcome.
        """
        self.timeouts += 1
        self._count("statement_kills")
        reconnects = 0
        while True:
            try:
                return self._ok(sql, self._execute(sql, quiet=True))
            except ResourceExhausted as exc:
                self._count(f"governor.{exc.budget}")
                return Outcome("resource_exhausted", sql, message=exc.message)
            except ResourceError as exc:
                return Outcome("resource_kill", sql, message=exc.message)
            except SQLError as exc:
                return Outcome("error", sql, message=exc.message)
            except StatementTimeout as exc:
                return Outcome("timeout", sql, message=str(exc))
            except WorkerHung as exc:
                # already counted as one timeout on the first kill; the
                # quiet retry hanging again confirms it
                self._count("sandbox.hang_kills")
                self._count("sandbox.respawns")
                return Outcome("timeout", sql, message=str(exc))
            except WorkerCrashed as exc:
                self._count("sandbox.worker_deaths")
                self._count("sandbox.respawns")
                return Outcome("harness_crash", sql, message=str(exc))
            except ConnectionClosed as exc:
                # same backoff contract as the main loop: a lost connection
                # during the quiet retry is still transient infra noise, not
                # grounds to give up on the statement after one attempt
                reconnects += 1
                self._count("reconnects")
                if not self.retry_policy.allows(reconnects):
                    return Outcome(
                        "error",
                        sql,
                        message=f"connection lost after {reconnects} attempts: {exc}",
                    )
                self.clock.advance(self.retry_policy.delay(reconnects))
                self._reconnect()
            except ServerCrashed as exc:
                return self._handle_crash(sql, exc)
            except RecursionError:
                self._restart()
                return Outcome(
                    "resource_kill", sql, message="interpreter recursion limit"
                )

    def _handle_crash(self, sql: str, exc: ServerCrashed) -> Outcome:
        """Restart and, when reconfirmation is on, re-check reproducibility."""
        self._restart()
        if not self.reconfirm_crashes:
            return Outcome("crash", sql, message=str(exc), crash=exc.crash)
        self._count("reconfirmations")
        try:
            self._execute(sql, quiet=True)
        except ServerCrashed as confirmed:
            # reproducible: a genuine server bug.  Report the *reconfirmed*
            # signal — its attribution is clean of injected noise.
            self._restart()
            return Outcome("crash", sql, message=str(confirmed), crash=confirmed.crash)
        except (SQLError, StatementTimeout):
            pass
        except WorkerCrashed:
            # the worker died on reconfirmation; it has already been
            # respawned, and the original signal stays flaky
            pass
        except ConnectionClosed:
            self._reconnect()
        except RecursionError:
            self._restart()
        self.flaky_crashes += 1
        self._count("flaky_crashes")
        return Outcome("flaky", sql, message=str(exc), crash=exc.crash)

    # ------------------------------------------------------------------
    def _reconnect(self) -> None:
        """Re-establish the client connection, restarting a dead server."""
        if self.sandbox is not None:
            self.sandbox.reconnect()
            return
        if not self.server.alive:
            self._restart()
        else:
            self.connection = self.server.connect()

    def _restart(self) -> None:
        """Restart the server with backoff; quarantine when it won't return.

        Exception-safe: a failed attempt leaves the server dead but intact
        (see :meth:`Server.restart`), the stale connection is replaced only
        after a successful restart, and repeated failures open the circuit
        breaker instead of leaking ``RestartFailed`` into the campaign loop.
        """
        if self.sandbox is not None:
            self.sandbox.restart_server()
            self.restarts += 1
            return
        self.breaker.check()
        attempt = 0
        while True:
            try:
                self.server.restart(keep_coverage=True)
                break
            except RestartFailed:
                attempt += 1
                self._count("restart_retries")
                self.breaker.record_failure()
                self.breaker.check()  # raises ServerQuarantined past threshold
                self.clock.advance(self.retry_policy.delay(attempt))
        self.breaker.record_success()
        self.restarts += 1
        if self.coverage is not None:
            self.server.ctx.coverage = self.coverage
        self.connection = self.server.connect()
        self._apply_bootstrap()

    # ------------------------------------------------------------------
    @property
    def triggered_functions(self):
        return set(self.server.ctx.triggered_functions)

    @property
    def branch_coverage(self) -> int:
        return self.coverage.branch_count if self.coverage else 0

    @property
    def cache_hits(self) -> int:
        if self.sandbox is not None:
            return self.sandbox.cache_hits
        cache = self.server.stmt_cache
        return cache.hits if cache is not None else 0

    @property
    def cache_misses(self) -> int:
        if self.sandbox is not None:
            return self.sandbox.cache_misses
        cache = self.server.stmt_cache
        return cache.misses if cache is not None else 0

    @property
    def cache_hit_rate(self) -> float:
        if self.sandbox is not None:
            total = self.sandbox.cache_hits + self.sandbox.cache_misses
            return self.sandbox.cache_hits / total if total else 0.0
        cache = self.server.stmt_cache
        return cache.hit_rate if cache is not None else 0.0

    @property
    def compiled_executions(self) -> int:
        if self.sandbox is not None:
            return self.sandbox.compiled_executions
        cache = self.server.stmt_cache
        return cache.compiled_executions if cache is not None else 0

    @property
    def compile_fallbacks(self) -> int:
        if self.sandbox is not None:
            return self.sandbox.compile_fallbacks
        cache = self.server.stmt_cache
        return cache.compile_fallbacks if cache is not None else 0

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release sandbox resources (no-op for in-process runners)."""
        if self.sandbox is not None:
            self.sandbox.close()
