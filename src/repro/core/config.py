"""The campaign configuration object (``CampaignConfig``).

Every way of running a campaign — :class:`~repro.core.campaign.Campaign`,
:class:`~repro.perf.parallel.ParallelCampaign`, the ``run_campaign(s)``
convenience wrappers, the CLI, and the :mod:`repro.service` job scheduler —
historically grew its own copy of the same ~15 keyword arguments.  This
module collapses that sprawl into one **frozen** dataclass that is:

* **normalized** — oracle specs, budget specs, and sandbox switches are
  parsed once, at construction, into their canonical forms
  (``Tuple[str, ...]``, :class:`~repro.robustness.governor.ResourceBudgets`,
  :class:`~repro.robustness.sandbox.SandboxConfig`);
* **validated** — incompatible combinations fail at construction with
  errors that speak **config field names** (``'sandbox'``, ``'faults'``),
  never CLI flag spellings; the CLI maps field names to flags at its
  boundary (see ``repro.cli``);
* **serializable** — :meth:`CampaignConfig.to_dict` /
  :meth:`CampaignConfig.from_dict` round-trip through JSON, which is what
  the campaign service's HTTP API submits.

Legacy keyword arguments on the constructors keep working through a shim
(:func:`resolve_config`) that emits a :class:`DeprecationWarning`,
mirroring the ``repro.core.oracle`` import-shim pattern from the oracle
pipeline refactor.
"""

from __future__ import annotations

import dataclasses
import warnings
from dataclasses import dataclass
from typing import Any, Dict, Optional

from ..robustness.faults import FaultInjector, FaultPlan
from ..robustness.governor import ResourceBudgets
from ..robustness.sandbox import SandboxConfig, make_sandbox_config
from ..robustness.watchdog import DEFAULT_DEADLINE_SECONDS
from .oracles.base import parse_oracle_names

#: query budgets standing in for the paper's time budgets (the historical
#: home of these constants, ``repro.core.campaign``, re-exports them)
BUDGET_24_HOURS = 20_000
BUDGET_TWO_WEEKS = 300_000

#: default checkpoint cadence (statements between snapshots)
DEFAULT_CHECKPOINT_EVERY = 1_000

#: sentinel distinguishing "not passed" from "passed None" in the legacy
#: keyword shims
_UNSET = object()


def fault_spec(faults: Any) -> Optional[str]:
    """Re-encode a fault plan as the CLI spec string (process-portable)."""
    if faults is None or isinstance(faults, str):
        return faults
    if isinstance(faults, FaultPlan):
        return ",".join(
            f"{name}={getattr(faults, name)}"
            for name in (
                "hang_rate", "slow_rate", "drop_rate",
                "flaky_crash_rate", "restart_failure_rate",
            )
        )
    raise TypeError(f"cannot encode {faults!r} as a fault spec string")


@dataclass(frozen=True)
class CampaignConfig:
    """Everything that determines one campaign's observable behaviour.

    Frozen: derive variants with :meth:`replace` (re-validates).  The
    ``clock``/``rng``/``retry_policy`` runtime objects are deliberately
    *not* configuration — they stay constructor arguments on
    :class:`~repro.core.campaign.Campaign`.
    """

    dialect: str = ""
    budget: int = BUDGET_24_HOURS
    enable_coverage: bool = False
    seed: int = 0
    max_partners: int = 48
    stop_when_all_found: bool = False
    #: ``None``, a CLI spec string, a :class:`FaultPlan`, or (serial
    #: campaigns only) a ready-made :class:`FaultInjector`
    faults: Any = None
    fault_seed: int = 0
    checkpoint_path: Optional[str] = None
    checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY
    statement_deadline: float = DEFAULT_DEADLINE_SECONDS
    statement_cache: bool = True
    #: plan→closure compilation (repro.perf.compiler); ``--no-compile``
    #: clears it, and governed/sandboxed execution falls back on its own
    compile: bool = True
    #: normalized to a validated name tuple at construction
    oracles: Any = None
    #: which statement stream the generator emits: ``"expression"`` (the
    #: paper's bare ``SELECT f(args);`` calls, the default) or
    #: ``"predicate"`` (``SELECT … FROM fuzz_t WHERE …`` over the seeded
    #: table — the workload the metamorphic oracles partition)
    statement_family: str = "expression"
    #: normalized to ``Optional[ResourceBudgets]`` at construction
    budgets: Any = None
    #: normalized to ``Optional[SandboxConfig]`` at construction
    sandbox: Any = None
    #: worker processes; ``1`` runs the serial :class:`Campaign`
    jobs: int = 1
    #: who submitted this campaign (service quota accounting; free-form)
    submitter: str = ""
    #: scheduling priority (higher claims first); no effect on results
    priority: int = 0
    #: may the service checkpoint-and-requeue this campaign to make room
    #: for a higher-priority job?  (resume is signature-identical, so the
    #: default is on; no effect on results either way)
    preemptible: bool = True

    def __post_init__(self) -> None:
        object.__setattr__(self, "oracles", parse_oracle_names(self.oracles))
        budgets = self.budgets
        if isinstance(budgets, str):
            budgets = ResourceBudgets.parse(budgets)
        elif budgets is not None and not isinstance(budgets, ResourceBudgets):
            raise TypeError(
                f"the 'budgets' option takes a spec string or ResourceBudgets, "
                f"got {budgets!r}"
            )
        object.__setattr__(self, "budgets", budgets)
        object.__setattr__(self, "sandbox", make_sandbox_config(self.sandbox))
        self._validate()

    # ------------------------------------------------------------------
    def _validate(self) -> None:
        """Cross-field validation.  Errors speak config **field names**;
        the CLI translates them to flag spellings at its boundary."""
        if self.jobs < 1:
            raise ValueError(f"the 'jobs' option must be >= 1 (got {self.jobs})")
        if self.budget < 0:
            raise ValueError(f"the 'budget' option must be >= 0 (got {self.budget})")
        if self.checkpoint_every < 0:
            raise ValueError(
                f"the 'checkpoint_every' option must be >= 0 "
                f"(got {self.checkpoint_every})"
            )
        if not isinstance(self.submitter, str):
            raise TypeError(
                f"the 'submitter' option must be a string "
                f"(got {self.submitter!r})"
            )
        if isinstance(self.priority, bool) or not isinstance(self.priority, int):
            raise TypeError(
                f"the 'priority' option must be an integer "
                f"(got {self.priority!r})"
            )
        if not isinstance(self.preemptible, bool):
            raise TypeError(
                f"the 'preemptible' option must be a boolean "
                f"(got {self.preemptible!r})"
            )
        if self.sandbox is not None and self.faults is not None:
            raise ValueError(
                "the 'sandbox' and 'faults' options are mutually exclusive: "
                "the fault injector simulates infrastructure noise "
                "in-process, the sandbox contains the real thing"
            )
        if self.sandbox is not None and self.enable_coverage:
            raise ValueError(
                "the 'sandbox' option does not support 'enable_coverage' "
                "(arc sets do not cross the process boundary)"
            )
        if self.statement_family not in ("expression", "predicate"):
            raise ValueError(
                f"the 'statement_family' option must be 'expression' or "
                f"'predicate' (got {self.statement_family!r})"
            )
        if self.sandbox is not None and self.statement_family != "expression":
            raise ValueError(
                "the 'sandbox' option only supports the 'expression' "
                "statement family: sandbox workers do not replay the "
                "seeded-table bootstrap"
            )
        if self.jobs > 1:
            if isinstance(self.faults, FaultInjector):
                raise TypeError(
                    "a sharded campaign ('jobs' > 1) needs a fault *spec* "
                    "(string/FaultPlan) for 'faults', not a FaultInjector: "
                    "each worker builds its own injector"
                )
            if self.stop_when_all_found:
                raise ValueError(
                    "the 'stop_when_all_found' option is unsupported with "
                    "'jobs' > 1: its early exit depends on cross-shard "
                    "execution order"
                )

    # ------------------------------------------------------------------
    def replace(self, **changes: Any) -> "CampaignConfig":
        """A changed copy (``dataclasses.replace``), re-validated."""
        return dataclasses.replace(self, **changes)

    @property
    def parallel(self) -> bool:
        return self.jobs > 1

    # ------------------------------------------------------------------
    # JSON round-trip (the service API's submission format)
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """A JSON-able dict; inverse of :meth:`from_dict`.

        ``faults`` is re-encoded as a spec string (a live injector cannot
        be serialized and raises).
        """
        sandbox: Any = None
        if self.sandbox is not None:
            sandbox = {
                "wall_deadline_seconds": self.sandbox.wall_deadline_seconds,
                "breaker_threshold": self.sandbox.breaker_threshold,
                "quarantine": list(self.sandbox.quarantine),
                "max_message_bytes": self.sandbox.max_message_bytes,
            }
        return {
            "dialect": self.dialect,
            "budget": self.budget,
            "enable_coverage": self.enable_coverage,
            "seed": self.seed,
            "max_partners": self.max_partners,
            "stop_when_all_found": self.stop_when_all_found,
            "faults": fault_spec(self.faults),
            "fault_seed": self.fault_seed,
            "checkpoint_path": self.checkpoint_path,
            "checkpoint_every": self.checkpoint_every,
            "statement_deadline": self.statement_deadline,
            "statement_cache": self.statement_cache,
            "compile": self.compile,
            "oracles": list(self.oracles),
            "statement_family": self.statement_family,
            "budgets": self.budgets.to_spec() if self.budgets is not None else None,
            "sandbox": sandbox,
            "jobs": self.jobs,
            "submitter": self.submitter,
            "priority": self.priority,
            "preemptible": self.preemptible,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CampaignConfig":
        """Build a config from an untrusted JSON dict.

        Unknown keys are a hard error — a client speaking a newer schema
        must fail loudly, not have its options silently dropped.
        """
        if not isinstance(data, dict):
            raise TypeError(f"campaign config must be an object, got {data!r}")
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(f"unknown campaign config fields: {unknown}")
        kwargs = dict(data)
        sandbox = kwargs.get("sandbox")
        if isinstance(sandbox, dict):
            kwargs["sandbox"] = SandboxConfig(
                wall_deadline_seconds=sandbox.get(
                    "wall_deadline_seconds",
                    SandboxConfig.wall_deadline_seconds,
                ),
                breaker_threshold=sandbox.get(
                    "breaker_threshold", SandboxConfig.breaker_threshold
                ),
                quarantine=tuple(sandbox.get("quarantine", ())),
                max_message_bytes=sandbox.get(
                    "max_message_bytes", SandboxConfig.max_message_bytes
                ),
            )
        oracles = kwargs.get("oracles")
        if isinstance(oracles, list):
            kwargs["oracles"] = tuple(oracles)
        return cls(**kwargs)


# ---------------------------------------------------------------------------
# the legacy-keyword shim
# ---------------------------------------------------------------------------
def resolve_config(
    owner: str,
    config: Optional[CampaignConfig],
    legacy: Dict[str, Any],
    dialect: str = "",
    defaults: Optional[Dict[str, Any]] = None,
    warn: bool = True,
) -> CampaignConfig:
    """Coalesce ``config=`` and legacy keyword arguments into one config.

    *legacy* maps config field names to values, with :data:`_UNSET` marking
    arguments the caller did not pass.  Passing both a config and explicit
    legacy keywords is an error; passing legacy keywords alone still works
    but (when *warn*) emits a :class:`DeprecationWarning` naming *owner* —
    the migration path is ``owner(config=CampaignConfig(...))``.
    """
    supplied = {k: v for k, v in legacy.items() if v is not _UNSET}
    if config is not None:
        if supplied:
            raise TypeError(
                f"{owner} accepts either config= or legacy keyword "
                f"arguments, not both (got config= plus "
                f"{sorted(supplied)})"
            )
        if not isinstance(config, CampaignConfig):
            raise TypeError(
                f"{owner} config= expects a CampaignConfig, got {config!r}"
            )
        if dialect and not config.dialect:
            config = config.replace(dialect=dialect)
        return config
    if supplied and warn:
        warnings.warn(
            f"passing campaign options to {owner} as keyword arguments is "
            f"deprecated; build a repro.core.CampaignConfig and pass "
            f"config= instead (got {sorted(supplied)})",
            DeprecationWarning,
            stacklevel=3,
        )
    merged = dict(defaults or {})
    merged.update(supplied)
    merged.setdefault("dialect", dialect)
    return CampaignConfig(**merged)
