"""Boundary values beyond function arguments — the §8 integration sketch.

The discussion section proposes feeding SOFT's boundary-value pool into the
*clause* positions grammar-based tools already know how to construct:
data-sensitive operations such as ``WHERE`` comparisons, ``ORDER BY`` keys,
``LIMIT``/``OFFSET`` amounts, and inserted row values.  This module
implements that integration: given a table schema, it produces structurally
fixed statements whose value slots are filled from Pattern 1.1's pool.

Usage mirrors the paper's sketch — a grammar-based frontend builds the
statement skeletons, SOFT fills in the custom values::

    generator = ClauseBoundaryGenerator(table="t", columns=["c0", "c1"])
    for sql in generator.generate():
        runner.run(sql)
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterator, List, Sequence

from ..sqlast import Expr, to_sql
from .literals import boundary_literals

#: clause skeletons; ``{col}`` is a column slot, ``{bound}`` a value slot
_SKELETONS = (
    "SELECT {col} FROM {table} WHERE {col} = {bound};",
    "SELECT {col} FROM {table} WHERE {col} > {bound};",
    "SELECT {col} FROM {table} WHERE {col} BETWEEN {bound} AND {bound2};",
    "SELECT {col} FROM {table} WHERE {col} IN ({bound}, {bound2});",
    "SELECT {col} FROM {table} ORDER BY {col} LIMIT {ibound};",
    "SELECT {col} FROM {table} ORDER BY {bound_expr} DESC;",
    "SELECT DISTINCT {col} FROM {table} WHERE {col} <> {bound};",
    "SELECT {col}, COUNT(*) FROM {table} GROUP BY {col} HAVING COUNT(*) > {ibound};",
    "INSERT INTO {table} ({col}) VALUES ({bound});",
    "UPDATE {table} SET {col} = {bound} WHERE {col} = {bound2};",
    "DELETE FROM {table} WHERE {col} = {bound};",
)


def comparison_bound_texts() -> List[str]:
    """Pattern 1.1 pool texts valid in comparison positions.

    The shared value vocabulary for every clause-position consumer: this
    module's skeletons and the predicate statement family
    (``PatternEngine(statement_family="predicate")``).  ``*`` is excluded
    (not an expression); ``NULL`` stays in — NULL-bearing comparisons are
    what separate two- from three-valued logic, and the metamorphic
    oracles depend on them appearing in generated predicates.
    """
    out: List[str] = []
    for literal in boundary_literals():
        text = to_sql(literal)
        if text == "*":
            continue  # '*' is not valid in comparison positions
        out.append(text)
    return out


@dataclass
class ClauseBoundaryGenerator:
    """Fill clause-position value slots with the boundary pool."""

    table: str
    columns: Sequence[str]
    max_cases: int = 2_000

    def boundary_texts(self) -> List[str]:
        return comparison_bound_texts()

    def generate(self) -> Iterator[str]:
        """Yield boundary-filled clause statements (round-robin over
        skeletons so a budget samples every clause kind)."""
        bounds = self.boundary_texts()
        integer_bounds = [b for b in bounds if b.lstrip("-(").rstrip(")").isdigit()]
        streams = [
            self._fill(skeleton, bounds, integer_bounds)
            for skeleton in _SKELETONS
        ]
        emitted = 0
        pending = list(streams)
        while pending and emitted < self.max_cases:
            still = []
            for stream in pending:
                batch = list(itertools.islice(stream, 1))
                if batch:
                    still.append(stream)
                    yield batch[0]
                    emitted += 1
                    if emitted >= self.max_cases:
                        return
            pending = still

    def _fill(
        self, skeleton: str, bounds: List[str], integer_bounds: List[str]
    ) -> Iterator[str]:
        for column in self.columns:
            for index, bound in enumerate(bounds):
                bound2 = bounds[(index + 1) % len(bounds)]
                ibound = integer_bounds[index % len(integer_bounds)]
                yield skeleton.format(
                    table=self.table,
                    col=column,
                    bound=bound,
                    bound2=bound2,
                    ibound=ibound,
                    bound_expr=f"COALESCE({column}, {bound})",
                )
