"""Back-compat shim: the crash oracle moved to :mod:`repro.core.oracles`.

The detection stack is pluggable now (crash / differential / conformance
oracles behind one pipeline — see :mod:`repro.core.oracles.base`); this
historical import path keeps working for existing callers.
"""

from __future__ import annotations

from .oracles.crash import CrashOracle, DiscoveredBug

__all__ = ["CrashOracle", "DiscoveredBug"]
