"""Crash oracle: deduplication and attribution of observed crashes.

A crash is identified by ``(crashing function, crash class)`` within one
DBMS — the same granularity developers use when marking reports as
duplicates.  When the repository's injected-bug registry knows the identity,
the discovery is attributed to it (this is how the benchmarks check recall
against Table 4); unknown identities are still recorded, so the oracle works
unchanged against user-supplied dialects.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..dialects.bugs import InjectedBug, find_bug
from ..engine.errors import CrashSignal


@dataclass
class DiscoveredBug:
    """One deduplicated crash discovery."""

    dbms: str
    function: str            # crashing built-in function
    crash_code: str          # NPD | SEGV | ...
    pattern: str             # pattern of the generated statement ("seed" if none)
    sql: str                 # the triggering statement
    stage: str               # parse | optimize | execute
    backtrace: List[str]
    message: str
    query_index: int         # how many statements had run when it surfaced
    injected: Optional[InjectedBug] = None

    @property
    def key(self) -> Tuple[str, str]:
        return (self.function, self.crash_code)

    @property
    def family(self) -> str:
        if self.injected is not None:
            return self.injected.family
        return "unknown"

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable form (used by campaign checkpoints)."""
        return {
            "dbms": self.dbms,
            "function": self.function,
            "crash_code": self.crash_code,
            "pattern": self.pattern,
            "sql": self.sql,
            "stage": self.stage,
            "backtrace": list(self.backtrace),
            "message": self.message,
            "query_index": self.query_index,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "DiscoveredBug":
        """Rebuild a discovery; the injected-bug link is re-resolved from
        the registry rather than serialized."""
        bug = cls(**data)  # type: ignore[arg-type]
        bug.backtrace = list(bug.backtrace)
        bug.injected = find_bug(bug.dbms, bug.function, bug.crash_code)
        return bug


class CrashOracle:
    """Deduplicates crashes and tracks false positives for one dialect."""

    def __init__(self, dbms: str) -> None:
        self.dbms = dbms
        self.bugs: List[DiscoveredBug] = []
        self.false_positives: List[str] = []
        self.flaky_signals: List[str] = []
        self._seen: Set[Tuple[str, str]] = set()
        self._fp_seen: Set[str] = set()

    # ------------------------------------------------------------------
    def observe_crash(
        self,
        crash: CrashSignal,
        sql: str,
        pattern: str,
        query_index: int,
    ) -> Optional[DiscoveredBug]:
        """Record a crash; returns the discovery when it is new."""
        function = (crash.function or "unknown").lower()
        key = (function, crash.code)
        if key in self._seen:
            return None
        self._seen.add(key)
        discovery = DiscoveredBug(
            dbms=self.dbms,
            function=function,
            crash_code=crash.code,
            pattern=pattern,
            sql=sql,
            stage=crash.stage or "execute",
            backtrace=list(crash.backtrace),
            message=crash.message,
            query_index=query_index,
            injected=find_bug(self.dbms, function, crash.code),
        )
        self.bugs.append(discovery)
        return discovery

    def observe_resource_kill(self, sql: str, message: str = "") -> bool:
        """Record a forcibly-terminated query (false-positive candidate).

        Deduplicated by the normalised kill reason: one runaway argument
        pattern ("REPEAT('a', 9999999999) exceeds the memory limit") is one
        false positive no matter how many functions it was fed to — which
        is how the paper counts its 7 FPs.
        """
        import re as _re

        reason = _re.sub(r"\d+", "N", message or sql.split("(", 1)[0]).lower()
        if reason in self._fp_seen:
            return False
        self._fp_seen.add(reason)
        self.false_positives.append(sql)
        return True

    def observe_flaky_crash(self, sql: str, message: str = "") -> None:
        """Record a crash that did not reproduce on re-execution.

        The paper's triage discards crash reports it cannot reproduce —
        infrastructure noise, not bugs.  We keep the signal (for the
        campaign health report) but never promote it to a
        :class:`DiscoveredBug`.
        """
        self.flaky_signals.append(sql)

    # ------------------------------------------------------------------
    # checkpoint support
    def export_state(self) -> Dict[str, object]:
        """Everything needed to rebuild this oracle (JSON-serializable)."""
        return {
            "dbms": self.dbms,
            "bugs": [bug.to_dict() for bug in self.bugs],
            "false_positives": list(self.false_positives),
            "flaky_signals": list(self.flaky_signals),
            "fp_seen": sorted(self._fp_seen),
        }

    def restore_state(self, state: Dict[str, object]) -> None:
        self.bugs = [DiscoveredBug.from_dict(d) for d in state["bugs"]]  # type: ignore[union-attr]
        self.false_positives = list(state["false_positives"])  # type: ignore[arg-type]
        self.flaky_signals = list(state.get("flaky_signals", []))  # type: ignore[union-attr]
        self._seen = {bug.key for bug in self.bugs}
        self._fp_seen = set(state["fp_seen"])  # type: ignore[arg-type]

    # ------------------------------------------------------------------
    @property
    def attributed(self) -> List[DiscoveredBug]:
        return [b for b in self.bugs if b.injected is not None]

    def recall_against(self, expected: List[InjectedBug]) -> float:
        """Fraction of *expected* injected bugs discovered so far."""
        if not expected:
            return 1.0
        found = {b.injected.bug_id for b in self.attributed}
        return sum(1 for bug in expected if bug.bug_id in found) / len(expected)
