"""Deprecated back-compat shim: use :mod:`repro.core.oracles` instead.

The crash oracle moved into the pluggable :mod:`repro.core.oracles`
package (crash / differential / conformance oracles behind one pipeline —
see :mod:`repro.core.oracles.base`).  This historical import path still
works but emits a :class:`DeprecationWarning`; import from
``repro.core.oracles`` (or ``repro.core.oracles.crash``) directly.
"""

from __future__ import annotations

import warnings

from .oracles.crash import CrashOracle, DiscoveredBug

warnings.warn(
    "repro.core.oracle is deprecated; import CrashOracle and DiscoveredBug "
    "from repro.core.oracles instead",
    DeprecationWarning,
    stacklevel=2,
)

__all__ = ["CrashOracle", "DiscoveredBug"]
