"""Correctness (logic-bug) oracles — the §8 "Correctness Bugs" extension.

The paper's discussion section proposes extending SOFT beyond crashes with
metamorphic oracles in the style of TLP (Rigger & Su, OOPSLA'20) and NoREC
(Rigger & Su, ESEC/FSE'20).  This module implements both over the engine:

* **NoREC** — for a predicate *p* over table *t*, the *optimized* filtered
  count ``SELECT COUNT(*) FROM t WHERE p`` must equal the *non-optimizing*
  reformulation's count: ``SELECT p FROM t`` evaluated row-by-row and
  counted where strictly TRUE.

* **TLP** — ternary logic partitioning: *t*'s rows split exactly into the
  three partitions ``WHERE p``, ``WHERE NOT p``, and ``WHERE p IS NULL``;
  the partition sizes must sum to ``COUNT(*)``.

Against the reference engine both oracles are silent (asserted by the test
suite); the classic logic defect "UNKNOWN treated as TRUE" — injectable via
the ``faulty_where_null_as_true`` configuration hook — is caught by both.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from ..dialects.base import Dialect
from ..engine.connection import Connection, ServerCrashed
from ..engine.errors import SQLError


@dataclass
class LogicViolation:
    """One metamorphic-oracle violation."""

    oracle: str        # "norec" | "tlp"
    predicate: str
    expected: int
    observed: int
    detail: str = ""

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return (f"[{self.oracle}] {self.predicate!r}: expected {self.expected}, "
                f"observed {self.observed} {self.detail}")


@dataclass
class LogicCheckResult:
    checks: int = 0
    errors: int = 0       # predicates the DBMS rejected (not violations)
    violations: List[LogicViolation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations


# ---------------------------------------------------------------------------
# individual oracles
# ---------------------------------------------------------------------------
def check_norec(
    connection: Connection, table: str, predicate: str
) -> Optional[LogicViolation]:
    """NoREC: optimized filtered count == unoptimized evaluation count."""
    optimized = connection.execute(
        f"SELECT COUNT(*) FROM {table} WHERE {predicate};"
    ).scalar()
    projected = connection.execute(f"SELECT ({predicate}) FROM {table};")
    unoptimized = sum(
        1
        for row in projected.rows
        if not row[0].is_null and row[0].as_bool()
    )
    if optimized.render() != str(unoptimized):
        return LogicViolation(
            "norec", predicate, expected=unoptimized,
            observed=int(optimized.render()),
            detail="(optimized WHERE vs row-by-row evaluation)",
        )
    return None


def check_tlp(
    connection: Connection, table: str, predicate: str
) -> Optional[LogicViolation]:
    """TLP: |p| + |NOT p| + |p IS NULL| == |t|."""
    total = int(connection.execute(f"SELECT COUNT(*) FROM {table};").scalar().render())
    true_part = int(connection.execute(
        f"SELECT COUNT(*) FROM {table} WHERE {predicate};"
    ).scalar().render())
    false_part = int(connection.execute(
        f"SELECT COUNT(*) FROM {table} WHERE NOT ({predicate});"
    ).scalar().render())
    null_part = int(connection.execute(
        f"SELECT COUNT(*) FROM {table} WHERE ({predicate}) IS NULL;"
    ).scalar().render())
    partitioned = true_part + false_part + null_part
    if partitioned != total:
        return LogicViolation(
            "tlp", predicate, expected=total, observed=partitioned,
            detail=f"(TRUE {true_part} + FALSE {false_part} + NULL {null_part})",
        )
    return None


# ---------------------------------------------------------------------------
# predicate generation and the checking loop
# ---------------------------------------------------------------------------
def default_predicates(rng: random.Random, count: int = 40) -> List[str]:
    """Predicates over the oracle table's columns (c0 INT, c1 VARCHAR,
    c2 DECIMAL), biased toward NULL-producing comparisons — the inputs
    that separate two- from three-valued logic."""
    out: List[str] = []
    columns = ("c0", "c1", "c2")
    ops = ("=", "<", ">", "<=", ">=", "<>")
    for _ in range(count):
        roll = rng.random()
        column = rng.choice(columns)
        if roll < 0.35:
            out.append(f"{column} {rng.choice(ops)} {rng.randint(-3, 3)}")
        elif roll < 0.55:
            out.append(f"{column} IS NULL" if rng.random() < 0.5
                       else f"{column} IS NOT NULL")
        elif roll < 0.7:
            out.append(f"{column} IN ({rng.randint(0, 2)}, NULL)")
        elif roll < 0.85:
            out.append(f"LENGTH(COALESCE(c1, '')) {rng.choice(ops)} {rng.randint(0, 3)}")
        else:
            out.append(f"{column} BETWEEN {rng.randint(-2, 0)} AND {rng.randint(0, 3)}")
    return out


class LogicOracle:
    """Run the NoREC and TLP oracles against one dialect."""

    TABLE_SETUP = (
        "DROP TABLE IF EXISTS logic_t;",
        "CREATE TABLE logic_t (c0 INT, c1 VARCHAR(16), c2 DECIMAL(8, 2));",
        "INSERT INTO logic_t VALUES (1, 'a', 0.5), (2, NULL, -1.25), "
        "(NULL, 'b', 2.0), (0, '', NULL), (-1, 'cc', 0);",
    )

    def __init__(self, dialect: Dialect, seed: int = 0) -> None:
        self.dialect = dialect
        self.rng = random.Random(seed)

    def run(
        self,
        rounds: int = 40,
        predicates: Optional[Sequence[str]] = None,
    ) -> LogicCheckResult:
        connection = self.dialect.create_server().connect()
        for statement in self.TABLE_SETUP:
            connection.execute(statement)
        result = LogicCheckResult()
        candidates = list(predicates) if predicates is not None else \
            default_predicates(self.rng, rounds)
        for predicate in candidates:
            for oracle in (check_norec, check_tlp):
                result.checks += 1
                try:
                    violation = oracle(connection, "logic_t", predicate)
                except SQLError:
                    result.errors += 1
                    continue
                except ServerCrashed:
                    result.errors += 1
                    connection = self.dialect.create_server().connect()
                    for statement in self.TABLE_SETUP:
                        connection.execute(statement)
                    continue
                if violation is not None:
                    result.violations.append(violation)
        return result
