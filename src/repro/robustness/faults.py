"""Deterministic fault injection for the simulated DBMS infrastructure.

The paper's campaigns run for 24 hours to two weeks against live containers,
where statement hangs, flaky connections, failed restarts, and spurious
non-reproducible crashes are routine (§7.3 triages 7 false positives out of
the raw crash stream).  The :class:`FaultInjector` reproduces that noise on
the simulated :class:`~repro.engine.connection.Server` through the engine's
:class:`~repro.engine.connection.FaultHook` seam:

=================  ====================================================
fault class        behaviour
=================  ====================================================
``hang``           the statement's connection hangs; the simulated clock
                   jumps past the watchdog deadline and the statement is
                   killed (``timeout`` handling in the runner)
``slow``           the statement completes but charges extra seconds to
                   the clock (can accumulate into a timeout)
``drop``           the client connection resets transiently
                   (:class:`~repro.engine.connection.ConnectionDropped`);
                   the server stays up and a reconnect recovers
``flaky_crash``    the server dies with a *spurious*, non-reproducible
                   crash signal — the runner's reconfirmation step must
                   keep it out of the bug list (the paper's FP triage)
``restart_fail``   a restart attempt wedges
                   (:class:`~repro.engine.connection.RestartFailed`);
                   retried with backoff, eventually circuit-broken
=================  ====================================================

Determinism contract: the fault stream is **keyed by statement position**.
Before a statement executes, the harness calls
:meth:`FaultInjector.set_position` with the statement's global campaign
position, which reseeds the RNG from ``(fault seed, position)``; the
statement's one ``on_execute`` draw plus any restart-attempt draws from
handling its crash all come from that per-position stream (retries and
reconfirmations run inside :meth:`FaultInjector.quiet` and draw nothing).
The schedule for a statement is therefore a pure function of
``(fault seed, position)`` — independent of which process executes it and
of everything executed before it — which is what lets sharded parallel
campaigns and checkpoint resume reproduce a serial run's fault schedule
exactly, without carrying RNG state.
"""

from __future__ import annotations

import math
import random
from contextlib import contextmanager
from dataclasses import dataclass, fields
from typing import TYPE_CHECKING, Dict, Iterator, Optional, Union

from ..engine.connection import ConnectionDropped, FaultHook, RestartFailed
from ..engine.errors import SegmentationViolation
from .watchdog import Clock, StatementHang

if TYPE_CHECKING:  # pragma: no cover
    from ..engine.connection import Connection, Server

#: rates used by the ``--faults default`` preset: high enough that a 2k-query
#: smoke campaign exercises every fault class, low enough that retry budgets
#: absorb them
DEFAULT_RATES = {
    "hang": 0.002,
    "slow": 0.01,
    "drop": 0.004,
    "flaky_crash": 0.002,
    "restart_fail": 0.05,
}

_FIELD_ALIASES = {
    "hang": "hang_rate",
    "slow": "slow_rate",
    "drop": "drop_rate",
    "flaky": "flaky_crash_rate",
    "flaky_crash": "flaky_crash_rate",
    "restart_fail": "restart_failure_rate",
    "restart_failure": "restart_failure_rate",
}


def parse_rate_spec(
    spec: str,
    known: "set[str]",
    aliases: Optional[Dict[str, str]] = None,
    noun: str = "fault",
) -> Dict[str, float]:
    """Parse a ``name=value,name=value`` rate spec into a field dict.

    The shared grammar behind :meth:`FaultPlan.parse` and
    :meth:`~repro.robustness.chaos.StorageFaultPlan.parse`: *aliases*
    map short CLI names onto dataclass field names, duplicates are
    caught **after** alias resolution (two spellings of one field are
    still a duplicate), and values must be non-NaN and >= 0.  *noun*
    names the spec family in error messages (``"fault"``,
    ``"storage fault"``).
    """
    aliases = aliases or {}
    values: Dict[str, float] = {}
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        if "=" not in part:
            raise ValueError(f"bad {noun} spec item {part!r}: expected name=value")
        name, _, raw = part.partition("=")
        given = name.strip()
        name = aliases.get(given, given)
        if name not in known:
            raise ValueError(f"unknown {noun} class {given!r}")
        if name in values:
            raise ValueError(
                f"duplicate {noun} spec key {given!r}: "
                f"{name} was already set"
            )
        try:
            value = float(raw)
        except ValueError:
            raise ValueError(f"bad {noun} rate {raw!r} for {name}") from None
        if math.isnan(value):
            raise ValueError(f"{noun} spec value for {name} must not be NaN")
        if value < 0:
            raise ValueError(
                f"{noun} spec value for {name} must be >= 0, got {raw.strip()}"
            )
        values[name] = value
    return values


@dataclass(frozen=True)
class FaultPlan:
    """Per-class fault probabilities plus fault magnitudes."""

    hang_rate: float = 0.0
    slow_rate: float = 0.0
    drop_rate: float = 0.0
    flaky_crash_rate: float = 0.0
    restart_failure_rate: float = 0.0
    #: how long a hung statement blocks the connection (simulated seconds);
    #: deliberately larger than the default watchdog deadline
    hang_seconds: float = 600.0
    #: extra latency charged by a slow response
    slow_seconds: float = 2.0

    def __post_init__(self) -> None:
        for f in fields(self):
            value = getattr(self, f.name)
            if f.name.endswith("_rate") and not 0.0 <= value <= 1.0:
                raise ValueError(f"{f.name} must be within [0, 1], got {value!r}")
            if f.name.endswith("_seconds") and value < 0:
                raise ValueError(f"{f.name} must be >= 0, got {value!r}")
        total = (
            self.hang_rate + self.slow_rate + self.drop_rate + self.flaky_crash_rate
        )
        if total > 1.0:
            raise ValueError(
                f"statement fault rates sum to {total:g} > 1"
            )

    @property
    def any_enabled(self) -> bool:
        return any(
            getattr(self, f.name) > 0 for f in fields(self) if f.name.endswith("_rate")
        )

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Parse a CLI fault spec.

        ``"default"`` (or ``"on"``) enables the preset rates; otherwise a
        comma-separated ``name=value`` list, e.g.
        ``"hang=0.01,drop=0.02,restart_fail=0.1"``.  Accepted names: the
        dataclass fields plus the short aliases ``hang``, ``slow``,
        ``drop``, ``flaky``, ``restart_fail``.
        """
        spec = spec.strip().lower()
        if spec in ("default", "on", "1", "true"):
            return cls(
                hang_rate=DEFAULT_RATES["hang"],
                slow_rate=DEFAULT_RATES["slow"],
                drop_rate=DEFAULT_RATES["drop"],
                flaky_crash_rate=DEFAULT_RATES["flaky_crash"],
                restart_failure_rate=DEFAULT_RATES["restart_fail"],
            )
        if spec in ("off", "none", "0", "false", ""):
            return cls()
        known = {f.name for f in fields(cls)}
        values = parse_rate_spec(spec, known, aliases=_FIELD_ALIASES, noun="fault")
        return cls(**values)


class FaultInjector(FaultHook):
    """Seed-driven fault schedule installed on a simulated server."""

    def __init__(
        self,
        plan: Optional[FaultPlan] = None,
        seed: int = 0,
        clock: Optional[Clock] = None,
    ) -> None:
        self.plan = plan if plan is not None else FaultPlan.parse("default")
        self.seed = seed
        self.rng = random.Random(seed)
        self.counters: Dict[str, int] = {}
        self._quiet_depth = 0
        self._clock = clock
        #: global campaign position of the statement currently executing
        self.position = -1

    # ------------------------------------------------------------------
    def attach(self, server: "Server", clock: Optional[Clock] = None) -> None:
        """Install this injector as the server's fault hook."""
        server.fault_hook = self
        if clock is not None:
            self._clock = clock

    @contextmanager
    def quiet(self) -> Iterator[None]:
        """Suppress statement faults (used for retries and reconfirmation).

        Infrastructure noise is independent across attempts; suppressing it
        while re-executing a statement is how the harness distinguishes a
        reproducible server bug from a one-off infrastructure event.
        """
        self._quiet_depth += 1
        try:
            yield
        finally:
            self._quiet_depth -= 1

    @property
    def is_quiet(self) -> bool:
        return self._quiet_depth > 0

    def set_position(self, position: int) -> None:
        """Re-key the fault stream to global statement *position*.

        All draws attributable to the statement at this position — its
        ``on_execute`` draw plus any restart-attempt draws from handling
        its crash — come from a stream seeded by ``(fault seed,
        position)``.  See the module docstring's determinism contract.
        """
        self.position = position
        # Knuth multiplicative hash decorrelates adjacent positions; +1 on
        # both terms keeps seed=0/position=0 off the degenerate zero seed
        mixed = (2_654_435_761 * (position + 1)) & 0xFFFFFFFF
        self.rng.seed(((self.seed + 1) << 32) ^ mixed)

    def _count(self, kind: str) -> None:
        self.counters[kind] = self.counters.get(kind, 0) + 1

    def _advance(self, seconds: float) -> None:
        if self._clock is not None:
            self._clock.advance(seconds)

    # ------------------------------------------------------------------
    # FaultHook interface (called by the engine)
    def on_execute(self, connection: "Connection", sql: str) -> None:
        if self._quiet_depth:
            return
        plan = self.plan
        draw = self.rng.random()  # exactly one draw per statement
        edge = plan.hang_rate
        if draw < edge:
            self._count("hang")
            self._advance(plan.hang_seconds)
            raise StatementHang(plan.hang_seconds)
        edge += plan.slow_rate
        if draw < edge:
            self._count("slow")
            self._advance(plan.slow_seconds)
            return
        edge += plan.drop_rate
        if draw < edge:
            self._count("drop")
            raise ConnectionDropped("connection reset by peer (injected fault)")
        edge += plan.flaky_crash_rate
        if draw < edge:
            self._count("flaky_crash")
            # a spurious abort: attributed to no function, never reproducible
            raise SegmentationViolation(
                "spurious abort (injected infrastructure fault)",
                function=None,
                stage="execute",
            )

    def on_restart(self, server: "Server") -> None:
        if self._quiet_depth:
            return
        if self.plan.restart_failure_rate <= 0:
            return
        if self.rng.random() < self.plan.restart_failure_rate:
            self._count("restart_fail")
            raise RestartFailed("server did not come back up (injected fault)")

    # ------------------------------------------------------------------
    # checkpoint support
    def state(self) -> Dict[str, object]:
        version, internal, gauss = self.rng.getstate()
        return {
            "seed": self.seed,
            "rng": [version, list(internal), gauss],
            "counters": dict(self.counters),
        }

    def restore_state(self, state: Dict[str, object]) -> None:
        version, internal, gauss = state["rng"]  # type: ignore[misc]
        self.rng.setstate((version, tuple(internal), gauss))
        self.counters = dict(state["counters"])  # type: ignore[arg-type]


FaultsLike = Union[None, str, FaultPlan, FaultInjector]


def make_fault_injector(
    faults: FaultsLike, seed: int = 0, clock: Optional[Clock] = None
) -> Optional[FaultInjector]:
    """Coerce the user-facing ``faults`` argument into an injector.

    Accepts ``None`` (faults off), a CLI spec string, a :class:`FaultPlan`,
    or a ready-made :class:`FaultInjector`.
    """
    if faults is None:
        return None
    if isinstance(faults, FaultInjector):
        if clock is not None and faults._clock is None:
            faults._clock = clock
        return faults
    if isinstance(faults, str):
        plan = FaultPlan.parse(faults)
    elif isinstance(faults, FaultPlan):
        plan = faults
    else:
        raise TypeError(f"cannot build a FaultInjector from {faults!r}")
    if not plan.any_enabled:
        return None
    return FaultInjector(plan, seed=seed, clock=clock)
