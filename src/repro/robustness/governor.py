"""Resource governance for the in-process engines (``--budgets``).

A pathological generated statement — deep expression nesting, a cartesian
blowup, a runaway allocation loop in a flawed built-in — can wedge or OOM
the whole harness before the engine's own limits fire.  The
:class:`ResourceGovernor` puts harness-side ceilings under the engine:
configurable budgets, checked cooperatively at the engine's existing choke
points (expression evaluation, row materialisation, heap allocation, stack
pushes), raising :class:`~repro.engine.errors.ResourceExhausted` the moment
one trips.  The runner classifies that as a first-class
``resource_exhausted`` outcome.

Budgets (all opt-in; a ``None`` budget is never checked):

``depth``
    maximum expression-evaluation/recursion depth (also bounds the
    simulated :class:`~repro.engine.memory.CallStack`, so a tight budget
    fires *before* the engine's own stack-overflow crash would).
``cells``
    total expression evaluations per statement — the cheap proxy for
    "cells evaluated" that also bounds wide-row × many-row work.
``rows``
    rows materialised per statement (projection loops, joins, products).
``bytes``
    bytes allocated from the simulated heap per statement.
``wall_ms``
    a *cooperative* real-wall-clock deadline: checked every
    :data:`TICK_INTERVAL` evaluations, so a statement spinning inside the
    evaluator is killed even on the simulated campaign clock.  (A hang
    that never re-enters the evaluator needs the process sandbox —
    see :mod:`repro.robustness.sandbox`.)

Default campaigns construct no governor at all: every engine hook is a
``governor is None`` check, so budgets-off runs stay byte-identical to
pre-governor builds.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, fields
from typing import Dict, Optional, Union

from ..engine.errors import ResourceExhausted

#: wall-deadline check cadence, in evaluator entries; a power of two so the
#: hot path is a single bitwise AND
TICK_INTERVAL = 256


@dataclass(frozen=True)
class ResourceBudgets:
    """Per-statement resource ceilings; ``None`` disables a budget."""

    depth: Optional[int] = None
    cells: Optional[int] = None
    rows: Optional[int] = None
    bytes: Optional[int] = None
    wall_ms: Optional[int] = None

    def __post_init__(self) -> None:
        for f in fields(self):
            value = getattr(self, f.name)
            if value is None:
                continue
            if not isinstance(value, int) or isinstance(value, bool) or value <= 0:
                raise ValueError(
                    f"budget {f.name!r} must be a positive integer, got {value!r}"
                )

    @property
    def enabled(self) -> bool:
        return any(getattr(self, f.name) is not None for f in fields(self))

    @classmethod
    def parse(cls, spec: str) -> "ResourceBudgets":
        """Parse a CLI budget spec: ``"depth=64,rows=5000,bytes=1048576"``.

        Accepted keys are the dataclass fields (``depth``, ``cells``,
        ``rows``, ``bytes``, ``wall_ms``).  Duplicate keys, unknown keys,
        and non-positive or non-integer values are rejected loudly.
        """
        spec = spec.strip().lower()
        if spec in ("", "off", "none", "0", "false"):
            return cls()
        known = {f.name for f in fields(cls)}
        values: Dict[str, int] = {}
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            if "=" not in part:
                raise ValueError(f"bad budget spec item {part!r}: expected name=value")
            name, _, raw = part.partition("=")
            name = name.strip()
            if name not in known:
                raise ValueError(
                    f"unknown budget {name!r} (expected one of {sorted(known)})"
                )
            if name in values:
                raise ValueError(f"duplicate budget {name!r} in spec")
            try:
                value = float(raw)
            except ValueError:
                raise ValueError(f"bad budget value {raw!r} for {name}") from None
            if math.isnan(value) or math.isinf(value) or value != int(value):
                raise ValueError(f"budget {name!r} must be an integer, got {raw!r}")
            values[name] = int(value)
        return cls(**values)

    def to_spec(self) -> str:
        """Inverse of :meth:`parse`; used to cross process boundaries."""
        return ",".join(
            f"{f.name}={getattr(self, f.name)}"
            for f in fields(self)
            if getattr(self, f.name) is not None
        )


class ResourceGovernor:
    """Enforces :class:`ResourceBudgets` at the engine's choke points.

    One governor is attached to a server (surviving restarts) and re-armed
    at the start of every statement.  Counters are per-statement; the
    ``exhausted_counts`` dict accumulates trips per budget for the campaign
    health report.
    """

    def __init__(self, budgets: ResourceBudgets) -> None:
        self.budgets = budgets
        self.depth = 0
        self.cells = 0
        self.rows = 0
        self.bytes_allocated = 0
        self._ticks = 0
        self._wall_deadline: Optional[float] = None
        #: budget name -> number of statements killed by it (lifetime)
        self.exhausted_counts: Dict[str, int] = {}

    # ------------------------------------------------------------------
    def begin_statement(self) -> None:
        """Re-arm the per-statement counters and the wall deadline."""
        self.depth = 0
        self.cells = 0
        self.rows = 0
        self.bytes_allocated = 0
        self._ticks = 0
        wall_ms = self.budgets.wall_ms
        self._wall_deadline = (
            time.monotonic() + wall_ms / 1000.0 if wall_ms is not None else None
        )

    def _exhaust(self, budget: str, used: int, limit: int) -> None:
        self.exhausted_counts[budget] = self.exhausted_counts.get(budget, 0) + 1
        raise ResourceExhausted(budget, used, limit)

    # ------------------------------------------------------------------
    # engine hooks (all duck-typed: the engine never imports this module)
    def enter_eval(self) -> None:
        """One expression evaluation begins (depth/cells/wall tick)."""
        budgets = self.budgets
        self.depth += 1
        if budgets.depth is not None and self.depth > budgets.depth:
            self._exhaust("depth", self.depth, budgets.depth)
        self.cells += 1
        if budgets.cells is not None and self.cells > budgets.cells:
            self._exhaust("cells", self.cells, budgets.cells)
        if self._wall_deadline is not None:
            self._ticks += 1
            if not self._ticks & (TICK_INTERVAL - 1):
                if time.monotonic() > self._wall_deadline:
                    self._exhaust("wall_ms", self._ticks, budgets.wall_ms or 0)

    def exit_eval(self) -> None:
        self.depth -= 1

    def on_rows(self, count: int = 1) -> None:
        """*count* rows were materialised by the executor."""
        self.rows += count
        limit = self.budgets.rows
        if limit is not None and self.rows > limit:
            self._exhaust("rows", self.rows, limit)

    def on_alloc(self, size: int) -> None:
        """*size* bytes were requested from the simulated heap."""
        self.bytes_allocated += max(size, 0)
        limit = self.budgets.bytes
        if limit is not None and self.bytes_allocated > limit:
            self._exhaust("bytes", self.bytes_allocated, limit)

    def on_stack_push(self, current_depth: int) -> None:
        """The simulated call stack grew to *current_depth* frames."""
        limit = self.budgets.depth
        if limit is not None and current_depth >= limit:
            self._exhaust("depth", current_depth, limit)


def make_governor(
    budgets: Union[None, str, ResourceBudgets]
) -> Optional[ResourceGovernor]:
    """Coerce the user-facing ``budgets`` argument into a governor.

    Returns ``None`` when no budget is enabled — the engine hooks then
    cost one attribute load + ``is None`` check each, keeping default
    campaigns byte-identical.
    """
    if budgets is None:
        return None
    if isinstance(budgets, str):
        budgets = ResourceBudgets.parse(budgets)
    if not isinstance(budgets, ResourceBudgets):
        raise TypeError(f"cannot build a ResourceGovernor from {budgets!r}")
    if not budgets.enabled:
        return None
    return ResourceGovernor(budgets)
