"""Statement watchdog and the clocks it runs on.

Real SOFT campaigns kill statements that hang the server connection: the
harness arms a per-statement deadline and, when it fires, issues a query
kill and records the statement as *timed out* instead of waiting forever.
We reproduce that contract on a clock abstraction:

* :class:`WallClock` — thin wrapper over ``time.monotonic`` used by default,
  so ordinary campaigns keep reporting real elapsed time.
* :class:`SimulatedClock` — a steerable clock used whenever fault injection
  or checkpoint/resume needs deterministic time.  Injected hangs and
  retry/backoff delays *advance* this clock instead of sleeping, so a
  "24 hour" faulted campaign still runs in seconds and two same-seed runs
  observe identical timestamps.
* :class:`Watchdog` — wraps one statement execution, charges a nominal
  per-statement cost to the clock, converts :class:`StatementHang` signals
  (raised by the fault injector) and blown deadlines into
  :class:`StatementTimeout`, which the runner classifies as the ``timeout``
  outcome kind.
"""

from __future__ import annotations

import time
from typing import Callable, Optional, TypeVar

T = TypeVar("T")

#: default per-statement deadline, in (simulated) seconds — the paper's
#: harness uses the DBMS client's statement timeout for the same purpose
DEFAULT_DEADLINE_SECONDS = 300.0

#: nominal cost charged to the clock per executed statement; makes the
#: simulated elapsed time of a campaign meaningful without real sleeping
DEFAULT_STATEMENT_COST_SECONDS = 0.01

#: default *real* wall-clock deadline for sandboxed requests, in seconds.
#: Unlike :data:`DEFAULT_DEADLINE_SECONDS` (which meters the simulated
#: clock), this bounds actual elapsed time: a subprocess worker that does
#: not answer within it is SIGKILLed by the sandbox (see
#: :class:`repro.robustness.sandbox.SandboxedConnection`).
DEFAULT_REAL_DEADLINE_SECONDS = 30.0


class RealDeadline:
    """A monotonic wall-clock deadline for operations a simulated clock
    cannot meter (subprocess round-trips, socket reads).

    ``remaining()`` is what callers feed into blocking-call timeouts;
    ``expired`` is the post-hoc check.  Always runs on real time — this is
    deliberately *not* a :class:`Clock` client, because the whole point is
    to catch hangs the simulated clock never sees.
    """

    def __init__(self, seconds: float = DEFAULT_REAL_DEADLINE_SECONDS) -> None:
        if seconds <= 0:
            raise ValueError("deadline must be positive")
        self.seconds = seconds
        self._armed = time.monotonic()

    def rearm(self) -> None:
        self._armed = time.monotonic()

    def remaining(self) -> float:
        """Seconds left (never negative; suitable for socket timeouts)."""
        return max(0.0, self.seconds - (time.monotonic() - self._armed))

    @property
    def expired(self) -> bool:
        return time.monotonic() - self._armed >= self.seconds


class StatementHang(Exception):
    """The statement's connection hung (raised by the fault injector).

    Never escapes the watchdog: :meth:`Watchdog.guard` converts it into a
    :class:`StatementTimeout` after the deadline elapses on the clock.
    """

    def __init__(self, seconds: float) -> None:
        super().__init__(f"statement hung for {seconds:g}s")
        self.seconds = seconds


class StatementTimeout(Exception):
    """The watchdog killed a statement that exceeded its deadline."""

    def __init__(self, deadline: float, elapsed: float) -> None:
        super().__init__(
            f"statement killed after {elapsed:g}s (deadline {deadline:g}s)"
        )
        self.deadline = deadline
        self.elapsed = elapsed


class Clock:
    """Minimal clock interface shared by the harness components."""

    def now(self) -> float:  # pragma: no cover - interface
        raise NotImplementedError

    def advance(self, seconds: float) -> None:  # pragma: no cover - interface
        raise NotImplementedError


class WallClock(Clock):
    """Real monotonic time; ``advance`` is a no-op (wall time can't be steered)."""

    def now(self) -> float:
        return time.monotonic()

    def advance(self, seconds: float) -> None:
        return None


class SimulatedClock(Clock):
    """A deterministic, manually-advanced clock."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("clocks only move forward")
        self._now += seconds


class Watchdog:
    """Arms a per-statement deadline around one execution attempt."""

    def __init__(
        self,
        clock: Optional[Clock] = None,
        deadline_seconds: float = DEFAULT_DEADLINE_SECONDS,
        statement_cost_seconds: float = DEFAULT_STATEMENT_COST_SECONDS,
    ) -> None:
        self.clock = clock if clock is not None else WallClock()
        self.deadline_seconds = deadline_seconds
        self.statement_cost_seconds = statement_cost_seconds
        self.timeouts = 0

    def guard(self, fn: Callable[[], T]) -> T:
        """Run *fn* under the deadline; raise :class:`StatementTimeout` when
        it hangs or overruns."""
        start = self.clock.now()
        self.clock.advance(self.statement_cost_seconds)
        try:
            result = fn()
        except StatementHang:
            # the connection hung past any deadline: the kill fires as soon
            # as the deadline elapses, never earlier
            elapsed = max(self.clock.now() - start, self.deadline_seconds)
            self.timeouts += 1
            raise StatementTimeout(self.deadline_seconds, elapsed) from None
        elapsed = self.clock.now() - start
        if elapsed > self.deadline_seconds:
            # slow-response faults can accumulate past the deadline too
            self.timeouts += 1
            raise StatementTimeout(self.deadline_seconds, elapsed)
        return result
