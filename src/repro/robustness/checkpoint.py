"""Campaign checkpointing: kill a campaign, resume it deterministically.

A two-week (300k-query) campaign must survive the harness host being
rebooted.  The checkpoint records everything the campaign layer cannot
re-derive by replay:

* progress — statements executed, restarts, timeouts, flaky crashes,
  per-fault-class counters, per-kind outcome counts;
* oracle state — deduplicated bugs, false positives, flaky signals, and
  the dedup sets behind them;
* randomness — the campaign RNG state (as an integrity check for the
  deterministic replay-skip), the fault injector's RNG + counters, and the
  server context's RNG;
* campaign-level metrics that normally live in engine state — triggered
  functions, engine stats, coverage arcs/lines;
* the simulated elapsed time.

Resume strategy (see ``Campaign.run``): generation is deterministic given
``(seeds, campaign seed)``, so the resumed campaign *re-generates* the
statement stream and skips the first ``executed`` cases without running
them, then verifies its RNG state matches the checkpointed one before
executing anything new.  This avoids pickling live generators while keeping
byte-identical results.

Checkpoints are JSON (inspectable, diffable) and written atomically
(tmp file + ``os.replace``) so a kill mid-write never corrupts the resume
point.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional

#: bump when the on-disk layout changes incompatibly.
#: v2: the fault injector's random stream became position-keyed (see
#: repro.robustness.faults) — a v1 checkpoint's saved injector RNG state
#: no longer describes the schedule, so v1 resumes must be refused.
CHECKPOINT_VERSION = 2


class CheckpointError(Exception):
    """The checkpoint is unreadable or inconsistent with the campaign."""


def rng_state_to_json(state: Any) -> Any:
    """``random.Random.getstate()`` → JSON-serializable (tuples → lists)."""
    if isinstance(state, tuple):
        return [rng_state_to_json(item) for item in state]
    return state


def rng_state_from_json(data: Any) -> Any:
    """Inverse of :func:`rng_state_to_json` (lists → tuples)."""
    if isinstance(data, list):
        return tuple(rng_state_from_json(item) for item in data)
    return data


@dataclass
class CampaignCheckpoint:
    """One resumable snapshot of a running campaign."""

    dialect: str
    seed: int
    budget: int
    max_partners: int
    enable_coverage: bool
    # progress
    executed: int = 0
    restarts: int = 0
    timeouts: int = 0
    flaky_crashes: int = 0
    seeds_collected: int = 0
    outcomes: Dict[str, int] = field(default_factory=dict)
    fault_counters: Dict[str, int] = field(default_factory=dict)
    return_types: Dict[str, str] = field(default_factory=dict)
    # oracle + randomness
    oracle: Dict[str, Any] = field(default_factory=dict)
    rng_state: Optional[List[Any]] = None
    ctx_rng_state: Optional[List[Any]] = None
    injector: Optional[Dict[str, Any]] = None
    # campaign-level engine metrics
    triggered_functions: List[str] = field(default_factory=list)
    stats: Dict[str, int] = field(default_factory=dict)
    coverage_arcs: List[List[Any]] = field(default_factory=list)
    coverage_lines: List[List[Any]] = field(default_factory=list)
    # clock
    elapsed_seconds: float = 0.0
    # sandbox/containment extension (both default-valued so pre-sandbox
    # checkpoints keep loading under the strict unknown-field check):
    # stream_position counts containment-skipped statements too; `executed`
    # only counts statements that reached the runner.  None means "no skips
    # possible" and resume falls back to `executed`.
    stream_position: Optional[int] = None
    #: containment state + worker kill/respawn counters (sandbox campaigns)
    sandbox: Optional[Dict[str, Any]] = None
    version: int = CHECKPOINT_VERSION

    # ------------------------------------------------------------------
    def save(self, path: str) -> None:
        """Atomically persist the checkpoint as JSON."""
        payload = json.dumps(asdict(self), sort_keys=True)
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        tmp = f"{path}.tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)

    @classmethod
    def load(cls, path: str) -> "CampaignCheckpoint":
        try:
            with open(path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
        except OSError as exc:
            raise CheckpointError(f"cannot read checkpoint {path!r}: {exc}") from None
        except json.JSONDecodeError as exc:
            raise CheckpointError(f"corrupt checkpoint {path!r}: {exc}") from None
        version = data.get("version")
        if version != CHECKPOINT_VERSION:
            raise CheckpointError(
                f"checkpoint {path!r} has version {version!r}, "
                f"expected {CHECKPOINT_VERSION}"
            )
        known = {f for f in cls.__dataclass_fields__}  # noqa: C416
        unknown = set(data) - known
        if unknown:
            raise CheckpointError(
                f"checkpoint {path!r} has unknown fields {sorted(unknown)}"
            )
        return cls(**data)

    @classmethod
    def try_load(cls, path: str) -> Optional["CampaignCheckpoint"]:
        """Load a checkpoint if one usably exists, else ``None``.

        The service's crash recovery uses this to decide whether an
        orphaned job can resume: a missing, corrupt, or wrong-version
        sidecar means "start the campaign over", not "refuse to run".
        """
        try:
            return cls.load(path)
        except CheckpointError:
            return None

    # ------------------------------------------------------------------
    def validate_for(
        self,
        dialect: str,
        seed: int,
        budget: int,
        max_partners: int,
        enable_coverage: bool,
    ) -> None:
        """Refuse to resume into a campaign with different parameters."""
        mismatches = []
        for name, ours in (
            ("dialect", dialect),
            ("seed", seed),
            ("budget", budget),
            ("max_partners", max_partners),
            ("enable_coverage", enable_coverage),
        ):
            theirs = getattr(self, name)
            if theirs != ours:
                mismatches.append(f"{name}: checkpoint={theirs!r} campaign={ours!r}")
        if mismatches:
            raise CheckpointError(
                "checkpoint does not match this campaign ("
                + "; ".join(mismatches)
                + ")"
            )
