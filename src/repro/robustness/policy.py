"""Retry/backoff policy and the per-server circuit breaker.

Long unattended campaigns survive infrastructure noise by *retrying with
backoff* (transient connection drops, failed container restarts) and by
*quarantining* a server that repeatedly refuses to come back — so a
multi-dialect campaign degrades to N-1 targets instead of aborting.

Everything here is deterministic: backoff jitter is a pure function of the
policy seed and the attempt number (no hidden RNG state to checkpoint), and
delays are charged to the harness clock rather than slept.
"""

from __future__ import annotations

from dataclasses import dataclass


class ServerQuarantined(Exception):
    """The circuit breaker gave up on a server that will not restart."""

    def __init__(self, name: str, failures: int) -> None:
        super().__init__(
            f"server {name!r} quarantined after {failures} consecutive "
            "failed restart attempts"
        )
        self.name = name
        self.failures = failures


def _mix32(x: int) -> int:
    """One round of 32-bit avalanche mixing (murmur3 finalizer)."""
    x &= 0xFFFFFFFF
    x ^= x >> 16
    x = (x * 0x85EBCA6B) & 0xFFFFFFFF
    x ^= x >> 13
    x = (x * 0xC2B2AE35) & 0xFFFFFFFF
    x ^= x >> 16
    return x


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with bounded attempts and deterministic jitter.

    ``delay(attempt)`` returns the back-off charged before retry *attempt*
    (1-based): ``base_delay * 2**(attempt-1)`` capped at ``max_delay``,
    stretched by up to ``jitter`` (a fraction) derived deterministically
    from ``(seed, attempt)`` — same seed, same schedule, every run.
    """

    max_attempts: int = 5
    base_delay: float = 0.25
    max_delay: float = 30.0
    jitter: float = 0.2
    seed: int = 0

    def delay(self, attempt: int) -> float:
        raw = min(self.base_delay * (2 ** max(attempt - 1, 0)), self.max_delay)
        fraction = _mix32(self.seed * 1_000_003 + attempt) / 2**32
        return raw * (1.0 + self.jitter * fraction)

    def allows(self, attempt: int) -> bool:
        """Whether retry *attempt* (1-based) is within the budget."""
        return attempt <= self.max_attempts


class CircuitBreaker:
    """Counts consecutive failures; opens past a threshold.

    One breaker guards one server (one dialect).  Restart attempts feed it:
    every failure increments the streak, any success resets it, and once the
    streak reaches ``failure_threshold`` the breaker opens — all further
    :meth:`check` calls raise :class:`ServerQuarantined`, which the campaign
    layer converts into a gracefully-degraded (quarantined) result.
    """

    def __init__(self, name: str = "server", failure_threshold: int = 12) -> None:
        self.name = name
        self.failure_threshold = failure_threshold
        self.consecutive_failures = 0
        self.total_failures = 0
        self.opened = False

    @property
    def is_open(self) -> bool:
        return self.opened

    def check(self) -> None:
        """Raise :class:`ServerQuarantined` if the breaker has opened."""
        if self.opened:
            raise ServerQuarantined(self.name, self.consecutive_failures)

    def record_failure(self) -> None:
        self.consecutive_failures += 1
        self.total_failures += 1
        if self.consecutive_failures >= self.failure_threshold:
            self.opened = True

    def record_success(self) -> None:
        self.consecutive_failures = 0
