"""Deterministic storage chaos: fault injection for the service's sqlite I/O.

:mod:`repro.robustness.faults` perturbs the *simulated DBMS* — hangs,
dropped connections, flaky crashes.  This module points the same
adversarial machinery at the service's **own** durability substrate: the
job journal (``jobs.sqlite``) and the bug repository (``bugs.sqlite``)
behind the :class:`~repro.service.storage.SqliteStorage` boundary.  The
premise mirrors the paper's: boundary conditions (a full disk, a torn
transaction, a locked database) expose latent flaws that the happy path
never exercises.

Injectable faults (drawn per storage operation, seeded, deterministic):

=================  ====================================================
fault class        behaviour
=================  ====================================================
``locked``         ``sqlite3.OperationalError("database is locked")`` —
                   transient contention; the boundary's bounded jittered
                   retry must absorb it
``enospc``         ``OSError(ENOSPC)`` on write — the subsystem degrades
                   to read-only until a probe write succeeds
``corrupt``        ``sqlite3.DatabaseError("malformed")`` that *latches*:
                   the database stays corrupt (``PRAGMA integrity_check``
                   reports it) until quarantined and rebuilt
=================  ====================================================

Besides rate-based draws, faults can be **armed** deterministically
(:meth:`StorageFaultInjector.arm_enospc`, :meth:`arm_corruption`) so
tests script exact fault→degrade→recover sequences.

**Crash points.**  Every journaled write transaction passes two named
crash points — ``<db>.<op>.pre_commit`` (the torn-transaction case:
everything since the last commit is lost) and ``<db>.<op>.post_commit``
(the work is durable, the process still dies).  Arming
:meth:`arm_crash` at a point raises :class:`SimulatedCrash` (a
``BaseException``, so no ``except Exception`` job-isolation handler can
accidentally absorb it) or, in ``process_exit`` mode, terminates the
process with ``os._exit(137)`` — a real SIGKILL equivalent for
subprocess CI harnesses.  :meth:`StorageFaultInjector.from_env` builds
an injector from ``REPRO_CHAOS*`` environment variables so a spawned
``repro serve`` can be killed at any chosen point from outside.
"""

from __future__ import annotations

import errno
import os
import sqlite3
from dataclasses import dataclass, fields
from random import Random
from typing import Dict, Mapping, Optional, Set

from .faults import parse_rate_spec

#: rates used by the ``--chaos default`` preset: only the self-healing
#: fault class — locked contention that the boundary's retry absorbs —
#: so a default-chaos service still completes every job
DEFAULT_STORAGE_RATES = {
    "locked": 0.05,
    "enospc": 0.0,
    "corrupt": 0.0,
}

_FIELD_ALIASES = {
    "locked": "locked_rate",
    "busy": "locked_rate",
    "enospc": "enospc_rate",
    "disk_full": "enospc_rate",
    "corrupt": "corrupt_rate",
    "corruption": "corrupt_rate",
}


class SimulatedCrash(BaseException):
    """The process "died" at a named storage crash point.

    Deliberately a :class:`BaseException`: the scheduler's job-isolation
    handler catches ``Exception`` so one bad campaign cannot kill a
    worker, but a simulated kill must take the worker down exactly like
    SIGKILL would — nothing in the service may handle it.
    """

    def __init__(self, point: str) -> None:
        super().__init__(f"simulated process death at crash point {point!r}")
        self.point = point


@dataclass(frozen=True)
class StorageFaultPlan:
    """Per-class storage fault probabilities."""

    locked_rate: float = 0.0
    enospc_rate: float = 0.0
    corrupt_rate: float = 0.0

    def __post_init__(self) -> None:
        for f in fields(self):
            value = getattr(self, f.name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(
                    f"{f.name} must be within [0, 1], got {value!r}"
                )
        total = self.locked_rate + self.enospc_rate + self.corrupt_rate
        if total > 1.0:
            raise ValueError(f"storage fault rates sum to {total:g} > 1")

    @property
    def any_enabled(self) -> bool:
        return any(getattr(self, f.name) > 0 for f in fields(self))

    @classmethod
    def parse(cls, spec: str) -> "StorageFaultPlan":
        """Parse a CLI chaos spec.

        ``"default"`` (or ``"on"``) enables the preset rates; otherwise a
        comma-separated ``name=value`` list, e.g.
        ``"locked=0.1,enospc=0.01"``.  Accepted names: the dataclass
        fields plus the short aliases ``locked``/``busy``,
        ``enospc``/``disk_full``, ``corrupt``/``corruption``.
        """
        spec = spec.strip().lower()
        if spec in ("default", "on", "1", "true"):
            return cls(
                locked_rate=DEFAULT_STORAGE_RATES["locked"],
                enospc_rate=DEFAULT_STORAGE_RATES["enospc"],
                corrupt_rate=DEFAULT_STORAGE_RATES["corrupt"],
            )
        if spec in ("off", "none", "0", "false", ""):
            return cls()
        known = {f.name for f in fields(cls)}
        values = parse_rate_spec(
            spec, known, aliases=_FIELD_ALIASES, noun="storage fault"
        )
        return cls(**values)


class StorageFaultInjector:
    """Seeded fault schedule for the service's sqlite I/O boundary.

    One injector is shared by every :class:`~repro.service.storage.
    SqliteStorage` of a service, so a single seed determines the full
    fault schedule across the journal and the bug repository.  Draw
    order is the storage operation order, which tests keep deterministic
    by scripting the workload.
    """

    def __init__(
        self,
        plan: Optional[StorageFaultPlan] = None,
        seed: int = 0,
        crash_at: Optional[str] = None,
        process_exit: bool = False,
    ) -> None:
        self.plan = plan if plan is not None else StorageFaultPlan()
        self.seed = seed
        self.rng = Random(seed)
        self.counters: Dict[str, int] = {}
        #: ``<db>.<op>.<edge>`` point that kills the process (or None)
        self.crash_point: Optional[str] = None
        #: which hit of the point fires (1 = the first)
        self.crash_hit = 1
        self._crash_seen = 0
        self.process_exit = process_exit
        if crash_at:
            self.arm_crash(crash_at)
        self._enospc_prefixes: Set[str] = set()
        self._corrupted: Set[str] = set()
        self.ops_seen = 0

    # -- construction ---------------------------------------------------
    @classmethod
    def from_env(
        cls, environ: Optional[Mapping[str, str]] = None
    ) -> Optional["StorageFaultInjector"]:
        """Build an injector from ``REPRO_CHAOS*`` environment variables.

        * ``REPRO_CHAOS`` — a :meth:`StorageFaultPlan.parse` spec
        * ``REPRO_CHAOS_SEED`` — integer seed (default 0)
        * ``REPRO_CHAOS_CRASH`` — ``point[:nth]`` to die at
        * ``REPRO_CHAOS_EXIT`` — ``0`` to raise :class:`SimulatedCrash`
          instead of ``os._exit`` (default for env-armed crashes is a
          real process exit, since the variables exist to drive
          subprocess kill-and-restart harnesses)

        Returns ``None`` when no chaos variable is set, so services
        outside a chaos harness pay nothing.
        """
        env = os.environ if environ is None else environ
        spec = env.get("REPRO_CHAOS", "")
        crash = env.get("REPRO_CHAOS_CRASH", "")
        if not spec and not crash:
            return None
        plan = StorageFaultPlan.parse(spec) if spec else StorageFaultPlan()
        return cls(
            plan,
            seed=int(env.get("REPRO_CHAOS_SEED", "0") or 0),
            crash_at=crash or None,
            process_exit=env.get("REPRO_CHAOS_EXIT", "1") != "0",
        )

    # -- scripted fault latches -----------------------------------------
    def arm_crash(self, spec: str, hit: Optional[int] = None) -> None:
        """Arm a crash at ``point`` or ``point:nth`` (1-based hit count)."""
        point, _, nth = spec.partition(":")
        point = point.strip()
        if not point:
            raise ValueError(f"bad crash point spec {spec!r}")
        self.crash_point = point
        self.crash_hit = hit if hit is not None else int(nth or 1)
        if self.crash_hit < 1:
            raise ValueError(f"crash hit count must be >= 1, got {self.crash_hit}")
        self._crash_seen = 0

    def disarm_crash(self) -> None:
        self.crash_point = None
        self._crash_seen = 0

    def arm_enospc(self, prefix: str = "") -> None:
        """Make writes to sites starting with *prefix* fail with ENOSPC.

        The empty prefix matches every site — a full disk is usually a
        whole-filesystem condition, but per-database arming (``prefix=
        "journal"``) lets tests degrade one subsystem at a time.
        """
        self._enospc_prefixes.add(prefix)

    def disarm_enospc(self, prefix: Optional[str] = None) -> None:
        if prefix is None:
            self._enospc_prefixes.clear()
        else:
            self._enospc_prefixes.discard(prefix)

    def arm_corruption(self, name: str) -> None:
        """Latch database *name* (e.g. ``"journal"``) as corrupt."""
        self._corrupted.add(name)

    def clear_corruption(self, name: str) -> None:
        """A quarantine-and-rebuild replaced the corrupt file."""
        self._corrupted.discard(name)

    def is_corrupted(self, name: str) -> bool:
        return name in self._corrupted

    # -- hooks called by the storage boundary ---------------------------
    def on_op(self, site: str, write: bool = True) -> None:
        """One fault draw for storage operation *site* (``<db>.<op>``).

        Raises the injected error, or returns normally.  Corruption
        latches (the file stays bad until rebuilt); ENOSPC and locked
        are transient per draw, mirroring a disk that frees up and a
        writer that finishes.
        """
        self.ops_seen += 1
        name = site.split(".", 1)[0]
        if name in self._corrupted:
            self._count("corrupt")
            raise sqlite3.DatabaseError(
                "database disk image is malformed (injected corruption)"
            )
        if write and any(site.startswith(p) for p in self._enospc_prefixes):
            self._count("enospc")
            raise OSError(errno.ENOSPC, "No space left on device (injected)")
        plan = self.plan
        if not plan.any_enabled:
            return
        draw = self.rng.random()  # exactly one draw per operation
        edge = plan.locked_rate
        if draw < edge:
            self._count("locked")
            raise sqlite3.OperationalError("database is locked (injected)")
        if not write:
            return  # reads cannot run out of disk or tear a write
        edge += plan.enospc_rate
        if draw < edge:
            self._count("enospc")
            raise OSError(errno.ENOSPC, "No space left on device (injected)")
        edge += plan.corrupt_rate
        if draw < edge:
            self._count("corrupt")
            self._corrupted.add(name)
            raise sqlite3.DatabaseError(
                "database disk image is malformed (injected corruption)"
            )

    def on_crash_point(self, point: str) -> None:
        """Die here if armed: :class:`SimulatedCrash` or a real exit."""
        if point != self.crash_point:
            return
        self._crash_seen += 1
        if self._crash_seen < self.crash_hit:
            return
        self._count("crash")
        self.disarm_crash()  # one death per arming
        if self.process_exit:
            os._exit(137)  # SIGKILL-equivalent: no atexit, no flush
        raise SimulatedCrash(point)

    # ------------------------------------------------------------------
    def _count(self, kind: str) -> None:
        self.counters[kind] = self.counters.get(kind, 0) + 1

    def snapshot(self) -> Dict[str, object]:
        """Health-endpoint view of the injected-fault tally."""
        return {
            "seed": self.seed,
            "ops": self.ops_seen,
            "counters": dict(self.counters),
            "crash_point": self.crash_point,
            "corrupted": sorted(self._corrupted),
        }


ChaosLike = Optional[object]


def make_storage_injector(
    chaos: "ChaosLike", seed: int = 0
) -> Optional[StorageFaultInjector]:
    """Coerce a ``chaos`` argument into an injector (or ``None``).

    Accepts ``None``, a spec string, a :class:`StorageFaultPlan`, or a
    ready-made :class:`StorageFaultInjector`.
    """
    if chaos is None:
        return None
    if isinstance(chaos, StorageFaultInjector):
        return chaos
    if isinstance(chaos, str):
        plan = StorageFaultPlan.parse(chaos)
        if not plan.any_enabled:
            return None
        return StorageFaultInjector(plan, seed=seed)
    if isinstance(chaos, StorageFaultPlan):
        if not chaos.any_enabled:
            return None
        return StorageFaultInjector(chaos, seed=seed)
    raise TypeError(f"cannot build a StorageFaultInjector from {chaos!r}")


__all__ = [
    "DEFAULT_STORAGE_RATES",
    "SimulatedCrash",
    "StorageFaultInjector",
    "StorageFaultPlan",
    "make_storage_injector",
]
