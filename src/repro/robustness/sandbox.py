"""Process-isolated dialect workers (``--sandbox``).

The fault layer survives *injected* noise on a simulated clock; this module
survives *real* pathologies: a statement that wedges the Python interpreter,
blows the C stack, or OOMs the process would otherwise take the whole
campaign down with it.  SQUIRREL/SQLancer-style harnesses isolate each
target in its own process for exactly this reason — the SOFT paper's
Docker-container-per-DBMS workflow is the same idea one level up.

Architecture:

* :class:`SandboxedConnection` mirrors the
  :class:`~repro.engine.connection.Connection` contract (``execute`` returns
  a ``Result`` or raises ``SQLError``/``ServerCrashed``/``ConnectionClosed``)
  but runs the dialect's server in a **subprocess worker**.
* Parent and worker speak a **length-prefixed pickle protocol** over a
  socketpair: 4-byte big-endian length, then a pickled message dict.
  Oversized replies are refused worker-side (a blown-up result set cannot
  OOM the parent).
* Every request is bounded by a **real wall-clock deadline** (alongside —
  not replacing — the simulated-clock :class:`~repro.robustness.Watchdog`).
  A worker that misses it is SIGKILLed and respawned, and the statement
  surfaces as :class:`WorkerHung` (the runner's ``timeout`` outcome).
* A worker that *dies* — hard crash, ``os._exit``, or an unexpected
  exception in the harness code itself — is detected via EOF (or its
  last-gasp ``dying`` message), respawned with a fresh server, and the
  statement surfaces as :class:`WorkerCrashed` (the runner's
  ``harness_crash`` outcome) instead of an uncaught traceback.

:class:`ContainmentState` is the campaign-side crash-loop layer: statements
that killed a worker are quarantined (never re-executed, including across
checkpoint/resume), and per-function-family circuit breakers
(:class:`~repro.robustness.policy.CircuitBreaker`) open after N consecutive
worker kills on one family, skipping the rest of that family's stream.

The sandbox requires the ``fork`` start method (workers inherit the loaded
dialect registries; sockets don't cross a ``spawn`` boundary) and is
mutually exclusive with fault injection and coverage tracking — the fault
injector simulates infra noise in-process, while the sandbox contains the
real thing.
"""

from __future__ import annotations

import os
import pickle
import signal
import socket
import struct
import sys
import traceback
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..engine.connection import ConnectionClosed, ServerCrashed
from ..engine.errors import (
    CRASH_CLASSES,
    CrashSignal,
    ResourceError,
    ResourceExhausted,
    SQLError,
)
from .governor import ResourceBudgets, make_governor
from .policy import CircuitBreaker
from .watchdog import DEFAULT_REAL_DEADLINE_SECONDS, RealDeadline

_HEADER = struct.Struct("!I")

#: default real wall-clock deadline per sandboxed request, in seconds
DEFAULT_WALL_DEADLINE_SECONDS = DEFAULT_REAL_DEADLINE_SECONDS

#: default cap on one protocol message (a result set bigger than this is
#: refused worker-side as a resource kill, protecting the parent's memory)
DEFAULT_MAX_MESSAGE_BYTES = 32 * 1024 * 1024

#: consecutive worker kills on one function family before its breaker opens
DEFAULT_FAMILY_BREAKER_THRESHOLD = 3


class SandboxError(Exception):
    """Sandbox infrastructure failure (protocol violation, no fork, ...)."""


class WorkerCrashed(Exception):
    """The subprocess worker died executing a statement (harness crash).

    The worker has already been respawned with a fresh server by the time
    this is raised; the runner records the statement as the
    ``harness_crash`` outcome and the campaign quarantines it.
    """


class WorkerHung(WorkerCrashed):
    """The worker blew the real wall-clock deadline and was SIGKILLed."""


class _WorkerGone(Exception):
    """Internal: the protocol socket hit EOF (the worker process died)."""


@dataclass(frozen=True)
class SandboxConfig:
    """Knobs for the subprocess sandbox (picklable primitives only)."""

    wall_deadline_seconds: float = DEFAULT_WALL_DEADLINE_SECONDS
    breaker_threshold: int = DEFAULT_FAMILY_BREAKER_THRESHOLD
    #: statements quarantined before the campaign starts (known killers)
    quarantine: Tuple[str, ...] = ()
    max_message_bytes: int = DEFAULT_MAX_MESSAGE_BYTES

    def __post_init__(self) -> None:
        if self.wall_deadline_seconds <= 0:
            raise ValueError("wall_deadline_seconds must be > 0")
        if self.breaker_threshold < 1:
            raise ValueError("breaker_threshold must be >= 1")
        if self.max_message_bytes < 4096:
            raise ValueError("max_message_bytes must be >= 4096")


def make_sandbox_config(sandbox: Any) -> Optional[SandboxConfig]:
    """Coerce the user-facing ``sandbox`` argument into a config.

    Accepts ``None``/``False`` (off), ``True`` (defaults), or a ready-made
    :class:`SandboxConfig`.
    """
    if sandbox is None or sandbox is False:
        return None
    if sandbox is True:
        return SandboxConfig()
    if isinstance(sandbox, SandboxConfig):
        return sandbox
    raise TypeError(f"cannot build a SandboxConfig from {sandbox!r}")


# ---------------------------------------------------------------------------
# framing
# ---------------------------------------------------------------------------
def _send_msg(sock: socket.socket, message: Dict[str, Any]) -> None:
    payload = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    sock.sendall(_HEADER.pack(len(payload)) + payload)


def _recv_exact(sock: socket.socket, count: int) -> bytes:
    chunks: List[bytes] = []
    while count:
        chunk = sock.recv(min(count, 1 << 20))
        if not chunk:
            raise _WorkerGone("protocol socket closed (worker died)")
        chunks.append(chunk)
        count -= len(chunk)
    return b"".join(chunks)


def _recv_msg(
    sock: socket.socket,
    timeout: Optional[float] = None,
    max_bytes: int = DEFAULT_MAX_MESSAGE_BYTES,
) -> Dict[str, Any]:
    sock.settimeout(timeout)
    (length,) = _HEADER.unpack(_recv_exact(sock, _HEADER.size))
    if length > max_bytes:
        raise SandboxError(
            f"protocol message of {length} bytes exceeds the "
            f"{max_bytes}-byte channel cap"
        )
    return pickle.loads(_recv_exact(sock, length))


# ---------------------------------------------------------------------------
# the worker process
# ---------------------------------------------------------------------------
def _crash_to_wire(crash: CrashSignal) -> Dict[str, Any]:
    return {
        "code": crash.code,
        "message": crash.message,
        "function": crash.function,
        "stage": crash.stage,
        "backtrace": list(crash.backtrace),
    }


def _crash_from_wire(data: Dict[str, Any]) -> CrashSignal:
    cls = CRASH_CLASSES.get(data["code"], CrashSignal)
    crash = cls(data["message"], function=data["function"], stage=data["stage"])
    crash.backtrace = list(data["backtrace"])
    return crash


def _worker_main(
    sock: socket.socket,
    dialect_name: str,
    budgets_spec: Optional[str],
    statement_cache: bool,
    compile_plans: bool,
    max_message_bytes: int,
) -> None:
    """Serve execute/restart/reconnect requests until shutdown or death.

    Known outcomes (SQL errors, crashes, closed connections) are shipped
    back as typed replies.  *Anything else* is a harness bug: the worker
    sends a last-gasp ``dying`` message and hard-exits so the parent
    respawns it with a clean interpreter — in-process, the same exception
    would have killed the campaign.
    """
    # local import: the robustness package must stay importable without
    # dragging the dialect registry in (and fork workers already share it)
    from ..dialects import dialect_by_name

    dialect = dialect_by_name(dialect_name)
    server = dialect.create_server()
    if not statement_cache:
        server.stmt_cache = None
    else:
        # sandboxed execution always interprets: the worker exists to
        # contain pathologies, and the interpreter is the instrumented,
        # containment-friendly path.  When the caller *wanted* compiled
        # plans, every would-be compiled hit is counted as a fallback
        # (compile_forced_off) and shipped back for the health report.
        server.stmt_cache.compile_enabled = False
        server.stmt_cache.compile_forced_off = compile_plans
    governor = make_governor(budgets_spec)
    if governor is not None:
        server.attach_governor(governor)
    connection = server.connect()
    sent_triggered: Set[str] = set()

    def envelope(reply: Dict[str, Any]) -> Dict[str, Any]:
        new = server.ctx.triggered_functions - sent_triggered
        if new:
            reply["triggered"] = sorted(new)
            sent_triggered.update(new)
        cache = server.stmt_cache
        reply["cache_hits"] = cache.hits if cache is not None else 0
        reply["cache_misses"] = cache.misses if cache is not None else 0
        reply["compile_fallbacks"] = (
            cache.compile_fallbacks if cache is not None else 0
        )
        return reply

    def send(reply: Dict[str, Any]) -> None:
        payload = pickle.dumps(envelope(reply), protocol=pickle.HIGHEST_PROTOCOL)
        if len(payload) > max_message_bytes:
            # a result too large for the channel becomes a resource kill;
            # re-envelope so the triggered/cache bookkeeping still ships
            payload = pickle.dumps(
                envelope({
                    "status": "error",
                    "kind": "resource",
                    "message": (
                        f"result of {len(payload)} bytes exceeds the "
                        "sandbox channel cap"
                    ),
                }),
                protocol=pickle.HIGHEST_PROTOCOL,
            )
        sock.sendall(_HEADER.pack(len(payload)) + payload)

    while True:
        try:
            request = _recv_msg(sock, timeout=None, max_bytes=max_message_bytes)
        except (_WorkerGone, OSError, EOFError):
            return  # parent went away; nothing left to serve
        op = request.get("op")
        try:
            if op == "execute":
                server.ctx.clear_sequence_state()
                try:
                    result = connection.execute(request["sql"])
                except ResourceExhausted as exc:
                    send({
                        "status": "error", "kind": "exhausted",
                        "budget": exc.budget, "used": exc.used,
                        "limit": exc.limit,
                    })
                except ResourceError as exc:
                    send({"status": "error", "kind": "resource",
                          "message": exc.message})
                except SQLError as exc:
                    send({"status": "error", "kind": "sql",
                          "message": exc.message, "code": exc.code})
                except ServerCrashed as exc:
                    send({"status": "crash",
                          "crash": _crash_to_wire(exc.crash)})
                except ConnectionClosed as exc:
                    send({"status": "closed", "message": str(exc)})
                else:
                    send({"status": "ok", "result": result})
            elif op == "restart":
                server.restart(keep_coverage=True)
                connection = server.connect()
                send({"status": "ok"})
            elif op == "reconnect":
                if not server.alive:
                    server.restart(keep_coverage=True)
                connection = server.connect()
                send({"status": "ok"})
            elif op == "shutdown":
                send({"status": "ok"})
                return
            else:
                send({"status": "error", "kind": "sql",
                      "message": f"unknown sandbox op {op!r}", "code": "ERROR"})
        except (BrokenPipeError, OSError):
            return
        except BaseException as exc:  # noqa: BLE001 — containment boundary
            # harness bug (RecursionError, MemoryError, anything): report
            # and die so the parent respawns a clean interpreter
            detail = "".join(
                traceback.format_exception_only(type(exc), exc)
            ).strip()
            try:
                send({"status": "dying", "message": detail})
            except Exception:
                pass
            os._exit(3)


# ---------------------------------------------------------------------------
# the parent-side handle
# ---------------------------------------------------------------------------
class SandboxedConnection:
    """Runs a dialect in a subprocess worker; mirrors ``Connection``.

    ``execute`` raises exactly what an in-process connection would (rebuilt
    from the wire) plus two sandbox-only signals the runner maps onto the
    extended outcome taxonomy: :class:`WorkerHung` (real-deadline SIGKILL →
    ``timeout``) and :class:`WorkerCrashed` (worker death → ``harness_crash``).
    Respawning is handled *before* either is raised, so the campaign never
    observes a dead sandbox.
    """

    def __init__(
        self,
        dialect_name: str,
        config: Optional[SandboxConfig] = None,
        budgets: Optional[ResourceBudgets] = None,
        statement_cache: bool = True,
        compile_plans: bool = True,
    ) -> None:
        self.dialect_name = dialect_name
        self.config = config if config is not None else SandboxConfig()
        self._budgets_spec = (
            budgets.to_spec() if budgets is not None and budgets.enabled else None
        )
        self.statement_cache = statement_cache
        self.compile_plans = compile_plans
        #: lifetime counters for the supervisor health summary
        self.kills = 0          # SIGKILLs after a blown wall deadline
        self.worker_deaths = 0  # workers that died on their own
        self.respawns = 0       # replacement workers spawned
        self.cache_hits = 0
        self.cache_misses = 0
        #: sandbox workers never run compiled plans (see _worker_main);
        #: fallbacks count the hits that wanted to
        self.compiled_executions = 0
        self.compile_fallbacks = 0
        #: set the parent merges triggered-function deltas into (the
        #: runner points this at its server context's set)
        self.triggered_sink: Optional[Set[str]] = None
        self._proc = None
        self._sock: Optional[socket.socket] = None
        self._spawn()

    # ------------------------------------------------------------------
    @property
    def pid(self) -> Optional[int]:
        return self._proc.pid if self._proc is not None else None

    def _spawn(self) -> None:
        import multiprocessing

        if "fork" not in multiprocessing.get_all_start_methods():
            raise SandboxError(
                "the sandbox requires the 'fork' multiprocessing start "
                "method (unavailable on this platform)"
            )
        ctx = multiprocessing.get_context("fork")
        parent_sock, child_sock = socket.socketpair()
        proc = ctx.Process(
            target=_worker_main,
            args=(
                child_sock, self.dialect_name, self._budgets_spec,
                self.statement_cache, self.compile_plans,
                self.config.max_message_bytes,
            ),
            daemon=True,
        )
        proc.start()
        child_sock.close()
        self._proc = proc
        self._sock = parent_sock

    def _teardown(self, kill: bool) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None
        proc = self._proc
        self._proc = None
        if proc is None:
            return
        if kill and proc.is_alive() and proc.pid:
            try:
                os.kill(proc.pid, signal.SIGKILL)
            except (OSError, ProcessLookupError):
                pass
        proc.join(timeout=5)

    def _respawn(self) -> None:
        self._teardown(kill=True)
        self._spawn()
        self.respawns += 1

    # ------------------------------------------------------------------
    def _request(self, message: Dict[str, Any]) -> Dict[str, Any]:
        if self._proc is None or not self._proc.is_alive():
            # the worker died between statements (e.g. OOM-killed while
            # idle); replace it and report the death
            self.worker_deaths += 1
            self._respawn()
            raise WorkerCrashed(
                f"sandbox worker for {self.dialect_name!r} died between "
                "statements; respawned"
            )
        # one real-time deadline bounds the whole round trip — send,
        # worker-side execution, and reply transfer together
        deadline = RealDeadline(self.config.wall_deadline_seconds)
        try:
            assert self._sock is not None
            self._sock.settimeout(deadline.remaining())
            _send_msg(self._sock, message)
            reply = _recv_msg(
                self._sock, timeout=deadline.remaining() or 1e-6,
                max_bytes=self.config.max_message_bytes,
            )
        except socket.timeout:
            self.kills += 1
            self._respawn()
            raise WorkerHung(
                f"sandbox worker exceeded the {deadline.seconds:g}s wall "
                f"deadline on {message.get('op')!r}; SIGKILLed and respawned"
            ) from None
        except (_WorkerGone, BrokenPipeError, ConnectionResetError) as exc:
            self.worker_deaths += 1
            self._respawn()
            raise WorkerCrashed(
                f"sandbox worker died mid-request: {exc}; respawned"
            ) from None
        self.cache_hits = reply.get("cache_hits", self.cache_hits)
        self.cache_misses = reply.get("cache_misses", self.cache_misses)
        self.compile_fallbacks = reply.get(
            "compile_fallbacks", self.compile_fallbacks
        )
        if self.triggered_sink is not None:
            self.triggered_sink.update(reply.get("triggered", ()))
        if reply.get("status") == "dying":
            self.worker_deaths += 1
            self._respawn()
            raise WorkerCrashed(
                f"harness crash in sandbox worker: {reply.get('message')}; "
                "respawned"
            )
        return reply

    # ------------------------------------------------------------------
    def execute(self, sql: str):
        """Execute *sql* in the worker; mirrors ``Connection.execute``."""
        reply = self._request({"op": "execute", "sql": sql})
        status = reply.get("status")
        if status == "ok":
            return reply["result"]
        if status == "error":
            kind = reply.get("kind")
            if kind == "exhausted":
                raise ResourceExhausted(
                    reply["budget"], reply["used"], reply["limit"]
                )
            if kind == "resource":
                raise ResourceError(reply["message"])
            raise SQLError(reply["message"])
        if status == "crash":
            crash = _crash_from_wire(reply["crash"])
            raise ServerCrashed(crash, sql)
        if status == "closed":
            raise ConnectionClosed(reply.get("message", "server is not running"))
        raise SandboxError(f"unexpected sandbox reply {status!r}")

    def restart_server(self) -> None:
        """Restart the worker's server (the Docker-restart analogue)."""
        try:
            self._request({"op": "restart"})
        except WorkerCrashed:
            # the respawn already delivered a fresh server; restart achieved
            pass

    def reconnect(self) -> None:
        try:
            self._request({"op": "reconnect"})
        except WorkerCrashed:
            pass

    def close(self) -> None:
        """Shut the worker down; safe to call repeatedly."""
        if self._proc is None:
            return
        try:
            if self._sock is not None and self._proc.is_alive():
                self._sock.settimeout(1.0)
                _send_msg(self._sock, {"op": "shutdown"})
                _recv_msg(self._sock, timeout=1.0,
                          max_bytes=self.config.max_message_bytes)
        except Exception:
            pass
        self._teardown(kill=True)

    def kill_worker(self) -> None:
        """SIGKILL the live worker *without* respawning (test/chaos hook).

        The next ``execute`` observes the death, respawns, and raises
        :class:`WorkerCrashed` — the same path a real harness crash takes.
        """
        if self._proc is not None and self._proc.is_alive() and self._proc.pid:
            os.kill(self._proc.pid, signal.SIGKILL)
            self._proc.join(timeout=5)


# ---------------------------------------------------------------------------
# crash-loop containment (campaign layer)
# ---------------------------------------------------------------------------
class ContainmentState:
    """Quarantine + per-function-family circuit breakers.

    Statements that killed a worker are quarantined by SQL text — a
    statement that took the harness down once is never re-executed, not
    even across checkpoint/resume.  Independently, each function *family*
    gets a :class:`CircuitBreaker`: ``breaker_threshold`` consecutive
    worker kills on one family open it, and the rest of that family's
    stream is skipped (the crash-loop guard).  A quarantined statement
    whose family breaker is also open is still skipped exactly once —
    one statement, one ``skipped`` outcome.
    """

    STATE_VERSION = 1

    def __init__(
        self,
        breaker_threshold: int = DEFAULT_FAMILY_BREAKER_THRESHOLD,
        quarantine: Sequence[str] = (),
    ) -> None:
        self.breaker_threshold = breaker_threshold
        self.quarantine: Dict[str, str] = {
            sql: "pre-seeded quarantine entry" for sql in quarantine
        }
        self.breakers: Dict[str, CircuitBreaker] = {}
        self.skipped = 0

    @classmethod
    def from_config(cls, config: SandboxConfig) -> "ContainmentState":
        return cls(
            breaker_threshold=config.breaker_threshold,
            quarantine=config.quarantine,
        )

    # ------------------------------------------------------------------
    def should_skip(self, sql: str, family: str) -> Optional[str]:
        """Reason to skip this statement, or ``None`` to execute it."""
        reason = self.quarantine.get(sql)
        if reason is not None:
            return f"quarantined: {reason}"
        breaker = self.breakers.get(family)
        if breaker is not None and breaker.is_open:
            return f"family {family!r} circuit breaker open"
        return None

    def note_skip(self) -> None:
        self.skipped += 1

    def observe(self, kind: str, sql: str, family: str, message: str = "") -> None:
        """Feed one executed statement's outcome into the containment."""
        if kind == "harness_crash":
            self.quarantine.setdefault(sql, message or "worker killed")
            breaker = self.breakers.get(family)
            if breaker is None:
                breaker = CircuitBreaker(
                    family, failure_threshold=self.breaker_threshold
                )
                self.breakers[family] = breaker
            breaker.record_failure()
        elif family in self.breakers:
            # an open breaker never closes again (crash loops don't heal
            # mid-campaign); a still-closed one resets its streak
            self.breakers[family].record_success()

    @property
    def open_breakers(self) -> List[str]:
        return sorted(f for f, b in self.breakers.items() if b.is_open)

    # ------------------------------------------------------------------
    # checkpoint support (JSON-serializable)
    def export_state(self) -> Dict[str, Any]:
        return {
            "version": self.STATE_VERSION,
            "breaker_threshold": self.breaker_threshold,
            "quarantine": dict(self.quarantine),
            "skipped": self.skipped,
            "breakers": {
                family: [b.consecutive_failures, b.total_failures, b.opened]
                for family, b in self.breakers.items()
            },
        }

    def restore_state(self, state: Dict[str, Any]) -> None:
        if state.get("version") != self.STATE_VERSION:
            raise SandboxError(
                f"containment state version {state.get('version')!r} is not "
                f"{self.STATE_VERSION}"
            )
        self.breaker_threshold = state["breaker_threshold"]
        self.quarantine = dict(state["quarantine"])
        self.skipped = state["skipped"]
        self.breakers = {}
        for family, (consecutive, total, opened) in state["breakers"].items():
            breaker = CircuitBreaker(
                family, failure_threshold=self.breaker_threshold
            )
            breaker.consecutive_failures = consecutive
            breaker.total_failures = total
            breaker.opened = opened
            self.breakers[family] = breaker

    def merge(self, states: Iterable[Dict[str, Any]]) -> None:
        """Fold shard containment states in (union/sum semantics)."""
        for state in states:
            if state.get("version") != self.STATE_VERSION:
                raise SandboxError(
                    f"containment state version {state.get('version')!r} is "
                    f"not {self.STATE_VERSION}"
                )
            for sql, reason in state["quarantine"].items():
                self.quarantine.setdefault(sql, reason)
            self.skipped += state["skipped"]
            for family, (consecutive, total, opened) in state["breakers"].items():
                mine = self.breakers.get(family)
                if mine is None:
                    mine = CircuitBreaker(
                        family, failure_threshold=self.breaker_threshold
                    )
                    self.breakers[family] = mine
                mine.consecutive_failures = max(
                    mine.consecutive_failures, consecutive
                )
                mine.total_failures += total
                mine.opened = mine.opened or opened
