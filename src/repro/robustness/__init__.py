"""Robustness layer: fault injection, retry/backoff, watchdog, checkpoints,
resource governance, and the subprocess execution sandbox.

Real SOFT campaigns run unattended for days against live containers; this
package gives the reproduction the same survival machinery — a
deterministic :class:`FaultInjector` that perturbs the simulated
infrastructure, a :class:`RetryPolicy` + :class:`CircuitBreaker` pair that
absorbs transient failures and quarantines unrecoverable servers, a
:class:`Watchdog` that converts hangs into ``timeout`` outcomes,
:class:`CampaignCheckpoint` for kill/resume with byte-identical results, a
:class:`ResourceGovernor` enforcing opt-in per-statement budgets, and a
:class:`SandboxedConnection` that contains real harness pathologies in
SIGKILL-able subprocess workers with :class:`ContainmentState` crash-loop
protection on top.
"""

from .chaos import (
    SimulatedCrash,
    StorageFaultInjector,
    StorageFaultPlan,
    make_storage_injector,
)
from .checkpoint import (
    CHECKPOINT_VERSION,
    CampaignCheckpoint,
    CheckpointError,
    rng_state_from_json,
    rng_state_to_json,
)
from .faults import (
    DEFAULT_RATES,
    FaultInjector,
    FaultPlan,
    make_fault_injector,
    parse_rate_spec,
)
from .governor import ResourceBudgets, ResourceGovernor, make_governor
from .policy import CircuitBreaker, RetryPolicy, ServerQuarantined
from .sandbox import (
    ContainmentState,
    SandboxConfig,
    SandboxedConnection,
    SandboxError,
    WorkerCrashed,
    WorkerHung,
    make_sandbox_config,
)
from .watchdog import (
    DEFAULT_DEADLINE_SECONDS,
    DEFAULT_REAL_DEADLINE_SECONDS,
    Clock,
    RealDeadline,
    SimulatedClock,
    StatementHang,
    StatementTimeout,
    WallClock,
    Watchdog,
)

__all__ = [
    "CHECKPOINT_VERSION",
    "CampaignCheckpoint",
    "CheckpointError",
    "CircuitBreaker",
    "Clock",
    "ContainmentState",
    "DEFAULT_DEADLINE_SECONDS",
    "DEFAULT_RATES",
    "DEFAULT_REAL_DEADLINE_SECONDS",
    "FaultInjector",
    "FaultPlan",
    "RealDeadline",
    "ResourceBudgets",
    "ResourceGovernor",
    "RetryPolicy",
    "SandboxConfig",
    "SandboxError",
    "SandboxedConnection",
    "ServerQuarantined",
    "SimulatedClock",
    "SimulatedCrash",
    "StorageFaultInjector",
    "StorageFaultPlan",
    "StatementHang",
    "StatementTimeout",
    "WallClock",
    "Watchdog",
    "WorkerCrashed",
    "WorkerHung",
    "make_fault_injector",
    "make_governor",
    "make_sandbox_config",
    "make_storage_injector",
    "parse_rate_spec",
    "rng_state_from_json",
    "rng_state_to_json",
]
