"""Robustness layer: fault injection, retry/backoff, watchdog, checkpoints.

Real SOFT campaigns run unattended for days against live containers; this
package gives the reproduction the same survival machinery — a
deterministic :class:`FaultInjector` that perturbs the simulated
infrastructure, a :class:`RetryPolicy` + :class:`CircuitBreaker` pair that
absorbs transient failures and quarantines unrecoverable servers, a
:class:`Watchdog` that converts hangs into ``timeout`` outcomes, and
:class:`CampaignCheckpoint` for kill/resume with byte-identical results.
"""

from .checkpoint import (
    CHECKPOINT_VERSION,
    CampaignCheckpoint,
    CheckpointError,
    rng_state_from_json,
    rng_state_to_json,
)
from .faults import DEFAULT_RATES, FaultInjector, FaultPlan, make_fault_injector
from .policy import CircuitBreaker, RetryPolicy, ServerQuarantined
from .watchdog import (
    DEFAULT_DEADLINE_SECONDS,
    Clock,
    SimulatedClock,
    StatementHang,
    StatementTimeout,
    WallClock,
    Watchdog,
)

__all__ = [
    "CHECKPOINT_VERSION",
    "CampaignCheckpoint",
    "CheckpointError",
    "CircuitBreaker",
    "Clock",
    "DEFAULT_DEADLINE_SECONDS",
    "DEFAULT_RATES",
    "FaultInjector",
    "FaultPlan",
    "RetryPolicy",
    "ServerQuarantined",
    "SimulatedClock",
    "StatementHang",
    "StatementTimeout",
    "WallClock",
    "Watchdog",
    "make_fault_injector",
    "rng_state_from_json",
    "rng_state_to_json",
]
