"""Corpus serialisation: export/import the 318 records as JSON.

Downstream studies will want the raw records rather than our Python
objects; the JSON form is also how a real tracker scrape would be archived
alongside the paper.  Round-tripping is exact (asserted in the tests).
"""

from __future__ import annotations

import json
import pathlib
from typing import List, Sequence, Union

from .data import StudiedBug, load_corpus

SCHEMA_VERSION = 1


def corpus_to_dicts(bugs: Sequence[StudiedBug]) -> List[dict]:
    return [
        {
            "bug_id": bug.bug_id,
            "dbms": bug.dbms,
            "title": bug.title,
            "poc": list(bug.poc),
            "has_backtrace": bug.has_backtrace,
            "backtrace": list(bug.backtrace),
            "root_cause": bug.root_cause,
            "literal_subclass": bug.literal_subclass,
            "fixed": bug.fixed,
        }
        for bug in bugs
    ]


def corpus_from_dicts(records: Sequence[dict]) -> List[StudiedBug]:
    out: List[StudiedBug] = []
    for record in records:
        out.append(
            StudiedBug(
                bug_id=record["bug_id"],
                dbms=record["dbms"],
                title=record["title"],
                poc=tuple(record["poc"]),
                has_backtrace=record["has_backtrace"],
                backtrace=tuple(record["backtrace"]),
                root_cause=record["root_cause"],
                literal_subclass=record.get("literal_subclass", ""),
                fixed=record.get("fixed", True),
            )
        )
    return out


def export_corpus(
    path: Union[str, pathlib.Path], bugs: Sequence[StudiedBug] = None
) -> int:
    """Write the corpus to *path* as JSON; returns the record count."""
    if bugs is None:
        bugs = load_corpus()
    payload = {
        "schema_version": SCHEMA_VERSION,
        "synthesized": True,
        "record_count": len(bugs),
        "records": corpus_to_dicts(bugs),
    }
    pathlib.Path(path).write_text(json.dumps(payload, indent=1))
    return len(bugs)


def import_corpus(path: Union[str, pathlib.Path]) -> List[StudiedBug]:
    """Load a corpus JSON file written by :func:`export_corpus`."""
    payload = json.loads(pathlib.Path(path).read_text())
    if payload.get("schema_version") != SCHEMA_VERSION:
        raise ValueError(
            f"unsupported corpus schema {payload.get('schema_version')!r}"
        )
    records = corpus_from_dicts(payload["records"])
    if len(records) != payload.get("record_count"):
        raise ValueError("corpus record count mismatch")
    return records
