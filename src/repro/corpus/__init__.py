"""The 318-bug study corpus and its analysis pipeline (paper §3-§5)."""

from .data import (
    DBMS_COUNTS,
    EXPRESSION_COUNT_DISTRIBUTION,
    FUNCTION_TYPE_HISTOGRAM,
    PREREQUISITE_COUNTS,
    ROOT_CAUSE_COUNTS,
    STAGE_COUNTS,
    SYNTHESIZED,
    StudiedBug,
    build_corpus,
    load_corpus,
)
from .study import (
    StudySummary,
    boundary_share,
    classify_stage,
    count_by_dbms,
    expression_count_distribution,
    extract_function_calls,
    function_type_histogram,
    prerequisite_distribution,
    root_cause_distribution,
    stage_distribution,
    summarize,
)

__all__ = [
    "DBMS_COUNTS", "EXPRESSION_COUNT_DISTRIBUTION",
    "FUNCTION_TYPE_HISTOGRAM", "PREREQUISITE_COUNTS", "ROOT_CAUSE_COUNTS",
    "STAGE_COUNTS", "SYNTHESIZED", "StudiedBug", "StudySummary",
    "boundary_share", "build_corpus", "classify_stage", "count_by_dbms",
    "expression_count_distribution", "extract_function_calls",
    "function_type_histogram", "load_corpus", "prerequisite_distribution",
    "root_cause_distribution", "stage_distribution", "summarize",
]
