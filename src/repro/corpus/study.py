"""Analysis pipeline over the study corpus (§4 and §5).

Every statistic is *recomputed from the raw records* the way the paper
processed scraped bug reports:

* stages are classified from backtrace symbol names (Finding 1);
* function expressions are lifted from the PoC SQL with the same
  paren-scanning extraction SOFT uses, then classified by type (Figure 1);
* expression counts are counted on the parsed statements (Table 2);
* prerequisites are inferred from the PoC's statement shapes (Finding 4).

Only the root-cause label is read from the record — in the paper that
classification was the authors' manual analysis of each report and patch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..sqlast import FuncCall, ParseError, parse_statements
from ..sqlast.visitor import find_function_calls
from .data import (
    FUNCTION_FAMILY,
    LITERAL_SUBCLASS_COUNTS,
    ROOT_CAUSE_COUNTS,
    StudiedBug,
    load_corpus,
)


# ---------------------------------------------------------------------------
# Table 1
# ---------------------------------------------------------------------------
def count_by_dbms(bugs: Sequence[StudiedBug]) -> Dict[str, int]:
    out: Dict[str, int] = {}
    for bug in bugs:
        out[bug.dbms] = out.get(bug.dbms, 0) + 1
    return out


# ---------------------------------------------------------------------------
# Finding 1: occurrence stages from backtraces
# ---------------------------------------------------------------------------
_STAGE_PREFIXES = {
    "parse": ("sql_yyparse", "parse_", "lex_", "st_select_lex", "negate_"),
    "optimize": ("optimize_", "fold_", "remove_eq", "subquery_planner",
                 "preprocess_"),
    "execute": ("item_", "evaluate_", "execsimple", "do_select", "end_send",
                "copy_fields"),
}


def classify_stage(backtrace: Sequence[str]) -> Optional[str]:
    """Classify the crash stage from backtrace symbols (innermost last)."""
    for symbol in reversed(list(backtrace)):
        lowered = symbol.lower()
        for stage, prefixes in _STAGE_PREFIXES.items():
            if lowered.startswith(prefixes):
                return stage
    return None


def stage_distribution(bugs: Sequence[StudiedBug]) -> Dict[str, int]:
    """Stage histogram over records with identifiable backtraces."""
    out = {"execute": 0, "optimize": 0, "parse": 0}
    for bug in bugs:
        if not bug.has_backtrace:
            continue
        stage = classify_stage(bug.backtrace)
        if stage is not None:
            out[stage] += 1
    return out


# ---------------------------------------------------------------------------
# Figure 1: function-type histogram from PoCs
# ---------------------------------------------------------------------------
def extract_function_calls(statement: str) -> List[FuncCall]:
    """All function expressions in a statement (parser-based lift)."""
    try:
        parsed = parse_statements(statement)
    except (ParseError, RecursionError):
        return []
    out: List[FuncCall] = []
    for stmt in parsed:
        out.extend(find_function_calls(stmt))
    return out


def classify_function(name: str) -> str:
    """Function type per the corpus' documentation mapping."""
    return FUNCTION_FAMILY.get(name.lower(), "other")


@dataclass
class TypeHistogramRow:
    family: str
    occurrences: int
    unique_functions: int


def function_type_histogram(bugs: Sequence[StudiedBug]) -> List[TypeHistogramRow]:
    """Figure 1: occurrences and distinct functions per type, recomputed
    from the bug-inducing statements."""
    occurrences: Dict[str, int] = {}
    unique: Dict[str, set] = {}
    for bug in bugs:
        for call in extract_function_calls(bug.bug_inducing_statement):
            family = classify_function(call.name)
            occurrences[family] = occurrences.get(family, 0) + 1
            unique.setdefault(family, set()).add(call.name.lower())
    rows = [
        TypeHistogramRow(family, occurrences[family], len(unique[family]))
        for family in occurrences
    ]
    rows.sort(key=lambda r: -r.occurrences)
    return rows


# ---------------------------------------------------------------------------
# Table 2 / Finding 3: expression counts
# ---------------------------------------------------------------------------
def expression_count_distribution(bugs: Sequence[StudiedBug]) -> Dict[int, int]:
    """Histogram of function-expression counts per bug-inducing statement
    (counts of 5+ are bucketed at 5, as in Table 2)."""
    out: Dict[int, int] = {}
    for bug in bugs:
        count = len(extract_function_calls(bug.bug_inducing_statement))
        bucket = min(count, 5)
        out[bucket] = out.get(bucket, 0) + 1
    return out


def share_with_at_most_two(bugs: Sequence[StudiedBug]) -> float:
    """Finding 3: fraction of statements with ≤ 2 function expressions."""
    dist = expression_count_distribution(bugs)
    at_most_two = dist.get(1, 0) + dist.get(2, 0) + dist.get(0, 0)
    return at_most_two / max(len(bugs), 1)


# ---------------------------------------------------------------------------
# Finding 4: prerequisites inferred from PoC shapes
# ---------------------------------------------------------------------------
def classify_prerequisites(bug: StudiedBug) -> str:
    has_create = any(
        s.lstrip().upper().startswith("CREATE TABLE") for s in bug.poc
    )
    has_insert = any(
        s.lstrip().upper().startswith("INSERT") for s in bug.poc
    )
    if has_create and has_insert:
        return "table_and_data"
    if has_create:
        return "empty_table"
    return "none"


def prerequisite_distribution(bugs: Sequence[StudiedBug]) -> Dict[str, int]:
    out: Dict[str, int] = {}
    for bug in bugs:
        kind = classify_prerequisites(bug)
        out[kind] = out.get(kind, 0) + 1
    return out


# ---------------------------------------------------------------------------
# §5: root causes
# ---------------------------------------------------------------------------
def root_cause_distribution(bugs: Sequence[StudiedBug]) -> Dict[str, int]:
    out: Dict[str, int] = {}
    for bug in bugs:
        out[bug.root_cause] = out.get(bug.root_cause, 0) + 1
    return out


def boundary_share(bugs: Sequence[StudiedBug]) -> float:
    """Headline number: fraction caused by boundary values (87.4%)."""
    boundary = sum(
        1
        for bug in bugs
        if bug.root_cause.startswith("boundary_")
    )
    return boundary / max(len(bugs), 1)


def literal_subclass_distribution(bugs: Sequence[StudiedBug]) -> Dict[str, int]:
    out: Dict[str, int] = {}
    for bug in bugs:
        if bug.root_cause == "boundary_literal":
            out[bug.literal_subclass] = out.get(bug.literal_subclass, 0) + 1
    return out


# ---------------------------------------------------------------------------
# one-call summary
# ---------------------------------------------------------------------------
@dataclass
class StudySummary:
    total: int
    by_dbms: Dict[str, int]
    stages: Dict[str, int]
    with_backtrace: int
    type_histogram: List[TypeHistogramRow]
    expression_counts: Dict[int, int]
    prerequisites: Dict[str, int]
    root_causes: Dict[str, int]
    boundary_share: float


def summarize(bugs: Optional[Sequence[StudiedBug]] = None) -> StudySummary:
    if bugs is None:
        bugs = load_corpus()
    return StudySummary(
        total=len(bugs),
        by_dbms=count_by_dbms(bugs),
        stages=stage_distribution(bugs),
        with_backtrace=sum(1 for b in bugs if b.has_backtrace),
        type_histogram=function_type_histogram(bugs),
        expression_counts=expression_count_distribution(bugs),
        prerequisites=prerequisite_distribution(bugs),
        root_causes=root_cause_distribution(bugs),
        boundary_share=boundary_share(bugs),
    )
