"""The 318-bug study corpus (§3).

The paper's study set was scraped from the PostgreSQL bug mailing list,
MySQL's bug system, and MariaDB's JIRA.  Those trackers are not bundled
here, so the corpus is **synthesized**: 318 records whose joint distribution
matches every statistic the paper publishes —

* Table 1 — per-DBMS counts (PostgreSQL 39, MySQL 10, MariaDB 269);
* Finding 1 — 230 records with backtraces; stages 161/45/24 (exec/opt/parse);
* Figure 1 — 508 function-expression occurrences by type (string 117 across
  57 distinct functions, aggregate 91, ...);
* Table 2 / Finding 3 — expressions per bug-inducing statement
  (191/87/23/11/6 for 1/2/3/4/≥5);
* Finding 4 — prerequisites (151 table+data / 132 none / 35 empty table);
* §5 — root causes (94 literal / 74 casting / 110 nested / 8 config /
  24 table definition / 8 syntax).

Crucially, the *analysis pipeline* (:mod:`repro.corpus.study`) does not echo
these marginals: it recomputes them from the raw records — parsing each
PoC's SQL, classifying backtrace symbols, and inspecting prerequisite
statements — exercising the same machinery a real tracker scrape would.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

#: the corpus is synthesized to published marginals, not scraped
SYNTHESIZED = True

CORPUS_SEED = 20250330  # EuroSys'25 start date; fixed for determinism

#: Figure 1 histogram: type -> (occurrences, distinct functions).
#: string/aggregate counts are the paper's; the remainder is distributed to
#: match the figure's visual ordering and sum to 508 occurrences.
FUNCTION_TYPE_HISTOGRAM: Dict[str, Tuple[int, int]] = {
    "string": (117, 57),
    "aggregate": (91, 18),
    "date": (52, 21),
    "json": (48, 16),
    "math": (40, 17),
    "spatial": (35, 14),
    "condition": (30, 9),
    "system": (25, 12),
    "xml": (22, 6),
    "casting": (20, 8),
    "inet": (20, 8),
    "sequence": (8, 3),
}
assert sum(occ for occ, _ in FUNCTION_TYPE_HISTOGRAM.values()) == 508

#: Table 2: bug-inducing statements by contained function-expression count
EXPRESSION_COUNT_DISTRIBUTION = {1: 191, 2: 87, 3: 23, 4: 11, 5: 6}
assert sum(EXPRESSION_COUNT_DISTRIBUTION.values()) == 318
assert sum(k * v for k, v in EXPRESSION_COUNT_DISTRIBUTION.items()) == 508

#: Table 1
DBMS_COUNTS = {"postgresql": 39, "mysql": 10, "mariadb": 269}

#: Finding 1 (among the 230 records with identifiable backtraces)
STAGE_COUNTS = {"execute": 161, "optimize": 45, "parse": 24}
BACKTRACE_COUNT = 230

#: Finding 4
PREREQUISITE_COUNTS = {"table_and_data": 151, "none": 132, "empty_table": 35}

#: §5 root causes
ROOT_CAUSE_COUNTS = {
    "boundary_literal": 94,
    "boundary_casting": 74,
    "boundary_nested": 110,
    "configuration": 8,
    "table_definition": 24,
    "syntax": 8,
}

#: §6 sub-split of the boundary_literal class
LITERAL_SUBCLASS_COUNTS = {
    "extreme_numeric": 32,
    "empty_or_null": 21,
    "crafted_format": 41,
}

#: backtrace symbols per stage — the classifier in study.py keys on these
#: prefixes, as the paper classified real symbol names
_STAGE_SYMBOLS = {
    "parse": ("sql_yyparse", "parse_expression", "lex_one_token",
              "st_select_lex_init", "negate_expression"),
    "optimize": ("optimize_cond", "fold_condition", "remove_eq_conds",
                 "subquery_planner", "preprocess_expression"),
    "execute": ("item_func_val", "evaluate_expression", "execsimpleexpr",
                "do_select", "end_send", "item_val_str", "copy_fields"),
}


@dataclass(frozen=True)
class StudiedBug:
    """One record of the bug study."""

    bug_id: str
    dbms: str
    title: str
    poc: Tuple[str, ...]        # prerequisite statements + bug-inducing stmt
    has_backtrace: bool
    backtrace: Tuple[str, ...]  # symbol names, innermost last
    root_cause: str             # ROOT_CAUSE_COUNTS key
    literal_subclass: str = ""  # LITERAL_SUBCLASS_COUNTS key when literal
    fixed: bool = True

    @property
    def bug_inducing_statement(self) -> str:
        return self.poc[-1]

    @property
    def prerequisite_statements(self) -> Tuple[str, ...]:
        return self.poc[:-1]


# ---------------------------------------------------------------------------
# function-name pools per type (distinct counts per Figure 1)
# ---------------------------------------------------------------------------
_NAME_STEMS = {
    "string": ["concat", "substr", "replace", "repeat", "format", "lpad",
               "rpad", "trim", "regexp_replace", "instr", "locate", "elt",
               "field", "export_set", "make_set", "insert", "quote",
               "soundex", "to_base64", "weight_string"],
    "aggregate": ["count", "sum", "avg", "min", "max", "group_concat",
                  "std", "variance", "bit_and", "bit_or", "bit_xor",
                  "json_arrayagg", "json_objectagg"],
    "date": ["date_add", "date_sub", "date_format", "str_to_date",
             "from_days", "makedate", "maketime", "period_add",
             "timestampdiff", "convert_tz", "week", "yearweek"],
    "json": ["json_extract", "json_length", "json_depth", "json_keys",
             "json_merge", "json_set", "json_remove", "json_search",
             "column_create", "column_json", "column_get"],
    "math": ["round", "truncate", "format_number", "pow", "exp", "ln",
             "log", "conv", "crc32", "bin", "oct"],
    "spatial": ["st_astext", "st_geomfromtext", "boundary", "st_buffer",
                "st_union", "st_intersection", "st_within", "centroid"],
    "condition": ["if", "ifnull", "nullif", "coalesce", "interval", "case_f",
                  "least", "greatest"],
    "system": ["benchmark", "name_const", "get_lock", "sleep", "uuid",
               "master_pos_wait", "release_lock"],
    "xml": ["extractvalue", "updatexml", "xml_valid"],
    "casting": ["cast_f", "convert_f", "to_char", "to_number", "binary_f"],
    "inet": ["inet_aton", "inet_ntoa", "inet6_aton", "inet6_ntoa",
             "is_ipv4", "is_ipv6"],
    "sequence": ["nextval", "setval", "lastval"],
}


def _function_pool() -> Dict[str, List[str]]:
    """Distinct function names per type, sized to Figure 1's unique counts."""
    pools: Dict[str, List[str]] = {}
    for family, (_, unique) in FUNCTION_TYPE_HISTOGRAM.items():
        stems = _NAME_STEMS[family]
        names: List[str] = []
        counter = 2
        while len(names) < unique:
            if len(names) < len(stems):
                names.append(stems[len(names)])
            else:
                names.append(f"{stems[len(names) % len(stems)]}{counter}")
                if len(names) % len(stems) == len(stems) - 1:
                    counter += 1
        pools[family] = names[:unique]
    return pools


FUNCTION_POOL = _function_pool()

#: flat name -> family mapping used by the Figure 1 classifier
FUNCTION_FAMILY: Dict[str, str] = {
    name: family for family, names in FUNCTION_POOL.items() for name in names
}


# ---------------------------------------------------------------------------
# corpus synthesis
# ---------------------------------------------------------------------------
def _spread(items: List, counts: Dict, rng: random.Random) -> List:
    """A list with each key repeated per *counts*, shuffled deterministically."""
    out = []
    for key, count in counts.items():
        out.extend([key] * count)
    assert len(out) == len(items) if items else True
    rng.shuffle(out)
    return out


def _boundary_args(root_cause: str, subclass: str, rng: random.Random) -> str:
    """Literal arguments shaped by the record's root cause."""
    if root_cause == "boundary_literal":
        if subclass == "extreme_numeric":
            return rng.choice((
                "99999999999999999999999999999999999999999999",
                "-0.999999999999999999999999999999",
                "1.2999999999999999999999999999999999999999",
                "170141183460469231731687303715884105727",
            ))
        if subclass == "empty_or_null":
            return rng.choice(("''", "NULL"))
        return rng.choice((
            "'{\"a\": 0}'", "'$[2][1]'", "'0000-00-00'", "'[[[[['",
            "'%Y-%m-%u'", "'::ffff:1.2.3.4'", "'POINT()'",
        ))
    if root_cause == "boundary_casting":
        return rng.choice((
            "CAST(NULL AS UNSIGNED)",
            "CAST('' AS DECIMAL(65, 30))",
            "CAST(123456789012345678901234567890123456789012346789 AS CHAR)",
            "CONVERT(NULL, UNSIGNED)",
        ))
    if root_cause == "boundary_nested":
        # the nested producer is the innermost *studied* function of the
        # statement; these are the boundary-shaped literals it receives
        return rng.choice((
            "'[', 1000",
            "'(', 100000",
            "'255.255.255.255'",
            "'x', 1",
            "'[1,', 100",
        ))
    return rng.choice(("1", "'a'", "0.5", "c0"))


def _build_expression(
    functions: List[str],
    args: str,
    rng: random.Random,
    column: str = "",
    force_nest: bool = False,
) -> str:
    """Nest/sequence *functions* into one select list (preorder count is
    exactly ``len(functions)``).  ``force_nest`` keeps the chain strictly
    nested — required for nested-root records, whose boundary value is the
    inner call's return value."""
    base = column or args
    expr = f"{functions[-1].upper()}({base})"
    for name in reversed(functions[:-1]):
        if force_nest or rng.random() < 0.6:
            expr = f"{name.upper()}({expr})"
        else:
            expr = f"{name.upper()}({expr}, {args})" if rng.random() < 0.5 else (
                expr + f", {name.upper()}({args})"
            )
    return expr


def build_corpus(seed: int = CORPUS_SEED) -> List[StudiedBug]:
    """Synthesize the 318-record corpus (deterministic for a given seed)."""
    rng = random.Random(seed)
    total = sum(DBMS_COUNTS.values())

    dbms_column = _spread([None] * total, DBMS_COUNTS, rng)
    root_column = _spread([None] * total, ROOT_CAUSE_COUNTS, rng)
    prereq_column = _spread([None] * total, PREREQUISITE_COUNTS, rng)
    # expression counts, jointly constrained: nested-root records carry the
    # producer call inside the statement, so they need >= 2 expressions
    count_bag = _spread([None] * total, EXPRESSION_COUNT_DISTRIBUTION, rng)
    multi = [c for c in count_bag if c >= 2]
    singles = [c for c in count_bag if c < 2]
    expr_counts: List[int] = []
    for root in root_column:
        if root == "boundary_nested" and multi:
            expr_counts.append(multi.pop())
        elif singles:
            expr_counts.append(singles.pop())
        else:
            expr_counts.append(multi.pop())
    # backtrace stages: 230 with stages per Finding 1, 88 without
    stage_column = _spread(
        [None] * total,
        {**STAGE_COUNTS, "": total - BACKTRACE_COUNT},
        rng,
    )
    # literal subclasses assigned to the 94 boundary_literal records
    subclass_values = _spread([], LITERAL_SUBCLASS_COUNTS, rng)

    # function occurrences: a global bag matching Figure 1, drawn without
    # replacement so the totals recompute exactly
    occurrence_bag: List[str] = []
    for family, (occurrences, _) in FUNCTION_TYPE_HISTOGRAM.items():
        pool = FUNCTION_POOL[family]
        # every distinct function appears at least once
        occurrence_bag.extend(pool)
        for _ in range(occurrences - len(pool)):
            occurrence_bag.append(rng.choice(pool))
    rng.shuffle(occurrence_bag)
    assert len(occurrence_bag) == 508

    bugs: List[StudiedBug] = []
    subclass_idx = 0
    bag_idx = 0
    tracker_ids = {"postgresql": 17000, "mysql": 99000, "mariadb": 20000}
    for index in range(total):
        dbms = dbms_column[index]
        root = root_column[index]
        prereq = prereq_column[index]
        n_exprs = expr_counts[index]
        stage = stage_column[index]
        subclass = ""
        if root == "boundary_literal":
            subclass = subclass_values[subclass_idx]
            subclass_idx += 1

        functions = occurrence_bag[bag_idx : bag_idx + n_exprs]
        bag_idx += n_exprs
        args = _boundary_args(root, subclass, rng)
        column = "c0" if prereq == "table_and_data" and rng.random() < 0.7 else ""
        expression = _build_expression(
            functions, args, rng, column=column,
            force_nest=(root == "boundary_nested"),
        )

        statements: List[str] = []
        if prereq == "table_and_data":
            statements.append(
                "CREATE TABLE t0 (c0 INT, c1 VARCHAR(64), c2 DECIMAL(30, 10));"
            )
            statements.append(
                "INSERT INTO t0 VALUES (1, 'a', 0.5), (2, NULL, -1.25);"
            )
            statements.append(f"SELECT {expression} FROM t0;")
        elif prereq == "empty_table":
            statements.append(
                "CREATE TABLE t0 (c0 INT NOT NULL PRIMARY KEY, "
                "c1 VARCHAR(0), c2 DECIMAL(65, 30), c3 DATE);"
            )
            statements.append(f"SELECT {expression} FROM t0;")
        else:
            statements.append(f"SELECT {expression};")

        backtrace: Tuple[str, ...] = ()
        if stage:
            symbols = _STAGE_SYMBOLS[stage]
            depth = rng.randint(3, 7)
            backtrace = tuple(
                rng.choice(symbols) + f"_{rng.randint(0, 9)}"
                for _ in range(depth)
            )

        tracker_ids[dbms] += rng.randint(1, 40)
        prefix = {"postgresql": "PG", "mysql": "MYSQL", "mariadb": "MDEV"}[dbms]
        crash_word = rng.choice(("crash", "signal 11", "signal 6", "crash"))
        bugs.append(
            StudiedBug(
                bug_id=f"{prefix}-{tracker_ids[dbms]}",
                dbms=dbms,
                title=(
                    f"{dbms} {crash_word} in "
                    f"{functions[0].upper()} with {root.replace('_', ' ')}"
                ),
                poc=tuple(statements),
                has_backtrace=bool(stage),
                backtrace=backtrace,
                root_cause=root,
                literal_subclass=subclass,
            )
        )
    return bugs


_CACHE: Optional[List[StudiedBug]] = None


def load_corpus() -> List[StudiedBug]:
    """The canonical 318-record corpus (cached)."""
    global _CACHE
    if _CACHE is None:
        _CACHE = build_corpus()
    return _CACHE
