"""SOFT: boundary-argument testing for built-in SQL functions.

Reproduction of *Understanding and Detecting SQL Function Bugs: Using
Simple Boundary Arguments to Trigger Hundreds of DBMS Bugs* (EuroSys'25).

Quickstart::

    from repro import run_campaign

    result = run_campaign("duckdb", budget=50_000)
    for bug in result.bugs:
        print(bug.function, bug.crash_code, bug.sql)

Package map:

* :mod:`repro.sqlast` — SQL lexer/parser/printer and AST utilities.
* :mod:`repro.engine` — the simulated DBMS substrate (values, casting,
  memory model, executor, coverage).
* :mod:`repro.dialects` — seven simulated DBMSs with 132 injected bugs.
* :mod:`repro.core` — SOFT itself (collection, patterns, runner, oracle).
* :mod:`repro.robustness` — fault injection, retry/backoff, watchdog
  deadlines, and campaign checkpoint/resume.
* :mod:`repro.baselines` — SQLsmith / SQLancer / SQUIRREL strategy models.
* :mod:`repro.corpus` — the 318-bug study corpus and its analysis.
"""

from .core import (
    BUDGET_24_HOURS,
    BUDGET_TWO_WEEKS,
    Campaign,
    CampaignConfig,
    CampaignResult,
    DiscoveredBug,
    PatternEngine,
    Runner,
    SeedCollector,
    boundary_literals,
    render_bug_report,
    run_campaign,
    run_campaigns,
)
from .robustness import (
    CampaignCheckpoint,
    FaultInjector,
    FaultPlan,
    RetryPolicy,
    ServerQuarantined,
)
from .dialects import (
    Dialect,
    InjectedBug,
    all_bugs,
    all_dialect_classes,
    bugs_for,
    dialect_by_name,
    dialect_names,
)
from .engine import Connection, Server, ServerCrashed, SQLError

__version__ = "1.0.0"

__all__ = [
    "BUDGET_24_HOURS", "BUDGET_TWO_WEEKS", "Campaign", "CampaignCheckpoint",
    "CampaignConfig", "CampaignResult", "Connection", "Dialect",
    "DiscoveredBug",
    "FaultInjector", "FaultPlan", "InjectedBug", "PatternEngine",
    "RetryPolicy", "Runner", "SQLError", "SeedCollector", "Server",
    "ServerCrashed", "ServerQuarantined", "__version__", "all_bugs",
    "all_dialect_classes", "boundary_literals", "bugs_for",
    "dialect_by_name", "dialect_names", "render_bug_report", "run_campaign",
    "run_campaigns",
]
