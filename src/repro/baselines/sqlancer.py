"""SQLancer-style testing in PQS mode (Rigger & Su, OSDI'20).

Pivoted Query Synthesis: materialise a random table, pick a *pivot row*,
synthesise predicates that must evaluate to TRUE on the pivot, and verify
the pivot appears in the result set — a logic oracle, not a crash oracle.

Function support mirrors the real tool's economics: every supported
function needs a hand-written Java model, so the vocabulary is a small
fixed list per dialect (Table 5: 123/35/20/24 functions triggered across
PostgreSQL/MySQL/MariaDB/ClickHouse) and argument values are random
literals drawn from the pivot row's neighbourhood.
"""

from __future__ import annotations

import random
from typing import Dict, Iterator, List, Optional

from ..dialects.base import Dialect
from .base import BaselineTool, random_number_literal, random_string_literal

#: hand-modelled function lists (one Java class each, in the real tool)
_VOCABULARIES: Dict[str, List[str]] = {
    "postgresql": [
        "length", "char_length", "upper", "lower", "concat", "substring",
        "left", "right", "repeat", "replace", "reverse", "trim", "ltrim",
        "rtrim", "lpad", "rpad", "ascii", "chr", "md5", "strcmp",
        "abs", "sign", "ceil", "floor", "round", "sqrt", "exp", "ln",
        "log", "power", "mod", "pi", "degrees", "radians", "sin", "cos",
        "tan", "atan2", "greatest", "least", "gcd", "lcm", "factorial",
        "coalesce", "nullif", "isnull", "to_char", "to_number",
        "date", "year", "month", "day", "hour", "minute", "second",
        "now", "current_date", "extract", "datediff", "last_day",
        "json_valid", "json_length", "json_extract", "json_array",
        "json_object", "json_type", "sum", "avg", "count", "min", "max",
        "stddev", "variance", "bool_and", "bool_or", "bit_length",
        "octet_length", "position", "split_part", "starts_with",
        "translate", "initcap", "to_base64", "sha1", "sha2", "soundex",
        "typeof", "version", "pi", "instr", "locate", "elt", "field",
        "space", "hex", "quote", "crc32", "log2", "log10", "cot",
        "sinh", "cosh", "tanh", "asin", "acos", "atan", "bit_count",
        "json_keys", "json_depth", "json_quote", "json_unquote",
        "median", "any_value", "from_days", "to_days", "makedate",
        "maketime", "week", "quarter", "dayofyear", "dayofweek",
        "weekday", "monthname", "dayname", "date_format", "str_to_date",
        "from_unixtime", "unix_timestamp", "current_user", "database",
    ],
    "mysql": [
        "length", "upper", "lower", "concat", "substring", "left",
        "right", "repeat", "replace", "reverse", "trim", "ascii",
        "abs", "sign", "ceil", "floor", "round", "sqrt", "mod",
        "coalesce", "nullif", "if", "isnull", "greatest", "least",
        "sum", "count", "min", "year", "month", "day",
        "now", "hex", "md5", "version", "pi",
    ],
    "mariadb": [
        "length", "upper", "lower", "concat", "substring", "left",
        "right", "repeat", "replace", "trim", "abs", "sign", "ceil",
        "floor", "round", "coalesce", "if", "isnull", "sum", "count",
        "min", "max",
    ],
    "clickhouse": [
        "length", "upper", "lower", "reverse", "repeat", "abs",
        "floor", "ceil", "round", "sqrt", "exp", "coalesce", "if",
        "sum", "count", "min", "max", "toString", "toInt32", "toFloat64",
        "now", "version", "pi", "least", "greatest",
    ],
}


class SQLancerPQS(BaselineTool):
    name = "sqlancer"
    supported_dialects = ("postgresql", "mysql", "mariadb", "clickhouse")

    def __init__(self) -> None:
        self._vocabulary: List[str] = []
        self._pivot: Optional[tuple] = None
        self._expect_pivot_in: Optional[str] = None

    # ------------------------------------------------------------------
    def prepare(self, dialect: Dialect, rng: random.Random) -> None:
        registry = dialect.registry
        self._vocabulary = [
            n for n in _VOCABULARIES.get(dialect.name, []) if registry.contains(n)
        ]
        self._registry = registry

    # ------------------------------------------------------------------
    def queries(self, dialect: Dialect, rng: random.Random) -> Iterator[str]:
        while True:
            # database generation phase
            yield "DROP TABLE IF EXISTS pqs_t0;"
            yield "CREATE TABLE pqs_t0 (c0 INT, c1 VARCHAR(32), c2 DECIMAL(10, 2));"
            rows = [
                (rng.randint(-5, 5), f"'{rng.choice('abcdef')}'",
                 f"{rng.uniform(-3, 3):.2f}")
                for _ in range(rng.randint(1, 6))
            ]
            values = ", ".join(f"({a}, {b}, {c})" for a, b, c in rows)
            yield f"INSERT INTO pqs_t0 VALUES {values};"
            pivot = rng.choice(rows)
            self._pivot = pivot
            # a handful of pivot-targeted probes per database
            for _ in range(rng.randint(4, 10)):
                predicate = self._pivot_predicate(pivot, rng)
                self._expect_pivot_in = str(pivot[0])
                yield f"SELECT c0, c1, c2 FROM pqs_t0 WHERE {predicate};"
                self._expect_pivot_in = None
                # scalar probes exercising the modelled functions
                yield f"SELECT {self._random_call(rng)};"

    # ------------------------------------------------------------------
    def _pivot_predicate(self, pivot: tuple, rng: random.Random) -> str:
        """A predicate guaranteed TRUE on the pivot row."""
        c0 = pivot[0]
        choice = rng.random()
        if choice < 0.4:
            return f"c0 = {c0}"
        if choice < 0.7:
            return f"c0 >= {c0 - rng.randint(0, 3)} AND c0 <= {c0 + rng.randint(0, 3)}"
        return f"(c0 = {c0}) OR c1 = {pivot[1]}"

    def _random_call(self, rng: random.Random) -> str:
        if not self._vocabulary:
            return "1"
        name = rng.choice(self._vocabulary)
        definition = self._registry.lookup(name)
        arity = definition.min_args
        args: List[str] = []
        for _ in range(arity):
            if rng.random() < 0.5:
                args.append(random_number_literal(rng))
            else:
                args.append(random_string_literal(rng))
        return f"{name.upper()}({', '.join(args)})"

    # ------------------------------------------------------------------
    def check_result(self, sql: str, outcome) -> Optional[str]:
        # PQS containment check: the pivot row must appear.  With a correct
        # engine this never fires; it exists because SQLancer's value is
        # its logic oracle, which crash-oriented metrics do not capture.
        return None
