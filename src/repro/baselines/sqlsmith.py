"""SQLsmith-style generation-based fuzzing.

Models the strategy of Seltenreich et al.'s SQLsmith: purely random query
generation from a grammar, with the function vocabulary obtained by *catalog
introspection*.  Against PostgreSQL, SQLsmith knows essentially the whole
catalog (Table 5: 417 functions triggered); against MonetDB its support is a
small hand-ported list (29).  Arguments are ordinary random literals —
SQLsmith has no notion of boundary values, which is exactly the gap SOFT
exploits.
"""

from __future__ import annotations

import random
from typing import Iterator, List

from ..dialects.base import Dialect
from .base import (
    BaselineTool,
    random_scalar_literal,
    random_string_literal,
)

#: the hand-ported function list used against MonetDB (real SQLsmith's
#: non-PostgreSQL backends cover only a sliver of the inventory)
_MONETDB_VOCABULARY = [
    "length", "char_length", "upper", "lower", "concat", "substring",
    "trim", "rtrim", "left", "right", "replace", "reverse", "ascii",
    "abs", "sign", "ceil", "floor", "round", "sqrt", "exp", "power",
    "greatest", "least", "coalesce", "nullif", "if",
    "sum", "avg", "count", "min", "max",
]


class SQLsmith(BaselineTool):
    name = "sqlsmith"
    supported_dialects = ("postgresql", "monetdb")

    def __init__(self, max_depth: int = 3) -> None:
        self.max_depth = max_depth
        self._vocabulary: List[str] = []
        self._aggregates: List[str] = []

    # ------------------------------------------------------------------
    def prepare(self, dialect: Dialect, rng: random.Random) -> None:
        registry = dialect.registry
        if dialect.name == "postgresql":
            # catalog introspection: SQLsmith sees (nearly) everything
            names = registry.names()
        else:
            names = [n for n in _MONETDB_VOCABULARY if registry.contains(n)]
        self._vocabulary = []
        self._aggregates = []
        for name in names:
            definition = registry.lookup(name)
            if definition.is_aggregate:
                self._aggregates.append(name)
            else:
                self._vocabulary.append(name)
        self._registry = registry

    # ------------------------------------------------------------------
    def queries(self, dialect: Dialect, rng: random.Random) -> Iterator[str]:
        yield "DROP TABLE IF EXISTS smith_t0;"
        yield "CREATE TABLE smith_t0 (c0 INT, c1 VARCHAR(32), c2 DECIMAL(10, 2));"
        yield "INSERT INTO smith_t0 VALUES (1, 'row', 1.5), (2, 'col', -2.5);"
        while True:
            yield self._random_select(rng)

    # ------------------------------------------------------------------
    def _random_select(self, rng: random.Random) -> str:
        items = [self._random_expr(rng, self.max_depth) for _ in range(rng.randint(1, 3))]
        parts = [f"SELECT {', '.join(items)}"]
        if rng.random() < 0.5:
            parts.append("FROM smith_t0")
            if rng.random() < 0.5:
                parts.append(f"WHERE {self._random_predicate(rng)}")
            if rng.random() < 0.2:
                parts.append("GROUP BY c0")
            if rng.random() < 0.3:
                parts.append("ORDER BY 1")
            if rng.random() < 0.3:
                parts.append(f"LIMIT {rng.randint(1, 10)}")
        return " ".join(parts) + ";"

    def _random_expr(self, rng: random.Random, depth: int) -> str:
        roll = rng.random()
        if depth <= 0 or roll < 0.35 or not self._vocabulary:
            return random_scalar_literal(rng)
        if roll < 0.45 and self._aggregates and depth == self.max_depth:
            name = rng.choice(self._aggregates)
            return f"{name.upper()}({self._random_expr(rng, 0)})"
        name = rng.choice(self._vocabulary)
        definition = self._registry.lookup(name)
        arity = definition.min_args
        if definition.max_args is not None and definition.max_args > arity:
            arity = rng.randint(definition.min_args, min(definition.max_args, arity + 2))
        args = [self._random_expr(rng, depth - 1) for _ in range(arity)]
        return f"{name.upper()}({', '.join(args)})"

    def _random_predicate(self, rng: random.Random) -> str:
        op = rng.choice(("=", "<", ">", "<=", ">=", "<>"))
        left = rng.choice(("c0", "c2"))
        return f"{left} {op} {rng.randint(0, 5)}"
