"""Shared driver for the baseline DBMS-testing tools (§7.5).

The comparison tools are re-implemented at the level that matters for
Tables 5 and 6: *what queries they generate*.  Each tool exposes the
dialects it supports (mirroring the paper: SQUIRREL → PostgreSQL, MySQL,
MariaDB; SQLsmith → PostgreSQL, MonetDB; SQLancer → PostgreSQL, MySQL,
MariaDB, ClickHouse) and a query stream; the driver executes the stream
under the same budget, runner, and oracle as SOFT, so coverage and
function-trigger numbers are measured identically across tools.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence, Set

from ..core.oracles import CrashOracle, DiscoveredBug
from ..core.runner import Runner
from ..dialects import dialect_by_name
from ..dialects.base import Dialect


@dataclass
class ToolResult:
    """Outcome of one tool × dialect run (the Tables 5/6 cell)."""

    tool: str
    dialect: str
    queries_executed: int = 0
    triggered_functions: Set[str] = field(default_factory=set)
    branch_coverage: int = 0
    bugs: List[DiscoveredBug] = field(default_factory=list)
    logic_reports: int = 0  # SQLancer-style logic-oracle violations
    outcomes: dict = field(default_factory=dict)


class BaselineTool:
    """Interface of a baseline query generator."""

    name = "baseline"
    #: dialect names this tool supports, per the paper's §7.5
    supported_dialects: Sequence[str] = ()

    def supports(self, dialect: Dialect) -> bool:
        return dialect.name in self.supported_dialects

    def prepare(self, dialect: Dialect, rng: random.Random) -> None:
        """Inspect the target (catalog introspection, seed loading...)."""

    def queries(self, dialect: Dialect, rng: random.Random) -> Iterator[str]:
        """An unbounded stream of generated statements."""
        raise NotImplementedError

    def check_result(self, sql: str, outcome) -> Optional[str]:
        """Tool-specific oracle hook (e.g. PQS containment); returns a
        violation description or None."""
        return None


def run_tool(
    tool: BaselineTool,
    dialect_name: str,
    budget: int,
    enable_coverage: bool = False,
    seed: int = 0,
) -> ToolResult:
    """Run *tool* against a dialect under a query budget."""
    dialect = dialect_by_name(dialect_name)
    rng = random.Random(seed)
    result = ToolResult(tool=tool.name, dialect=dialect.name)
    if not tool.supports(dialect):
        return result
    runner = Runner(dialect, enable_coverage=enable_coverage)
    oracle = CrashOracle(dialect.name)
    tool.prepare(dialect, rng)
    stream = tool.queries(dialect, rng)
    for sql in stream:
        if runner.executed >= budget:
            break
        outcome = runner.run(sql)
        result.outcomes[outcome.kind] = result.outcomes.get(outcome.kind, 0) + 1
        if outcome.kind == "crash" and outcome.crash is not None:
            oracle.observe_crash(outcome.crash, sql, tool.name, runner.executed)
        violation = tool.check_result(sql, outcome)
        if violation is not None:
            result.logic_reports += 1
    result.queries_executed = runner.executed
    result.triggered_functions = runner.triggered_functions
    result.branch_coverage = runner.branch_coverage
    result.bugs = list(oracle.bugs)
    return result


# -- shared random-value helpers --------------------------------------------
_WORDS = ("apple", "pear", "plum", "kiwi", "melon", "grape", "fig", "lime")


def random_int_literal(rng: random.Random) -> str:
    return str(rng.randint(1, 100))


def random_number_literal(rng: random.Random) -> str:
    if rng.random() < 0.3:
        return f"{rng.uniform(0.5, 99.5):.2f}"
    return random_int_literal(rng)


def random_string_literal(rng: random.Random) -> str:
    word = rng.choice(_WORDS)
    return "'" + word[: rng.randint(1, len(word))] + "'"


def random_scalar_literal(rng: random.Random) -> str:
    roll = rng.random()
    if roll < 0.45:
        return random_number_literal(rng)
    if roll < 0.9:
        return random_string_literal(rng)
    return "NULL"
