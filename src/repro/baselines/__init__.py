"""Baseline DBMS-testing tools re-implemented for the §7.5 comparison."""

from .base import BaselineTool, ToolResult, run_tool
from .sqlancer import SQLancerPQS
from .sqlsmith import SQLsmith
from .squirrel import Squirrel

ALL_TOOLS = (Squirrel, SQLancerPQS, SQLsmith)

__all__ = [
    "ALL_TOOLS",
    "BaselineTool",
    "SQLancerPQS",
    "SQLsmith",
    "Squirrel",
    "ToolResult",
    "run_tool",
]
