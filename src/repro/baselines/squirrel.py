"""SQUIRREL-style mutation fuzzing (Zhong et al., CCS'20).

Models SQUIRREL's strategy: parse seed statements into an IR (our AST),
apply *structural* mutations — clause insertion/removal, operator swaps,
small literal perturbations, subquery wrapping — and re-validate semantics
(table/column names are rebound to the live schema).  Function expressions
are carried along from seeds but never targeted: the tool's power is in SQL
clause structure, which is why Table 5 shows it triggering the fewest
functions (74 across three DBMSs).
"""

from __future__ import annotations

import random
from typing import Iterator, List

from ..dialects.base import Dialect
from ..sqlast import (
    BinaryOp,
    ColumnRef,
    IntegerLit,
    ParseError,
    Select,
    SelectItem,
    Statement,
    StringLit,
    parse_statement,
    to_sql,
)
from ..sqlast.visitor import clone, walk
from .base import BaselineTool

#: structural seed corpus shipped with the tool
_SEED_STATEMENTS = [
    "SELECT c0 FROM sq_t0 WHERE c0 > 1;",
    "SELECT c0, c1 FROM sq_t0 WHERE c1 LIKE 'a%' ORDER BY c0;",
    "SELECT COUNT(*) FROM sq_t0 GROUP BY c0;",
    "SELECT SUM(c2) FROM sq_t0 WHERE c2 < 10;",
    "SELECT UPPER(c1) FROM sq_t0;",
    "SELECT LENGTH(c1), ABS(c0) FROM sq_t0;",
    "SELECT c0 FROM sq_t0 WHERE c0 IN (1, 2, 3);",
    "SELECT MIN(c0), MAX(c0) FROM sq_t0;",
    "SELECT CONCAT(c1, 'x') FROM sq_t0 WHERE c0 BETWEEN 0 AND 5;",
    "SELECT c0 + 1, c2 * 2 FROM sq_t0;",
    "SELECT COALESCE(c1, 'd') FROM sq_t0 LIMIT 3;",
    "SELECT ROUND(c2, 1) FROM sq_t0 WHERE c2 IS NOT NULL;",
]


class Squirrel(BaselineTool):
    name = "squirrel"
    supported_dialects = ("postgresql", "mysql", "mariadb")

    def __init__(self) -> None:
        self._corpus: List[Statement] = []

    # ------------------------------------------------------------------
    def prepare(self, dialect: Dialect, rng: random.Random) -> None:
        self._corpus = []
        for text in _SEED_STATEMENTS:
            try:
                self._corpus.append(parse_statement(text))
            except ParseError:  # pragma: no cover - seeds are well-formed
                continue

    # ------------------------------------------------------------------
    def queries(self, dialect: Dialect, rng: random.Random) -> Iterator[str]:
        yield "DROP TABLE IF EXISTS sq_t0;"
        yield "CREATE TABLE sq_t0 (c0 INT, c1 VARCHAR(32), c2 DECIMAL(10, 2));"
        yield "INSERT INTO sq_t0 VALUES (1, 'aa', 1.5), (2, 'bb', 2.5), (3, NULL, -1);"
        while True:
            seed = rng.choice(self._corpus)
            mutant = self._mutate(clone(seed), rng)
            yield to_sql(mutant) + ";"

    # ------------------------------------------------------------------
    def _mutate(self, stmt: Statement, rng: random.Random) -> Statement:
        for _ in range(rng.randint(1, 3)):
            mutation = rng.choice(
                (
                    self._tweak_literals,
                    self._swap_operator,
                    self._toggle_distinct,
                    self._add_order_limit,
                    self._and_extra_predicate,
                )
            )
            mutation(stmt, rng)
        return stmt

    @staticmethod
    def _tweak_literals(stmt: Statement, rng: random.Random) -> None:
        for node in walk(stmt):
            if isinstance(node, IntegerLit) and rng.random() < 0.5:
                node.text = str(node.value + rng.choice((-1, 1)))
            elif isinstance(node, StringLit) and rng.random() < 0.3:
                node.value = node.value + rng.choice(("a", "b", "%"))

    @staticmethod
    def _swap_operator(stmt: Statement, rng: random.Random) -> None:
        swaps = {"<": ">", ">": "<", "<=": ">=", ">=": "<=", "+": "-",
                 "-": "+", "*": "+", "=": "<>"}
        for node in walk(stmt):
            if isinstance(node, BinaryOp) and node.op in swaps and rng.random() < 0.4:
                node.op = swaps[node.op]

    @staticmethod
    def _toggle_distinct(stmt: Statement, rng: random.Random) -> None:
        if isinstance(stmt, Select):
            stmt.distinct = not stmt.distinct

    @staticmethod
    def _add_order_limit(stmt: Statement, rng: random.Random) -> None:
        from ..sqlast import OrderItem

        if isinstance(stmt, Select):
            if not stmt.order_by and rng.random() < 0.6:
                stmt.order_by.append(OrderItem(IntegerLit("1")))
            if stmt.limit is None and rng.random() < 0.5:
                stmt.limit = IntegerLit(str(rng.randint(1, 5)))

    @staticmethod
    def _and_extra_predicate(stmt: Statement, rng: random.Random) -> None:
        if isinstance(stmt, Select) and stmt.from_:
            extra = BinaryOp(
                rng.choice(("<", ">", "<=", ">=")),
                ColumnRef(["c0"]),
                IntegerLit(str(rng.randint(-3, 6))),
            )
            if stmt.where is None:
                stmt.where = extra
            else:
                stmt.where = BinaryOp(rng.choice(("AND", "OR")), stmt.where, extra)
