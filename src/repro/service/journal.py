"""The durable job journal (sqlite, WAL): the service's flight recorder.

PR 6's :class:`~repro.service.jobs.JobStore` was an in-memory registry —
a SIGKILL, OOM, or host reboot silently lost every queued and running
campaign, even though the robustness layer already knows how to resume
them from checkpoints.  The journal closes that gap: every job's config,
parameters, state transitions, retry count, lease, and checkpoint path
are written through to a sqlite database in the service data directory
(same file family as ``bugs.sqlite``), so a restarted service can
reconstruct the full job history and re-enqueue interrupted work.

Design notes:

* **One shared connection, one lock.**  The journal is written by worker
  threads and HTTP handler threads of a single service process, so a
  single ``check_same_thread=False`` connection serialized by an
  ``RLock`` is simpler and faster than per-operation connections, and it
  makes ``:memory:`` journals work for tests.  Cross-*process* readers
  (a crashed service's successor) only ever see the file after the
  writer died, which WAL + per-statement commits make safe.
* **WAL mode** on file-backed journals: readers never block the writer,
  and a kill between ``fsync``\\ s can lose at most the tail transition,
  never corrupt the file (sqlite's crash-safety contract).
* **Append-only transition log.**  Besides the current-row ``jobs``
  table there is a ``transitions`` audit table recording every state
  change with a timestamp and detail string — the raw material for
  post-mortems ("how often did this job retry, and why").
* **The storage boundary.**  All I/O routes through
  :class:`~repro.service.storage.SqliteStorage` (``name="journal"``):
  writes pass named crash points for the chaos harness, ``database is
  locked`` gets bounded jittered retry, and classified failures
  (:class:`~repro.service.storage.StorageUnavailable`,
  :class:`~repro.service.storage.CorruptionDetected`) **degrade** the
  journal instead of crashing the worker thread that hit them: the
  in-memory store stays the source of truth, dropped writes are counted
  (``lost_writes`` in ``/health``), and :meth:`JobJournal.resync`
  repairs the file from memory once a probe write succeeds.

:func:`~repro.service.storage.open_database` (re-exported here for
compatibility) is the shared connection helper also used by
:mod:`repro.service.bugrepo` so both databases get the same pragmas.
"""

from __future__ import annotations

import json
import sqlite3
import threading
from typing import Any, Dict, List, Optional

from ..robustness.chaos import StorageFaultInjector
from .storage import (
    CorruptionDetected,
    SqliteStorage,
    StorageError,
    open_database,
)

__all__ = [
    "JOURNAL_VERSION", "JobJournal", "JournalError", "open_database",
]

#: bump when the journal layout changes incompatibly
JOURNAL_VERSION = 1


_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS jobs (
    job_id          TEXT PRIMARY KEY,
    seq             INTEGER NOT NULL,
    kind            TEXT NOT NULL,
    config          TEXT,
    params          TEXT NOT NULL DEFAULT '{}',
    submitter       TEXT NOT NULL DEFAULT '',
    priority        INTEGER NOT NULL DEFAULT 0,
    state           TEXT NOT NULL,
    error           TEXT NOT NULL DEFAULT '',
    retries         INTEGER NOT NULL DEFAULT 0,
    max_retries     INTEGER NOT NULL DEFAULT 2,
    next_attempt_at REAL NOT NULL DEFAULT 0,
    checkpoint_path TEXT NOT NULL DEFAULT '',
    lease_owner     TEXT NOT NULL DEFAULT '',
    lease_seq       INTEGER NOT NULL DEFAULT 0,
    lease_expires   REAL NOT NULL DEFAULT 0,
    created_at      REAL NOT NULL,
    started_at      REAL,
    finished_at     REAL,
    summary         TEXT NOT NULL DEFAULT '{}',
    ingest          TEXT NOT NULL DEFAULT '{}',
    findings_total  INTEGER NOT NULL DEFAULT 0
);
CREATE INDEX IF NOT EXISTS jobs_state ON jobs (state, priority, seq);
CREATE TABLE IF NOT EXISTS transitions (
    id     INTEGER PRIMARY KEY AUTOINCREMENT,
    job_id TEXT NOT NULL,
    state  TEXT NOT NULL,
    detail TEXT NOT NULL DEFAULT '',
    at     REAL NOT NULL
);
"""


class JournalError(Exception):
    """The journal is unreadable or from an incompatible version."""


class JobJournal:
    """Write-through persistence for the job store.

    Every mutation the :class:`~repro.service.jobs.JobStore` makes to a
    job is mirrored here synchronously (one UPDATE + optional audit
    INSERT per transition — cheap next to running a campaign).  On
    startup the store calls :meth:`load_rows` to rebuild its registry
    and :meth:`max_seq` to continue the job-id sequence.

    Classified storage failures on the write path are **absorbed**: the
    write is dropped, counted against the subsystem's health, and the
    journal waits for :meth:`resync` — a service whose disk fills up
    keeps scheduling from memory rather than dying mid-campaign.
    Corruption detected at construction raises
    :class:`~repro.service.storage.CorruptionDetected` so the caller can
    quarantine and rebuild.
    """

    def __init__(
        self,
        path: str,
        chaos: Optional[StorageFaultInjector] = None,
    ) -> None:
        self.path = path
        self.storage = SqliteStorage("journal", path, chaos=chaos)
        self._lock = threading.RLock()
        self._db: Optional[sqlite3.Connection] = self.storage.open(
            check_same_thread=False
        )
        with self._lock:
            failure = self.storage.integrity_failure(self._db)
            if failure is not None:
                self.storage.health.degrade(
                    f"journal failed integrity check: {failure}",
                    needs_rebuild=True,
                )
                self.abandon()
                raise CorruptionDetected(
                    "journal", f"journal {path!r} failed integrity "
                    f"check: {failure}"
                )
            with self.storage.write("setup", db=self._db) as db:
                db.executescript(_SCHEMA)
                row = db.execute(
                    "SELECT value FROM meta WHERE key='version'"
                ).fetchone()
                if row is None:
                    db.execute(
                        "INSERT INTO meta (key, value) VALUES ('version', ?)",
                        (str(JOURNAL_VERSION),),
                    )
                elif int(row["value"]) != JOURNAL_VERSION:
                    raise JournalError(
                        f"job journal {path!r} has version {row['value']}, "
                        f"expected {JOURNAL_VERSION}"
                    )

    # ------------------------------------------------------------------
    def close(self) -> None:
        with self._lock:
            if self._db is not None:
                try:
                    self._db.commit()
                except sqlite3.Error:
                    pass  # a degraded journal still closes cleanly
                self._db.close()
                self._db = None

    def abandon(self) -> None:
        """Drop the connection without committing (simulated death).

        Test/teardown hook: after an in-process
        :class:`~repro.robustness.chaos.SimulatedCrash` the old
        incarnation must not flush a torn transaction on close — this is
        the ``close()`` a SIGKILLed process never runs.
        """
        with self._lock:
            if self._db is not None:
                try:
                    self._db.rollback()
                    self._db.close()
                except sqlite3.Error:
                    pass
                self._db = None

    @property
    def closed(self) -> bool:
        return self._db is None

    # ------------------------------------------------------------------
    def insert(self, row: Dict[str, Any]) -> None:
        """Journal a newly submitted job (full row)."""
        with self._lock:
            if self._db is None:
                return
            try:
                with self.storage.write("insert", db=self._db) as db:
                    columns = sorted(row)
                    db.execute(
                        f"INSERT INTO jobs ({', '.join(columns)}) "
                        f"VALUES ({', '.join('?' for _ in columns)})",
                        [_encode(row[c]) for c in columns],
                    )
                    db.execute(
                        "INSERT INTO transitions (job_id, state, detail, at)"
                        " VALUES (?,?,?,?)",
                        (
                            row["job_id"], row["state"], "submitted",
                            row["created_at"],
                        ),
                    )
            except StorageError:
                self.storage.health.note_lost_write()

    def update(
        self,
        row: Dict[str, Any],
        transition: Optional[str] = None,
        at: float = 0.0,
    ) -> None:
        """Write a job's current row back; optionally audit a transition."""
        with self._lock:
            if self._db is None:
                return
            try:
                with self.storage.write("update", db=self._db) as db:
                    self._write_row(db, row, transition, at)
            except StorageError:
                self.storage.health.note_lost_write()

    @staticmethod
    def _write_row(
        db: sqlite3.Connection,
        row: Dict[str, Any],
        transition: Optional[str],
        at: float,
    ) -> None:
        job_id = row["job_id"]
        columns = sorted(c for c in row if c != "job_id")
        db.execute(
            f"UPDATE jobs SET {', '.join(f'{c}=?' for c in columns)}"
            f" WHERE job_id=?",
            [_encode(row[c]) for c in columns] + [job_id],
        )
        if transition is not None:
            db.execute(
                "INSERT INTO transitions (job_id, state, detail, at)"
                " VALUES (?,?,?,?)",
                (job_id, row["state"], transition, at),
            )

    # ------------------------------------------------------------------
    def resync(self, rows: List[Dict[str, Any]], at: float = 0.0) -> int:
        """Force-write the store's current rows after a degraded spell.

        Upserts every row; rows whose journaled state trails their
        in-memory state get a ``resynced after degraded storage spell``
        transition so the audit trail explains the jump (transitions
        that happened *during* the spell are lost — that is the
        journal's documented data-loss bound).  Returns the row count.
        """
        with self._lock:
            if self._db is None:
                return 0
            with self.storage.write("resync", db=self._db) as db:
                for row in rows:
                    columns = sorted(row)
                    db.execute(
                        f"INSERT OR REPLACE INTO jobs ({', '.join(columns)}) "
                        f"VALUES ({', '.join('?' for _ in columns)})",
                        [_encode(row[c]) for c in columns],
                    )
                    last = db.execute(
                        "SELECT state FROM transitions WHERE job_id=?"
                        " ORDER BY id DESC LIMIT 1",
                        (row["job_id"],),
                    ).fetchone()
                    if last is None or last["state"] != row["state"]:
                        db.execute(
                            "INSERT INTO transitions (job_id, state, detail,"
                            " at) VALUES (?,?,?,?)",
                            (
                                row["job_id"], row["state"],
                                "resynced after degraded storage spell", at,
                            ),
                        )
            return len(rows)

    def probe(self) -> bool:
        """Try a real write; clears degraded health on success."""
        with self._lock:
            if self._db is None:
                return False
            return self.storage.probe(db=self._db)

    def integrity_failure(self) -> Optional[str]:
        with self._lock:
            return self.storage.integrity_failure(self._db)

    # ------------------------------------------------------------------
    def load_rows(self) -> List[Dict[str, Any]]:
        """All journaled jobs in submission order (for startup rebuild)."""
        with self._lock:
            if self._db is None:
                return []
            with self.storage.read("load", db=self._db) as db:
                rows = db.execute("SELECT * FROM jobs ORDER BY seq").fetchall()
        return [dict(row) for row in rows]

    def max_seq(self) -> int:
        with self._lock:
            if self._db is None:
                return 0
            with self.storage.read("load", db=self._db) as db:
                (value,) = db.execute(
                    "SELECT COALESCE(MAX(seq), 0) FROM jobs"
                ).fetchone()
        return int(value)

    def transitions(self, job_id: str) -> List[Dict[str, Any]]:
        """The audit trail for one job, oldest first."""
        with self._lock:
            if self._db is None:
                return []
            with self.storage.read("transitions", db=self._db) as db:
                rows = db.execute(
                    "SELECT state, detail, at FROM transitions"
                    " WHERE job_id=? ORDER BY id",
                    (job_id,),
                ).fetchall()
        return [dict(row) for row in rows]


def _encode(value: Any) -> Any:
    """Journal column encoding: dicts/lists become JSON text."""
    if isinstance(value, (dict, list)):
        return json.dumps(value, sort_keys=True)
    return value
