"""The durable job journal (sqlite, WAL): the service's flight recorder.

PR 6's :class:`~repro.service.jobs.JobStore` was an in-memory registry —
a SIGKILL, OOM, or host reboot silently lost every queued and running
campaign, even though the robustness layer already knows how to resume
them from checkpoints.  The journal closes that gap: every job's config,
parameters, state transitions, retry count, lease, and checkpoint path
are written through to a sqlite database in the service data directory
(same file family as ``bugs.sqlite``), so a restarted service can
reconstruct the full job history and re-enqueue interrupted work.

Design notes:

* **One shared connection, one lock.**  The journal is written by worker
  threads and HTTP handler threads of a single service process, so a
  single ``check_same_thread=False`` connection serialized by an
  ``RLock`` is simpler and faster than per-operation connections, and it
  makes ``:memory:`` journals work for tests.  Cross-*process* readers
  (a crashed service's successor) only ever see the file after the
  writer died, which WAL + per-statement commits make safe.
* **WAL mode** on file-backed journals: readers never block the writer,
  and a kill between ``fsync``\\ s can lose at most the tail transition,
  never corrupt the file (sqlite's crash-safety contract).
* **Append-only transition log.**  Besides the current-row ``jobs``
  table there is a ``transitions`` audit table recording every state
  change with a timestamp and detail string — the raw material for
  post-mortems ("how often did this job retry, and why").

:func:`open_database` is the shared connection helper also used by
:mod:`repro.service.bugrepo` so both databases get the same pragmas.
"""

from __future__ import annotations

import json
import os
import sqlite3
import threading
from typing import Any, Dict, List, Optional

#: bump when the journal layout changes incompatibly
JOURNAL_VERSION = 1


def open_database(
    path: str,
    timeout: float = 30.0,
    check_same_thread: bool = True,
) -> sqlite3.Connection:
    """Open a service sqlite database with the shared pragma set.

    File-backed databases get WAL journaling (concurrent readers, crash
    safety) and ``NORMAL`` synchronous mode (fsync at WAL checkpoints —
    a power loss can drop the last transactions but never corrupt).
    ``:memory:`` databases skip the pragmas (WAL is meaningless there).
    """
    if path != ":memory:":
        parent = os.path.dirname(os.path.abspath(path))
        os.makedirs(parent, exist_ok=True)
    db = sqlite3.connect(
        path, timeout=timeout, check_same_thread=check_same_thread
    )
    db.row_factory = sqlite3.Row
    if path != ":memory:":
        db.execute("PRAGMA journal_mode=WAL")
        db.execute("PRAGMA synchronous=NORMAL")
    return db


_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS jobs (
    job_id          TEXT PRIMARY KEY,
    seq             INTEGER NOT NULL,
    kind            TEXT NOT NULL,
    config          TEXT,
    params          TEXT NOT NULL DEFAULT '{}',
    submitter       TEXT NOT NULL DEFAULT '',
    priority        INTEGER NOT NULL DEFAULT 0,
    state           TEXT NOT NULL,
    error           TEXT NOT NULL DEFAULT '',
    retries         INTEGER NOT NULL DEFAULT 0,
    max_retries     INTEGER NOT NULL DEFAULT 2,
    next_attempt_at REAL NOT NULL DEFAULT 0,
    checkpoint_path TEXT NOT NULL DEFAULT '',
    lease_owner     TEXT NOT NULL DEFAULT '',
    lease_seq       INTEGER NOT NULL DEFAULT 0,
    lease_expires   REAL NOT NULL DEFAULT 0,
    created_at      REAL NOT NULL,
    started_at      REAL,
    finished_at     REAL,
    summary         TEXT NOT NULL DEFAULT '{}',
    ingest          TEXT NOT NULL DEFAULT '{}',
    findings_total  INTEGER NOT NULL DEFAULT 0
);
CREATE INDEX IF NOT EXISTS jobs_state ON jobs (state, priority, seq);
CREATE TABLE IF NOT EXISTS transitions (
    id     INTEGER PRIMARY KEY AUTOINCREMENT,
    job_id TEXT NOT NULL,
    state  TEXT NOT NULL,
    detail TEXT NOT NULL DEFAULT '',
    at     REAL NOT NULL
);
"""


class JournalError(Exception):
    """The journal is unreadable or from an incompatible version."""


class JobJournal:
    """Write-through persistence for the job store.

    Every mutation the :class:`~repro.service.jobs.JobStore` makes to a
    job is mirrored here synchronously (one UPDATE + optional audit
    INSERT per transition — cheap next to running a campaign).  On
    startup the store calls :meth:`load_rows` to rebuild its registry
    and :meth:`max_seq` to continue the job-id sequence.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self._lock = threading.RLock()
        self._db: Optional[sqlite3.Connection] = open_database(
            path, check_same_thread=False
        )
        with self._lock:
            self._db.executescript(_SCHEMA)
            row = self._db.execute(
                "SELECT value FROM meta WHERE key='version'"
            ).fetchone()
            if row is None:
                self._db.execute(
                    "INSERT INTO meta (key, value) VALUES ('version', ?)",
                    (str(JOURNAL_VERSION),),
                )
            elif int(row["value"]) != JOURNAL_VERSION:
                raise JournalError(
                    f"job journal {path!r} has version {row['value']}, "
                    f"expected {JOURNAL_VERSION}"
                )
            self._db.commit()

    # ------------------------------------------------------------------
    def close(self) -> None:
        with self._lock:
            if self._db is not None:
                self._db.commit()
                self._db.close()
                self._db = None

    @property
    def closed(self) -> bool:
        return self._db is None

    # ------------------------------------------------------------------
    def insert(self, row: Dict[str, Any]) -> None:
        """Journal a newly submitted job (full row)."""
        with self._lock:
            if self._db is None:
                return
            columns = sorted(row)
            self._db.execute(
                f"INSERT INTO jobs ({', '.join(columns)}) "
                f"VALUES ({', '.join('?' for _ in columns)})",
                [_encode(row[c]) for c in columns],
            )
            self._db.execute(
                "INSERT INTO transitions (job_id, state, detail, at)"
                " VALUES (?,?,?,?)",
                (row["job_id"], row["state"], "submitted", row["created_at"]),
            )
            self._db.commit()

    def update(
        self,
        row: Dict[str, Any],
        transition: Optional[str] = None,
        at: float = 0.0,
    ) -> None:
        """Write a job's current row back; optionally audit a transition."""
        with self._lock:
            if self._db is None:
                return
            job_id = row["job_id"]
            columns = sorted(c for c in row if c != "job_id")
            self._db.execute(
                f"UPDATE jobs SET {', '.join(f'{c}=?' for c in columns)}"
                f" WHERE job_id=?",
                [_encode(row[c]) for c in columns] + [job_id],
            )
            if transition is not None:
                self._db.execute(
                    "INSERT INTO transitions (job_id, state, detail, at)"
                    " VALUES (?,?,?,?)",
                    (job_id, row["state"], transition, at),
                )
            self._db.commit()

    # ------------------------------------------------------------------
    def load_rows(self) -> List[Dict[str, Any]]:
        """All journaled jobs in submission order (for startup rebuild)."""
        with self._lock:
            if self._db is None:
                return []
            rows = self._db.execute("SELECT * FROM jobs ORDER BY seq").fetchall()
        return [dict(row) for row in rows]

    def max_seq(self) -> int:
        with self._lock:
            if self._db is None:
                return 0
            (value,) = self._db.execute(
                "SELECT COALESCE(MAX(seq), 0) FROM jobs"
            ).fetchone()
        return int(value)

    def transitions(self, job_id: str) -> List[Dict[str, Any]]:
        """The audit trail for one job, oldest first."""
        with self._lock:
            if self._db is None:
                return []
            rows = self._db.execute(
                "SELECT state, detail, at FROM transitions"
                " WHERE job_id=? ORDER BY id",
                (job_id,),
            ).fetchall()
        return [dict(row) for row in rows]


def _encode(value: Any) -> Any:
    """Journal column encoding: dicts/lists become JSON text."""
    if isinstance(value, (dict, list)):
        return json.dumps(value, sort_keys=True)
    return value
