"""The service invariant auditor (``repro audit`` + startup hook).

The durable service's correctness rests on invariants that nothing
checked until this PR: journal states must form legal transition
chains, ``running`` rows must hold live leases, resume checkpoints must
exist and parse, bug-repository dedup keys must be unique, and
checkpoint sidecars must belong to live jobs.  A crash — real or
injected by the chaos harness — is exactly when those invariants are
most at risk, so the :class:`ServiceAuditor` runs both **offline**
(``repro audit --data-dir``, against a dead service's files) and as a
**startup hook** inside :class:`~repro.service.server.BugService`
(after crash recovery, with ``repair=True``).

Every check yields :class:`AuditFinding` rows.  Violations are either
*repairable* — re-enqueue a stale lease, strip an unloadable resume
pointer (the campaign restarts from scratch, still
signature-identical), quarantine-and-rebuild a corrupt database into
``<name>.corrupt-<n>``, merge duplicate dedup keys, delete orphaned
sidecars — or they **fail loudly**: an illegal state transition in the
audit trail means the journal cannot be trusted and no automatic repair
is attempted (:attr:`AuditReport.ok` goes ``False``).
"""

from __future__ import annotations

import glob
import json
import os
import sqlite3
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

from ..robustness.chaos import StorageFaultInjector
from ..robustness.checkpoint import CampaignCheckpoint
from .bugrepo import BugRepository
from .jobs import JobStore, TERMINAL_STATES
from .journal import JobJournal
from .storage import CorruptionDetected, SqliteStorage, StorageError

#: legal (from, to) edges in the job lifecycle, as journaled
LEGAL_EDGES = {
    ("queued", "running"),
    ("queued", "cancelled"),
    ("running", "done"),
    ("running", "failed"),
    ("running", "queued"),
    ("running", "cancelled"),
}

#: states a job may be born in (the "submitted" transition)
BIRTH_STATES = {"queued", "rejected"}

#: transition details that legitimately jump states (degraded-spell
#: resync, post-corruption rebuild) and are exempt from edge validation
_SKIP_DETAIL_PREFIXES = ("resynced", "rebuilt")


@dataclass
class AuditFinding:
    """One invariant violation (or repair record)."""

    check: str           # e.g. "journal.transitions"
    severity: str        # "error" | "warning"
    subject: str         # job id / record id / file path
    detail: str
    repaired: bool = False
    repair: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return {
            "check": self.check,
            "severity": self.severity,
            "subject": self.subject,
            "detail": self.detail,
            "repaired": self.repaired,
            "repair": self.repair,
        }


@dataclass
class AuditReport:
    """The outcome of one auditor run."""

    checks: List[str] = field(default_factory=list)
    findings: List[AuditFinding] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """No unrepaired errors (warnings never fail the audit)."""
        return not any(
            f.severity == "error" and not f.repaired for f in self.findings
        )

    @property
    def errors(self) -> List[AuditFinding]:
        return [f for f in self.findings if f.severity == "error"]

    @property
    def repaired_count(self) -> int:
        return sum(1 for f in self.findings if f.repaired)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "ok": self.ok,
            "checks": list(self.checks),
            "errors": sum(1 for f in self.findings if f.severity == "error"),
            "warnings": sum(
                1 for f in self.findings if f.severity == "warning"
            ),
            "repaired": self.repaired_count,
            "findings": [f.to_dict() for f in self.findings],
        }


class ServiceAuditor:
    """Check (and optionally repair) the service's durable invariants.

    Two construction modes:

    * **offline** — ``ServiceAuditor(data_dir=...)`` opens the dead
      service's files itself (``repro audit``);
    * **live** — pass the running service's ``journal``/``repo``/
      ``store`` (the startup hook).  With a live store, lease repair
      delegates to the store's own reclaim machinery so memory and
      journal stay in step.
    """

    def __init__(
        self,
        data_dir: Optional[str] = None,
        journal: Optional[JobJournal] = None,
        repo: Optional[BugRepository] = None,
        store: Optional[JobStore] = None,
        checkpoint_dir: Optional[str] = None,
        chaos: Optional[StorageFaultInjector] = None,
    ) -> None:
        if data_dir is None and journal is None and repo is None:
            raise ValueError(
                "ServiceAuditor needs a data_dir or live journal/repo objects"
            )
        self.data_dir = data_dir
        self.journal = journal
        self.repo = repo
        self.store = store
        self.chaos = chaos
        self._owns_journal = False
        if checkpoint_dir is not None:
            self.checkpoint_dir: Optional[str] = checkpoint_dir
        elif data_dir is not None:
            self.checkpoint_dir = os.path.join(data_dir, "checkpoints")
        elif store is not None:
            self.checkpoint_dir = store.checkpoint_dir
        else:
            self.checkpoint_dir = None

    # ------------------------------------------------------------------
    def run(self, repair: bool = False) -> AuditReport:
        report = AuditReport()
        journal = self._check_journal_integrity(report, repair)
        repo = self._check_bugrepo_integrity(report, repair)
        if journal is not None:
            rows = journal.load_rows()
            self._check_transitions(report, journal, rows)
            self._check_leases(report, repair, journal, rows)
            self._check_resume_pointers(report, repair, journal, rows)
            self._check_orphan_sidecars(report, repair, rows)
            if self._owns_journal:
                journal.close()
        if repo is not None:
            self._check_dedup(report, repair, repo)
        return report

    # -- database integrity ---------------------------------------------
    def _journal_path(self) -> Optional[str]:
        if self.journal is not None:
            return self.journal.path
        if self.data_dir is not None:
            return os.path.join(self.data_dir, "jobs.sqlite")
        return None

    def _check_journal_integrity(
        self, report: AuditReport, repair: bool
    ) -> Optional[JobJournal]:
        path = self._journal_path()
        if path is None:
            return None
        report.checks.append("journal.integrity")
        if self.journal is not None:
            failure = self.journal.integrity_failure()
            if failure is None:
                return self.journal
            # a live journal that went corrupt cannot be rebuilt from
            # here (the service owns the connection); report and let the
            # degraded-mode path drive the rebuild
            report.findings.append(AuditFinding(
                "journal.integrity", "error", path,
                f"journal failed integrity check: {failure}",
            ))
            return None
        if not os.path.exists(path):
            return None  # nothing journaled yet: vacuously consistent
        storage = SqliteStorage("journal", path, chaos=self.chaos)
        failure = storage.integrity_failure()
        if failure is None:
            try:
                journal = JobJournal(path, chaos=self.chaos)
            except (CorruptionDetected, StorageError) as exc:
                failure = str(exc)
            else:
                self._owns_journal = True
                return journal
        finding = AuditFinding(
            "journal.integrity", "error", path,
            f"journal failed integrity check: {failure}",
        )
        report.findings.append(finding)
        if repair:
            quarantined, salvaged = rebuild_journal(path, self.chaos)
            finding.repaired = True
            finding.repair = (
                f"quarantined to {quarantined}; rebuilt with {salvaged} "
                f"salvaged job rows"
            )
            journal = JobJournal(path, chaos=self.chaos)
            self._owns_journal = True
            return journal
        return None

    def _check_bugrepo_integrity(
        self, report: AuditReport, repair: bool
    ) -> Optional[BugRepository]:
        if self.repo is not None:
            repo: Optional[BugRepository] = self.repo
            path = self.repo.path
        elif self.data_dir is not None:
            path = os.path.join(self.data_dir, "bugs.sqlite")
            if not os.path.exists(path):
                return None
            repo = None
        else:
            return None
        report.checks.append("bugrepo.integrity")
        if repo is None:
            try:
                repo = BugRepository(path, minimize=False, chaos=self.chaos)
            except (CorruptionDetected, StorageError) as exc:
                finding = AuditFinding(
                    "bugrepo.integrity", "error", path, str(exc),
                )
                report.findings.append(finding)
                if repair:
                    storage = SqliteStorage("bugrepo", path, chaos=self.chaos)
                    quarantined = storage.quarantine()
                    repo = BugRepository(path, minimize=False, chaos=self.chaos)
                    salvaged = repo.salvage_from(quarantined)
                    finding.repaired = True
                    finding.repair = (
                        f"quarantined to {quarantined}; rebuilt with "
                        f"{salvaged} salvaged records"
                    )
                    return repo
                return None
            return repo
        failure = repo.integrity_failure()
        if failure is None:
            return repo
        finding = AuditFinding(
            "bugrepo.integrity", "error", path,
            f"bug repository failed integrity check: {failure}",
        )
        report.findings.append(finding)
        if repair:
            quarantined, salvaged = repo.quarantine_and_rebuild()
            finding.repaired = True
            finding.repair = (
                f"quarantined to {quarantined}; rebuilt with {salvaged} "
                f"salvaged records"
            )
            return repo
        return None

    # -- journal invariants ---------------------------------------------
    def _check_transitions(
        self,
        report: AuditReport,
        journal: JobJournal,
        rows: List[Dict[str, Any]],
    ) -> None:
        """Transition chains must be legal and agree with the row state."""
        report.checks.append("journal.transitions")
        for row in rows:
            job_id = row["job_id"]
            chain = journal.transitions(job_id)
            if not chain:
                report.findings.append(AuditFinding(
                    "journal.transitions", "error", job_id,
                    "job row has no transition history",
                ))
                continue
            first = chain[0]
            if (
                first["state"] not in BIRTH_STATES
                and not _skips_validation(first["detail"])
            ):
                report.findings.append(AuditFinding(
                    "journal.transitions", "error", job_id,
                    f"job was born in state {first['state']!r} "
                    f"(legal births: {sorted(BIRTH_STATES)})",
                ))
            for prev, entry in zip(chain, chain[1:]):
                if _skips_validation(entry["detail"]):
                    continue
                if prev["state"] == entry["state"]:
                    continue  # re-persist in place (ingest, progress)
                if (prev["state"], entry["state"]) not in LEGAL_EDGES:
                    report.findings.append(AuditFinding(
                        "journal.transitions", "error", job_id,
                        f"illegal transition {prev['state']!r} -> "
                        f"{entry['state']!r} ({entry['detail']!r})",
                    ))
            if chain[-1]["state"] != row["state"]:
                report.findings.append(AuditFinding(
                    "journal.transitions", "error", job_id,
                    f"row state {row['state']!r} disagrees with the last "
                    f"journaled transition {chain[-1]['state']!r}",
                ))

    def _check_leases(
        self,
        report: AuditReport,
        repair: bool,
        journal: JobJournal,
        rows: List[Dict[str, Any]],
    ) -> None:
        """Every ``running`` row must hold a live lease."""
        report.checks.append("journal.leases")
        now = time.time()
        for row in rows:
            if row["state"] != "running":
                continue
            if float(row.get("lease_expires") or 0.0) >= now:
                continue
            finding = AuditFinding(
                "journal.leases", "error", row["job_id"],
                f"running job's lease expired at {row.get('lease_expires')}"
                f" with owner {row.get('lease_owner')!r}",
            )
            report.findings.append(finding)
            if not repair:
                continue
            if self.store is not None:
                reclaimed = self.store.reclaim_expired()
                finding.repaired = row["job_id"] in reclaimed
                finding.repair = "reclaimed via the store"
            else:
                finding.repair = _offline_reclaim(journal, row, now)
                finding.repaired = True

    def _check_resume_pointers(
        self,
        report: AuditReport,
        repair: bool,
        journal: JobJournal,
        rows: List[Dict[str, Any]],
    ) -> None:
        """``params.resume`` checkpoints must exist and parse."""
        report.checks.append("checkpoints.resume")
        for row in rows:
            if row["state"] in TERMINAL_STATES:
                continue
            params = _loads(row.get("params"))
            resume = params.get("resume")
            if not resume:
                continue
            if CampaignCheckpoint.try_load(resume) is not None:
                continue
            finding = AuditFinding(
                "checkpoints.resume", "error", row["job_id"],
                f"resume checkpoint {resume!r} is missing or unparseable",
            )
            report.findings.append(finding)
            if not repair:
                continue
            params.pop("resume", None)
            if self.store is not None:
                job = self.store.get(row["job_id"])
                if job is not None:
                    job.params.pop("resume", None)
                    row = dict(row, params=params)
                    journal.update(row)
            else:
                row = dict(row, params=params)
                journal.update(row)
            finding.repaired = True
            finding.repair = (
                "dropped the resume pointer; the campaign restarts from "
                "scratch (still signature-identical)"
            )

    def _check_orphan_sidecars(
        self,
        report: AuditReport,
        repair: bool,
        rows: List[Dict[str, Any]],
    ) -> None:
        """Checkpoint files must belong to a live (non-terminal) job."""
        directory = self.checkpoint_dir
        if not directory or not os.path.isdir(directory):
            return
        report.checks.append("checkpoints.orphans")
        referenced: Set[str] = set()
        for row in rows:
            if row["state"] in TERMINAL_STATES:
                continue
            params = _loads(row.get("params"))
            for path in (row.get("checkpoint_path"), params.get("resume")):
                if path:
                    referenced.add(os.path.abspath(path))
        for entry in sorted(glob.glob(os.path.join(directory, "*"))):
            path = os.path.abspath(entry)
            if any(
                path == ref or path.startswith(ref + ".")
                for ref in referenced
            ):
                continue
            finding = AuditFinding(
                "checkpoints.orphans", "warning", entry,
                "checkpoint sidecar belongs to no live job",
            )
            report.findings.append(finding)
            if repair:
                try:
                    os.remove(entry)
                    finding.repaired = True
                    finding.repair = "deleted"
                except OSError as exc:
                    finding.repair = f"delete failed: {exc}"

    # -- bug repository invariants --------------------------------------
    def _check_dedup(
        self, report: AuditReport, repair: bool, repo: BugRepository
    ) -> None:
        """The (dialect, function, statement) dedup key must be unique.

        sqlite enforces this through the UNIQUE constraint in healthy
        operation; a salvage-rebuild of a corrupt file is where
        duplicates can sneak in.
        """
        report.checks.append("bugrepo.dedup")
        try:
            with repo.storage.read("audit") as db:
                groups = db.execute(
                    "SELECT dialect, function, statement, COUNT(*) AS n,"
                    " MIN(id) AS keeper FROM bugs"
                    " GROUP BY dialect, function, statement HAVING n > 1"
                ).fetchall()
        except StorageError as exc:
            report.findings.append(AuditFinding(
                "bugrepo.dedup", "error", repo.path,
                f"dedup scan failed: {exc}",
            ))
            return
        for group in groups:
            key = (group["dialect"], group["function"], group["statement"])
            finding = AuditFinding(
                "bugrepo.dedup", "error", str(group["keeper"]),
                f"{group['n']} records share dedup key {key!r}",
            )
            report.findings.append(finding)
            if not repair:
                continue
            merged = _merge_duplicates(repo, group)
            finding.repaired = True
            finding.repair = (
                f"merged {merged} duplicates into record {group['keeper']}"
            )


def _skips_validation(detail: str) -> bool:
    return str(detail or "").startswith(_SKIP_DETAIL_PREFIXES)


def _loads(value: Any) -> Dict[str, Any]:
    if isinstance(value, str):
        try:
            return json.loads(value) if value else {}
        except ValueError:
            return {}
    return dict(value or {})


def _offline_reclaim(
    journal: JobJournal, row: Dict[str, Any], now: float
) -> str:
    """Repair a stale ``running`` row directly in the journal.

    Mirrors :meth:`JobStore._reclaim` semantics at the row level: burn a
    retry and requeue (resuming from the checkpoint sidecar when it
    loads), or turn terminal once retries are exhausted.
    """
    retries = int(row.get("retries") or 0)
    max_retries = int(row.get("max_retries") or 0)
    row = dict(row)
    row["lease_owner"] = ""
    row["lease_expires"] = 0.0
    if retries >= max_retries:
        row["state"] = "failed"
        row["error"] = "reclaimed by audit; retries exhausted"
        row["finished_at"] = now
        journal.update(row, transition="reclaimed by audit", at=now)
        return "failed: retries exhausted"
    row["retries"] = retries + 1
    row["state"] = "queued"
    row["next_attempt_at"] = now
    row["error"] = "reclaimed by audit; attempt abandoned"
    params = _loads(row.get("params"))
    path = row.get("checkpoint_path")
    resumed = False
    if path and CampaignCheckpoint.try_load(path) is not None:
        params["resume"] = path
        resumed = True
    row["params"] = params
    journal.update(row, transition="reclaimed by audit", at=now)
    return "requeued with resume" if resumed else "requeued from scratch"


def rebuild_journal(
    path: str, chaos: Optional[StorageFaultInjector] = None
) -> Tuple[str, int]:
    """Quarantine a corrupt journal and rebuild it, salvaging job rows.

    Shared by the offline auditor and the service's boot path (a
    :class:`~repro.service.storage.CorruptionDetected` from
    :class:`~repro.service.journal.JobJournal` construction).  Each
    salvaged row lands via :meth:`JobJournal.resync`, so its transition
    history restarts with a ``resynced`` entry the transition-chain
    check knows to accept."""
    storage = SqliteStorage("journal", path, chaos=chaos)
    quarantined = storage.quarantine()
    rows: List[Dict[str, Any]] = []
    try:
        old = sqlite3.connect(quarantined)
        old.row_factory = sqlite3.Row
        try:
            rows = [
                dict(r)
                for r in old.execute("SELECT * FROM jobs ORDER BY seq")
            ]
        finally:
            old.close()
    except sqlite3.Error:
        rows = []
    journal = JobJournal(path, chaos=chaos)
    salvaged = 0
    for row in rows:
        try:
            journal.resync([row])
            salvaged += 1
        except (StorageError, sqlite3.Error, KeyError, ValueError):
            continue
    journal.close()
    return quarantined, salvaged


def _merge_duplicates(repo: BugRepository, group: sqlite3.Row) -> int:
    """Fold duplicate dedup-key records onto the lowest id."""
    with repo.storage.write("rebuild") as db:
        rows = db.execute(
            "SELECT * FROM bugs WHERE dialect=? AND function=? AND"
            " statement=? ORDER BY id",
            (group["dialect"], group["function"], group["statement"]),
        ).fetchall()
        keeper = rows[0]
        kinds = json.loads(keeper["kinds"])
        labels = json.loads(keeper["labels"])
        campaigns = json.loads(keeper["campaigns"])
        occurrences = keeper["occurrences"]
        for dup in rows[1:]:
            for kind in json.loads(dup["kinds"]):
                if kind not in kinds:
                    kinds.append(kind)
            for label in json.loads(dup["labels"]):
                if label not in labels:
                    labels.append(label)
            for campaign in json.loads(dup["campaigns"]):
                if campaign not in campaigns:
                    campaigns.append(campaign)
            occurrences += dup["occurrences"]
            db.execute("DELETE FROM bugs WHERE id=?", (dup["id"],))
        db.execute(
            "UPDATE bugs SET kinds=?, labels=?, campaigns=?, occurrences=?,"
            " updated_at=? WHERE id=?",
            (
                json.dumps(kinds), json.dumps(labels),
                json.dumps(campaigns), occurrences, time.time(),
                keeper["id"],
            ),
        )
    return len(rows) - 1


__all__ = [
    "AuditFinding",
    "AuditReport",
    "BIRTH_STATES",
    "LEGAL_EDGES",
    "ServiceAuditor",
    "rebuild_journal",
]
