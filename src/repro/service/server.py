"""The threaded HTTP/JSON front end (``repro serve``).

Campaign-as-a-service: a stdlib-only (:mod:`http.server`) API that
accepts campaign/replay jobs, streams findings while campaigns run, and
exposes the persistent bug repository for browsing, triage, and replay.

Endpoints::

    GET  /health                   service liveness + job/repo counters
    POST /jobs                     submit {"kind": "campaign", "config": {...}}
                                   or     {"kind": "replay", "dialect": ...,
                                           "target": ..., "record_ids": [...]}
    GET  /jobs                     all jobs, oldest first
    GET  /jobs/<id>                one job (state, progress, summary)
    GET  /jobs/<id>/findings?since=N   streamed findings past cursor N
    POST /jobs/<id>/cancel         cancel a still-queued job
    GET  /bugs?dialect=&triage=    repository records
    GET  /bugs/<id>                one record + its replay history
    POST /bugs/<id>/triage         {"status": "confirmed"}
    POST /shutdown                 graceful stop

Campaign configs arrive as the JSON shape of
:meth:`~repro.core.config.CampaignConfig.to_dict`; unknown keys are a
hard 400, mirroring the library's ``from_dict`` contract.  Everything
binds to ``127.0.0.1`` by default and ``port=0`` picks an ephemeral
port — tests boot a real server per test.
"""

from __future__ import annotations

import json
import os
import re
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlparse

from ..core.config import CampaignConfig
from .bugrepo import BugRepository
from .jobs import JobStore
from .scheduler import SchedulerWorker

_JOB_RE = re.compile(r"^/jobs/(?P<id>[\w-]+)(?P<rest>/findings|/cancel)?$")
_BUG_RE = re.compile(r"^/bugs/(?P<id>\d+)(?P<rest>/triage|/replays)?$")


class ServiceError(Exception):
    """An HTTP-visible request error."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


class BugService:
    """The long-running campaign scheduler + bug repository service."""

    def __init__(
        self,
        data_dir: str,
        host: str = "127.0.0.1",
        port: int = 0,
        minimize: bool = True,
        default_budgets: Optional[str] = None,
    ) -> None:
        self.data_dir = data_dir
        #: per-job ResourceGovernor quota applied to campaign submissions
        #: that don't carry their own 'budgets' (a submitted spec wins)
        self.default_budgets = default_budgets
        os.makedirs(data_dir, exist_ok=True)
        self.repo = BugRepository(
            os.path.join(data_dir, "bugs.sqlite"), minimize=minimize
        )
        self.store = JobStore()
        self.worker = SchedulerWorker(self.store, self.repo)
        self._httpd = ThreadingHTTPServer((host, port), _make_handler(self))
        self._httpd.daemon_threads = True
        self._serve_thread: Optional[threading.Thread] = None

    # -- lifecycle ------------------------------------------------------
    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "BugService":
        """Start the scheduler worker and the HTTP listener (background)."""
        self.worker.start()
        self._serve_thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-http",
            daemon=True,
        )
        self._serve_thread.start()
        return self

    def stop(self, timeout: float = 30.0) -> None:
        """Graceful shutdown: stop accepting, drain the worker."""
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._serve_thread is not None:
            self._serve_thread.join(timeout=5.0)
        self.worker.stop(timeout=timeout)

    def serve_forever(self) -> None:
        """Foreground mode (``repro serve``): block until interrupted."""
        self.worker.start()
        try:
            self._httpd.serve_forever()
        except KeyboardInterrupt:
            pass
        finally:
            self._httpd.server_close()
            self.worker.stop()

    # -- request handling (called from handler threads) -----------------
    def handle(
        self, method: str, path: str, query: Dict[str, Any], body: Dict[str, Any]
    ) -> Tuple[int, Dict[str, Any]]:
        if method == "GET" and path == "/health":
            return 200, self._health()
        if path == "/jobs":
            if method == "POST":
                return 200, self._submit(body)
            if method == "GET":
                return 200, {"jobs": [j.to_dict() for j in self.store.list()]}
        match = _JOB_RE.match(path)
        if match is not None:
            return self._job_route(method, match, query)
        if path == "/bugs" and method == "GET":
            records = self.repo.list(
                dialect=query.get("dialect"), triage=query.get("triage")
            )
            return 200, {"bugs": [r.to_dict() for r in records]}
        match = _BUG_RE.match(path)
        if match is not None:
            return self._bug_route(method, match, body)
        if method == "POST" and path == "/shutdown":
            # ack first; tearing down from inside the handler would deadlock
            threading.Thread(target=self.stop, daemon=True).start()
            return 200, {"status": "stopping"}
        raise ServiceError(404, f"no route for {method} {path}")

    def _health(self) -> Dict[str, Any]:
        jobs = self.store.list()
        states: Dict[str, int] = {}
        for job in jobs:
            states[job.state] = states.get(job.state, 0) + 1
        return {
            "status": "ok",
            "worker_alive": self.worker.alive,
            "jobs": states,
            "bug_records": self.repo.count(),
            "data_dir": self.data_dir,
        }

    def _submit(self, body: Dict[str, Any]) -> Dict[str, Any]:
        kind = body.get("kind", "campaign")
        if kind == "campaign":
            raw = body.get("config")
            if not isinstance(raw, dict):
                raise ServiceError(
                    400, "campaign jobs need a 'config' object "
                    "(the CampaignConfig.to_dict shape)"
                )
            if self.default_budgets and not raw.get("budgets"):
                raw = dict(raw, budgets=self.default_budgets)
            try:
                config = CampaignConfig.from_dict(raw)
            except (ValueError, TypeError) as exc:
                raise ServiceError(400, str(exc))
            if not config.dialect:
                raise ServiceError(400, "config.dialect is required")
            params = {}
            if body.get("resume"):
                params["resume"] = str(body["resume"])
            job = self.store.submit("campaign", config=config, params=params)
        elif kind == "replay":
            params = {
                "dialect": body.get("dialect"),
                "target": body.get("target"),
                "record_ids": body.get("record_ids"),
            }
            job = self.store.submit("replay", params=params)
        else:
            raise ServiceError(400, f"unknown job kind {kind!r}")
        return job.to_dict()

    def _job_route(
        self, method: str, match: "re.Match[str]", query: Dict[str, Any]
    ) -> Tuple[int, Dict[str, Any]]:
        job = self.store.get(match.group("id"))
        if job is None:
            raise ServiceError(404, f"no job {match.group('id')!r}")
        rest = match.group("rest")
        if rest == "/findings" and method == "GET":
            try:
                since = int(query.get("since", 0))
            except (TypeError, ValueError):
                raise ServiceError(400, "'since' must be an integer cursor")
            cursor, findings = job.findings_since(since)
            return 200, {"next": cursor, "state": job.state, "findings": findings}
        if rest == "/cancel" and method == "POST":
            job.mark_cancelled()
            return 200, job.to_dict()
        if rest is None and method == "GET":
            return 200, job.to_dict()
        raise ServiceError(404, f"no route for {method} /jobs/...{rest or ''}")

    def _bug_route(
        self, method: str, match: "re.Match[str]", body: Dict[str, Any]
    ) -> Tuple[int, Dict[str, Any]]:
        record_id = int(match.group("id"))
        record = self.repo.get(record_id)
        if record is None:
            raise ServiceError(404, f"no bug record {record_id}")
        rest = match.group("rest")
        if rest is None and method == "GET":
            data = record.to_dict()
            data["replays"] = self.repo.replay_history(record_id)
            return 200, data
        if rest == "/triage" and method == "POST":
            status = body.get("status", "")
            try:
                updated = self.repo.set_triage(record_id, status)
            except ValueError as exc:
                raise ServiceError(400, str(exc))
            return 200, updated.to_dict()
        raise ServiceError(404, f"no route for {method} /bugs/...{rest or ''}")


def _make_handler(service: BugService):
    """Bind a handler class to *service* (http.server instantiates it
    per request, so state rides on a closure, not the instance)."""

    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"

        # silence per-request stderr logging; the service is the interface
        def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
            pass

        def _dispatch(self, method: str) -> None:
            parsed = urlparse(self.path)
            query = {
                key: values[-1]
                for key, values in parse_qs(parsed.query).items()
            }
            body: Dict[str, Any] = {}
            length = int(self.headers.get("Content-Length") or 0)
            if length:
                try:
                    body = json.loads(self.rfile.read(length).decode("utf-8"))
                except (ValueError, UnicodeDecodeError):
                    self._reply(400, {"error": "request body is not JSON"})
                    return
                if not isinstance(body, dict):
                    self._reply(400, {"error": "request body must be an object"})
                    return
            try:
                status, payload = service.handle(method, parsed.path, query, body)
            except ServiceError as exc:
                self._reply(exc.status, {"error": exc.message})
                return
            except Exception as exc:  # noqa: BLE001 - keep the server alive
                self._reply(500, {"error": f"{type(exc).__name__}: {exc}"})
                return
            self._reply(status, payload)

        def _reply(self, status: int, payload: Dict[str, Any]) -> None:
            data = json.dumps(payload).encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(data)))
            self.end_headers()
            self.wfile.write(data)

        def do_GET(self) -> None:  # noqa: N802
            self._dispatch("GET")

        def do_POST(self) -> None:  # noqa: N802
            self._dispatch("POST")

    return Handler
