"""The threaded HTTP/JSON front end (``repro serve``).

Campaign-as-a-service: a stdlib-only (:mod:`http.server`) API that
accepts campaign/replay jobs, streams findings while campaigns run, and
exposes the persistent bug repository for browsing, triage, and replay.

Endpoints::

    GET  /health                   service liveness + job/repo counters
    POST /jobs                     submit {"kind": "campaign", "config": {...}}
                                   or     {"kind": "replay", "dialect": ...,
                                           "target": ..., "record_ids": [...]}
    GET  /jobs                     all jobs, oldest first
    GET  /jobs/<id>                one job (state, progress, summary)
    GET  /jobs/<id>/findings?since=N   streamed findings past cursor N
    GET  /jobs/<id>/transitions    the job's journaled state history
    POST /jobs/<id>/cancel         cancel a queued job, or request
                                   cooperative cancellation of a running one
    GET  /bugs?dialect=&triage=    repository records
    GET  /bugs/<id>                one record + its replay history
    POST /bugs/<id>/triage         {"status": "confirmed"}
    POST /shutdown                 graceful stop

Campaign configs arrive as the JSON shape of
:meth:`~repro.core.config.CampaignConfig.to_dict`; unknown keys are a
hard 400, mirroring the library's ``from_dict`` contract.  Everything
binds to ``127.0.0.1`` by default and ``port=0`` picks an ephemeral
port — tests boot a real server per test.

Robustness (the durable-service layer):

* jobs persist in a sqlite **journal** (``jobs.sqlite``, WAL) next to
  the bug repository; on boot the service recovers orphaned work —
  jobs a dead process left ``running`` resume from their checkpoint
  sidecars (``<data-dir>/checkpoints/<job-id>.ckpt``, auto-assigned at
  submission);
* ``workers=N`` scheduler threads claim jobs under leases;
* the admission queue is bounded — past the ``queue_depth`` watermark,
  submissions get **HTTP 429** with a ``Retry-After`` header; request
  bodies past ``max_body_bytes`` get **HTTP 413** before being read;
* shutdown drains gracefully: stop admitting (503), interrupt running
  campaigns at their next progress beat, journal them as ``queued``
  with ``resume=<checkpoint>`` for the next incarnation.

Storage failure handling (the chaos-harness layer):

* both databases sit behind the
  :class:`~repro.service.storage.SqliteStorage` boundary; a corrupt
  file found at **boot** is quarantined (``<name>.corrupt-<n>``) and
  rebuilt from whatever pages salvage, with the event reported under
  ``rebuilds`` in ``/health``;
* while a subsystem is **degraded** (ENOSPC, persistent lock
  contention, detected corruption) the service keeps answering reads —
  ``GET /jobs``, ``GET /health``, bug browsing — but mutations that
  need that subsystem get **503** with ``Retry-After``.  Each gate
  first *probes* (one cheap real write): if the spell has passed, the
  journal is resynced from the in-memory store and the request
  proceeds;
* uncaught handler exceptions return a generic JSON 500 envelope —
  exception class name only, never a message or traceback — and the
  connection stays usable;
* on startup (after crash recovery) the
  :class:`~repro.service.audit.ServiceAuditor` checks the journal's
  invariants with ``repair=True``; its summary rides in ``/health``.
"""

from __future__ import annotations

import json
import os
import re
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple, Union
from urllib.parse import parse_qs, urlparse

from ..core.config import CampaignConfig
from ..robustness.chaos import StorageFaultInjector
from .audit import ServiceAuditor, rebuild_journal
from .bugrepo import BugRepository
from .jobs import JobStore, QueueFull, TenantBudget
from .journal import JobJournal
from .scheduler import SchedulerPool
from .storage import CorruptionDetected, SqliteStorage, StorageError

_JOB_RE = re.compile(
    r"^/jobs/(?P<id>[\w-]+)(?P<rest>/findings|/cancel|/transitions)?$"
)
_BUG_RE = re.compile(r"^/bugs/(?P<id>\d+)(?P<rest>/triage|/replays)?$")

#: request bodies past this are refused unread (HTTP 413)
DEFAULT_MAX_BODY_BYTES = 1 << 20


class ServiceError(Exception):
    """An HTTP-visible request error."""

    def __init__(
        self,
        status: int,
        message: str,
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        super().__init__(message)
        self.status = status
        self.message = message
        self.headers = dict(headers or {})


class BugService:
    """The long-running campaign scheduler + bug repository service."""

    def __init__(
        self,
        data_dir: str,
        host: str = "127.0.0.1",
        port: int = 0,
        minimize: bool = True,
        default_budgets: Optional[str] = None,
        workers: int = 1,
        queue_depth: Optional[int] = 64,
        submitter_quota: Optional[int] = None,
        lease_seconds: float = 30.0,
        max_retries: int = 2,
        max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
        preemption: bool = True,
        tenant_budget: Optional[Union[str, TenantBudget]] = None,
        chaos: Optional[StorageFaultInjector] = None,
        audit_on_start: bool = True,
    ) -> None:
        self.data_dir = data_dir
        #: per-job ResourceGovernor quota applied to campaign submissions
        #: that don't carry their own 'budgets' (a submitted spec wins)
        self.default_budgets = default_budgets
        self.max_body_bytes = max_body_bytes
        #: the shared storage fault injector (None in production; tests
        #: pass one, ``repro serve`` honours REPRO_CHAOS et al.)
        self.chaos = chaos if chaos is not None else StorageFaultInjector.from_env()
        if isinstance(tenant_budget, str):
            tenant_budget = TenantBudget.parse(tenant_budget)
        if tenant_budget is not None and not tenant_budget.enabled:
            tenant_budget = None
        os.makedirs(data_dir, exist_ok=True)
        #: boot-time quarantine-and-rebuild events (surfaced in /health)
        self.rebuilds: Dict[str, Dict[str, Any]] = {}
        bug_path = os.path.join(data_dir, "bugs.sqlite")
        try:
            self.repo = BugRepository(
                bug_path, minimize=minimize, chaos=self.chaos
            )
        except CorruptionDetected:
            quarantined = SqliteStorage(
                "bugrepo", bug_path, chaos=self.chaos
            ).quarantine()
            self.repo = BugRepository(
                bug_path, minimize=minimize, chaos=self.chaos
            )
            salvaged = self.repo.salvage_from(quarantined)
            self.rebuilds["bugrepo"] = {
                "quarantined": quarantined, "salvaged": salvaged,
            }
        journal_path = os.path.join(data_dir, "jobs.sqlite")
        try:
            self.journal = JobJournal(journal_path, chaos=self.chaos)
        except CorruptionDetected:
            quarantined, salvaged = rebuild_journal(journal_path, self.chaos)
            self.journal = JobJournal(journal_path, chaos=self.chaos)
            self.rebuilds["journal"] = {
                "quarantined": quarantined, "salvaged": salvaged,
            }
        self.store = JobStore(
            journal=self.journal,
            checkpoint_dir=os.path.join(data_dir, "checkpoints"),
            max_depth=queue_depth,
            submitter_quota=submitter_quota,
            max_retries=max_retries,
            lease_seconds=lease_seconds,
            preemption=preemption,
            tenant_budget=tenant_budget,
        )
        #: what crash recovery re-enqueued/abandoned at boot
        self.recovered = self.store.recover()
        #: the startup invariant audit (None when audit_on_start=False)
        self.audit_report = None
        if audit_on_start:
            auditor = ServiceAuditor(
                journal=self.journal,
                repo=self.repo,
                store=self.store,
                checkpoint_dir=self.store.checkpoint_dir,
                chaos=self.chaos,
            )
            self.audit_report = auditor.run(repair=True)
        self.pool = SchedulerPool(self.store, self.repo, workers=workers)
        self._draining = threading.Event()
        self._httpd = ThreadingHTTPServer((host, port), _make_handler(self))
        self._httpd.daemon_threads = True
        self._serve_thread: Optional[threading.Thread] = None

    # -- lifecycle ------------------------------------------------------
    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "BugService":
        """Start the scheduler workers and the HTTP listener (background)."""
        self.pool.start()
        self._serve_thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-http",
            daemon=True,
        )
        self._serve_thread.start()
        return self

    def stop(self, timeout: float = 30.0, drain: bool = True) -> None:
        """Graceful shutdown.

        Ordered so nothing is lost: (1) stop admitting (submissions get
        503 while existing reads still answer), (2) drain the worker
        pool — running campaigns are interrupted at their next progress
        beat and journaled back to ``queued`` with a resume checkpoint,
        (3) stop the HTTP listener, (4) close the journal.
        """
        self._draining.set()
        self.pool.stop(timeout=timeout, drain=drain)
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._serve_thread is not None:
            self._serve_thread.join(timeout=5.0)
        self.journal.close()

    def serve_forever(self) -> None:
        """Foreground mode (``repro serve``): block until interrupted."""
        self.pool.start()
        try:
            self._httpd.serve_forever()
        except KeyboardInterrupt:
            pass
        finally:
            self._draining.set()
            self.pool.stop(drain=True)
            self._httpd.server_close()
            self.journal.close()

    # -- request handling (called from handler threads) -----------------
    def handle(
        self, method: str, path: str, query: Dict[str, Any], body: Dict[str, Any]
    ) -> Tuple[int, Dict[str, Any]]:
        if method == "GET" and path == "/health":
            return 200, self._health()
        if path == "/jobs":
            if method == "POST":
                return 200, self._submit(body)
            if method == "GET":
                return 200, {"jobs": [j.to_dict() for j in self.store.list()]}
        match = _JOB_RE.match(path)
        if match is not None:
            return self._job_route(method, match, query)
        if path == "/bugs" and method == "GET":
            records = self.repo.list(
                dialect=query.get("dialect"), triage=query.get("triage")
            )
            return 200, {"bugs": [r.to_dict() for r in records]}
        match = _BUG_RE.match(path)
        if match is not None:
            return self._bug_route(method, match, body)
        if method == "POST" and path == "/shutdown":
            # ack first; tearing down from inside the handler would deadlock
            threading.Thread(target=self.stop, daemon=True).start()
            return 200, {"status": "stopping"}
        raise ServiceError(404, f"no route for {method} {path}")

    def _health(self) -> Dict[str, Any]:
        storage = {
            "journal": self.journal.storage.health.snapshot(),
            "bugrepo": self.repo.storage.health.snapshot(),
        }
        degraded = any(sub["state"] != "ok" for sub in storage.values())
        if self._draining.is_set():
            status = "draining"
        elif degraded:
            status = "degraded"
        else:
            status = "ok"
        payload: Dict[str, Any] = {
            "status": status,
            "worker_alive": self.pool.alive,
            "workers": len(self.pool.workers),
            "workers_alive": self.pool.alive_count,
            "queue_depth": self.store.queue_depth,
            "shed": self.store.shed_count,
            "recovered": self.recovered,
            "jobs": self.store.state_counts(),
            "bug_records": self._bug_count(),
            "data_dir": self.data_dir,
            "storage": storage,
            "preemptions": self.store.preemption_count,
        }
        if self.audit_report is not None:
            summary = self.audit_report.to_dict()
            summary.pop("findings", None)
            payload["audit"] = summary
        if self.rebuilds:
            payload["rebuilds"] = self.rebuilds
        if self.store.tenant_budget is not None:
            payload["tenant_usage"] = self.store.tenant_usage()
        if self.chaos is not None:
            payload["chaos"] = self.chaos.snapshot()
        return payload

    def _bug_count(self) -> int:
        """The repository count — health must answer even when the
        repository cannot (degraded storage reports -1, not a 500)."""
        try:
            return self.repo.count()
        except StorageError:
            return -1

    # -- degraded-mode gating -------------------------------------------
    def _require_writable(self, *subsystems: str) -> None:
        """Refuse a mutation while its storage subsystem is degraded.

        Probe-first: one cheap real write per degraded subsystem — if it
        succeeds the degraded spell is over (the journal additionally
        resyncs from the in-memory store, which stayed the source of
        truth through the spell) and the mutation proceeds.  Otherwise
        **503** with ``Retry-After``, keeping reads untouched.
        """
        for name in subsystems:
            subsystem = self.journal if name == "journal" else self.repo
            health = subsystem.storage.health
            if health.ok:
                continue
            if not health.snapshot()["needs_rebuild"] and subsystem.probe():
                if name == "journal":
                    self._resync_journal()
                continue
            raise ServiceError(
                503,
                f"{name} storage is degraded "
                f"({health.snapshot()['reason'] or 'unwritable'}); "
                f"mutations are refused until it recovers",
                headers={"Retry-After": "30"},
            )

    def _resync_journal(self) -> None:
        """Repair the journal from memory after a degraded spell ends."""
        try:
            self.journal.resync(
                [job.row_snapshot() for job in self.store.list()],
                at=time.time(),
            )
        except StorageError:
            pass  # still flaky: the next probe-recovery tries again

    def _submit(self, body: Dict[str, Any]) -> Dict[str, Any]:
        if self._draining.is_set():
            raise ServiceError(
                503, "service is draining; resubmit after restart",
                headers={"Retry-After": "30"},
            )
        # admission journals the job: an unwritable journal means the
        # submission would be lost on restart, so degrade to read-only
        self._require_writable("journal")
        kind = body.get("kind", "campaign")
        submitter = str(body.get("submitter", "") or "")
        try:
            priority = int(body.get("priority", 0) or 0)
        except (TypeError, ValueError):
            raise ServiceError(400, "'priority' must be an integer")
        if kind == "campaign":
            raw = body.get("config")
            if not isinstance(raw, dict):
                raise ServiceError(
                    400, "campaign jobs need a 'config' object "
                    "(the CampaignConfig.to_dict shape)"
                )
            if self.default_budgets and not raw.get("budgets"):
                raw = dict(raw, budgets=self.default_budgets)
            try:
                config = CampaignConfig.from_dict(raw)
            except (ValueError, TypeError) as exc:
                raise ServiceError(400, str(exc))
            if not config.dialect:
                raise ServiceError(400, "config.dialect is required")
            # top-level submission fields win; config carries the defaults
            submitter = submitter or config.submitter
            priority = priority or config.priority
            params = {}
            if body.get("resume"):
                params["resume"] = str(body["resume"])
            job = self._admit(
                "campaign", config=config, params=params,
                submitter=submitter, priority=priority,
            )
        elif kind == "replay":
            params = {
                "dialect": body.get("dialect"),
                "target": body.get("target"),
                "record_ids": body.get("record_ids"),
            }
            job = self._admit(
                "replay", params=params,
                submitter=submitter, priority=priority,
            )
        else:
            raise ServiceError(400, f"unknown job kind {kind!r}")
        return job.to_dict()

    def _admit(self, kind: str, **kwargs: Any):
        """Submit through admission control, translating overload to 429."""
        try:
            return self.store.submit(kind, **kwargs)
        except QueueFull as full:
            raise ServiceError(
                429, str(full),
                headers={"Retry-After": str(full.retry_after)},
            )

    def _job_route(
        self, method: str, match: "re.Match[str]", query: Dict[str, Any]
    ) -> Tuple[int, Dict[str, Any]]:
        job = self.store.get(match.group("id"))
        if job is None:
            raise ServiceError(404, f"no job {match.group('id')!r}")
        rest = match.group("rest")
        if rest == "/findings" and method == "GET":
            try:
                since = int(query.get("since", 0))
            except (TypeError, ValueError):
                raise ServiceError(400, "'since' must be an integer cursor")
            cursor, findings = job.findings_since(since)
            return 200, {"next": cursor, "state": job.state, "findings": findings}
        if rest == "/cancel" and method == "POST":
            self._require_writable("journal")
            outcome = job.mark_cancelled()
            data = job.to_dict()
            data["cancel"] = outcome or "noop"
            return 200, data
        if rest == "/transitions" and method == "GET":
            return 200, {
                "id": job.job_id,
                "transitions": self.journal.transitions(job.job_id),
            }
        if rest is None and method == "GET":
            return 200, job.to_dict()
        raise ServiceError(404, f"no route for {method} /jobs/...{rest or ''}")

    def _bug_route(
        self, method: str, match: "re.Match[str]", body: Dict[str, Any]
    ) -> Tuple[int, Dict[str, Any]]:
        record_id = int(match.group("id"))
        record = self.repo.get(record_id)
        if record is None:
            raise ServiceError(404, f"no bug record {record_id}")
        rest = match.group("rest")
        if rest is None and method == "GET":
            data = record.to_dict()
            data["replays"] = self.repo.replay_history(record_id)
            return 200, data
        if rest == "/triage" and method == "POST":
            self._require_writable("bugrepo")
            status = body.get("status", "")
            try:
                updated = self.repo.set_triage(record_id, status)
            except ValueError as exc:
                raise ServiceError(400, str(exc))
            return 200, updated.to_dict()
        raise ServiceError(404, f"no route for {method} /bugs/...{rest or ''}")


def _make_handler(service: BugService):
    """Bind a handler class to *service* (http.server instantiates it
    per request, so state rides on a closure, not the instance)."""

    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"

        # silence per-request stderr logging; the service is the interface
        def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
            pass

        def _dispatch(self, method: str) -> None:
            parsed = urlparse(self.path)
            query = {
                key: values[-1]
                for key, values in parse_qs(parsed.query).items()
            }
            body: Dict[str, Any] = {}
            try:
                length = int(self.headers.get("Content-Length") or 0)
            except (TypeError, ValueError):
                self._reply(400, {"error": "bad Content-Length header"})
                return
            if length > service.max_body_bytes:
                # Refuse without buffering: drain the wire in fixed-size
                # chunks (so the client's write doesn't die on a broken
                # pipe before it can read the status line) but never hold
                # more than one chunk of the oversized body in memory.
                remaining = length
                while remaining > 0:
                    chunk = self.rfile.read(min(remaining, 65536))
                    if not chunk:
                        break
                    remaining -= len(chunk)
                self._reply(413, {
                    "error": f"request body of {length} bytes exceeds the "
                    f"{service.max_body_bytes}-byte limit"
                })
                self.close_connection = True
                return
            if length:
                try:
                    body = json.loads(self.rfile.read(length).decode("utf-8"))
                except (ValueError, UnicodeDecodeError):
                    self._reply(400, {"error": "request body is not JSON"})
                    return
                if not isinstance(body, dict):
                    self._reply(400, {"error": "request body must be an object"})
                    return
            try:
                status, payload = service.handle(method, parsed.path, query, body)
            except ServiceError as exc:
                self._reply(exc.status, {"error": exc.message}, exc.headers)
                return
            except StorageError as exc:
                # a degraded subsystem surfaced mid-request: same
                # contract as the mutation gate (retryable, not a crash)
                self._reply(503, {
                    "error": f"{exc.subsystem} storage is degraded; "
                    "retry later"
                }, {"Retry-After": "30"})
                return
            except Exception as exc:  # noqa: BLE001 - keep the server alive
                # generic envelope: the class name is diagnostic enough
                # for a client; messages and tracebacks can carry paths,
                # SQL, and internal state that must not leak on the wire
                self._reply(500, {
                    "error": "internal server error",
                    "exception": type(exc).__name__,
                })
                return
            self._reply(status, payload)

        def _reply(
            self,
            status: int,
            payload: Dict[str, Any],
            headers: Optional[Dict[str, str]] = None,
        ) -> None:
            data = json.dumps(payload).encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(data)))
            for name, value in (headers or {}).items():
                self.send_header(name, value)
            self.end_headers()
            self.wfile.write(data)

        def do_GET(self) -> None:  # noqa: N802
            self._dispatch("GET")

        def do_POST(self) -> None:  # noqa: N802
            self._dispatch("POST")

    return Handler
