"""The reusable campaign lifecycle — shared by the CLI and the server.

Historically ``repro.cli`` owned the dispatch logic (serial
:class:`~repro.core.campaign.Campaign` vs. sharded
:class:`~repro.perf.parallel.ParallelCampaign`, checkpoint/resume
spelling differences between the two).  That logic now lives here so the
one-shot CLI and the long-running service drive campaigns through the
same door:

* :func:`build_campaign` — config in, ready-to-run campaign object out.
* :func:`run_scheduled` — build, wire streaming hooks, run, return the
  :class:`~repro.core.campaign.CampaignResult`.
* :class:`SchedulerWorker` — the service's consumer thread: pulls jobs
  off the :class:`~repro.service.jobs.JobStore` queue, runs campaigns
  (streaming findings into the job as they surface) and replays, and
  folds campaign findings into the :class:`~repro.service.bugrepo.BugRepository`.

Serial campaigns stream findings live through ``Campaign.on_finding``;
sharded campaigns (``config.jobs > 1``) execute in worker processes, so
their findings backfill into the job when the shards merge.
"""

from __future__ import annotations

import threading
import traceback
from typing import Any, Callable, Optional, Union

from ..core.campaign import Campaign, CampaignResult
from ..core.config import CampaignConfig
from ..dialects import dialect_by_name
from ..perf.parallel import ParallelCampaign
from .bugrepo import BugRepository
from .jobs import Job, JobStore, result_to_summary


def build_campaign(config: CampaignConfig) -> Union[Campaign, "ParallelCampaign"]:
    """Instantiate the right campaign class for *config*.

    ``config.jobs == 1`` builds a serial :class:`Campaign` (supports
    fault injectors, live finding streaming, simulated clocks);
    ``config.jobs > 1`` builds a sharded :class:`ParallelCampaign`.
    """
    if not config.dialect:
        raise ValueError("build_campaign needs config.dialect to be set")
    if config.parallel:
        return ParallelCampaign(config=config)
    return Campaign(dialect_by_name(config.dialect), config=config)


def run_scheduled(
    config: CampaignConfig,
    resume: Optional[str] = None,
    on_finding: Optional[Callable[[Any, int], None]] = None,
    on_progress: Optional[Callable[[dict], None]] = None,
) -> CampaignResult:
    """Run one campaign end to end with optional streaming hooks.

    *resume* is a checkpoint path; serial campaigns load it directly,
    sharded campaigns re-point their checkpoint at it and resume their
    per-shard sidecars (the CLI's historical ``--resume`` semantics).
    """
    if resume is not None and config.parallel:
        # sharded resume: the checkpoint path *is* the resume path
        config = config.replace(checkpoint_path=resume)
    campaign = build_campaign(config)
    if isinstance(campaign, Campaign):
        if on_finding is not None:
            campaign.on_finding = on_finding
        if on_progress is not None:
            campaign.on_progress = on_progress
        return campaign.run(resume=resume)
    result = campaign.run(resume=resume is not None)
    # shards ran out of process: backfill the stream at merge time
    if on_finding is not None:
        for finding in list(result.bugs) + list(result.findings):
            on_finding(finding, getattr(finding, "query_index", -1))
    if on_progress is not None:
        on_progress({
            "position": result.queries_executed,
            "budget": config.budget,
            "outcomes": dict(result.outcomes),
        })
    return result


class SchedulerWorker:
    """The service's job consumer: one daemon thread draining the queue."""

    def __init__(
        self,
        store: JobStore,
        repo: BugRepository,
        name: str = "repro-scheduler",
    ) -> None:
        self.store = store
        self.repo = repo
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._loop, name=name, daemon=True)

    # -- lifecycle ------------------------------------------------------
    def start(self) -> "SchedulerWorker":
        self._thread.start()
        return self

    def stop(self, timeout: float = 30.0) -> None:
        self._stop.set()
        self.store.poison()
        if self._thread.is_alive():
            self._thread.join(timeout=timeout)

    @property
    def alive(self) -> bool:
        return self._thread.is_alive()

    # -- the drain loop -------------------------------------------------
    def _loop(self) -> None:
        while not self._stop.is_set():
            job = self.store.next_job(timeout=0.2)
            if job is None:
                continue
            self._run_job(job)

    def _run_job(self, job: Job) -> None:
        job.mark_running()
        try:
            if job.kind == "campaign":
                self._run_campaign_job(job)
            else:
                self._run_replay_job(job)
        except Exception:  # noqa: BLE001 - job isolation: record, don't die
            job.mark_failed(traceback.format_exc(limit=8))

    def _run_campaign_job(self, job: Job) -> None:
        config = job.config
        assert config is not None
        result = run_scheduled(
            config,
            resume=job.params.get("resume"),
            on_finding=job.add_finding,
            on_progress=job.set_progress,
        )
        job.ingest = self.repo.record_result(result, campaign_id=job.job_id)
        job.mark_done(result_to_summary(result))

    def _run_replay_job(self, job: Job) -> None:
        report = self.repo.replay(
            dialect=job.params.get("dialect"),
            target=job.params.get("target"),
            record_ids=job.params.get("record_ids"),
            job_id=job.job_id,
        )
        job.mark_done(report.to_dict())
