"""The reusable campaign lifecycle — shared by the CLI and the server.

Historically ``repro.cli`` owned the dispatch logic (serial
:class:`~repro.core.campaign.Campaign` vs. sharded
:class:`~repro.perf.parallel.ParallelCampaign`, checkpoint/resume
spelling differences between the two).  That logic now lives here so the
one-shot CLI and the long-running service drive campaigns through the
same door:

* :func:`build_campaign` — config in, ready-to-run campaign object out.
* :func:`run_scheduled` — build, wire streaming hooks, run, return the
  :class:`~repro.core.campaign.CampaignResult`.
* :class:`SchedulerWorker` — one consumer thread: CAS-claims jobs from
  the :class:`~repro.service.jobs.JobStore` under a lease, heartbeats
  while the campaign runs, honours cooperative cancellation and drain
  requests from the job's stop flags, and classifies failures into
  retry-with-backoff vs. terminal ``failed``.
* :class:`SchedulerPool` — N workers over one store; knows how to stop
  hard (tests) or **drain** gracefully: stop claiming, interrupt running
  campaigns at their next progress beat, requeue them with
  ``resume=<checkpoint>`` so a restarted service continues where this
  one stopped.

Serial campaigns stream findings live through ``Campaign.on_finding``
and are interruptible at every ``on_progress`` beat; sharded campaigns
(``config.jobs > 1``) execute in worker processes, so their findings
backfill at merge time and cancellation takes effect between shard
generations.
"""

from __future__ import annotations

import threading
import traceback
from typing import Any, Callable, List, Optional, Union

from ..core.campaign import Campaign, CampaignResult
from ..core.config import CampaignConfig
from ..dialects import dialect_by_name
from ..perf.parallel import ParallelCampaign
from ..robustness.chaos import SimulatedCrash
from ..robustness.checkpoint import CampaignCheckpoint
from .bugrepo import BugRepository
from .jobs import Job, JobStore, TenantBudgetExceeded, result_to_summary
from .storage import StorageError

#: lease floor for the non-heartbeating phases (ingest/minimization,
#: replay jobs): generous enough that normal work never loses its lease
SLOW_PHASE_LEASE_SECONDS = 300.0


class JobInterrupted(Exception):
    """A cooperative stop fired mid-campaign (``cancel``, ``drain``, or
    ``preempt``)."""

    def __init__(self, reason: str) -> None:
        super().__init__(reason)
        self.reason = reason


def build_campaign(config: CampaignConfig) -> Union[Campaign, "ParallelCampaign"]:
    """Instantiate the right campaign class for *config*.

    ``config.jobs == 1`` builds a serial :class:`Campaign` (supports
    fault injectors, live finding streaming, simulated clocks);
    ``config.jobs > 1`` builds a sharded :class:`ParallelCampaign`.
    """
    if not config.dialect:
        raise ValueError("build_campaign needs config.dialect to be set")
    if config.parallel:
        return ParallelCampaign(config=config)
    return Campaign(dialect_by_name(config.dialect), config=config)


def run_scheduled(
    config: CampaignConfig,
    resume: Optional[str] = None,
    on_finding: Optional[Callable[[Any, int], None]] = None,
    on_progress: Optional[Callable[[dict], None]] = None,
) -> CampaignResult:
    """Run one campaign end to end with optional streaming hooks.

    *resume* is a checkpoint path; serial campaigns load it directly,
    sharded campaigns re-point their checkpoint at it and resume their
    per-shard sidecars (the CLI's historical ``--resume`` semantics).
    """
    if resume is not None and config.parallel:
        # sharded resume: the checkpoint path *is* the resume path
        config = config.replace(checkpoint_path=resume)
    campaign = build_campaign(config)
    if isinstance(campaign, Campaign):
        if on_finding is not None:
            campaign.on_finding = on_finding
        if on_progress is not None:
            campaign.on_progress = on_progress
        return campaign.run(resume=resume)
    result = campaign.run(resume=resume is not None)
    # shards ran out of process: backfill the stream at merge time
    if on_finding is not None:
        for finding in list(result.bugs) + list(result.findings):
            on_finding(finding, getattr(finding, "query_index", -1))
    if on_progress is not None:
        on_progress({
            "position": result.queries_executed,
            "budget": config.budget,
            "outcomes": dict(result.outcomes),
        })
    return result


class SchedulerWorker:
    """One job consumer: claim under lease, run, finish via CAS."""

    def __init__(
        self,
        store: JobStore,
        repo: BugRepository,
        name: str = "repro-scheduler",
        drain_flag: Optional[threading.Event] = None,
    ) -> None:
        self.store = store
        self.repo = repo
        self.name = name
        self._stop = threading.Event()
        #: shared by the pool: set => interrupt campaigns for requeue
        self._drain = drain_flag if drain_flag is not None else threading.Event()
        self._thread = threading.Thread(target=self._loop, name=name, daemon=True)

    # -- lifecycle ------------------------------------------------------
    def start(self) -> "SchedulerWorker":
        self._thread.start()
        return self

    def stop(self, timeout: float = 30.0, drain: bool = False) -> None:
        self._stop.set()
        if drain:
            self._drain.set()
        self.store.poison()
        if self._thread.is_alive():
            self._thread.join(timeout=timeout)

    @property
    def alive(self) -> bool:
        return self._thread.is_alive()

    # -- the drain loop -------------------------------------------------
    def _loop(self) -> None:
        while not self._stop.is_set():
            if not self.store.wait(timeout=0.2):
                break  # poison pill: one per worker
            if self._stop.is_set() or self._drain.is_set():
                break
            try:
                # the claim/reclaim transitions journal too, so a crash
                # point can fire here as well as inside the job
                self.store.reclaim_expired()
                claimed = self.store.claim(owner=self.name)
                if claimed is None:
                    continue
                self._run_job(*claimed)
            except SimulatedCrash:
                # the chaos harness "killed" this worker: die like a
                # SIGKILLed thread would — silently, leaving the lease to
                # expire and the journal exactly as the crash left it
                return

    def _run_job(self, job: Job, lease_seq: int) -> None:
        try:
            if job.kind == "campaign":
                self._run_campaign_job(job, lease_seq)
            else:
                self._run_replay_job(job, lease_seq)
        except JobInterrupted as interrupt:
            if interrupt.reason == "cancel":
                job.finish_cancelled(lease_seq)
            elif interrupt.reason == "preempt":
                # yield the worker to a higher-priority job: requeue with
                # a resume checkpoint, no retry burned, and wake a worker
                # so both the preemptor and the victim get claimed
                job.requeue(
                    lease_seq,
                    resume=self._resumable(job),
                    detail="preempted by higher-priority job",
                )
                self.store.notify(job.job_id)
            else:  # drain: hand the job to the next service incarnation
                job.requeue(
                    lease_seq,
                    resume=self._resumable(job),
                    detail="requeued by drain",
                )
        except TenantBudgetExceeded as exc:
            # terminal, not retried: the budget cannot un-exhaust itself
            job.mark_failed(str(exc), lease_seq)
        except Exception:  # noqa: BLE001 - job isolation: record, don't die
            error = traceback.format_exc(limit=8)
            job.mark_retrying(
                error,
                lease_seq=lease_seq,
                backoff_base=self.store.backoff_base,
                backoff_cap=self.store.backoff_cap,
                resume=self._resumable(job),
            )

    @staticmethod
    def _resumable(job: Job) -> Optional[str]:
        """The job's checkpoint path, if a loadable snapshot exists."""
        path = job.checkpoint_path
        if path and CampaignCheckpoint.try_load(path) is not None:
            return path
        return None

    def _hooks(self, job: Job, lease_seq: int):
        """The streaming callbacks, wired for leases + cooperative stop."""

        def on_progress(snapshot: dict) -> None:
            job.set_progress(snapshot)
            job.heartbeat(lease_seq, self.store.lease_seconds)
            if job.cancel_event.is_set():
                raise JobInterrupted("cancel")
            if self._drain.is_set() or job.drain_event.is_set():
                raise JobInterrupted("drain")
            if self.store.should_preempt(job):
                raise JobInterrupted("preempt")

        return job.add_finding, on_progress

    def _run_campaign_job(self, job: Job, lease_seq: int) -> None:
        config = job.config
        assert config is not None
        denial = self.store.tenant_denial(job)
        if denial is not None:
            raise TenantBudgetExceeded(denial)
        run_config = self.store.apply_tenant_budgets(config)
        on_finding, on_progress = self._hooks(job, lease_seq)
        result = run_scheduled(
            run_config,
            resume=job.params.get("resume"),
            on_finding=on_finding,
            on_progress=on_progress,
        )
        self.store.charge_tenant(job.submitter, result.queries_executed)
        # ingest can minimize hundreds of findings — too slow for the
        # normal heartbeat cadence, so take a long lease up front
        job.heartbeat(
            lease_seq,
            max(self.store.lease_seconds, SLOW_PHASE_LEASE_SECONDS),
        )
        try:
            ingest = self.repo.record_result(result, campaign_id=job.job_id)
        except StorageError as exc:
            # a degraded repository must not fail a finished campaign:
            # the findings live on in the job's summary/stream, only the
            # cross-campaign dedup record is lost (counted)
            self.repo.storage.health.note_lost_write()
            ingest = {"new_records": 0, "duplicates": 0, "error": str(exc)}
        job.set_ingest(ingest)
        job.mark_done(result_to_summary(result), lease_seq)

    def _run_replay_job(self, job: Job, lease_seq: int) -> None:
        # replays execute every stored trigger without progress beats
        job.heartbeat(
            lease_seq,
            max(self.store.lease_seconds, SLOW_PHASE_LEASE_SECONDS),
        )
        report = self.repo.replay(
            dialect=job.params.get("dialect"),
            target=job.params.get("target"),
            record_ids=job.params.get("record_ids"),
            job_id=job.job_id,
        )
        job.mark_done(report.to_dict(), lease_seq)


class SchedulerPool:
    """N scheduler workers over one store, with graceful drain."""

    def __init__(
        self,
        store: JobStore,
        repo: BugRepository,
        workers: int = 1,
        name: str = "repro-scheduler",
    ) -> None:
        if workers < 1:
            raise ValueError(f"the worker pool needs >= 1 workers (got {workers})")
        self.store = store
        self.repo = repo
        # the idle-capacity guard in JobStore.should_preempt needs to know
        # how many consumers this store has
        store.worker_count = workers
        self._drain = threading.Event()
        self.workers: List[SchedulerWorker] = [
            SchedulerWorker(
                store, repo, name=f"{name}-{index}", drain_flag=self._drain
            )
            for index in range(workers)
        ]

    def start(self) -> "SchedulerPool":
        for worker in self.workers:
            worker.start()
        return self

    def stop(self, timeout: float = 30.0, drain: bool = True) -> None:
        """Stop all workers.

        With *drain* (the default), running campaigns are interrupted at
        their next progress beat and requeued with ``resume`` pointing at
        their checkpoint sidecar — the journal then carries them to the
        next service start.  Without it, workers still exit between jobs
        but running campaigns run to completion first (tests' hard-stop).
        """
        if drain:
            self._drain.set()
            for job in self.store.list():
                if job.state == "running":
                    job.drain_event.set()
        for worker in self.workers:
            worker._stop.set()
        # one pill per worker: each blocked thread eats exactly one
        self.store.poison(len(self.workers))
        for worker in self.workers:
            if worker._thread.is_alive():
                worker._thread.join(timeout=timeout)

    @property
    def alive(self) -> bool:
        return any(worker.alive for worker in self.workers)

    @property
    def alive_count(self) -> int:
        return sum(1 for worker in self.workers if worker.alive)
