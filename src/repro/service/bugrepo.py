"""The persistent, deduplicating bug repository (sqlite).

BugForge's observation (PAPERS.md) is that a bug repository is a *testing
amplifier*, not just storage: known triggers replayed against every
dialect on every campaign catch regressions and cross-dialect spread for
free.  This module is that repository:

* **Dedup identity.**  Findings collapse onto one record per
  ``(dialect, function, canonical statement)``.  The canonical statement
  is the *minimized* trigger — ingest runs the finding through
  :mod:`repro.core.minimize` with the oracle-appropriate
  :class:`~repro.core.minimize.Probe` (crash identity for crash bugs,
  divergence class for differential findings), so two raw statements that
  shrink to the same minimal reproducer are the same bug.  The oracle that
  found it is *not* part of the identity: the same flaw surfaced by the
  crash oracle in one campaign and by the differential oracle in another
  is still one defect, so record rows accumulate the set of ``kinds`` and
  report ``labels`` instead of splitting.  Distinct dialects never
  collapse — a bug is a property of one DBMS's implementation.
* **Triage.**  Every record carries a workflow status
  (``new``/``confirmed``/``reported``/``fixed``/``wontfix``/``invalid``)
  mutable through :meth:`BugRepository.set_triage`.
* **Regression replay.**  :meth:`BugRepository.replay` re-executes every
  stored trigger against a chosen dialect on a fresh server and reports
  **status flips** — a trigger that no longer fires (candidate fix /
  lost reproducer) or fires differently.  Replays against the record's
  own dialect update its ``last_status``; re-targeted replays (another
  dialect) are report-only.

Storage is a single sqlite database under the service data directory,
opened in WAL mode through the shared
:class:`~repro.service.storage.SqliteStorage` boundary (same family as
the job journal's ``jobs.sqlite``): writes pass named crash points for
the chaos harness, classified failures degrade the repository's health
instead of leaking raw sqlite errors, and
:meth:`BugRepository.quarantine_and_rebuild` recovers a corrupt file by
moving it aside as ``bugs.sqlite.corrupt-<n>`` and salvaging every
readable record into a fresh database.  Connections are opened per
operation (sqlite serializes writers), so the repository is safe to
share between scheduler workers and HTTP handler threads — and, unlike
the journal's single-writer connection, across processes (the CLI's
``repro bugs`` reads it while a service runs).
"""

from __future__ import annotations

import json
import os
import re
import sqlite3
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.minimize import (
    CrashProbe,
    DivergenceProbe,
    MetamorphicProbe,
    minimize_poc,
)
from ..dialects import dialect_by_name, dialect_names
from ..engine.connection import ServerCrashed
from ..engine.errors import SQLError
from ..robustness.chaos import StorageFaultInjector
from .storage import CorruptionDetected, SqliteStorage

#: triage workflow states
TRIAGE_STATES = ("new", "confirmed", "reported", "fixed", "wontfix", "invalid")

#: cap on minimisation work per ingested finding (candidate executions)
DEFAULT_MINIMIZE_ATTEMPTS = 400

_WS_RE = re.compile(r"\s+")


def canonical_statement(sql: str) -> str:
    """Whitespace/terminator-normalized statement text (the dedup key)."""
    return _WS_RE.sub(" ", sql.strip()).rstrip(";").strip()


_SCHEMA = """
CREATE TABLE IF NOT EXISTS bugs (
    id          INTEGER PRIMARY KEY AUTOINCREMENT,
    dialect     TEXT NOT NULL,
    function    TEXT NOT NULL,
    statement   TEXT NOT NULL,
    kinds       TEXT NOT NULL,
    labels      TEXT NOT NULL,
    pattern     TEXT NOT NULL DEFAULT '',
    peer        TEXT NOT NULL DEFAULT '',
    message     TEXT NOT NULL DEFAULT '',
    raw_sql     TEXT NOT NULL DEFAULT '',
    triage      TEXT NOT NULL DEFAULT 'new',
    last_status TEXT NOT NULL DEFAULT 'fires',
    occurrences INTEGER NOT NULL DEFAULT 1,
    campaigns   TEXT NOT NULL DEFAULT '[]',
    created_at  REAL NOT NULL,
    updated_at  REAL NOT NULL,
    UNIQUE (dialect, function, statement)
);
CREATE TABLE IF NOT EXISTS replays (
    id         INTEGER PRIMARY KEY AUTOINCREMENT,
    bug_id     INTEGER NOT NULL REFERENCES bugs(id),
    dialect    TEXT NOT NULL,
    observed   TEXT NOT NULL,
    fires      INTEGER NOT NULL,
    flipped    INTEGER NOT NULL,
    job_id     TEXT NOT NULL DEFAULT '',
    created_at REAL NOT NULL
);
"""


@dataclass
class BugRecord:
    """One deduplicated repository record."""

    record_id: int
    dialect: str
    function: str
    statement: str
    kinds: List[str]
    labels: List[str]
    pattern: str = ""
    peer: str = ""
    message: str = ""
    raw_sql: str = ""
    triage: str = "new"
    last_status: str = "fires"
    occurrences: int = 1
    campaigns: List[str] = field(default_factory=list)
    created_at: float = 0.0
    updated_at: float = 0.0

    @property
    def expected_signal(self) -> str:
        """What a replay must observe for this record to still fire."""
        if "crash" in self.kinds:
            return "crash"
        if "divergence" in self.kinds:
            return "divergence"
        if "conformance" in self.kinds:
            return "error"
        if "tlp" in self.kinds:
            return "tlp"
        if "norec" in self.kinds:
            return "norec"
        return "crash"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "id": self.record_id,
            "dialect": self.dialect,
            "function": self.function,
            "statement": self.statement,
            "kinds": list(self.kinds),
            "labels": list(self.labels),
            "pattern": self.pattern,
            "peer": self.peer,
            "message": self.message,
            "raw_sql": self.raw_sql,
            "triage": self.triage,
            "last_status": self.last_status,
            "occurrences": self.occurrences,
            "campaigns": list(self.campaigns),
            "created_at": self.created_at,
            "updated_at": self.updated_at,
        }


@dataclass
class ReplayOutcome:
    """One record's regression replay result."""

    record_id: int
    dialect: str             # the dialect replayed against
    statement: str
    expected: str            # crash | divergence | error
    observed: str            # e.g. "crash:NPD", "divergence:value", "ok"
    fires: bool
    flipped: bool            # status changed vs. the record's last_status

    def to_dict(self) -> Dict[str, Any]:
        return {
            "record_id": self.record_id,
            "dialect": self.dialect,
            "statement": self.statement,
            "expected": self.expected,
            "observed": self.observed,
            "fires": self.fires,
            "flipped": self.flipped,
        }


@dataclass
class ReplayReport:
    """Summary of one replay job."""

    dialect: str
    outcomes: List[ReplayOutcome] = field(default_factory=list)

    @property
    def replayed(self) -> int:
        return len(self.outcomes)

    @property
    def still_firing(self) -> int:
        return sum(1 for o in self.outcomes if o.fires)

    @property
    def flips(self) -> List[ReplayOutcome]:
        return [o for o in self.outcomes if o.flipped]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "dialect": self.dialect,
            "replayed": self.replayed,
            "still_firing": self.still_firing,
            "flipped": len(self.flips),
            "flips": [o.to_dict() for o in self.flips],
            "outcomes": [o.to_dict() for o in self.outcomes],
        }


class BugRepository:
    """Sqlite-backed cross-campaign bug store with dedup and replay."""

    def __init__(
        self,
        path: str,
        minimize: bool = True,
        minimize_attempts: int = DEFAULT_MINIMIZE_ATTEMPTS,
        chaos: Optional[StorageFaultInjector] = None,
    ) -> None:
        self.path = path
        self.minimize = minimize
        self.minimize_attempts = minimize_attempts
        self.storage = SqliteStorage("bugrepo", path, chaos=chaos)
        parent = os.path.dirname(os.path.abspath(path))
        os.makedirs(parent, exist_ok=True)
        failure = self.storage.integrity_failure()
        if failure is not None:
            self.storage.health.degrade(
                f"bugrepo failed integrity check: {failure}",
                needs_rebuild=True,
            )
            raise CorruptionDetected(
                "bugrepo",
                f"bug repository {path!r} failed integrity check: {failure}",
            )
        with self.storage.write("setup") as db:
            db.executescript(_SCHEMA)

    # ------------------------------------------------------------------
    def probe(self) -> bool:
        """Try a real write; clears degraded health on success."""
        return self.storage.probe()

    def integrity_failure(self) -> Optional[str]:
        return self.storage.integrity_failure()

    def quarantine_and_rebuild(self) -> Tuple[str, int]:
        """Move the corrupt database aside and salvage readable records.

        Returns ``(quarantine_path, salvaged_record_count)``.  Replay
        history is not salvaged (it is derived data; the records
        themselves are the asset) — that is the repository's documented
        data-loss bound under corruption.
        """
        quarantined = self.storage.quarantine()
        with self.storage.write("rebuild") as db:
            db.executescript(_SCHEMA)
        return quarantined, self.salvage_from(quarantined)

    def salvage_from(self, quarantined: str) -> int:
        """Copy every readable record out of a quarantined database.

        Rows whose JSON columns no longer parse (the page they lived on
        was damaged) are skipped individually; everything else lands in
        this repository's fresh ``bugs`` table.  Marks health recovered
        and returns the salvage count.
        """
        salvaged = 0
        try:
            old = sqlite3.connect(quarantined)
            old.row_factory = sqlite3.Row
            try:
                rows = old.execute("SELECT * FROM bugs ORDER BY id").fetchall()
            finally:
                old.close()
        except sqlite3.Error:
            rows = []
        for row in rows:
            try:
                # validate the JSON columns parse before accepting the row
                json.loads(row["kinds"])
                json.loads(row["labels"])
                json.loads(row["campaigns"])
                with self.storage.write("rebuild") as db:
                    data = dict(row)
                    columns = sorted(data)
                    db.execute(
                        f"INSERT INTO bugs ({', '.join(columns)}) "
                        f"VALUES ({', '.join('?' for _ in columns)})",
                        [data[c] for c in columns],
                    )
                salvaged += 1
            except (sqlite3.Error, ValueError, KeyError, IndexError):
                continue  # the page this row lived on was damaged
        self.storage.health.recover()
        return salvaged

    @staticmethod
    def _row_to_record(row: sqlite3.Row) -> BugRecord:
        return BugRecord(
            record_id=row["id"],
            dialect=row["dialect"],
            function=row["function"],
            statement=row["statement"],
            kinds=json.loads(row["kinds"]),
            labels=json.loads(row["labels"]),
            pattern=row["pattern"],
            peer=row["peer"],
            message=row["message"],
            raw_sql=row["raw_sql"],
            triage=row["triage"],
            last_status=row["last_status"],
            occurrences=row["occurrences"],
            campaigns=json.loads(row["campaigns"]),
            created_at=row["created_at"],
            updated_at=row["updated_at"],
        )

    # ------------------------------------------------------------------
    # ingest
    # ------------------------------------------------------------------
    def record_finding(
        self,
        finding: Any,
        campaign_id: str = "",
        minimize: Optional[bool] = None,
    ) -> Tuple[int, bool]:
        """Fold one oracle finding into the repository.

        *finding* is any :class:`~repro.core.oracles.base.Finding`
        (``DiscoveredBug``, ``DivergenceFinding``, ``ConformanceFinding``)
        or an equivalent plain dict.  Returns ``(record_id, created)`` —
        ``created`` is False when the finding deduplicated onto an
        existing record.
        """
        info = _finding_info(finding)
        do_minimize = self.minimize if minimize is None else minimize
        statement = self._canonicalize(info, do_minimize)
        now = time.time()
        with self.storage.write("ingest") as db:
            row = db.execute(
                "SELECT * FROM bugs WHERE dialect=? AND function=? AND statement=?",
                (info["dialect"], info["function"], statement),
            ).fetchone()
            if row is None:
                cursor = db.execute(
                    "INSERT INTO bugs (dialect, function, statement, kinds,"
                    " labels, pattern, peer, message, raw_sql, campaigns,"
                    " created_at, updated_at)"
                    " VALUES (?,?,?,?,?,?,?,?,?,?,?,?)",
                    (
                        info["dialect"], info["function"], statement,
                        json.dumps([info["kind"]]), json.dumps([info["label"]]),
                        info["pattern"], info["peer"], info["message"],
                        info["sql"],
                        json.dumps([campaign_id] if campaign_id else []),
                        now, now,
                    ),
                )
                return int(cursor.lastrowid), True
            kinds = json.loads(row["kinds"])
            labels = json.loads(row["labels"])
            campaigns = json.loads(row["campaigns"])
            if info["kind"] not in kinds:
                kinds.append(info["kind"])
            if info["label"] not in labels:
                labels.append(info["label"])
            if campaign_id and campaign_id not in campaigns:
                campaigns.append(campaign_id)
            db.execute(
                "UPDATE bugs SET kinds=?, labels=?, campaigns=?,"
                " occurrences=occurrences+1, peer=CASE WHEN peer='' THEN ?"
                " ELSE peer END, updated_at=? WHERE id=?",
                (
                    json.dumps(kinds), json.dumps(labels),
                    json.dumps(campaigns), info["peer"], now, row["id"],
                ),
            )
            return int(row["id"]), False

    def record_result(
        self,
        result: Any,
        campaign_id: str = "",
        minimize: Optional[bool] = None,
    ) -> Dict[str, int]:
        """Fold a whole :class:`CampaignResult` (bugs + findings) in."""
        new = 0
        duplicates = 0
        for finding in list(result.bugs) + list(result.findings):
            _, created = self.record_finding(
                finding, campaign_id=campaign_id, minimize=minimize
            )
            if created:
                new += 1
            else:
                duplicates += 1
        return {"new_records": new, "duplicates": duplicates}

    def _canonicalize(self, info: Dict[str, str], do_minimize: bool) -> str:
        """Minimize the trigger with the oracle-appropriate probe."""
        sql = info["sql"]
        if do_minimize:
            probe = None
            try:
                if info["kind"] == "crash":
                    probe = CrashProbe(dialect_by_name(info["dialect"]))
                elif info["kind"] == "divergence" and info["peer"]:
                    subject = dialect_by_name(info["dialect"])
                    subject.install_logic_flaws()
                    probe = DivergenceProbe(
                        subject, dialect_by_name(info["peer"])
                    )
                elif info["kind"] in ("tlp", "norec"):
                    subject = dialect_by_name(info["dialect"])
                    subject.install_logic_flaws(
                        predicate_kinds=(info["kind"],)
                    )
                    probe = MetamorphicProbe(subject, info["kind"])
            except KeyError:
                probe = None  # unknown dialect: store the raw statement
            if probe is not None:
                try:
                    sql = minimize_poc(
                        probe.dialect, info["sql"],
                        max_attempts=self.minimize_attempts, probe=probe,
                    ).minimized
                except (ValueError, RecursionError):
                    # the finding no longer reproduces on a fresh server
                    # (flaky, or context-dependent); keep the raw statement
                    sql = info["sql"]
        return canonical_statement(sql)

    # ------------------------------------------------------------------
    # browse / triage
    # ------------------------------------------------------------------
    def get(self, record_id: int) -> Optional[BugRecord]:
        with self.storage.read("browse") as db:
            row = db.execute(
                "SELECT * FROM bugs WHERE id=?", (record_id,)
            ).fetchone()
        return self._row_to_record(row) if row is not None else None

    def list(
        self,
        dialect: Optional[str] = None,
        triage: Optional[str] = None,
    ) -> List[BugRecord]:
        query = "SELECT * FROM bugs"
        clauses: List[str] = []
        params: List[Any] = []
        if dialect:
            clauses.append("dialect=?")
            params.append(dialect)
        if triage:
            clauses.append("triage=?")
            params.append(triage)
        if clauses:
            query += " WHERE " + " AND ".join(clauses)
        query += " ORDER BY id"
        with self.storage.read("browse") as db:
            rows = db.execute(query, params).fetchall()
        return [self._row_to_record(row) for row in rows]

    def count(self) -> int:
        with self.storage.read("browse") as db:
            (n,) = db.execute("SELECT COUNT(*) FROM bugs").fetchone()
        return int(n)

    def set_triage(self, record_id: int, status: str) -> BugRecord:
        if status not in TRIAGE_STATES:
            raise ValueError(
                f"unknown triage status {status!r} "
                f"(known: {', '.join(TRIAGE_STATES)})"
            )
        with self.storage.write("triage") as db:
            cursor = db.execute(
                "UPDATE bugs SET triage=?, updated_at=? WHERE id=?",
                (status, time.time(), record_id),
            )
            if cursor.rowcount == 0:
                raise KeyError(f"no bug record with id {record_id}")
        record = self.get(record_id)
        assert record is not None
        return record

    def replay_history(self, record_id: int) -> List[Dict[str, Any]]:
        with self.storage.read("browse") as db:
            rows = db.execute(
                "SELECT * FROM replays WHERE bug_id=? ORDER BY id",
                (record_id,),
            ).fetchall()
        return [dict(row) for row in rows]

    # ------------------------------------------------------------------
    # regression replay
    # ------------------------------------------------------------------
    def replay(
        self,
        dialect: Optional[str] = None,
        target: Optional[str] = None,
        record_ids: Optional[Sequence[int]] = None,
        job_id: str = "",
    ) -> ReplayReport:
        """Re-execute stored triggers and report status flips.

        *dialect* filters which records replay (default: all); *target*
        re-targets execution onto another dialect (default: each record's
        own).  Replaying a record against its own dialect updates its
        ``last_status``; re-targeted replays never mutate the record.
        """
        if target is not None and target not in dialect_names():
            raise ValueError(f"unknown replay target dialect {target!r}")
        records = self.list(dialect=dialect)
        if record_ids is not None:
            wanted = set(int(i) for i in record_ids)
            records = [r for r in records if r.record_id in wanted]
        report = ReplayReport(dialect=target or dialect or "*")
        now = time.time()
        for record in records:
            target_name = target or record.dialect
            observed = _observe_trigger(record, target_name)
            fires = observed.split(":", 1)[0] == record.expected_signal
            own_dialect = target_name == record.dialect
            previously_fired = record.last_status == "fires"
            flipped = own_dialect and (fires != previously_fired)
            outcome = ReplayOutcome(
                record_id=record.record_id,
                dialect=target_name,
                statement=record.statement,
                expected=record.expected_signal,
                observed=observed,
                fires=fires,
                flipped=flipped,
            )
            report.outcomes.append(outcome)
            with self.storage.write("replay") as db:
                db.execute(
                    "INSERT INTO replays (bug_id, dialect, observed, fires,"
                    " flipped, job_id, created_at) VALUES (?,?,?,?,?,?,?)",
                    (
                        record.record_id, target_name, observed,
                        int(fires), int(flipped), job_id, now,
                    ),
                )
                if own_dialect:
                    db.execute(
                        "UPDATE bugs SET last_status=?, updated_at=? WHERE id=?",
                        (
                            "fires" if fires else "quiet",
                            now, record.record_id,
                        ),
                    )
        return report


# ---------------------------------------------------------------------------
# finding extraction / replay execution helpers
# ---------------------------------------------------------------------------
def _finding_info(finding: Any) -> Dict[str, str]:
    """Normalize a Finding (or plain dict) into the ingest fields."""
    if isinstance(finding, dict):
        data = finding
        return {
            "dialect": str(data.get("dialect") or data.get("dbms") or ""),
            "function": str(data.get("function", "")).lower(),
            "sql": str(data.get("sql", "")),
            "kind": str(data.get("kind", "crash")),
            "label": str(data.get("label") or data.get("bug_type_label") or ""),
            "pattern": str(data.get("pattern", "")),
            "peer": str(data.get("peer", "")),
            "message": str(data.get("message", "")),
        }
    return {
        "dialect": getattr(finding, "dbms", ""),
        "function": getattr(finding, "function", "").lower(),
        "sql": getattr(finding, "sql", ""),
        "kind": getattr(finding, "kind", "crash"),
        "label": finding.bug_type_label,
        "pattern": getattr(finding, "pattern", ""),
        "peer": getattr(finding, "peer", "") or "",
        "message": getattr(finding, "message", "") or "",
    }


def _observe_trigger(record: BugRecord, target_name: str) -> str:
    """Execute a stored trigger against *target_name*; classify the signal.

    Returns ``"crash:<code>"``, ``"divergence:<class>"``, ``"error"``, or
    ``"ok"``.  Non-crash records hunt seeded logic flaws, so the target
    (and divergence peer) dialect gets its logic flaws installed — the
    same world the discovering oracle ran in.
    """
    sql = record.statement + ";"
    dialect = dialect_by_name(target_name)
    signal = record.expected_signal
    if signal != "crash":
        dialect.install_logic_flaws(
            predicate_kinds=(signal,) if signal in ("tlp", "norec") else ()
        )
    if signal == "divergence" and record.peer:
        probe = DivergenceProbe(dialect, dialect_by_name(record.peer))
        divergence = probe.identity(sql)
        if divergence is None:
            return "ok"
        return f"divergence:{divergence}"
    if signal in ("tlp", "norec"):
        meta_probe = MetamorphicProbe(dialect, signal)
        divergence = meta_probe.identity(sql)
        if divergence is None:
            return "ok"
        return f"{signal}:{divergence}"
    connection = dialect.create_server().connect()
    try:
        connection.execute(sql)
        return "ok"
    except SQLError:
        return "error"
    except ServerCrashed as crashed:
        return f"crash:{crashed.crash.code}"
    except RecursionError:
        return "crash:SO"
