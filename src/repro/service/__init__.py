"""Campaign-as-a-service: scheduler, job model, bug repository, HTTP API.

Everything the one-shot CLI could do is reachable as a long-running
service:

* :mod:`repro.service.scheduler` — the reusable campaign lifecycle
  (serial vs. sharded dispatch, checkpoint/resume wiring, finding
  streaming) that both the CLI and the server call.
* :mod:`repro.service.jobs` — the asynchronous job model: campaign and
  replay jobs, their states, and the thread-safe store/queue.
* :mod:`repro.service.bugrepo` — the persistent, deduplicating bug
  repository (sqlite): findings from every campaign collapse onto
  canonical records with triage status and regression replay.
* :mod:`repro.service.server` — the threaded HTTP/JSON front end
  (``repro serve``): submit jobs, poll streamed findings and supervisor
  health, browse/triage/replay the repository.
"""

from .bugrepo import BugRecord, BugRepository, ReplayOutcome, ReplayReport
from .jobs import (
    JOB_STATES,
    Job,
    JobStore,
    finding_to_dict,
    result_to_summary,
)
from .scheduler import build_campaign, run_scheduled
from .server import BugService

__all__ = [
    "BugRecord", "BugRepository", "BugService", "JOB_STATES", "Job",
    "JobStore", "ReplayOutcome", "ReplayReport", "build_campaign",
    "finding_to_dict", "result_to_summary", "run_scheduled",
]
