"""Campaign-as-a-service: scheduler, job model, bug repository, HTTP API.

Everything the one-shot CLI could do is reachable as a long-running
service:

* :mod:`repro.service.scheduler` — the reusable campaign lifecycle
  (serial vs. sharded dispatch, checkpoint/resume wiring, finding
  streaming) that both the CLI and the server call, plus the leased
  :class:`~repro.service.scheduler.SchedulerPool` of N worker threads
  with cooperative cancellation and graceful drain.
* :mod:`repro.service.jobs` — the asynchronous job model: campaign and
  replay jobs, CAS state transitions under leases, retry backoff,
  bounded finding buffers, and admission control (queue watermark +
  per-submitter quotas).
* :mod:`repro.service.journal` — the durable sqlite job journal (WAL):
  every job's config, state transitions, retries, lease, and checkpoint
  path survive the process; startup recovery re-enqueues orphaned work.
* :mod:`repro.service.bugrepo` — the persistent, deduplicating bug
  repository (sqlite): findings from every campaign collapse onto
  canonical records with triage status and regression replay.
* :mod:`repro.service.storage` — the sqlite I/O boundary every byte of
  service state crosses: named crash points for the chaos harness,
  classified failures (:class:`~repro.service.storage.StorageUnavailable`
  vs :class:`~repro.service.storage.CorruptionDetected`), per-subsystem
  :class:`~repro.service.storage.StorageHealth`, and
  quarantine-and-rebuild for corrupt files.
* :mod:`repro.service.audit` — the invariant auditor (``repro audit``
  and the service's startup hook): transition-chain legality, live
  leases, checkpoint sidecar existence, dedup uniqueness, orphan
  sidecars; violations are repaired or fail loudly.
* :mod:`repro.service.server` — the threaded HTTP/JSON front end
  (``repro serve``): submit jobs, poll streamed findings and supervisor
  health, browse/triage/replay the repository, with overload
  protection (HTTP 429 load shedding, HTTP 413 body caps) and a
  degraded read-only mode while storage is unwritable (HTTP 503 on
  mutations, reads keep answering).
"""

from .audit import AuditFinding, AuditReport, ServiceAuditor, rebuild_journal
from .bugrepo import BugRecord, BugRepository, ReplayOutcome, ReplayReport
from .jobs import (
    JOB_STATES,
    TERMINAL_STATES,
    Job,
    JobStore,
    QueueFull,
    TenantBudget,
    TenantBudgetExceeded,
    finding_to_dict,
    result_to_summary,
    signature_digest,
)
from .journal import JobJournal, open_database
from .scheduler import (
    JobInterrupted,
    SchedulerPool,
    SchedulerWorker,
    build_campaign,
    run_scheduled,
)
from .server import BugService
from .storage import (
    CorruptionDetected,
    SqliteStorage,
    StorageError,
    StorageHealth,
    StorageUnavailable,
    crash_points,
)

__all__ = [
    "AuditFinding", "AuditReport", "BugRecord", "BugRepository",
    "BugService", "CorruptionDetected", "JOB_STATES", "Job",
    "JobInterrupted", "JobJournal", "JobStore", "QueueFull",
    "ReplayOutcome", "ReplayReport", "SchedulerPool", "SchedulerWorker",
    "ServiceAuditor", "SqliteStorage", "StorageError", "StorageHealth",
    "StorageUnavailable", "TERMINAL_STATES", "TenantBudget",
    "TenantBudgetExceeded", "build_campaign", "crash_points",
    "finding_to_dict", "open_database", "rebuild_journal",
    "result_to_summary", "run_scheduled", "signature_digest",
]
