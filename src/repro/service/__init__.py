"""Campaign-as-a-service: scheduler, job model, bug repository, HTTP API.

Everything the one-shot CLI could do is reachable as a long-running
service:

* :mod:`repro.service.scheduler` — the reusable campaign lifecycle
  (serial vs. sharded dispatch, checkpoint/resume wiring, finding
  streaming) that both the CLI and the server call, plus the leased
  :class:`~repro.service.scheduler.SchedulerPool` of N worker threads
  with cooperative cancellation and graceful drain.
* :mod:`repro.service.jobs` — the asynchronous job model: campaign and
  replay jobs, CAS state transitions under leases, retry backoff,
  bounded finding buffers, and admission control (queue watermark +
  per-submitter quotas).
* :mod:`repro.service.journal` — the durable sqlite job journal (WAL):
  every job's config, state transitions, retries, lease, and checkpoint
  path survive the process; startup recovery re-enqueues orphaned work.
* :mod:`repro.service.bugrepo` — the persistent, deduplicating bug
  repository (sqlite): findings from every campaign collapse onto
  canonical records with triage status and regression replay.
* :mod:`repro.service.server` — the threaded HTTP/JSON front end
  (``repro serve``): submit jobs, poll streamed findings and supervisor
  health, browse/triage/replay the repository, with overload
  protection (HTTP 429 load shedding, HTTP 413 body caps).
"""

from .bugrepo import BugRecord, BugRepository, ReplayOutcome, ReplayReport
from .jobs import (
    JOB_STATES,
    TERMINAL_STATES,
    Job,
    JobStore,
    QueueFull,
    finding_to_dict,
    result_to_summary,
    signature_digest,
)
from .journal import JobJournal, open_database
from .scheduler import (
    JobInterrupted,
    SchedulerPool,
    SchedulerWorker,
    build_campaign,
    run_scheduled,
)
from .server import BugService

__all__ = [
    "BugRecord", "BugRepository", "BugService", "JOB_STATES", "Job",
    "JobInterrupted", "JobJournal", "JobStore", "QueueFull",
    "ReplayOutcome", "ReplayReport", "SchedulerPool", "SchedulerWorker",
    "TERMINAL_STATES", "build_campaign", "finding_to_dict",
    "open_database", "result_to_summary", "run_scheduled",
    "signature_digest",
]
